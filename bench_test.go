// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 10) and the throttling experiments (Section 11).
// Each benchmark iteration executes one full workload run; compare
// sub-benchmarks to read the tables (e.g. Fig6Ferret/CilkP-P2 vs
// Fig6Ferret/Serial gives the speedup column). cmd/piperbench prints the
// same data as paper-shaped tables.
package piper_test

import (
	"fmt"
	"io"
	"testing"

	"piper"
	"piper/internal/dag"
	"piper/internal/dedup"
	"piper/internal/ferret"
	"piper/internal/pipefib"
	"piper/internal/vidsim"
	"piper/internal/workload"
)

var benchPs = []int{1, 2, 4}

// --- Figure 6: ferret ------------------------------------------------------

func BenchmarkFig6Ferret(b *testing.B) {
	c := ferret.BuildCorpus(300, 32, 32)
	qs := ferret.QuerySet{Offset: 1 << 20, N: 120, TopK: 10}
	b.Run("Serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.RunSerial(qs)
		}
	})
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("CilkP-P%d", p), func(b *testing.B) {
			eng := piper.NewEngine(piper.Workers(p))
			defer eng.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.RunPiper(eng, 10*p, qs)
			}
		})
		b.Run(fmt.Sprintf("Pthreads-P%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.RunBindStage(p, 10*p, qs)
			}
		})
		b.Run(fmt.Sprintf("TBB-P%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.RunTBB(p, 10*p, qs)
			}
		})
	}
}

// --- Figure 7: dedup -------------------------------------------------------

func BenchmarkFig7Dedup(b *testing.B) {
	data := workload.TextStream(1234, 4<<20, 4096, 0.35)
	b.SetBytes(int64(len(data)))
	b.Run("Serial", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			_ = dedup.CompressSerial(data, io.Discard)
		}
	})
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("CilkP-P%d", p), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			eng := piper.NewEngine(piper.Workers(p))
			defer eng.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = dedup.CompressPiper(eng, 4*p, data, io.Discard)
			}
		})
		b.Run(fmt.Sprintf("Pthreads-P%d", p), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				_ = dedup.CompressBindStage(data, p, 4*p, io.Discard)
			}
		})
		b.Run(fmt.Sprintf("TBB-P%d", p), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				_ = dedup.CompressTBB(data, p, 4*p, io.Discard)
			}
		})
	}
}

// --- Figure 8: x264 --------------------------------------------------------

func BenchmarkFig8X264(b *testing.B) {
	video := vidsim.Generate(777, 192, 96, 60, 20)
	cfg := vidsim.DefaultConfig()
	b.Run("Serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vidsim.EncodeSerial(video, cfg)
		}
	})
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("CilkP-P%d", p), func(b *testing.B) {
			eng := piper.NewEngine(piper.Workers(p))
			defer eng.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vidsim.EncodePiper(eng, 4*p, video, cfg)
			}
		})
		b.Run(fmt.Sprintf("Pthreads-P%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vidsim.EncodeThreads(video, cfg, p)
			}
		})
	}
}

// --- Figure 9: pipe-fib dependency folding ----------------------------------

func BenchmarkFig9PipeFib(b *testing.B) {
	const n = 3000
	b.Run("SerialFine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pipefib.SerialFine(n)
		}
	})
	b.Run("SerialCoarse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pipefib.SerialCoarse(n)
		}
	})
	for _, cfg := range []struct {
		name    string
		folding bool
		coarse  bool
	}{
		{"Fine-NoFold", false, false},
		{"Fine-Fold", true, false},
		{"Coarse-NoFold", false, true},
		{"Coarse-Fold", true, true},
	} {
		for _, p := range benchPs {
			b.Run(fmt.Sprintf("%s-P%d", cfg.name, p), func(b *testing.B) {
				eng := piper.NewEngine(piper.Workers(p), piper.DependencyFolding(cfg.folding))
				defer eng.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if cfg.coarse {
						pipefib.Coarse(eng, 4*p, n)
					} else {
						pipefib.Fine(eng, 4*p, n)
					}
				}
			})
		}
	}
}

// --- Theorem 12: uniform pipelines under throttling -------------------------

func benchSpinPipeline(b *testing.B, p, k int, model *dag.Pipeline) {
	eng := piper.NewEngine(piper.Workers(p))
	defer eng.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter := 0
		eng.RunPipeline(k, func() bool { return iter < len(model.Iters) }, func(it *piper.Iter) {
			row := model.Iters[iter]
			iter++
			workload.SpinMicros(row[0].Weight)
			for j := 1; j < len(row); j++ {
				if row[j].Cross {
					it.Wait(row[j].Stage)
				} else {
					it.Continue(row[j].Stage)
				}
				workload.SpinMicros(row[j].Weight)
			}
		})
	}
}

func BenchmarkThm12Uniform(b *testing.B) {
	const n, stages, micros = 150, 4, 30
	model := dag.Uniform(n, stages, micros)
	for _, a := range []int{1, 2, 4, 8} {
		p := 2
		b.Run(fmt.Sprintf("K=%dP", a), func(b *testing.B) {
			benchSpinPipeline(b, p, a*p, model)
		})
	}
}

// --- Figure 10 / Theorem 13: pathological pipeline ---------------------------

func BenchmarkFig10Pathological(b *testing.B) {
	model := dag.PathologicalThm13(1 << 16)
	cbrt := 1
	for int64(cbrt*cbrt*cbrt) < model.Work() {
		cbrt++
	}
	for _, k := range []int{2, 8, cbrt + 2} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			benchSpinPipeline(b, 2, k, model)
		})
	}
}

// --- Section 9 ablations -----------------------------------------------------

func BenchmarkAblations(b *testing.B) {
	const n = 1500
	for _, cfg := range []struct {
		name string
		opts []piper.Option
	}{
		{"AllOn", nil},
		{"NoFolding", []piper.Option{piper.DependencyFolding(false)}},
		{"EagerEnabling", []piper.Option{piper.LazyEnabling(false)}},
		{"NoTailSwap", []piper.Option{piper.TailSwap(false)}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			opts := append([]piper.Option{piper.Workers(2)}, cfg.opts...)
			eng := piper.NewEngine(opts...)
			defer eng.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pipefib.Fine(eng, 8, n)
			}
		})
	}
}

// --- Scheduler microbenchmarks ----------------------------------------------

// BenchmarkSerialOverhead measures the per-iteration cost of an empty
// pipeline on one worker — the "low serial overhead" claim of Section 10.
func BenchmarkSerialOverhead(b *testing.B) {
	eng := piper.NewEngine(piper.Workers(1))
	defer eng.Close()
	b.ResetTimer()
	i := 0
	n := b.N
	eng.PipeWhile(func() bool { return i < n }, func(it *piper.Iter) {
		i++
	})
}

// BenchmarkStageTransitions measures Wait on an always-satisfied cross
// edge (the dependency-folding fast path).
func BenchmarkStageTransitions(b *testing.B) {
	eng := piper.NewEngine(piper.Workers(1))
	defer eng.Close()
	b.ResetTimer()
	i := 0
	eng.PipeWhile(func() bool { return i < 1 }, func(it *piper.Iter) {
		i++
		for j := int64(1); j <= int64(b.N); j++ {
			it.Wait(j)
		}
	})
}

// BenchmarkForkJoinFor measures Iter.For dispatch.
func BenchmarkForkJoinFor(b *testing.B) {
	eng := piper.NewEngine(piper.Workers(2))
	defer eng.Close()
	var sink int64
	b.ResetTimer()
	i := 0
	eng.PipeWhile(func() bool { return i < 1 }, func(it *piper.Iter) {
		i++
		it.Continue(1)
		it.For(b.N, 256, func(j int) { sink += int64(j) })
	})
	_ = sink
}
