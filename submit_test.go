package piper_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"piper"
)

// TestSubmitPublicAPI exercises the async serving surface end to end
// through the public package: Submit, Handle, SubmitPipe, cancellation,
// and panic capture as *piper.PanicError.
func TestSubmitPublicAPI(t *testing.T) {
	eng := piper.NewEngine(piper.Workers(4))
	defer eng.Close()

	// A successful submission.
	var sum atomic.Int64
	i := 0
	h := eng.Submit(context.Background(), func() bool { i++; return i <= 100 }, func(it *piper.Iter) {
		v := int64(i)
		it.Continue(1)
		sum.Add(v)
	})
	if err := h.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got := sum.Load(); got != 101*50 {
		t.Fatalf("sum = %d", got)
	}

	// SubmitPipe over an element source, canceled mid-flight.
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once atomic.Bool
	n := 0
	h2 := piper.SubmitPipe(ctx, eng, func() (int, bool) { n++; return n, true }, func(it *piper.Iter, v int) {
		if once.CompareAndSwap(false, true) {
			close(started)
		}
		it.Wait(1)
	})
	<-started
	cancel()
	if err := h2.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitPipe Wait = %v, want context.Canceled", err)
	}

	// Panic capture.
	j := 0
	h3 := eng.Submit(nil, func() bool { j++; return j <= 5 }, func(it *piper.Iter) {
		panic("served panic")
	})
	var pe *piper.PanicError
	if err := h3.Wait(); !errors.As(err, &pe) || pe.Value != "served panic" {
		t.Fatalf("Wait = %v, want *piper.PanicError(served panic)", err)
	}

	// Stats surface the serving counters.
	s := eng.Stats()
	if s.Submits != 3 || s.CancelRequests != 1 || s.AbortedPipelines != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestSubmitClosedEnginePublic: a closed engine reports ErrEngineClosed
// through the handle rather than panicking.
func TestSubmitClosedEnginePublic(t *testing.T) {
	eng := piper.NewEngine(piper.Workers(1))
	eng.Close()
	h := eng.Submit(context.Background(), func() bool { return true }, func(it *piper.Iter) {})
	if err := h.Wait(); !errors.Is(err, piper.ErrEngineClosed) {
		t.Fatalf("Wait = %v, want ErrEngineClosed", err)
	}
}
