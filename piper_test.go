package piper_test

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"piper"
	"piper/internal/workload"
)

func TestRunQuickstart(t *testing.T) {
	var outputs []int64
	i := 0
	piper.Run(func() bool { return i < 100 }, func(it *piper.Iter) {
		i++
		it.Continue(1)
		v := it.Index() * 2
		it.Wait(2)
		outputs = append(outputs, v)
	}, piper.Workers(4))
	if len(outputs) != 100 {
		t.Fatalf("got %d outputs", len(outputs))
	}
	for k, v := range outputs {
		if v != int64(k)*2 {
			t.Fatalf("outputs[%d] = %d", k, v)
		}
	}
}

func TestPipeGeneric(t *testing.T) {
	eng := piper.NewEngine(piper.Workers(4))
	defer eng.Close()
	in := []string{"a", "bb", "ccc", "dddd", "eeeee"}
	i := 0
	var lens []int
	piper.Pipe(eng, func() (string, bool) {
		if i >= len(in) {
			return "", false
		}
		s := in[i]
		i++
		return s, true
	}, func(it *piper.Iter, s string) {
		it.Continue(1)
		n := len(s)
		it.Wait(2)
		lens = append(lens, n)
	})
	want := []int{1, 2, 3, 4, 5}
	for k := range want {
		if lens[k] != want[k] {
			t.Fatalf("lens = %v", lens)
		}
	}
}

func TestEachOrdering(t *testing.T) {
	eng := piper.NewEngine(piper.Workers(4))
	defer eng.Close()
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	var got []int
	piper.Each(eng, items, func(it *piper.Iter, v int) {
		it.Continue(1)
		sq := v * v
		it.Wait(2)
		got = append(got, sq)
	})
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

// TestPipeElementIsolation: the element is iteration-local even though
// next() reuses its own state.
func TestPipeElementIsolation(t *testing.T) {
	eng := piper.NewEngine(piper.Workers(8))
	defer eng.Close()
	const n = 1000
	i := 0
	var sum atomic.Int64
	piper.Pipe(eng, func() (int, bool) {
		if i >= n {
			return 0, false
		}
		i++
		return i, true
	}, func(it *piper.Iter, v int) {
		it.Continue(1)
		if int64(v) != it.Index()+1 {
			t.Errorf("iteration %d saw element %d", it.Index(), v)
		}
		sum.Add(int64(v))
	})
	if sum.Load() != n*(n+1)/2 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

// TestOptionPlumbing: options reach the engine.
func TestOptionPlumbing(t *testing.T) {
	eng := piper.NewEngine(
		piper.Workers(3),
		piper.Throttle(7),
		piper.DependencyFolding(false),
		piper.LazyEnabling(false),
		piper.TailSwap(false),
	)
	defer eng.Close()
	o := eng.Options()
	if o.Workers != 3 || o.Throttle != 7 || o.DependencyFolding ||
		!o.EagerEnabling || o.TailSwap {
		t.Fatalf("options not plumbed: %+v", o)
	}
}

// TestRandomPipelineShapesQuick runs randomized stage structures through
// the scheduler and compares the serial-stage completion order and a work
// checksum against a serial reference execution.
func TestRandomPipelineShapesQuick(t *testing.T) {
	eng := piper.NewEngine(piper.Workers(4))
	defer eng.Close()

	run := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		// For each iteration, a random increasing stage walk with random
		// wait/continue choices, derived deterministically from the seed.
		plan := make([][][2]int64, n) // per iteration: list of (stage, isWait)
		r := workload.NewRNG(seed)
		for i := range plan {
			st := int64(0)
			steps := r.Intn(6)
			for k := 0; k < steps; k++ {
				st += int64(1 + r.Intn(4))
				w := int64(0)
				if r.Intn(2) == 0 {
					w = 1
				}
				plan[i] = append(plan[i], [2]int64{st, w})
			}
		}
		// Serial reference: checksum of (iteration, stage) visits in order.
		var want uint64
		for i := range plan {
			for _, step := range plan[i] {
				want = want*1099511628211 + uint64(i)<<20 + uint64(step[0])
			}
		}
		// Parallel run: serial tail stage accumulates the same checksum.
		var got uint64
		i := 0
		eng.PipeWhile(func() bool { return i < n }, func(it *piper.Iter) {
			idx := int(it.Index())
			i++
			var local uint64
			for _, step := range plan[idx] {
				if step[1] == 1 {
					it.Wait(step[0])
				} else {
					it.Continue(step[0])
				}
				local = local*1099511628211 + uint64(idx)<<20 + uint64(step[0])
				_ = local
			}
			it.Wait(1 << 40) // final serial stage: reduce in order
			for _, step := range plan[idx] {
				got = got*1099511628211 + uint64(idx)<<20 + uint64(step[0])
			}
		})
		return got == want
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(run, cfg); err != nil {
		t.Fatal(err)
	}
}
