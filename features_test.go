package piper_test

import (
	"bytes"
	"encoding/json"
	"sync/atomic"
	"testing"

	"piper"
	"piper/internal/workload"
)

func TestPublicRunSerialMatchesEngine(t *testing.T) {
	build := func(run func(cond func() bool, body func(*piper.Iter))) []int64 {
		var out []int64
		i := 0
		run(func() bool { return i < 120 }, func(it *piper.Iter) {
			i++
			it.Continue(1)
			v := it.Index() * it.Index()
			it.Wait(2)
			out = append(out, v)
		})
		return out
	}
	serial := build(func(c func() bool, b func(*piper.Iter)) { piper.RunSerial(c, b) })
	eng := piper.NewEngine(piper.Workers(4))
	defer eng.Close()
	parallel := build(eng.PipeWhile)
	for k := range serial {
		if serial[k] != parallel[k] {
			t.Fatalf("output %d differs", k)
		}
	}
}

func TestSerialPipeGeneric(t *testing.T) {
	in := []int{5, 6, 7}
	i := 0
	var got []int
	rep := piper.SerialPipe(func() (int, bool) {
		if i >= len(in) {
			return 0, false
		}
		v := in[i]
		i++
		return v, true
	}, func(it *piper.Iter, v int) {
		it.Continue(1)
		got = append(got, v*10)
	})
	if rep.Iterations != 3 {
		t.Fatalf("iterations = %d", rep.Iterations)
	}
	for k, v := range got {
		if v != (in[k])*10 {
			t.Fatalf("got = %v", got)
		}
	}
}

func TestPublicProfile(t *testing.T) {
	eng := piper.NewEngine(piper.Workers(1))
	defer eng.Close()
	i := 0
	rep := piper.Profile(eng, 8, func() bool { return i < 30 }, func(it *piper.Iter) {
		i++
		workload.SpinMicros(20)
		it.Continue(1)
		workload.SpinMicros(200)
		it.Wait(2)
		workload.SpinMicros(20)
	})
	if rep.WorkNs <= 0 || rep.SpanNs <= 0 {
		t.Fatalf("no instrumentation data: %+v", rep)
	}
	if p := rep.Parallelism(); p < 1 {
		t.Fatalf("parallelism = %v", p)
	}
}

func TestPublicRunAdaptive(t *testing.T) {
	eng := piper.NewEngine(piper.Workers(4))
	defer eng.Close()
	var order []int64
	i := 0
	rep := piper.RunAdaptive(eng, 2, 32, func() bool { return i < 200 }, func(it *piper.Iter) {
		i++
		it.Continue(1)
		v := it.Index()
		it.Wait(2)
		order = append(order, v)
	})
	if rep.Iterations != 200 {
		t.Fatalf("iterations = %d", rep.Iterations)
	}
	if rep.MaxLiveIterations > 32 {
		t.Fatalf("max live %d exceeded kMax", rep.MaxLiveIterations)
	}
	for k, v := range order {
		if v != int64(k) {
			t.Fatalf("order violated at %d", k)
		}
	}
}

func TestPublicTraceExport(t *testing.T) {
	eng := piper.NewEngine(piper.Workers(2))
	defer eng.Close()
	eng.StartTrace()
	i := 0
	eng.PipeWhile(func() bool { return i < 10 }, func(it *piper.Iter) {
		i++
		it.Continue(1)
	})
	var buf bytes.Buffer
	if err := eng.StopTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("empty trace")
	}
}

func TestEachEmpty(t *testing.T) {
	eng := piper.NewEngine(piper.Workers(2))
	defer eng.Close()
	ran := false
	piper.Each(eng, []int(nil), func(it *piper.Iter, v int) { ran = true })
	if ran {
		t.Fatal("body ran for empty slice")
	}
}

func TestProfilePipeGeneric(t *testing.T) {
	eng := piper.NewEngine(piper.Workers(1))
	defer eng.Close()
	i := 0
	var sum atomic.Int64
	rep := piper.ProfilePipe(eng, 4, func() (int, bool) {
		if i >= 20 {
			return 0, false
		}
		i++
		return i, true
	}, func(it *piper.Iter, v int) {
		it.Continue(1)
		workload.SpinMicros(50)
		sum.Add(int64(v))
	})
	if sum.Load() != 20*21/2 {
		t.Fatalf("sum = %d", sum.Load())
	}
	if rep.WorkNs <= 0 {
		t.Fatal("no work measured")
	}
}

// TestStatsSnapshotFields sanity-checks new counters exist and stay
// coherent.
func TestStatsSnapshotFields(t *testing.T) {
	eng := piper.NewEngine(piper.Workers(2))
	defer eng.Close()
	i := 0
	piper.RunAdaptive(eng, 1, 8, func() bool { return i < 64 }, func(it *piper.Iter) {
		i++
		it.Continue(1)
		it.Wait(2)
	})
	s := eng.Stats()
	if s.ThrottleGrows < 0 || s.ThrottleShrinks < 0 {
		t.Fatal("negative counters")
	}
	if s.Iterations != 64 {
		t.Fatalf("iterations = %d", s.Iterations)
	}
}
