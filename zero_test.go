package piper_test

import (
	"testing"

	"piper"
)

// Zero-iteration pipelines: the degenerate case where the loop condition
// fails before the first iteration. Both execution tiers must handle it
// without starting an iteration, promoting a frame, or leaking a gauge.
func TestZeroIterationPipelines(t *testing.T) {
	tiers := []struct {
		name string
		opts []piper.Option
	}{
		{"inline", []piper.Option{piper.Workers(2)}},
		{"coroutine", []piper.Option{piper.Workers(2), piper.InlineFastPath(false)}},
	}
	for _, tier := range tiers {
		t.Run(tier.name, func(t *testing.T) {
			eng := piper.NewEngine(tier.opts...)
			defer eng.Close()
			before := eng.Stats()

			// Each over an empty slice.
			called := false
			piper.Each(eng, []int{}, func(it *piper.Iter, v int) { called = true })
			// Pipe whose source fails immediately.
			piper.Pipe(eng, func() (int, bool) { return 0, false }, func(it *piper.Iter, v int) { called = true })
			if called {
				t.Fatal("body ran for a zero-iteration pipeline")
			}

			after := eng.Stats()
			if d := after.Iterations - before.Iterations; d != 0 {
				t.Errorf("zero-iteration pipelines started %d iterations", d)
			}
			if d := after.Promotions - before.Promotions; d != 0 {
				t.Errorf("zero-iteration pipelines promoted %d frames", d)
			}
			if after.LiveIterFrames != 0 || after.LivePipelines != 0 || after.LiveClosureFrames != 0 {
				t.Errorf("gauges leaked: iter=%d closure=%d pipelines=%d",
					after.LiveIterFrames, after.LiveClosureFrames, after.LivePipelines)
			}
			// Both pipelines ran to completion (two pipe_while executions).
			if d := after.Pipelines - before.Pipelines; d != 2 {
				t.Errorf("pipelines delta = %d, want 2", d)
			}
		})
	}
}

// Handle.Cancel after completion must be inert: the handle's reported
// error stays whatever completion wrote (idempotent error reporting), no
// frame state is touched (the pipeline has recycled), and no gauge moves.
func TestHandleCancelAfterCompletion(t *testing.T) {
	eng := piper.NewEngine(piper.Workers(2))
	defer eng.Close()

	i := 0
	var ran int
	h := eng.Submit(nil, func() bool { i++; return i <= 3 }, func(it *piper.Iter) {
		ran++
		it.Continue(1)
	})
	if err := h.Wait(); err != nil {
		t.Fatalf("pipeline failed: %v", err)
	}
	before := eng.Stats()

	h.Cancel()
	h.Cancel() // double-cancel: still idempotent
	if err := h.Wait(); err != nil {
		t.Errorf("Wait after post-completion Cancel = %v, want nil (error reporting must be idempotent)", err)
	}
	if rep, err := h.Report(); err != nil || rep.Iterations != 3 {
		t.Errorf("Report after post-completion Cancel = %+v, %v", rep, err)
	}

	after := eng.Stats()
	if after.AbortedPipelines != before.AbortedPipelines {
		t.Errorf("post-completion Cancel aborted a pipeline: %d -> %d",
			before.AbortedPipelines, after.AbortedPipelines)
	}
	if after.AbortedIterations != before.AbortedIterations {
		t.Errorf("post-completion Cancel unwound iterations: %d -> %d",
			before.AbortedIterations, after.AbortedIterations)
	}
	if after.LiveIterFrames != 0 || after.LivePipelines != 0 {
		t.Errorf("gauges leaked after post-completion Cancel: iter=%d pipelines=%d",
			after.LiveIterFrames, after.LivePipelines)
	}
	if ran != 3 {
		t.Errorf("ran %d iterations, want 3", ran)
	}
}
