package piper

import "context"

// SubmitPipe is Pipe started asynchronously: the pipeline runs in the
// background, canceled at stage boundaries if ctx is canceled, and the
// returned Handle reports completion, the context error, or a captured
// panic. See Engine.Submit for the cancellation semantics.
//
// ErrSaturated contract: on an engine with a MaxPending budget, SubmitPipe
// follows Submit's reject admission policy — when the budget is exhausted
// the Handle completes immediately with ErrSaturated, next is never
// called, and no pipeline state is allocated. Callers that prefer to queue
// under backpressure use SubmitPipeWait (or Engine.SubmitWait), which
// never reports ErrSaturated: it blocks for a slot and fails only with the
// context's error or ErrEngineClosed.
func SubmitPipe[T any](ctx context.Context, eng *Engine, next func() (T, bool), body func(it *Iter, v T)) *Handle {
	var (
		cur T
		ok  bool
	)
	cond := func() bool {
		cur, ok = next()
		return ok
	}
	return eng.Submit(ctx, cond, func(it *Iter) {
		v := cur // stage 0: capture before the next iteration's cond runs
		body(it, v)
	})
}

// SubmitPipeWait is SubmitPipe under the blocking admission policy: a
// saturated engine makes the call block until a pending-pipeline slot
// frees (or ctx is done, or the engine closes) instead of failing the
// Handle with ErrSaturated. See Engine.SubmitWait.
func SubmitPipeWait[T any](ctx context.Context, eng *Engine, next func() (T, bool), body func(it *Iter, v T)) *Handle {
	var (
		cur T
		ok  bool
	)
	cond := func() bool {
		cur, ok = next()
		return ok
	}
	return eng.SubmitWait(ctx, cond, func(it *Iter) {
		v := cur // stage 0: capture before the next iteration's cond runs
		body(it, v)
	})
}

// Pipe runs a pipeline over the elements produced by next. next executes
// serially, in order, as part of each iteration's stage 0 and returns the
// element for the iteration plus an ok flag; the pipeline ends when ok is
// false. body receives the iteration handle and the element, already
// copied into iteration-local state, which avoids the shared-variable
// pitfall of hand-written pipe_while conditions.
//
// Grain contract: on an engine with batched execution (Options.Grain,
// the adaptive default), the scheduler may claim runs of consecutive
// iterations and execute them back-to-back on one worker — next is then
// called between the iterations of a run, still serially and exactly
// once per iteration, and all pipe_while semantics (serial stage-0
// order, cross edges, cancellation) are preserved. The one visible
// constraint: a body may block through piper primitives (Wait, Sync,
// nested pipelines — the batch detects these and splits), but blocking
// on external synchronization that a later iteration of the same
// pipeline would satisfy can deadlock, just as the paper requires
// inter-iteration dependencies to be expressed via pipe_wait. Grain(1)
// restores the strict one-iteration-per-claim protocol. The batchsafety
// analyzer (internal/lint, `go run ./cmd/piperlint`) enforces this
// contract statically: raw channel operations, select, mutex/WaitGroup
// waits, and time.Sleep inside a body are flagged unless annotated
// //piper:allow-block with a reason.
//
// Plan compilation (Options.CompilePlans, on by default) does not alter
// this contract: a shape-stable pipeline's compiled dispatch preserves
// the Grain(1) protocol exactly — the same transitions publish the same
// stage counters in the same order, blocking, promotion, and
// cancellation behave identically, and an iteration that diverges from
// the compiled shape falls back to the interpreter mid-iteration. The
// compiler changes how much bookkeeping a transition costs, never what
// the program observes.
func Pipe[T any](eng *Engine, next func() (T, bool), body func(it *Iter, v T)) {
	PipeThrottled(eng, 0, next, body)
}

// PipeThrottled is Pipe with an explicit per-pipeline throttling limit K
// (0 means the engine default).
func PipeThrottled[T any](eng *Engine, k int, next func() (T, bool), body func(it *Iter, v T)) {
	var (
		cur T
		ok  bool
	)
	cond := func() bool {
		cur, ok = next()
		return ok
	}
	eng.RunPipeline(k, cond, func(it *Iter) {
		v := cur // stage 0: capture before the next iteration's cond runs
		body(it, v)
	})
}

// Profile runs one pipeline with work/span instrumentation and returns
// the measured T1, T∞ and their ratio — the scalability-analyzer
// ("Cilkview") measurement the paper uses to explain dedup's limited
// parallelism. k is the throttling limit (0 for the engine default).
func Profile(eng *Engine, k int, cond func() bool, body func(*Iter)) PipelineReport {
	return eng.ProfilePipeline(k, cond, body)
}

// ProfilePipe is Profile over a generic element source, like Pipe.
func ProfilePipe[T any](eng *Engine, k int, next func() (T, bool), body func(it *Iter, v T)) PipelineReport {
	var (
		cur T
		ok  bool
	)
	cond := func() bool {
		cur, ok = next()
		return ok
	}
	return eng.ProfilePipeline(k, cond, func(it *Iter) {
		v := cur
		body(it, v)
	})
}

// Each applies body to every element of items as pipeline iterations.
// Stage 0 is just the index bump, so bodies that immediately Continue(1)
// behave like an ordered parallel-for with streaming (serial) tail stages
// available via Wait.
func Each[T any](eng *Engine, items []T, body func(it *Iter, v T)) {
	i := 0
	next := func() (T, bool) {
		if i >= len(items) {
			var zero T
			return zero, false
		}
		v := items[i]
		i++
		return v, true
	}
	Pipe(eng, next, body)
}
