package arena

import (
	"sync"
	"testing"
	"unsafe"
)

func base(b []byte) uintptr {
	return uintptr(unsafe.Pointer(unsafe.SliceData(b[:1])))
}

func TestGetAlignmentAndCapacity(t *testing.T) {
	a := New(true)
	for _, n := range []int{1, 255, 256, 257, 4096, 16<<10 + 1, 1 << 20} {
		r := a.Get(n)
		if len(r.B) != 0 {
			t.Errorf("Get(%d): len %d, want 0", n, len(r.B))
		}
		if cap(r.B) < n {
			t.Errorf("Get(%d): cap %d < request", n, cap(r.B))
		}
		if base(r.B)%CacheLine != 0 {
			t.Errorf("Get(%d): base %#x not %d-aligned", n, base(r.B), CacheLine)
		}
		r.Release()
	}
	if live := a.Stats().LiveBytes; live != 0 {
		t.Errorf("LiveBytes %d after releasing everything, want 0", live)
	}
}

func TestRecycleSameStorage(t *testing.T) {
	a := New(true)
	r := a.Get(4096)
	p := base(r.B)
	r.Release()
	r2 := a.Get(4096)
	if base(r2.B) != p {
		t.Errorf("recycled Get returned different storage: %#x vs %#x", base(r2.B), p)
	}
	s := a.Stats()
	if s.Misses != 1 {
		t.Errorf("Misses = %d, want 1 (second Get must hit the pool)", s.Misses)
	}
	if s.RecycledBytes == 0 {
		t.Error("RecycledBytes = 0 after a pooled release")
	}
	r2.Release()
}

func TestDisabledArenaNeverRecycles(t *testing.T) {
	a := New(false)
	r := a.Get(4096)
	p := base(r.B)
	r.Release()
	r2 := a.Get(4096)
	defer r2.Release()
	if base(r2.B) == p {
		t.Error("disabled arena recycled storage")
	}
	s := a.Stats()
	if s.RecycledBytes != 0 {
		t.Errorf("disabled arena RecycledBytes = %d, want 0", s.RecycledBytes)
	}
	if s.Misses != 2 {
		t.Errorf("disabled arena Misses = %d, want 2", s.Misses)
	}
}

func TestLiveBytesGauge(t *testing.T) {
	a := New(true)
	r1 := a.Get(1000) // class 1024
	r2 := a.Get(5000) // class 8192
	if live := a.Stats().LiveBytes; live != 1024+8192 {
		t.Errorf("LiveBytes = %d, want %d", live, 1024+8192)
	}
	r1.Retain()
	r1.Release()
	if live := a.Stats().LiveBytes; live != 1024+8192 {
		t.Errorf("LiveBytes = %d after retain+release, want unchanged %d", live, 1024+8192)
	}
	r1.Release()
	r2.Release()
	if live := a.Stats().LiveBytes; live != 0 {
		t.Errorf("LiveBytes = %d after final releases, want 0", live)
	}
}

func TestGrownRegionRebuckets(t *testing.T) {
	a := New(true)
	r := a.Get(256)
	// Outgrow the class: append past capacity so the runtime reallocates.
	r.B = append(r.B[:0], make([]byte, 10000)...)
	grown := cap(r.B)
	wasAligned := base(r.B)%CacheLine == 0
	r.Release()
	s := a.Stats()
	if wasAligned {
		if s.RecycledBytes != int64(grown) {
			t.Errorf("RecycledBytes = %d, want grown capacity %d", s.RecycledBytes, grown)
		}
	} else if s.RecycledBytes != 0 {
		t.Errorf("misaligned grown storage must be dropped, but RecycledBytes = %d", s.RecycledBytes)
	}
	if s.LiveBytes != 0 {
		t.Errorf("LiveBytes = %d, want 0", s.LiveBytes)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	a := New(true)
	r := a.Get(64)
	r.Release()
	defer func() {
		if recover() == nil {
			t.Error("double Release did not panic")
		}
	}()
	r.Release()
}

func TestRetainAfterReleasePanics(t *testing.T) {
	a := New(true)
	r := a.Get(64)
	r.Release()
	defer func() {
		if recover() == nil {
			t.Error("Retain after Release did not panic")
		}
	}()
	r.Retain()
}

func TestDebugUseAfterRelease(t *testing.T) {
	prev := SetDebug(true)
	defer SetDebug(prev)
	a := New(true)
	r := a.Get(64)
	copy(r.B[:8], "payload!")
	r.Release()
	defer func() {
		if recover() == nil {
			t.Error("Bytes on a released region did not panic under debug")
		}
	}()
	_ = r.Bytes()
}

func TestDebugPoisonOnRelease(t *testing.T) {
	prev := SetDebug(true)
	defer SetDebug(prev)
	a := New(true)
	r := a.Get(64)
	r.B = r.B[:64]
	for i := range r.B {
		r.B[i] = 0x42
	}
	keep := r.B // deliberate misuse: alias kept past the release
	r.Release()
	for i, v := range keep[:64] {
		if v != 0xDB {
			t.Fatalf("byte %d = %#x after release, want poison 0xDB", i, v)
		}
	}
}

func TestViewInt32RoundTrip(t *testing.T) {
	a := New(true)
	r := a.Get(1024)
	defer r.Release()
	xs := View[int32](r, 256)
	if len(xs) != 256 {
		t.Fatalf("len = %d, want 256", len(xs))
	}
	for i := range xs {
		xs[i] = int32(i * 3)
	}
	ys := View[int32](r, 256)
	for i := range ys {
		if ys[i] != int32(i*3) {
			t.Fatalf("view not aliased: ys[%d] = %d", i, ys[i])
		}
	}
}

func TestViewOverflowPanics(t *testing.T) {
	a := New(true)
	r := a.Get(64)
	defer r.Release()
	defer func() {
		if recover() == nil {
			t.Error("oversized View did not panic")
		}
	}()
	_ = View[int64](r, 1<<20)
}

// TestConcurrentRetainRelease hammers one region's refcount from many
// goroutines under the race detector: every retain pairs with a release,
// the holder's own reference goes last, and the storage must recycle
// exactly once with the gauge back at zero.
func TestConcurrentRetainRelease(t *testing.T) {
	a := New(true)
	const goroutines, rounds = 8, 2000
	r := a.Get(4096)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		r.Retain() // hand one reference to each goroutine
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				r.Retain()
				_ = r.Bytes()
				r.Release()
			}
			r.Release() // drop the handed reference
		}()
	}
	wg.Wait()
	r.Release()
	if live := a.Stats().LiveBytes; live != 0 {
		t.Errorf("LiveBytes = %d after concurrent churn, want 0", live)
	}
	if puts := a.Stats().Puts; puts != 1 {
		t.Errorf("Puts = %d, want exactly 1 (single region)", puts)
	}
}

// TestConcurrentGetRelease churns checkouts across classes from many
// goroutines; the gauges must balance when everyone is done.
func TestConcurrentGetRelease(t *testing.T) {
	a := New(true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			sizes := []int{300, 4096, 100, 16 << 10}
			for i := 0; i < 3000; i++ {
				r := a.Get(sizes[(g+i)%len(sizes)])
				r.B = append(r.B, byte(i))
				r.Release()
			}
		}()
	}
	wg.Wait()
	s := a.Stats()
	if s.LiveBytes != 0 {
		t.Errorf("LiveBytes = %d, want 0", s.LiveBytes)
	}
	if s.Gets != s.Puts {
		t.Errorf("Gets %d != Puts %d after balanced churn", s.Gets, s.Puts)
	}
}
