// Package arena provides recycled, cache-line-aligned, reference-counted
// byte regions for pipeline stage payloads.
//
// The scheduler's own hot path is allocation-free, which makes the data
// plane the next throughput wall: a GB/s stream workload that allocates a
// fresh buffer per chunk, frame, or block spends its headroom in the
// allocator and the GC. An Arena recycles those buffers through power-of-2
// size-class pools instead, so the steady state of a pipeline performs
// near-zero heap allocations end-to-end.
//
// # Ownership model
//
// A Ref is a reference-counted handle on one region. Get returns a Ref
// holding one reference, owned by the acquiring stage. A payload flows
// through pipeline stages by hand-off: the producing stage calls Retain
// for every additional consumer it publishes the region to (e.g. the next
// iteration reading this iteration's output across a cross edge), and
// each consumer calls Release exactly once when it is done. The storage
// recycles when the count reaches zero. Within an iteration body, pair
// every Get/Retain with a deferred Release: pipeline cancellation and
// panic capture unwind iteration bodies through ordinary panic
// propagation, so deferred releases are what keep an aborted pipeline
// from leaking regions (the leak-check tests assert LiveBytes drains to
// zero after cancellation storms). The arenaref analyzer (internal/lint,
// `go run ./cmd/piperlint`) enforces the deferred-Release pairing and
// flags straight-line use after Release; an intentional exception is
// annotated //piper:allow-ref with a reason.
//
// # Invariants
//
//   - Retain may only be called while holding a reference; retaining a
//     released region panics.
//   - Release more times than Get+Retain panics (double release).
//   - The region's bytes may be read or written only while holding a
//     reference. The checked Bytes accessor enforces this when the debug
//     mode is on; the exported B field is the unchecked hot-path view.
//
// Regions handed out by Get are aligned to a cache-line boundary, so
// adjacent regions never false-share and SIMD-friendly layouts hold.
// A region grown past its capacity (via append on B) re-buckets into the
// class matching its new capacity on release, unless the runtime's
// reallocation lost the alignment, in which case it is dropped for the
// GC rather than poisoning the pool's guarantee.
package arena

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"
)

// CacheLine is the alignment of every region handed out by Get.
const CacheLine = 64

const (
	// minClassBits..maxClassBits bound the size classes: 256 B to 64 MiB.
	minClassBits = 8
	maxClassBits = 26
	numClasses   = maxClassBits - minClassBits + 1
)

// debugChecks gates the misuse-detection paths (use-after-release checks
// in Bytes and release-time poisoning). Package-level so tests flip it
// without threading a flag through every Get; off in production, where
// the refcount under/overflow panics remain as the always-on guard.
var debugChecks atomic.Bool

// SetDebug toggles the debug misuse checks: Bytes panics on a released
// region and Release poisons the region's prefix before recycling, so a
// use-after-release reads a recognizable 0xDB pattern instead of silently
// observing the next owner's data. Returns the previous setting.
func SetDebug(on bool) bool { return debugChecks.Swap(on) }

// Arena is a set of per-size-class region pools with usage gauges. An
// Arena is safe for concurrent use; the intended deployment is one Arena
// per Engine, shared by every pipeline the engine runs.
//
// A disabled Arena (New(false)) keeps the full Ref API and the LiveBytes
// gauge — so ownership discipline stays testable — but never recycles:
// Get always allocates and Release hands the storage to the GC. This is
// the ablation configuration for measuring what recycling buys.
type Arena struct {
	enabled bool
	classes [numClasses]sync.Pool // *Ref with storage of at least the class size
	spare   sync.Pool             // *Ref handles without storage (oversize / disabled)

	live     atomic.Int64 // bytes currently checked out (charged capacity)
	recycled atomic.Int64 // bytes returned to a class pool over the lifetime
	gets     atomic.Int64
	puts     atomic.Int64
	misses   atomic.Int64 // Gets not served from a class pool
}

// New returns an Arena. enabled=false yields the no-recycling ablation
// arena described on the type.
func New(enabled bool) *Arena { return &Arena{enabled: enabled} }

// Enabled reports whether the arena recycles storage.
func (a *Arena) Enabled() bool { return a.enabled }

// Counters is a snapshot of the arena gauges.
type Counters struct {
	// LiveBytes is the capacity currently checked out: charged at Get,
	// discharged at the final Release. Zero on an idle arena — the leak
	// invariant the pipeline teardown paths are tested against.
	LiveBytes int64
	// RecycledBytes accumulates the capacity of every region returned to
	// a class pool (zero on a disabled arena).
	RecycledBytes int64
	// Gets, Puts and Misses count region checkouts, returns-to-pool, and
	// checkouts that had to allocate fresh storage.
	Gets, Puts, Misses int64
}

// Stats returns a snapshot of the arena gauges.
func (a *Arena) Stats() Counters {
	return Counters{
		LiveBytes:     a.live.Load(),
		RecycledBytes: a.recycled.Load(),
		Gets:          a.gets.Load(),
		Puts:          a.puts.Load(),
		Misses:        a.misses.Load(),
	}
}

// Ref is a reference-counted handle on one arena region.
//
// B is the region's byte slice: length 0 and capacity at least the
// requested size immediately after Get. Stages use it directly —
// appending, reslicing, or writing in place — and may store a grown
// slice back; the final Release re-buckets the storage by its capacity.
// B must only be touched while the holder's reference is live.
type Ref struct {
	B []byte

	a      *Arena
	charge int64 // live-bytes charged at Get; discharged at final Release
	refs   atomic.Int32
}

// classFor returns the size-class index covering a request of n bytes,
// or -1 when n exceeds the largest class (oversize requests bypass the
// pools).
func classFor(n int) int {
	if n <= 1<<minClassBits {
		return 0
	}
	c := bits.Len(uint(n-1)) - minClassBits
	if c >= numClasses {
		return -1
	}
	return c
}

// classSize is the capacity of class c regions.
func classSize(c int) int { return 1 << (minClassBits + c) }

// alignedMake allocates a fresh cache-line-aligned byte slice of the
// given capacity (length 0, capacity exactly size).
func alignedMake(size int) []byte {
	raw := make([]byte, size+CacheLine-1)
	off := 0
	if rem := int(uintptr(unsafe.Pointer(unsafe.SliceData(raw))) & (CacheLine - 1)); rem != 0 {
		off = CacheLine - rem
	}
	return raw[off : off : off+size]
}

// aligned reports whether b's base address sits on a cache-line boundary.
func aligned(b []byte) bool {
	if cap(b) == 0 {
		return false
	}
	return uintptr(unsafe.Pointer(unsafe.SliceData(b[:1])))&(CacheLine-1) == 0
}

// Get checks out a region of capacity at least n (n <= 0 is treated as a
// minimum-class request). The returned Ref holds one reference, owned by
// the caller; B has length 0.
func (a *Arena) Get(n int) *Ref {
	a.gets.Add(1)
	c := classFor(n)
	var r *Ref
	if a.enabled && c >= 0 {
		if v := a.classes[c].Get(); v != nil {
			r = v.(*Ref)
		}
	}
	if r == nil {
		a.misses.Add(1)
		if v := a.spare.Get(); v != nil {
			r = v.(*Ref)
		} else {
			r = &Ref{}
		}
		size := n
		if c >= 0 {
			size = classSize(c)
		}
		r.B = alignedMake(size)
	}
	r.a = a
	r.charge = int64(cap(r.B))
	r.refs.Store(1)
	a.live.Add(r.charge)
	return r
}

// Retain adds one reference for a consumer the region is being handed to.
// It returns r for call chaining. Retaining a region whose references
// already reached zero panics: the storage may have been recycled.
func (r *Ref) Retain() *Ref {
	if r.refs.Add(1) <= 1 {
		panic("arena: Retain of a released region")
	}
	return r
}

// Release drops one reference. When the last reference goes, the storage
// returns to its size-class pool (or to the GC on a disabled arena or
// for oversize/misaligned storage). Releasing more times than the region
// was acquired and retained panics.
func (r *Ref) Release() {
	n := r.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("arena: double Release")
	}
	a := r.a
	a.live.Add(-r.charge)
	b := r.B
	r.B = nil
	r.a = nil
	r.charge = 0
	if debugChecks.Load() {
		poison(b)
	}
	// Re-bucket by current capacity: a grown region recycles into the
	// class its storage now fills. Storage that grew past the largest
	// class, or whose reallocation lost the cache-line alignment, is
	// dropped — the pools only ever serve aligned regions.
	if c := putClassFor(cap(b)); a.enabled && c >= 0 && aligned(b) {
		r.B = b[:0]
		a.puts.Add(1)
		a.recycled.Add(int64(cap(b)))
		a.classes[c].Put(r)
		return
	}
	a.spare.Put(r)
}

// putClassFor returns the largest class whose size fits within a capacity
// of n bytes, or -1 when n is below the smallest class.
func putClassFor(n int) int {
	if n < 1<<minClassBits {
		return -1
	}
	c := bits.Len(uint(n)) - 1 - minClassBits
	if c >= numClasses {
		c = numClasses - 1
	}
	return c
}

// Bytes is the checked accessor for the region's contents: identical to
// reading B, but with the debug mode on it panics if the caller no longer
// holds a live reference.
func (r *Ref) Bytes() []byte {
	if debugChecks.Load() && r.refs.Load() <= 0 {
		panic("arena: Bytes on a released region")
	}
	return r.B
}

// Refs reports the current reference count; for tests and diagnostics.
func (r *Ref) Refs() int { return int(r.refs.Load()) }

// poison overwrites the region's prefix with a recognizable pattern so a
// use-after-release reads garbage deterministically instead of the next
// owner's data.
func poison(b []byte) {
	b = b[:cap(b)]
	n := len(b)
	if n > 4*CacheLine {
		n = 4 * CacheLine
	}
	for i := 0; i < n; i++ {
		b[i] = 0xDB
	}
}

// View reinterprets the region's storage as a []T of length and capacity
// n, for payloads that are typed records rather than raw bytes (e.g. the
// int32 scratch arrays of a suffix sorter, or factor lists). T must be a
// pointer-free type — the storage is untyped bytes, invisible to the GC
// as pointers — and n*sizeof(T) must fit the region's capacity. The view
// aliases the region: it is valid only while the caller holds a live
// reference.
func View[T any](r *Ref, n int) []T {
	var t T
	size, align := int(unsafe.Sizeof(t)), int(unsafe.Alignof(t))
	if size == 0 || n == 0 {
		return make([]T, n)
	}
	b := r.Bytes()
	if n*size > cap(b) {
		panic(fmt.Sprintf("arena: View of %d×%dB exceeds region capacity %d", n, size, cap(b)))
	}
	base := unsafe.Pointer(unsafe.SliceData(b[:1]))
	if uintptr(base)&uintptr(align-1) != 0 {
		panic("arena: region storage misaligned for View element type")
	}
	return unsafe.Slice((*T)(base), n)
}
