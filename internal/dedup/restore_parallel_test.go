package dedup

import (
	"bytes"
	"testing"

	"piper"
)

func TestRestorePiperRoundTrip(t *testing.T) {
	data := testData(21, 512<<10, 0.4)
	var arch bytes.Buffer
	if err := CompressSerial(data, &arch); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 4} {
		eng := piper.NewEngine(piper.Workers(p))
		got, err := RestorePiper(eng, 4*p, arch.Bytes())
		eng.Close()
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("P=%d: parallel restore mismatch", p)
		}
	}
}

func TestRestorePiperMatchesSerialRestore(t *testing.T) {
	data := testData(22, 256<<10, 0.6)
	var arch bytes.Buffer
	if err := CompressSerial(data, &arch); err != nil {
		t.Fatal(err)
	}
	want, err := Restore(arch.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	eng := piper.NewEngine(piper.Workers(4))
	defer eng.Close()
	got, err := RestorePiper(eng, 16, arch.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("parallel and serial restore differ")
	}
}

func TestRestorePiperRejectsCorruption(t *testing.T) {
	data := testData(23, 128<<10, 0.2)
	var arch bytes.Buffer
	if err := CompressSerial(data, &arch); err != nil {
		t.Fatal(err)
	}
	eng := piper.NewEngine(piper.Workers(2))
	defer eng.Close()
	if _, err := RestorePiper(eng, 8, []byte("junkjunkjunk")); err == nil {
		t.Error("bad magic accepted")
	}
	b := append([]byte{}, arch.Bytes()...)
	b[len(b)/2] ^= 0x55
	if restored, err := RestorePiper(eng, 8, b); err == nil && bytes.Equal(restored, data) {
		t.Error("corrupted archive restored to identical data")
	}
	if _, err := RestorePiper(eng, 8, arch.Bytes()[:20]); err == nil {
		t.Error("truncated archive accepted")
	}
}

func TestParseRecordsCounts(t *testing.T) {
	block := testData(24, 32<<10, 0)
	data := bytes.Repeat(block, 4) // heavy duplication
	var arch bytes.Buffer
	if err := CompressSerial(data, &arch); err != nil {
		t.Fatal(err)
	}
	recs, total, err := parseRecords(arch.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if total != uint64(len(data)) {
		t.Fatalf("total = %d, want %d", total, len(data))
	}
	var uniq, refs int
	for _, r := range recs {
		if r.kind == recUnique {
			uniq++
		} else {
			refs++
		}
	}
	if refs == 0 {
		t.Fatal("expected duplicate references in a repeated stream")
	}
	if uniq == 0 {
		t.Fatal("expected unique chunks")
	}
}
