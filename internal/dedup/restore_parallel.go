package dedup

import (
	"bytes"
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"piper"
)

// rawRecord is one parsed archive record before decompression.
type rawRecord struct {
	kind     byte
	rawLen   int
	comp     []byte // aliases the archive for unique records
	sum      [sha1.Size]byte
	refIndex int64

	// raw is filled by the decompression stage for unique records.
	raw []byte
	err error
}

// parseRecords scans an archive into records without decompressing,
// returning the records and the recorded total size.
func parseRecords(archive []byte) ([]*rawRecord, uint64, error) {
	if !bytes.HasPrefix(archive, archiveMagic) {
		return nil, 0, errors.New("dedup: bad archive magic")
	}
	r := bytes.NewReader(archive[len(archiveMagic):])
	base := len(archiveMagic)
	var recs []*rawRecord
	for {
		kind, err := r.ReadByte()
		if err != nil {
			return nil, 0, fmt.Errorf("dedup: truncated archive: %w", err)
		}
		switch kind {
		case recUnique:
			rawLen, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, 0, err
			}
			compLen, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, 0, err
			}
			off := base + int(r.Size()) - r.Len()
			if off+int(compLen)+sha1.Size > len(archive) {
				return nil, 0, errors.New("dedup: truncated chunk")
			}
			rec := &rawRecord{
				kind:   recUnique,
				rawLen: int(rawLen),
				comp:   archive[off : off+int(compLen)],
			}
			if _, err := r.Seek(int64(compLen), io.SeekCurrent); err != nil {
				return nil, 0, err
			}
			if _, err := io.ReadFull(r, rec.sum[:]); err != nil {
				return nil, 0, err
			}
			recs = append(recs, rec)
		case recRef:
			idx, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, 0, err
			}
			recs = append(recs, &rawRecord{kind: recRef, refIndex: int64(idx)})
		case recEnd:
			total, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, 0, err
			}
			return recs, total, nil
		default:
			return nil, 0, fmt.Errorf("dedup: unknown record kind 0x%02x", kind)
		}
	}
}

// RestorePiper restores an archive with a pipeline: a serial stage feeds
// records, a parallel stage inflates and SHA-1-verifies unique chunks
// (the compute-heavy part), and a serial in-order stage resolves
// duplicate references against earlier chunks and assembles the output.
func RestorePiper(eng *piper.Engine, k int, archive []byte) ([]byte, error) {
	recs, total, err := parseRecords(archive)
	if err != nil {
		return nil, err
	}
	var (
		out      bytes.Buffer
		uniques  [][]byte
		firstErr error
	)
	out.Grow(int(total))
	i := 0
	piper.PipeThrottled(eng, k, func() (*rawRecord, bool) {
		if i >= len(recs) {
			return nil, false
		}
		rec := recs[i]
		i++
		return rec, true
	}, func(it *piper.Iter, rec *rawRecord) {
		it.Continue(1) // parallel: inflate + verify
		if rec.kind == recUnique {
			raw, err := inflate(rec.comp, rec.rawLen)
			switch {
			case err != nil:
				rec.err = err
			case sha1.Sum(raw) != rec.sum:
				rec.err = errors.New("dedup: SHA-1 mismatch")
			default:
				rec.raw = raw
			}
		}

		it.Wait(2) // serial: ordered assembly
		if firstErr != nil {
			return
		}
		switch rec.kind {
		case recUnique:
			if rec.err != nil {
				firstErr = rec.err
				return
			}
			uniques = append(uniques, rec.raw)
			out.Write(rec.raw)
		case recRef:
			if rec.refIndex >= int64(len(uniques)) {
				firstErr = fmt.Errorf("dedup: dangling chunk reference %d", rec.refIndex)
				return
			}
			out.Write(uniques[rec.refIndex])
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if uint64(out.Len()) != total {
		return nil, fmt.Errorf("dedup: size mismatch: got %d, recorded %d", out.Len(), total)
	}
	return out.Bytes(), nil
}
