package dedup

import (
	"crypto/sha1"
	"io"
	"sync"

	"piper"
	"piper/internal/arena"
	"piper/internal/bindstage"
	"piper/internal/tbbpipe"
)

// task carries one chunk through the pipeline stages.
type task struct {
	rec   Record
	chunk []byte
	// buf is the arena region backing rec.Compressed on the piper
	// pipeline; nil for duplicates and on the non-arena executors.
	buf *arena.Ref
}

// taskPool recycles task headers across iterations; the piper pipeline
// returns each task at the end of its body (after the serial write
// stage, when nothing references it anymore).
var taskPool = sync.Pool{New: func() any { return new(task) }}

// compressBound is a safe output-capacity hint for deflating n bytes:
// deflate's stored-block worst case adds ~5 bytes per 64KiB window plus
// a small header, so n plus a 1/16 margin and a constant always fits.
func compressBound(n int) int { return n + n>>4 + 64 }

// dupTable maps SHA-1 sums to unique-chunk indices. It is only touched
// from the serial deduplicate stage, so it needs no lock under any of the
// executors (serial stages are single-threaded and ordered in all four).
type dupTable struct {
	m    map[[sha1.Size]byte]int64
	next int64
}

func newDupTable() *dupTable {
	return &dupTable{m: make(map[[sha1.Size]byte]int64)}
}

// classify assigns t its dedup verdict: either a reference to an earlier
// unique chunk or a fresh unique index.
func (d *dupTable) classify(t *task) {
	t.rec.Sum = sha1.Sum(t.chunk)
	if idx, ok := d.m[t.rec.Sum]; ok {
		t.rec.Dup = true
		t.rec.RefIndex = idx
		return
	}
	d.m[t.rec.Sum] = d.next
	t.rec.RefIndex = d.next
	d.next++
}

// CompressSerial is the reference single-threaded implementation (TS in
// the paper's tables).
func CompressSerial(data []byte, out io.Writer) error {
	aw := NewWriter(out)
	table := newDupTable()
	c := NewChunker(data)
	var seq int64
	for {
		chunk := c.Next()
		if chunk == nil {
			break
		}
		t := &task{chunk: chunk}
		t.rec.Seq = seq
		t.rec.RawLen = len(chunk)
		seq++
		table.classify(t)
		if !t.rec.Dup {
			t.rec.Compressed = Compress(chunk)
		}
		aw.WriteRecord(&t.rec)
	}
	return aw.Close()
}

// CompressPiper runs the SSPS pipe_while of Figure 4 on a PIPER engine:
// stage 0 reads and chunks, stage 1 (serial, pipe_wait) deduplicates,
// stage 2 (parallel, pipe_continue) compresses, stage 3 (serial,
// pipe_wait) writes the archive.
//
// The data plane is arena-backed: chunks alias the input, each unique
// chunk's deflate stream lands in a region checked out of the engine's
// arena in the parallel stage, and the region releases after the serial
// write stage copied it out — via defer, so cancellation or a panic
// unwinding the body cannot leak it. Steady state allocates nothing per
// chunk.
func CompressPiper(eng *piper.Engine, k int, data []byte, out io.Writer) error {
	aw := NewWriter(out)
	table := newDupTable()
	c := NewChunker(data)
	a := eng.Arena()
	var seq int64
	piper.PipeThrottled(eng, k, func() ([]byte, bool) {
		chunk := c.Next()
		return chunk, chunk != nil
	}, func(it *piper.Iter, chunk []byte) {
		t := taskPool.Get().(*task)
		t.chunk = chunk
		t.rec = Record{Seq: seq, RawLen: len(chunk)}
		seq++
		defer func() {
			if t.buf != nil {
				t.buf.Release()
				t.buf = nil
			}
			t.chunk = nil
			t.rec = Record{}
			taskPool.Put(t)
		}()

		it.Wait(1) // serial: deduplicate
		table.classify(t)

		it.Continue(2) // parallel: compress
		if !t.rec.Dup {
			t.buf = a.Get(compressBound(len(t.chunk)))
			t.buf.B = CompressInto(t.buf.B, t.chunk)
			t.rec.Compressed = t.buf.B
		}

		it.Wait(3) // serial: write
		aw.WriteRecord(&t.rec)
	})
	return aw.Close()
}

// CompressBindStage is the Pthreads-style bind-to-stage implementation:
// one thread each for the serial stages, q threads for compression, with
// bounded queues of capacity queueCap.
func CompressBindStage(data []byte, q, queueCap int, out io.Writer) error {
	aw := NewWriter(out)
	table := newDupTable()
	c := NewChunker(data)
	var seq int64
	p := bindstage.New(queueCap).
		AddSerial(func(v any) any { // deduplicate
			t := v.(*task)
			table.classify(t)
			return t
		}).
		AddParallel(q, func(v any) any { // compress
			t := v.(*task)
			if !t.rec.Dup {
				t.rec.Compressed = Compress(t.chunk)
			}
			return t
		}).
		AddSerial(func(v any) any { return v }) // write happens in sink
	p.Run(func() (any, bool) {
		chunk := c.Next()
		if chunk == nil {
			return nil, false
		}
		t := &task{chunk: chunk}
		t.rec.Seq = seq
		t.rec.RawLen = len(chunk)
		seq++
		return t, true
	}, func(v any) {
		aw.WriteRecord(&v.(*task).rec)
	})
	return aw.Close()
}

// CompressTBB is the construct-and-run token-pipeline implementation.
func CompressTBB(data []byte, workers, tokens int, out io.Writer) error {
	aw := NewWriter(out)
	table := newDupTable()
	c := NewChunker(data)
	var seq int64
	p := tbbpipe.New().
		Add(tbbpipe.SerialInOrder, func(v any) any { // deduplicate
			t := v.(*task)
			table.classify(t)
			return t
		}).
		Add(tbbpipe.ParallelMode, func(v any) any { // compress
			t := v.(*task)
			if !t.rec.Dup {
				t.rec.Compressed = Compress(t.chunk)
			}
			return t
		})
	p.Run(workers, tokens, func() (any, bool) {
		chunk := c.Next()
		if chunk == nil {
			return nil, false
		}
		t := &task{chunk: chunk}
		t.rec.Seq = seq
		t.rec.RawLen = len(chunk)
		seq++
		return t, true
	}, func(v any) {
		aw.WriteRecord(&v.(*task).rec)
	})
	return aw.Close()
}
