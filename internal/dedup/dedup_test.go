package dedup

import (
	"bytes"
	"testing"
	"testing/quick"

	"piper"
	"piper/internal/workload"
)

func testData(seed uint64, size int, dupRatio float64) []byte {
	return workload.TextStream(seed, size, 4096, dupRatio)
}

func TestChunkerCoversStream(t *testing.T) {
	data := testData(1, 256<<10, 0.3)
	chunks := ChunkAll(data)
	var total int
	for _, c := range chunks {
		total += len(c)
		if len(c) == 0 {
			t.Fatal("empty chunk")
		}
		if len(c) > maxChunk {
			t.Fatalf("chunk of %d exceeds max %d", len(c), maxChunk)
		}
	}
	if total != len(data) {
		t.Fatalf("chunks cover %d bytes of %d", total, len(data))
	}
	var rejoined []byte
	for _, c := range chunks {
		rejoined = append(rejoined, c...)
	}
	if !bytes.Equal(rejoined, data) {
		t.Fatal("chunk concatenation differs from input")
	}
}

// TestChunkerContentDefined: inserting a prefix shifts chunk boundaries
// only locally; most chunk content reappears identically.
func TestChunkerContentDefined(t *testing.T) {
	base := testData(2, 128<<10, 0)
	shifted := append(append([]byte{}, testData(3, 3000, 0)...), base...)
	sums := func(chunks [][]byte) map[string]bool {
		m := make(map[string]bool)
		for _, c := range chunks {
			m[string(c)] = true
		}
		return m
	}
	a := sums(ChunkAll(base))
	b := sums(ChunkAll(shifted))
	common := 0
	for k := range a {
		if b[k] {
			common++
		}
	}
	if frac := float64(common) / float64(len(a)); frac < 0.5 {
		t.Fatalf("only %.0f%% of chunks survived a prefix shift; boundaries are not content-defined", frac*100)
	}
}

func TestChunkerExpectedSize(t *testing.T) {
	data := testData(4, 1<<20, 0)
	chunks := ChunkAll(data)
	mean := len(data) / len(chunks)
	if mean < 1024 || mean > 16384 {
		t.Fatalf("mean chunk size %d outside sane range", mean)
	}
}

func TestSerialRoundTrip(t *testing.T) {
	data := testData(5, 512<<10, 0.4)
	var arch bytes.Buffer
	if err := CompressSerial(data, &arch); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(arch.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored, data) {
		t.Fatal("round trip mismatch")
	}
	if arch.Len() >= len(data) {
		t.Fatalf("no compression: archive %d >= input %d", arch.Len(), len(data))
	}
}

func TestDuplicatesDetected(t *testing.T) {
	// A stream that repeats one block many times must dedup well.
	block := testData(6, 64<<10, 0)
	data := bytes.Repeat(block, 8)
	var arch bytes.Buffer
	if err := CompressSerial(data, &arch); err != nil {
		t.Fatal(err)
	}
	// With 8x duplication the archive should be far below 1/4 the input.
	if arch.Len() > len(data)/4 {
		t.Fatalf("duplicate elimination ineffective: %d of %d", arch.Len(), len(data))
	}
	restored, err := Restore(arch.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored, data) {
		t.Fatal("round trip mismatch")
	}
}

// TestAllExecutorsProduceIdenticalArchives is the cross-executor oracle:
// piper, bind-to-stage, and TBB must emit byte-identical archives to the
// serial implementation.
func TestAllExecutorsProduceIdenticalArchives(t *testing.T) {
	data := testData(7, 768<<10, 0.35)
	var want bytes.Buffer
	if err := CompressSerial(data, &want); err != nil {
		t.Fatal(err)
	}

	eng := piper.NewEngine(piper.Workers(4))
	defer eng.Close()
	var gotPiper bytes.Buffer
	if err := CompressPiper(eng, 16, data, &gotPiper); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotPiper.Bytes(), want.Bytes()) {
		t.Error("piper archive differs from serial")
	}

	var gotBind bytes.Buffer
	if err := CompressBindStage(data, 4, 16, &gotBind); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBind.Bytes(), want.Bytes()) {
		t.Error("bind-to-stage archive differs from serial")
	}

	var gotTBB bytes.Buffer
	if err := CompressTBB(data, 4, 16, &gotTBB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotTBB.Bytes(), want.Bytes()) {
		t.Error("TBB archive differs from serial")
	}
}

func TestPiperRoundTripWorkerSweep(t *testing.T) {
	data := testData(8, 256<<10, 0.5)
	for _, p := range []int{1, 2, 8} {
		eng := piper.NewEngine(piper.Workers(p))
		var arch bytes.Buffer
		if err := CompressPiper(eng, 4*p, data, &arch); err != nil {
			t.Fatal(err)
		}
		eng.Close()
		restored, err := Restore(arch.Bytes())
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if !bytes.Equal(restored, data) {
			t.Fatalf("P=%d: round trip mismatch", p)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(seed uint64, sizeRaw uint16, dupRaw uint8) bool {
		size := int(sizeRaw)%(128<<10) + 1024
		dup := float64(dupRaw%80) / 100
		data := testData(seed, size, dup)
		var arch bytes.Buffer
		if err := CompressSerial(data, &arch); err != nil {
			return false
		}
		restored, err := Restore(arch.Bytes())
		if err != nil {
			return false
		}
		return bytes.Equal(restored, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsCorruption(t *testing.T) {
	data := testData(9, 64<<10, 0.2)
	var arch bytes.Buffer
	if err := CompressSerial(data, &arch); err != nil {
		t.Fatal(err)
	}
	b := arch.Bytes()
	if _, err := Restore(b[:10]); err == nil {
		t.Error("truncated archive restored without error")
	}
	if _, err := Restore([]byte("NOTANARCHIVE")); err == nil {
		t.Error("bad magic accepted")
	}
	// Flip a byte inside a compressed region.
	mut := append([]byte{}, b...)
	mut[len(mut)/2] ^= 0xff
	if restored, err := Restore(mut); err == nil && bytes.Equal(restored, data) {
		t.Error("corrupted archive restored to identical data")
	}
}
