// Package dedup reproduces the PARSEC dedup kernel: content-defined
// chunking, SHA-1 duplicate elimination, per-chunk compression, and an
// archive format with a full restore path. The pipeline is the SSPS shape
// of Figure 4 in the paper: serial read/chunk, serial deduplicate,
// parallel compress, serial write.
package dedup

import "piper/internal/workload"

// Chunking parameters: content-defined boundaries with an expected chunk
// size of 4KiB, bounded to [1KiB, 16KiB].
const (
	chunkMask  = 0x0fff // expected size 4096
	chunkMagic = 0x078d
	minChunk   = 1 << 10
	maxChunk   = 16 << 10
	windowSize = 48
)

// gearTable drives the rolling hash; filled deterministically at init.
var gearTable [256]uint64

func init() {
	r := workload.NewRNG(0x9d0f_5a2e_11c3_77bd)
	for i := range gearTable {
		gearTable[i] = r.Uint64()
	}
}

// Chunker splits a byte stream into content-defined chunks using a gear
// rolling hash (a simplification of dedup's Rabin fingerprinting with the
// same content-defined property: boundaries depend only on local content,
// so identical regions chunk identically wherever they appear).
type Chunker struct {
	data []byte
	off  int
}

// NewChunker returns a chunker over data.
func NewChunker(data []byte) *Chunker {
	return &Chunker{data: data}
}

// Next returns the next chunk, or nil when the stream is exhausted. The
// returned slice aliases the input.
func (c *Chunker) Next() []byte {
	if c.off >= len(c.data) {
		return nil
	}
	start := c.off
	end := boundary(c.data[start:])
	c.off = start + end
	return c.data[start:c.off]
}

// Offset reports how many bytes have been consumed.
func (c *Chunker) Offset() int { return c.off }

// boundary returns the length of the chunk starting at p[0].
func boundary(p []byte) int {
	if len(p) <= minChunk {
		return len(p)
	}
	limit := len(p)
	if limit > maxChunk {
		limit = maxChunk
	}
	var h uint64
	for i := 0; i < limit; i++ {
		h = h<<1 + gearTable[p[i]]
		if i >= minChunk && h&chunkMask == chunkMagic {
			return i + 1
		}
	}
	return limit
}

// ChunkAll splits data into all its chunks; mainly for tests and the
// serial baseline.
func ChunkAll(data []byte) [][]byte {
	var out [][]byte
	c := NewChunker(data)
	for {
		ch := c.Next()
		if ch == nil {
			return out
		}
		out = append(out, ch)
	}
}
