package dedup

import (
	"bytes"
	"compress/flate"
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Archive format:
//
//	magic "PDAR1\x00"
//	records:
//	  0x00 unique: uvarint rawLen, uvarint compLen, compLen bytes, 20-byte SHA-1
//	  0x01 ref:    uvarint chunkIndex (index among unique+ref records so far
//	               is NOT used; the index counts unique chunks only)
//	  0xFF end:    uvarint total raw size
var archiveMagic = []byte("PDAR1\x00")

const (
	recUnique = 0x00
	recRef    = 0x01
	recEnd    = 0xFF
)

// Record is one archive entry produced by the pipeline's final stage.
type Record struct {
	// Seq is the chunk's position in the input stream.
	Seq int64
	// Dup marks a duplicate chunk; RefIndex identifies the unique chunk
	// it repeats.
	Dup      bool
	RefIndex int64
	// RawLen is the chunk's uncompressed length.
	RawLen int
	// Compressed holds the deflate stream for unique chunks.
	Compressed []byte
	// Sum is the chunk's SHA-1.
	Sum [sha1.Size]byte
}

// Writer serializes records to an archive stream. It must be driven from
// a single (serial) pipeline stage, in sequence order.
type Writer struct {
	w       io.Writer
	err     error
	scratch [binary.MaxVarintLen64]byte
	kind    [1]byte // record-kind byte, kept off the heap
	total   int64
	uniques int64
}

// NewWriter writes the archive header.
func NewWriter(w io.Writer) *Writer {
	aw := &Writer{w: w}
	_, aw.err = w.Write(archiveMagic)
	return aw
}

func (aw *Writer) uvarint(v uint64) {
	if aw.err != nil {
		return
	}
	n := binary.PutUvarint(aw.scratch[:], v)
	_, aw.err = aw.w.Write(aw.scratch[:n])
}

func (aw *Writer) kindByte(k byte) {
	aw.kind[0] = k
	_, aw.err = aw.w.Write(aw.kind[:])
}

// WriteRecord appends one record.
func (aw *Writer) WriteRecord(r *Record) {
	if aw.err != nil {
		return
	}
	aw.total += int64(r.RawLen)
	if r.Dup {
		aw.kindByte(recRef)
		aw.uvarint(uint64(r.RefIndex))
		return
	}
	aw.kindByte(recUnique)
	aw.uvarint(uint64(r.RawLen))
	aw.uvarint(uint64(len(r.Compressed)))
	if aw.err == nil {
		_, aw.err = aw.w.Write(r.Compressed)
	}
	if aw.err == nil {
		_, aw.err = aw.w.Write(r.Sum[:])
	}
	aw.uniques++
}

// Close writes the end record and reports any accumulated error.
func (aw *Writer) Close() error {
	if aw.err != nil {
		return aw.err
	}
	aw.kindByte(recEnd)
	aw.uvarint(uint64(aw.total))
	return aw.err
}

// Restore decompresses an archive back into the original stream,
// verifying each unique chunk's SHA-1.
func Restore(archive []byte) ([]byte, error) {
	if !bytes.HasPrefix(archive, archiveMagic) {
		return nil, errors.New("dedup: bad archive magic")
	}
	r := bytes.NewReader(archive[len(archiveMagic):])
	var out bytes.Buffer
	var uniques [][]byte
	for {
		kind, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("dedup: truncated archive: %w", err)
		}
		switch kind {
		case recUnique:
			rawLen, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			compLen, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			comp := make([]byte, compLen)
			if _, err := io.ReadFull(r, comp); err != nil {
				return nil, err
			}
			var sum [sha1.Size]byte
			if _, err := io.ReadFull(r, sum[:]); err != nil {
				return nil, err
			}
			raw, err := inflate(comp, int(rawLen))
			if err != nil {
				return nil, err
			}
			if sha1.Sum(raw) != sum {
				return nil, fmt.Errorf("dedup: SHA-1 mismatch in chunk %d", len(uniques))
			}
			uniques = append(uniques, raw)
			out.Write(raw)
		case recRef:
			idx, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			if idx >= uint64(len(uniques)) {
				return nil, fmt.Errorf("dedup: dangling chunk reference %d", idx)
			}
			out.Write(uniques[idx])
		case recEnd:
			total, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			if uint64(out.Len()) != total {
				return nil, fmt.Errorf("dedup: size mismatch: got %d, recorded %d", out.Len(), total)
			}
			return out.Bytes(), nil
		default:
			return nil, fmt.Errorf("dedup: unknown record kind 0x%02x", kind)
		}
	}
}

// compressor pairs a reusable deflate state with the append sink it
// writes into. flate.NewWriter allocates the full ~600KiB deflate state
// per call, which dominated the pipeline's allocation profile; Reset
// recycles it instead.
type compressor struct {
	fw   *flate.Writer
	sink sliceWriter
}

// sliceWriter is an io.Writer appending into a caller-provided slice.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

var compressorPool = sync.Pool{New: func() any {
	fw, err := flate.NewWriter(io.Discard, flate.BestSpeed)
	if err != nil {
		panic(err) // only fails for invalid levels
	}
	return &compressor{fw: fw}
}}

// CompressInto deflates chunk, appending the stream to dst (which may be
// nil or a recycled buffer resliced to length 0) and returning the grown
// slice. The deflate state is pooled across calls, so the steady state
// allocates nothing beyond dst growth.
func CompressInto(dst, chunk []byte) []byte {
	c := compressorPool.Get().(*compressor)
	c.sink.b = dst
	c.fw.Reset(&c.sink)
	if _, err := c.fw.Write(chunk); err != nil {
		panic(err) // sliceWriter cannot fail
	}
	if err := c.fw.Close(); err != nil {
		panic(err)
	}
	out := c.sink.b
	c.sink.b = nil // don't pin the caller's buffer in the pool
	compressorPool.Put(c)
	return out
}

// Compress deflates one chunk into a fresh buffer.
func Compress(chunk []byte) []byte {
	return CompressInto(nil, chunk)
}

func inflate(comp []byte, rawLen int) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(comp))
	defer fr.Close()
	raw := make([]byte, 0, rawLen)
	buf := bytes.NewBuffer(raw)
	if _, err := io.Copy(buf, fr); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
