package workload

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		n := 1 + r.Intn(50)
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestSplitDecorrelates(t *testing.T) {
	r := NewRNG(3)
	s := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream matched parent %d/100 draws", same)
	}
}

func TestBytesFillsEveryLength(t *testing.T) {
	r := NewRNG(5)
	for n := 0; n <= 33; n++ {
		p := make([]byte, n)
		r.Bytes(p)
		if n >= 16 {
			allZero := true
			for _, b := range p {
				if b != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				t.Fatalf("Bytes left a %d-byte buffer all zero", n)
			}
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHash64Mixes(t *testing.T) {
	if Hash64(1) == Hash64(2) {
		t.Fatal("Hash64 collision on adjacent inputs")
	}
	if Hash64(0) == 0 {
		t.Fatal("Hash64(0) should not be 0")
	}
}

func TestSpinReturnsWork(t *testing.T) {
	if Spin(0) == 0 {
		t.Fatal("Spin(0) should return the seed constant")
	}
	if Spin(10) == Spin(20) {
		t.Fatal("different unit counts should give different chains")
	}
}

func TestUnitsPerMicrosecondPositive(t *testing.T) {
	r := UnitsPerMicrosecond()
	if r <= 0 {
		t.Fatalf("rate = %d, want > 0", r)
	}
	if r2 := UnitsPerMicrosecond(); r2 != r {
		t.Fatalf("calibration not cached: %d then %d", r, r2)
	}
}

func TestTextStreamProperties(t *testing.T) {
	data := TextStream(1, 64<<10, 4096, 0.3)
	if len(data) != 64<<10 {
		t.Fatalf("len = %d, want %d", len(data), 64<<10)
	}
	again := TextStream(1, 64<<10, 4096, 0.3)
	if string(again) != string(data) {
		t.Fatal("TextStream not deterministic")
	}
	other := TextStream(2, 64<<10, 4096, 0.3)
	if string(other) == string(data) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestVectorDeterministic(t *testing.T) {
	a := Vector(12, 48)
	b := Vector(12, 48)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Vector not deterministic")
		}
	}
	if len(a) != 48 {
		t.Fatalf("dim = %d", len(a))
	}
}

func BenchmarkSpin1us(b *testing.B) {
	units := UnitsPerMicrosecond()
	for i := 0; i < b.N; i++ {
		spinSink.Add(Spin(units))
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += r.Uint64()
	}
	spinSink.Add(acc)
}
