package workload

import "io"

// StreamReader returns an io.Reader that produces size bytes of the same
// text-like distribution as TextStream — word-salad blocks with a
// controllable fraction of verbatim repeats — generated incrementally, so
// multi-GiB streams can be synthesized without ever materializing them.
// Memory use is O(blockSize · window): only a bounded ring of recent
// blocks is kept as the duplicate population (a sliding analogue of
// TextStream's unbounded block list).
//
// The byte sequence is a pure function of the arguments and independent
// of how the stream is chunked by Read calls, which is what lets a
// pipeline run and a serial reference run consume "the same file" from
// two independent readers.
func StreamReader(seed uint64, size int64, blockSize int, duplicateRatio float64) io.Reader {
	if blockSize <= 0 {
		blockSize = 4096
	}
	return &streamReader{
		rng:       NewRNG(seed),
		remaining: size,
		blockSize: blockSize,
		dup:       duplicateRatio,
	}
}

// streamWindow bounds the duplicate-candidate ring of StreamReader.
const streamWindow = 64

type streamReader struct {
	rng       *RNG
	remaining int64
	blockSize int
	dup       float64

	ring    [][]byte // up to streamWindow most recent fresh blocks
	next    int      // ring slot the next fresh block overwrites
	pending []byte   // generated, not yet consumed by Read
}

var streamWords = []string{
	"pipeline", "parallel", "stage", "iteration", "worker", "steal",
	"throttle", "frame", "cross", "edge", "span", "work", "deque",
	"node", "serial", "hybrid", "cilk", "piper", "fold", "enable",
}

func (s *streamReader) Read(p []byte) (int, error) {
	for len(s.pending) == 0 {
		if s.remaining <= 0 {
			return 0, io.EOF
		}
		s.pending = s.nextBlock()
	}
	n := copy(p, s.pending)
	s.pending = s.pending[n:]
	return n, nil
}

// nextBlock produces the next block of the stream, clipped to the bytes
// remaining. Duplicate blocks alias ring storage; Read only ever copies
// out of them.
func (s *streamReader) nextBlock() []byte {
	var b []byte
	if len(s.ring) > 0 && s.rng.Float64() < s.dup {
		b = s.ring[s.rng.Intn(len(s.ring))]
	} else {
		b = make([]byte, 0, s.blockSize+16)
		for len(b) < s.blockSize {
			w := streamWords[s.rng.Intn(len(streamWords))]
			b = append(b, w...)
			b = append(b, ' ')
			if s.rng.Intn(12) == 0 {
				b = append(b, '\n')
			}
		}
		if len(s.ring) < streamWindow {
			s.ring = append(s.ring, b)
		} else {
			s.ring[s.next] = b
			s.next = (s.next + 1) % streamWindow
		}
	}
	if int64(len(b)) > s.remaining {
		b = b[:s.remaining]
	}
	s.remaining -= int64(len(b))
	return b
}
