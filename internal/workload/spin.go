package workload

import (
	"sync/atomic"
	"time"
)

// Spin performs approximately units abstract work units of pure CPU work
// without touching shared memory. One unit is one iteration of a
// multiply-xor dependency chain, roughly 1–2ns on contemporary hardware.
// The return value defeats dead-code elimination; callers may ignore it or
// fold it into a checksum.
func Spin(units int64) uint64 {
	var x uint64 = 0x2545f4914f6cdd1d
	for i := int64(0); i < units; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

// spinSink prevents the calibration loop from being optimized away.
var spinSink atomic.Uint64

// calibratedUnitsPerMicro caches the measured spin rate.
var calibratedUnitsPerMicro atomic.Int64

// UnitsPerMicrosecond reports how many Spin units execute per microsecond
// on this machine, measuring once and caching the result. Benchmarks use it
// to express node weights in wall-clock terms comparable across hosts.
func UnitsPerMicrosecond() int64 {
	if v := calibratedUnitsPerMicro.Load(); v > 0 {
		return v
	}
	const probe = 1 << 21
	start := time.Now()
	spinSink.Add(Spin(probe))
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	rate := int64(float64(probe) / (float64(elapsed.Nanoseconds()) / 1e3))
	if rate < 1 {
		rate = 1
	}
	calibratedUnitsPerMicro.CompareAndSwap(0, rate)
	return calibratedUnitsPerMicro.Load()
}

// SpinMicros spins for approximately micros microseconds of CPU time.
func SpinMicros(micros int64) uint64 {
	return Spin(micros * UnitsPerMicrosecond())
}
