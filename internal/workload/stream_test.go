package workload

import (
	"bytes"
	"io"
	"testing"
)

// TestStreamReaderChunkingIndependent checks the property the streaming
// LZ tests lean on: the byte sequence is a pure function of the
// arguments, no matter how Read calls slice it up.
func TestStreamReaderChunkingIndependent(t *testing.T) {
	const size = 1 << 20
	ref, err := io.ReadAll(StreamReader(42, size, 4096, 0.4))
	if err != nil || len(ref) != size {
		t.Fatalf("reference read: %d bytes, %v", len(ref), err)
	}
	for _, chunk := range []int{1, 7, 4096, 65537} {
		r := StreamReader(42, size, 4096, 0.4)
		var got bytes.Buffer
		buf := make([]byte, chunk)
		if _, err := io.CopyBuffer(&got, struct{ io.Reader }{r}, buf); err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if !bytes.Equal(got.Bytes(), ref) {
			t.Fatalf("chunk=%d: stream differs from reference", chunk)
		}
	}
	// Different seeds must diverge (the generators are not degenerate).
	other, _ := io.ReadAll(StreamReader(43, size, 4096, 0.4))
	if bytes.Equal(other, ref) {
		t.Fatal("seeds 42 and 43 produced identical streams")
	}
}
