package workload

// TextStream generates size bytes of compressible pseudo-text built from a
// small word alphabet. The duplicateRatio in [0,1] controls how often a
// whole block is repeated verbatim from earlier in the stream, which gives
// the dedup substrate a controllable duplicate population.
func TextStream(seed uint64, size int, blockSize int, duplicateRatio float64) []byte {
	if blockSize <= 0 {
		blockSize = 4096
	}
	r := NewRNG(seed)
	words := []string{
		"pipeline", "parallel", "stage", "iteration", "worker", "steal",
		"throttle", "frame", "cross", "edge", "span", "work", "deque",
		"node", "serial", "hybrid", "cilk", "piper", "fold", "enable",
	}
	out := make([]byte, 0, size)
	var blocks [][]byte
	for len(out) < size {
		if len(blocks) > 0 && r.Float64() < duplicateRatio {
			b := blocks[r.Intn(len(blocks))]
			out = append(out, b...)
			continue
		}
		block := make([]byte, 0, blockSize)
		for len(block) < blockSize {
			w := words[r.Intn(len(words))]
			block = append(block, w...)
			block = append(block, ' ')
			if r.Intn(12) == 0 {
				block = append(block, '\n')
			}
		}
		blocks = append(blocks, block)
		out = append(out, block...)
	}
	return out[:size]
}

// Vector returns a deterministic pseudo-random feature vector of dim
// dimensions with approximately unit-normal entries.
func Vector(seed uint64, dim int) []float64 {
	r := NewRNG(seed)
	v := make([]float64, dim)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}
