// Package workload provides deterministic synthetic-workload primitives
// shared by the benchmark substrates: a fast splittable PRNG, calibrated
// spin-work tokens, and generators for structured test data.
//
// Everything in this package is deterministic given a seed, so pipeline
// outputs can be compared bit-for-bit across schedulers and worker counts.
package workload

// RNG is a splitmix64 pseudo-random number generator. It is tiny, fast,
// passes BigCrush, and — unlike math/rand's global source — is safe to
// embed one-per-goroutine without locking. The zero value is a valid
// generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Seed resets the generator state.
func (r *RNG) Seed(seed uint64) { r.state = seed }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudo-random int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns an approximately standard-normal variate using the
// sum of 8 uniforms (Irwin–Hall); good enough for synthetic data and much
// cheaper than Ziggurat.
func (r *RNG) NormFloat64() float64 {
	s := 0.0
	for i := 0; i < 8; i++ {
		s += r.Float64()
	}
	// Irwin-Hall with n=8 has mean 4 and variance 8/12.
	return (s - 4.0) / 0.8164965809277260
}

// Split returns a new RNG whose stream is decorrelated from r's.
// Used to hand independent streams to parallel workers.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0xd1b54a32d192ed03}
}

// Bytes fills p with pseudo-random bytes.
func (r *RNG) Bytes(p []byte) {
	i := 0
	for ; i+8 <= len(p); i += 8 {
		v := r.Uint64()
		p[i+0] = byte(v)
		p[i+1] = byte(v >> 8)
		p[i+2] = byte(v >> 16)
		p[i+3] = byte(v >> 24)
		p[i+4] = byte(v >> 32)
		p[i+5] = byte(v >> 40)
		p[i+6] = byte(v >> 48)
		p[i+7] = byte(v >> 56)
	}
	if i < len(p) {
		v := r.Uint64()
		for ; i < len(p); i++ {
			p[i] = byte(v)
			v >>= 8
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Hash64 mixes a single value through the splitmix64 finalizer. Useful for
// deriving per-index seeds without constructing an RNG.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
