package deque

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestInjectFIFO(t *testing.T) {
	q := NewInject[int](8)
	vals := make([]int, 20)
	for i := range vals {
		vals[i] = i
	}
	// Fill to capacity, drain, refill: exercises lap arithmetic.
	for lap := 0; lap < 3; lap++ {
		base := lap * 8
		for i := 0; i < 8; i++ {
			if !q.Offer(&vals[(base+i)%20]) {
				t.Fatalf("lap %d: Offer %d failed below capacity", lap, i)
			}
		}
		if q.Offer(&vals[0]) {
			t.Fatalf("lap %d: Offer succeeded on a full ring", lap)
		}
		for i := 0; i < 8; i++ {
			x := q.Poll()
			if x == nil || *x != vals[(base+i)%20] {
				t.Fatalf("lap %d: Poll %d = %v, want %d", lap, i, x, vals[(base+i)%20])
			}
		}
		if q.Poll() != nil {
			t.Fatalf("lap %d: Poll returned element from empty ring", lap)
		}
	}
}

func TestInjectCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{{0, 8}, {3, 8}, {8, 8}, {9, 16}, {100, 128}} {
		if got := NewInject[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("NewInject(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestInjectConcurrent hammers the ring from many producers and consumers
// and checks that every element is delivered exactly once.
func TestInjectConcurrent(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 4000
	)
	q := NewInject[int64](64)
	total := producers * perProd
	vals := make([]int64, total)
	for i := range vals {
		vals[i] = int64(i)
	}
	var seen = make([]atomic.Int32, total)
	var delivered atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				x := &vals[p*perProd+i]
				for !q.Offer(x) {
					runtime.Gosched() // full: wait for a consumer to drain
				}
			}
		}(p)
	}
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for delivered.Load() < int64(total) {
				if x := q.Poll(); x != nil {
					if seen[*x].Add(1) != 1 {
						t.Errorf("element %d delivered twice", *x)
					}
					delivered.Add(1)
				} else {
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	cwg.Wait()
	if got := delivered.Load(); got != int64(total) {
		t.Fatalf("delivered %d of %d elements", got, total)
	}
	if q.Len() != 0 {
		t.Fatalf("ring not empty after drain: Len=%d", q.Len())
	}
}

// TestInjectDrainRacesProducersAndConsumers models the elastic retire
// path: one goroutine repeatedly Drains the ring (the retiring owner
// transferring residuals) while producers keep Offering and a thief keeps
// Polling. Every element must be delivered exactly once, whether through
// the drain or the thief, and a final quiescent Drain must leave the ring
// empty.
func TestInjectDrainRacesProducersAndConsumers(t *testing.T) {
	const (
		producers = 3
		perProd   = 3000
	)
	q := NewInject[int64](16) // small ring: drains and offers collide often
	total := producers * perProd
	vals := make([]int64, total)
	for i := range vals {
		vals[i] = int64(i)
	}
	var seen = make([]atomic.Int32, total)
	var delivered atomic.Int64
	deliver := func(x *int64) {
		if seen[*x].Add(1) != 1 {
			t.Errorf("element %d delivered twice", *x)
		}
		delivered.Add(1)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				x := &vals[p*perProd+i]
				for !q.Offer(x) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	stop := make(chan struct{})
	var cwg sync.WaitGroup
	cwg.Add(2)
	go func() { // the retiring owner: batch drains
		defer cwg.Done()
		for {
			q.Drain(deliver)
			select {
			case <-stop:
				q.Drain(deliver) // final sweep after producers stopped
				return
			default:
				runtime.Gosched()
			}
		}
	}()
	go func() { // the thief: single polls
		defer cwg.Done()
		for {
			if x := q.Poll(); x != nil {
				deliver(x)
				continue
			}
			select {
			case <-stop:
				return
			default:
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	close(stop)
	cwg.Wait()
	if got := delivered.Load(); got != int64(total) {
		t.Fatalf("delivered %d of %d elements across drain/poll races", got, total)
	}
	if q.Len() != 0 || q.Poll() != nil {
		t.Fatalf("ring not empty after the final drain: Len=%d", q.Len())
	}
}
