package deque

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"piper/internal/workload"
)

type item struct{ v int }

func TestPushPopLIFO(t *testing.T) {
	d := New[item](4)
	for i := 0; i < 100; i++ {
		d.Push(&item{i})
	}
	for i := 99; i >= 0; i-- {
		x := d.Pop()
		if x == nil || x.v != i {
			t.Fatalf("pop %d: got %v", i, x)
		}
	}
	if d.Pop() != nil {
		t.Fatal("pop from empty deque should be nil")
	}
}

func TestStealFIFO(t *testing.T) {
	d := New[item](4)
	for i := 0; i < 50; i++ {
		d.Push(&item{i})
	}
	for i := 0; i < 50; i++ {
		x := d.Steal()
		if x == nil || x.v != i {
			t.Fatalf("steal %d: got %v", i, x)
		}
	}
	if d.Steal() != nil {
		t.Fatal("steal from empty deque should be nil")
	}
	if d.Steals() != 50 {
		t.Fatalf("steals counter = %d, want 50", d.Steals())
	}
}

func TestGrowthPreservesOrder(t *testing.T) {
	d := New[item](2)
	const n = 10000
	for i := 0; i < n; i++ {
		d.Push(&item{i})
	}
	if d.Len() != n {
		t.Fatalf("len = %d, want %d", d.Len(), n)
	}
	// Alternate steal (front) and pop (back).
	front, back := 0, n-1
	for front <= back {
		if x := d.Steal(); x == nil || x.v != front {
			t.Fatalf("steal: got %v, want %d", x, front)
		}
		front++
		if front > back {
			break
		}
		if x := d.Pop(); x == nil || x.v != back {
			t.Fatalf("pop: got %v, want %d", x, back)
		}
		back--
	}
	if !d.Empty() {
		t.Fatalf("deque should be empty, len=%d", d.Len())
	}
}

func TestPopIf(t *testing.T) {
	d := New[item](4)
	d.Push(&item{1})
	d.Push(&item{2})
	// Predicate rejects 2: stays, nil returned.
	if x := d.PopIf(func(i *item) bool { return i.v == 1 }); x != nil {
		t.Fatalf("PopIf should have rejected tail, got %v", x)
	}
	if d.Len() != 2 {
		t.Fatalf("rejected element lost, len=%d", d.Len())
	}
	if x := d.PopIf(func(i *item) bool { return i.v == 2 }); x == nil || x.v != 2 {
		t.Fatalf("PopIf should accept tail, got %v", x)
	}
	if x := d.PopIf(func(i *item) bool { return true }); x == nil || x.v != 1 {
		t.Fatalf("got %v, want 1", x)
	}
	if x := d.PopIf(func(i *item) bool { return true }); x != nil {
		t.Fatalf("empty deque PopIf should be nil, got %v", x)
	}
}

// TestModelRandomOps compares the deque against a reference slice model
// under a random single-threaded op sequence.
func TestModelRandomOps(t *testing.T) {
	run := func(seed uint64) bool {
		r := workload.NewRNG(seed)
		d := New[item](2)
		var model []int
		next := 0
		for op := 0; op < 2000; op++ {
			switch r.Intn(3) {
			case 0: // push
				d.Push(&item{next})
				model = append(model, next)
				next++
			case 1: // pop
				x := d.Pop()
				if len(model) == 0 {
					if x != nil {
						return false
					}
				} else {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if x == nil || x.v != want {
						return false
					}
				}
			case 2: // steal (no concurrency, must succeed when non-empty)
				x := d.Steal()
				if len(model) == 0 {
					if x != nil {
						return false
					}
				} else {
					want := model[0]
					model = model[1:]
					if x == nil || x.v != want {
						return false
					}
				}
			}
		}
		return d.Len() == len(model)
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentNoLossNoDup hammers one owner against several thieves and
// verifies every pushed element is consumed exactly once.
func TestConcurrentNoLossNoDup(t *testing.T) {
	const (
		total   = 200000
		thieves = 3
	)
	d := New[item](8)
	var consumed [total]atomic.Int32
	var got atomic.Int64

	record := func(x *item) {
		if consumed[x.v].Add(1) != 1 {
			t.Errorf("element %d consumed twice", x.v)
		}
		got.Add(1)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if x := d.Steal(); x != nil {
					record(x)
					continue
				}
				select {
				case <-stop:
					// Drain whatever is left after the owner finished.
					for {
						x := d.Steal()
						if x == nil {
							return
						}
						record(x)
					}
				default:
				}
			}
		}()
	}

	// Owner: interleave pushes and pops.
	r := workload.NewRNG(99)
	for i := 0; i < total; i++ {
		d.Push(&item{i})
		if r.Intn(3) == 0 {
			if x := d.Pop(); x != nil {
				record(x)
			}
		}
	}
	for {
		x := d.Pop()
		if x == nil {
			break
		}
		record(x)
	}
	close(stop)
	wg.Wait()

	// Anything left was lost to races between our final owner drain and the
	// thieves' drains; sweep once more.
	for {
		x := d.Steal()
		if x == nil {
			break
		}
		record(x)
	}
	if got.Load() != total {
		t.Fatalf("consumed %d elements, want %d", got.Load(), total)
	}
}

func TestLenNeverNegative(t *testing.T) {
	d := New[item](4)
	d.Push(&item{1})
	d.Pop()
	d.Pop()
	if d.Len() != 0 {
		t.Fatalf("len = %d", d.Len())
	}
}

func BenchmarkPushPop(b *testing.B) {
	d := New[item](64)
	x := &item{1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Push(x)
		d.Pop()
	}
}

func BenchmarkStealUncontended(b *testing.B) {
	d := New[item](64)
	x := &item{1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Push(x)
		d.Steal()
	}
}
