package deque

import "sync/atomic"

// Inject is a bounded multi-producer multi-consumer FIFO ring (Vyukov's
// bounded MPMC queue). The engine shards root-frame injection across one
// Inject ring per worker, removing the global mutex from the injection
// path: producers (arbitrary goroutines calling PipeWhile) enqueue with
// one CAS on the tail, and any worker — the shard's owner in its fast
// path, or a thief sweeping victims — dequeues with one CAS on the head.
//
// Rings are never registered or deregistered at runtime, which is what
// makes the engine's elastic worker pool safe against in-flight steals: a
// retiring shard owner only flips a live flag that producers consult, the
// ring itself stays in the fixed slot array, and every thief's sweep keeps
// polling it. A producer that raced the flag flip and filled a dormant
// ring therefore publishes work that is still found through the ordinary
// paths; Drain below merely shortcuts that by letting the retiring owner
// hand its residue to the engine's overflow list immediately.
//
// Each cell carries a sequence number that encodes its state relative to
// the ring lap: seq == pos means "free for the producer at pos", seq ==
// pos+1 means "filled, free for the consumer at pos". The sequence store
// that publishes a cell is the release edge pairing with the consumer's
// acquire load, so the value field itself needs no atomics.
type Inject[T any] struct {
	enq   atomic.Uint64
	_pad0 [56]byte // keep producers and consumers off one cache line
	deq   atomic.Uint64
	_pad1 [56]byte
	mask  uint64
	cells []injectCell[T]
}

type injectCell[T any] struct {
	seq atomic.Uint64
	val *T
}

// NewInject returns an empty ring with capacity rounded up to a power of
// two (minimum 8).
func NewInject[T any](capacity int) *Inject[T] {
	c := uint64(8)
	for c < uint64(capacity) {
		c <<= 1
	}
	q := &Inject[T]{mask: c - 1, cells: make([]injectCell[T], c)}
	for i := range q.cells {
		q.cells[i].seq.Store(uint64(i))
	}
	return q
}

// Offer enqueues x, reporting false if the ring is full. Safe for any
// number of concurrent producers.
func (q *Inject[T]) Offer(x *T) bool {
	for {
		pos := q.enq.Load()
		c := &q.cells[pos&q.mask]
		seq := c.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if q.enq.CompareAndSwap(pos, pos+1) {
				c.val = x
				c.seq.Store(pos + 1)
				return true
			}
		case d < 0:
			return false // a full lap behind: ring is full
		default:
			// Lost a race with another producer; reload.
		}
	}
}

// Poll dequeues the oldest element, or nil if the ring is empty (or every
// filled cell is still being published). Safe for any number of
// concurrent consumers.
func (q *Inject[T]) Poll() *T {
	for {
		pos := q.deq.Load()
		c := &q.cells[pos&q.mask]
		seq := c.seq.Load()
		switch d := int64(seq) - int64(pos+1); {
		case d == 0:
			if q.deq.CompareAndSwap(pos, pos+1) {
				x := c.val
				c.val = nil
				// Free the cell for the producer one lap ahead.
				c.seq.Store(pos + q.mask + 1)
				return x
			}
		case d < 0:
			return nil // not yet filled: empty
		default:
			// Lost a race with another consumer; reload.
		}
	}
}

// Drain dequeues every element currently in the ring into fn and returns
// the count. It is just repeated Poll, so it is safe against concurrent
// producers and consumers; elements offered concurrently with the drain
// may remain behind (the caller's fallback paths must tolerate that).
func (q *Inject[T]) Drain(fn func(*T)) int {
	n := 0
	for {
		x := q.Poll()
		if x == nil {
			return n
		}
		fn(x)
		n++
	}
}

// Len reports the approximate number of queued elements; exact only when
// no concurrent operations are in flight.
func (q *Inject[T]) Len() int {
	n := int64(q.enq.Load()) - int64(q.deq.Load())
	if n < 0 {
		return 0
	}
	return int(n)
}

// Cap reports the ring's fixed capacity.
func (q *Inject[T]) Cap() int { return int(q.mask + 1) }
