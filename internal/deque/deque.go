// Package deque implements the dynamic circular work-stealing deque of
// Chase and Lev, the lock-free successor of the THE protocol used by
// Cilk-5's runtime. The owner worker pushes and pops at the bottom (tail);
// thieves steal from the top (head). All operations are non-blocking.
//
// Elements are pointers; a nil result means "empty" (or, for Steal,
// "lost the race — try elsewhere"), mirroring how PIPER's workers probe
// victims and move on.
package deque

import "sync/atomic"

const minCapacity = 16

// buffer is one immutable-capacity ring of slots. Slots are atomic so that
// a thief reading a stale ring never constitutes a data race; the Chase-Lev
// top CAS arbitrates ownership of the value itself.
type buffer[T any] struct {
	mask  int64
	slots []atomic.Pointer[T]
}

func newBuffer[T any](capacity int64) *buffer[T] {
	return &buffer[T]{
		mask:  capacity - 1,
		slots: make([]atomic.Pointer[T], capacity),
	}
}

func (b *buffer[T]) get(i int64) *T    { return b.slots[i&b.mask].Load() }
func (b *buffer[T]) put(i int64, x *T) { b.slots[i&b.mask].Store(x) }
func (b *buffer[T]) capacity() int64   { return b.mask + 1 }

// Deque is a work-stealing deque. The zero value is not ready for use;
// call New. Push and Pop must be called only by the owning worker;
// Steal may be called by any goroutine.
type Deque[T any] struct {
	top    atomic.Int64 // next index to steal from
	bottom atomic.Int64 // next index to push at
	buf    atomic.Pointer[buffer[T]]

	// steals counts successful steals from this deque, maintained by
	// thieves; exposed for scheduler statistics.
	steals atomic.Int64
}

// New returns an empty deque with at least the given initial capacity.
func New[T any](capacity int) *Deque[T] {
	c := int64(minCapacity)
	for c < int64(capacity) {
		c <<= 1
	}
	d := &Deque[T]{}
	d.buf.Store(newBuffer[T](c))
	return d
}

// Push adds x at the bottom (tail). Owner only.
func (d *Deque[T]) Push(x *T) {
	b := d.bottom.Load()
	t := d.top.Load()
	buf := d.buf.Load()
	if b-t >= buf.capacity() {
		buf = d.grow(buf, t, b)
	}
	buf.put(b, x)
	d.bottom.Store(b + 1)
}

// grow doubles the ring, copying live elements. Owner only.
func (d *Deque[T]) grow(old *buffer[T], t, b int64) *buffer[T] {
	bigger := newBuffer[T](old.capacity() * 2)
	for i := t; i < b; i++ {
		bigger.put(i, old.get(i))
	}
	d.buf.Store(bigger)
	return bigger
}

// Pop removes and returns the bottom (tail) element, or nil if the deque
// is empty or the last element was lost to a concurrent thief. Owner only.
func (d *Deque[T]) Pop() *T {
	b := d.bottom.Load() - 1
	buf := d.buf.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore bottom.
		d.bottom.Store(b + 1)
		return nil
	}
	x := buf.get(b)
	if t == b {
		// Last element: race thieves for it via the top CAS.
		if !d.top.CompareAndSwap(t, t+1) {
			x = nil // a thief won
		}
		d.bottom.Store(b + 1)
		return x
	}
	return x
}

// Steal removes and returns the top (head) element. It returns nil if the
// deque is empty or if the thief lost a race; callers treat both as "move
// to the next victim". Safe for concurrent use by any goroutine.
func (d *Deque[T]) Steal() *T {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	buf := d.buf.Load()
	x := buf.get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	d.steals.Add(1)
	return x
}

// PopIf pops the bottom element only when keep(x) reports true; otherwise
// the element is pushed back and PopIf returns nil. Owner only. This is
// how a frame's Sync drains its own not-yet-stolen children without
// disturbing deeper deque entries (ancestors, control frames).
func (d *Deque[T]) PopIf(keep func(*T) bool) *T {
	x := d.Pop()
	if x == nil {
		return nil
	}
	if keep(x) {
		return x
	}
	d.Push(x)
	return nil
}

// Len reports the approximate number of elements; exact only when no
// concurrent operations are in flight.
func (d *Deque[T]) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Empty reports whether the deque appears empty.
func (d *Deque[T]) Empty() bool { return d.Len() == 0 }

// Steals reports how many elements thieves have successfully stolen.
func (d *Deque[T]) Steals() int64 { return d.steals.Load() }
