package tbbpipe

import (
	"sync/atomic"
	"testing"
)

// Additional tests for the serial-gate machinery.

func TestMultipleSerialGates(t *testing.T) {
	const n = 400
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	var g1, g2 int64
	p := New().
		Add(SerialInOrder, func(v any) any {
			if int64(v.(int)) != g1 {
				t.Errorf("gate 1 out of order: %v after %d", v, g1)
			}
			g1++
			return v
		}).
		Add(ParallelMode, func(v any) any { return v }).
		Add(SerialInOrder, func(v any) any {
			if int64(v.(int)) != g2 {
				t.Errorf("gate 2 out of order: %v after %d", v, g2)
			}
			g2++
			return v
		})
	var count int
	p.Run(4, 8, sourceFrom(xs), func(any) { count++ })
	if count != n {
		t.Fatalf("count = %d", count)
	}
}

func TestSerialGateNeverConcurrent(t *testing.T) {
	const n = 300
	xs := make([]int, n)
	var inGate, peak atomic.Int64
	p := New().Add(SerialInOrder, func(v any) any {
		l := inGate.Add(1)
		for {
			pk := peak.Load()
			if l <= pk || peak.CompareAndSwap(pk, l) {
				break
			}
		}
		inGate.Add(-1)
		return v
	})
	p.Run(4, 8, sourceFrom(xs), func(any) {})
	if peak.Load() != 1 {
		t.Fatalf("serial gate admitted %d concurrent elements", peak.Load())
	}
}

func TestManyWorkersFewTokens(t *testing.T) {
	const n = 200
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	p := New().Add(ParallelMode, func(v any) any { return v.(int) + 1 })
	var got []int
	p.Run(8, 2, sourceFrom(xs), func(v any) { got = append(got, v.(int)) })
	if len(got) != n {
		t.Fatalf("got %d items", len(got))
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestZeroWorkerClamp(t *testing.T) {
	xs := []int{1, 2, 3}
	p := New().Add(ParallelMode, func(v any) any { return v })
	var count int
	p.Run(0, 0, sourceFrom(xs), func(any) { count++ }) // clamped to 1,1
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
}
