// Package tbbpipe implements a construct-and-run, bind-to-element
// pipeline in the style of Intel TBB's parallel_pipeline: the stage graph
// (filters and their serial/parallel modes) is fixed before execution, a
// token limit throttles the number of in-flight elements, and a pool of
// worker threads carries elements through consecutive filters, parking an
// element at a serial filter when it arrives out of order.
//
// This is the comparison baseline for Figures 6 and 7; its construct-and-
// run nature is exactly what makes x264 inexpressible in it (Section 10).
package tbbpipe

import (
	"runtime"
	"sync"
)

// Mode is a filter's concurrency mode.
type Mode int8

const (
	// SerialInOrder filters process elements one at a time, in input
	// order (TBB's serial_in_order).
	SerialInOrder Mode = iota
	// ParallelMode filters process any number of elements concurrently.
	ParallelMode
)

// Filter is one pipeline stage.
type Filter struct {
	Mode Mode
	// Fn transforms an element; a nil result drops the element.
	Fn func(v any) any
}

// token is an element travelling the pipeline.
type token struct {
	seq   int64
	v     any
	stage int
}

// serialGate sequences tokens through a SerialInOrder filter.
type serialGate struct {
	mu      sync.Mutex
	next    int64
	pending map[int64]*token
	busy    bool
}

// Pipeline is an immutable filter chain; build with Add, then Run.
type Pipeline struct {
	filters []Filter
}

// New returns an empty pipeline.
func New() *Pipeline { return &Pipeline{} }

// Add appends a filter.
func (p *Pipeline) Add(mode Mode, fn func(v any) any) *Pipeline {
	p.filters = append(p.filters, Filter{Mode: mode, Fn: fn})
	return p
}

// Run executes the pipeline with the given worker-thread count and token
// limit (TBB's max_number_of_live_tokens — the throttling analogue of
// PIPER's K). source is the input filter, executed serially in order;
// sink consumes survivors in order (attach it as a final SerialInOrder
// filter if ordering matters downstream; Run wires it that way).
func (p *Pipeline) Run(workers, maxTokens int, source func() (any, bool), sink func(any)) {
	if workers < 1 {
		workers = 1
	}
	if maxTokens < 1 {
		maxTokens = 1
	}
	filters := make([]Filter, 0, len(p.filters)+1)
	filters = append(filters, p.filters...)
	filters = append(filters, Filter{Mode: SerialInOrder, Fn: func(v any) any {
		sink(v)
		return nil
	}})

	e := &exec{
		filters: filters,
		gates:   make([]*serialGate, len(filters)),
		tokens:  make(chan struct{}, maxTokens),
		queue:   make(chan *token, maxTokens+workers),
		source:  source,
	}
	for i, f := range filters {
		if f.Mode == SerialInOrder {
			e.gates[i] = &serialGate{pending: make(map[int64]*token)}
		}
	}
	for i := 0; i < maxTokens; i++ {
		e.tokens <- struct{}{}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.worker()
		}()
	}
	wg.Wait()
}

type exec struct {
	filters []Filter
	gates   []*serialGate
	tokens  chan struct{}
	queue   chan *token

	srcMu   sync.Mutex
	source  func() (any, bool)
	srcSeq  int64
	srcDone bool

	quitMu    sync.Mutex
	liveCount int64
}

// nextInput pulls one element from the input filter under the source lock
// (input filters are serial in order in TBB).
func (e *exec) nextInput() (*token, bool) {
	e.srcMu.Lock()
	defer e.srcMu.Unlock()
	if e.srcDone {
		return nil, false
	}
	v, ok := e.source()
	if !ok {
		e.srcDone = true
		return nil, false
	}
	t := &token{seq: e.srcSeq, v: v}
	e.srcSeq++
	return t, true
}

func (e *exec) worker() {
	for {
		// Prefer queued (resumed) tokens over new input.
		select {
		case t := <-e.queue:
			e.advance(t)
			continue
		default:
		}
		select {
		case t := <-e.queue:
			e.advance(t)
		case <-e.tokens:
			t, ok := e.nextInput()
			if !ok {
				// Return the token and retire if the pipeline is dry.
				e.tokens <- struct{}{}
				if e.done() {
					return
				}
				// Other tokens are still in flight; help drain them.
				select {
				case t := <-e.queue:
					e.advance(t)
				default:
					runtime.Gosched()
				}
				continue
			}
			e.live(1)
			e.advance(t)
		}
	}
}

// live tracks in-flight tokens so workers know when the pipeline is dry.
func (e *exec) live(d int64) {
	e.quitMu.Lock()
	e.liveCount += d
	e.quitMu.Unlock()
}

// done reports whether input is exhausted and nothing is in flight.
func (e *exec) done() bool {
	e.quitMu.Lock()
	defer e.quitMu.Unlock()
	return e.srcExhausted() && e.liveCount == 0 && len(e.queue) == 0
}

func (e *exec) srcExhausted() bool {
	e.srcMu.Lock()
	defer e.srcMu.Unlock()
	return e.srcDone
}

// advance carries a token through filters until it finishes, is dropped,
// or parks at a busy/out-of-order serial filter.
func (e *exec) advance(t *token) {
	for t.stage < len(e.filters) {
		f := e.filters[t.stage]
		if f.Mode == ParallelMode {
			if t.v != nil {
				t.v = f.Fn(t.v)
			}
			// Dropped elements (v == nil) still pass the remaining serial
			// gates so that ordering is preserved.
			t.stage++
			continue
		}
		g := e.gates[t.stage]
		g.mu.Lock()
		if t.seq != g.next || g.busy {
			g.pending[t.seq] = t
			g.mu.Unlock()
			return // parked; the in-order predecessor will requeue it
		}
		g.busy = true
		g.mu.Unlock()

		if t.v != nil {
			t.v = f.Fn(t.v)
		}

		g.mu.Lock()
		g.next++
		g.busy = false
		nxt, ok := g.pending[g.next]
		if ok {
			delete(g.pending, g.next)
		}
		g.mu.Unlock()
		if ok {
			e.queue <- nxt
		}
		t.stage++
	}
	// Token retired: free a slot for new input.
	e.live(-1)
	e.tokens <- struct{}{}
}
