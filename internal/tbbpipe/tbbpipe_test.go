package tbbpipe

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"piper/internal/workload"
)

func sourceFrom(xs []int) func() (any, bool) {
	i := 0
	return func() (any, bool) {
		if i >= len(xs) {
			return nil, false
		}
		v := xs[i]
		i++
		return v, true
	}
}

func TestInOrderSink(t *testing.T) {
	const n = 1000
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	p := New().
		Add(ParallelMode, func(v any) any { return v.(int) * 2 }).
		Add(SerialInOrder, func(v any) any { return v })
	var got []int
	p.Run(4, 8, sourceFrom(xs), func(v any) { got = append(got, v.(int)) })
	if len(got) != n {
		t.Fatalf("got %d items, want %d", len(got), n)
	}
	for i, v := range got {
		if v != 2*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestTokenLimitThrottles(t *testing.T) {
	const n, maxTokens = 400, 3
	xs := make([]int, n)
	var live, peak atomic.Int64
	p := New().
		Add(ParallelMode, func(v any) any {
			l := live.Add(1)
			for {
				pk := peak.Load()
				if l <= pk || peak.CompareAndSwap(pk, l) {
					break
				}
			}
			live.Add(-1)
			return v
		})
	p.Run(4, maxTokens, sourceFrom(xs), func(any) {})
	if pk := peak.Load(); pk > maxTokens {
		t.Fatalf("observed %d concurrent tokens, limit %d", pk, maxTokens)
	}
}

func TestSerialStagesSequential(t *testing.T) {
	const n = 500
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	var seen int64
	p := New().
		Add(SerialInOrder, func(v any) any {
			if int64(v.(int)) != seen {
				t.Errorf("serial filter saw %v, want %d", v, seen)
			}
			seen++
			return v
		}).
		Add(ParallelMode, func(v any) any { return v })
	var count int
	p.Run(4, 6, sourceFrom(xs), func(any) { count++ })
	if count != n {
		t.Fatalf("count = %d", count)
	}
}

func TestDropsPreserveOrdering(t *testing.T) {
	const n = 300
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	p := New().Add(ParallelMode, func(v any) any {
		if v.(int)%3 != 0 {
			return nil
		}
		return v
	})
	var got []int
	p.Run(3, 5, sourceFrom(xs), func(v any) { got = append(got, v.(int)) })
	for i, v := range got {
		if v != 3*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestSingleWorkerSingleToken(t *testing.T) {
	xs := []int{5, 4, 3, 2, 1}
	p := New().Add(SerialInOrder, func(v any) any { return v.(int) * v.(int) })
	var got []int
	p.Run(1, 1, sourceFrom(xs), func(v any) { got = append(got, v.(int)) })
	want := []int{25, 16, 9, 4, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestEmptySource(t *testing.T) {
	p := New().Add(ParallelMode, func(v any) any { return v })
	ran := false
	p.Run(3, 4, func() (any, bool) { return nil, false }, func(any) { ran = true })
	if ran {
		t.Fatal("sink ran for empty source")
	}
}

func TestQuickCompleteness(t *testing.T) {
	prop := func(seed uint64, nRaw uint16, wRaw, tokRaw uint8) bool {
		n := int(nRaw%300) + 1
		workers := int(wRaw%6) + 1
		toks := int(tokRaw%8) + 1
		r := workload.NewRNG(seed)
		xs := r.Perm(n)
		p := New().
			Add(ParallelMode, func(v any) any { return v.(int) ^ 1 }).
			Add(SerialInOrder, func(v any) any { return v })
		var got []int
		p.Run(workers, toks, sourceFrom(xs), func(v any) { got = append(got, v.(int)) })
		if len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != xs[i]^1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
