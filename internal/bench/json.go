package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"testing"

	"piper"
	"piper/internal/dedup"
	"piper/internal/lz"
	"piper/internal/pipefib"
	"piper/internal/workload"
)

// JSONBenchmark is one machine-readable benchmark record, shaped so a
// driver can track the perf trajectory across PRs (BENCH_piper.json).
type JSONBenchmark struct {
	Name string `json:"name"`
	// N is the number of benchmark iterations testing.Benchmark settled on.
	N int `json:"n"`
	// NsPerOp is wall-clock nanoseconds per operation (one operation =
	// one full pipeline run, or one iteration for *PerIter benchmarks).
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp come from the runtime allocation
	// counters.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Steals, Parks, Wakes, PoolHits, PoolMisses, InlineIters,
	// Promotions, BatchedIters and BatchSplits are scheduler counter
	// deltas per operation, from Engine.Stats.
	Steals       float64 `json:"steals_per_op"`
	Parks        float64 `json:"parks_per_op"`
	Wakes        float64 `json:"wakes_per_op"`
	PoolHits     float64 `json:"pool_hits_per_op"`
	PoolMisses   float64 `json:"pool_misses_per_op"`
	InlineIters  float64 `json:"inline_iters_per_op"`
	Promotions   float64 `json:"promotions_per_op"`
	BatchedIters float64 `json:"batched_iters_per_op"`
	BatchSplits  float64 `json:"batch_splits_per_op"`
	// ArenaGets, ArenaMisses and ArenaRecycled are data-plane counter
	// deltas per operation: payload-region checkouts, checkouts that had
	// to allocate fresh storage, and bytes returned to the size-class
	// pools. A steady-state arena-backed workload shows Misses ≈ 0.
	ArenaGets     float64 `json:"arena_gets_per_op"`
	ArenaMisses   float64 `json:"arena_misses_per_op"`
	ArenaRecycled float64 `json:"arena_recycled_bytes_per_op"`
	// PlansCompiled and FusedStages are plan-compiler counter deltas per
	// operation: execution plans sealed and stage transitions fused away.
	// Zero on CompilePlans=false ablation rows.
	PlansCompiled float64 `json:"plans_compiled_per_op"`
	FusedStages   float64 `json:"fused_stages_per_op"`
}

// JSONReport is the top-level BENCH_piper.json document.
type JSONReport struct {
	GoMaxProcs int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	GoVersion  string          `json:"go_version"`
	Benchmarks []JSONBenchmark `json:"benchmarks"`
	// Curves holds the per-workload speedup curves of the scalability
	// sweep (piperbench -procs; see scale.go). Empty when no sweep ran.
	Curves []JSONCurve `json:"curves,omitempty"`
}

// SuiteConfig selects what a suite run measures. The zero value runs
// every flat benchmark row and no scalability sweep.
type SuiteConfig struct {
	// Filters restricts the flat rows to benchmarks whose name contains
	// any of the entries (all rows when empty).
	Filters []string
	// RealProcs and VirtProcs enable the scalability sweep: measured
	// GOMAXPROCS values and simulated virtual-schedule worker counts
	// (see SpeedupCurves). No curves are recorded when both are empty.
	RealProcs, VirtProcs []int
}

func (c SuiteConfig) matches(name string) bool {
	if len(c.Filters) == 0 {
		return true
	}
	for _, f := range c.Filters {
		if strings.Contains(name, f) {
			return true
		}
	}
	return false
}

// statDelta fills b with the scheduler counter deltas across a benchmark
// run, per operation.
func statDelta(b *JSONBenchmark, before, after piper.Stats, n int) {
	d := float64(n)
	b.Steals = float64(after.Steals-before.Steals) / d
	b.Parks = float64(after.Parks-before.Parks) / d
	b.Wakes = float64(after.Wakes-before.Wakes) / d
	b.PoolHits = float64(after.FramePoolHits-before.FramePoolHits) / d
	b.PoolMisses = float64(after.FramePoolMisses-before.FramePoolMisses) / d
	b.InlineIters = float64(after.InlineIterations-before.InlineIterations) / d
	b.Promotions = float64(after.Promotions-before.Promotions) / d
	b.BatchedIters = float64(after.BatchedIterations-before.BatchedIterations) / d
	b.BatchSplits = float64(after.BatchSplits-before.BatchSplits) / d
	b.ArenaGets = float64(after.ArenaGets-before.ArenaGets) / d
	b.ArenaMisses = float64(after.ArenaMisses-before.ArenaMisses) / d
	b.ArenaRecycled = float64(after.ArenaBytesRecycled-before.ArenaBytesRecycled) / d
	b.PlansCompiled = float64(after.PlansCompiled-before.PlansCompiled) / d
	b.FusedStages = float64(after.PlanFusedStages-before.PlanFusedStages) / d
}

// runJSONBench runs one benchmark body against a dedicated engine and
// collects the per-op record. perIter divides the measured costs by the
// number of pipeline iterations one op executes (0 means per-op
// reporting).
func runJSONBench(name string, perIter int, mkEngine func() *piper.Engine, body func(e *piper.Engine)) JSONBenchmark {
	e := mkEngine()
	defer e.Close()
	body(e) // warm pools and workers outside the measurement
	var before, after piper.Stats
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		// Snapshot inside the closure: testing.Benchmark invokes it
		// repeatedly while calibrating b.N, and r.N is only the final
		// round's count — a delta spanning the calibration rounds would
		// inflate every per-op counter.
		before = e.Stats()
		for i := 0; i < b.N; i++ {
			body(e)
		}
		after = e.Stats()
	})
	div := 1.0
	if perIter > 0 {
		div = float64(perIter)
	}
	b := JSONBenchmark{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.NsPerOp()) / div,
		AllocsPerOp: float64(r.AllocsPerOp()) / div,
		BytesPerOp:  float64(r.AllocedBytesPerOp()) / div,
	}
	statDelta(&b, before, after, r.N)
	for _, f := range []*float64{&b.Steals, &b.Parks, &b.Wakes, &b.PoolHits, &b.PoolMisses, &b.InlineIters, &b.Promotions, &b.BatchedIters, &b.BatchSplits, &b.ArenaGets, &b.ArenaMisses, &b.ArenaRecycled, &b.PlansCompiled, &b.FusedStages} {
		*f /= div
	}
	return b
}

// JSONSuite runs the machine-readable benchmark suite — scheduler
// microbenchmarks (per-iteration cost of the frame lifecycle: inline,
// promoted-coroutine ablation, pooled and unpooled) plus small
// end-to-end workloads and, when cfg asks for one, the scalability sweep
// — and writes the report to w as JSON. Filters restrict the suite to
// benchmarks whose name contains any entry (the CI regression smoke runs
// just the serial-overhead row this way).
func JSONSuite(w io.Writer, cfg SuiteConfig) error {
	const spsIters = 5000
	sps := func(e *piper.Engine) {
		i := 0
		e.PipeWhile(func() bool { return i < spsIters }, func(it *piper.Iter) {
			i++
			it.Continue(1)
			it.Wait(2)
		})
	}
	empty := func(e *piper.Engine) {
		i := 0
		e.PipeWhile(func() bool { return i < spsIters }, func(it *piper.Iter) { i++ })
	}
	fib := func(e *piper.Engine) { pipefib.Fine(e, 8, 1500) }
	data := workload.TextStream(1234, 1<<20, 4096, 0.35)
	dd := func(e *piper.Engine) { _ = dedup.CompressPiper(e, 8, data, io.Discard) }
	lzBody := func(e *piper.Engine) { _ = lz.Compress(e, 0, data, 16<<10) }
	// LZStream is the flagship throughput row: the streaming compressor
	// over an 8 MiB seeded synthetic stream in sparse mode (the GB-scale
	// configuration, scaled down to benchmark length — same pipeline
	// shape, same arena recycling, same nested block pipe).
	lzStream := func(e *piper.Engine) {
		in := workload.StreamReader(7, lzStreamCurveSize, 4096, 0.4)
		if _, err := lz.StreamCompress(e, io.Discard, in, lzStreamCurveOpts()); err != nil {
			panic(err)
		}
	}

	mk := func(p int, extra ...piper.Option) func() *piper.Engine {
		return func() *piper.Engine {
			return piper.NewEngine(append([]piper.Option{piper.Workers(p)}, extra...)...)
		}
	}

	type row struct {
		name     string
		perIter  int
		mkEngine func() *piper.Engine
		body     func(*piper.Engine)
	}
	rows := []row{
		{"SerialOverheadPerIter/P1", spsIters, mk(1), empty},
		{"SerialOverheadPerIter/P1/Grain=1", spsIters, mk(1, piper.Grain(1)), empty},
		{"SerialOverheadPerIter/P1/PoolFrames=false", spsIters, mk(1, piper.PoolFrames(false)), empty},
		{"SerialOverheadPerIter/P1/InlineFastPath=false", spsIters, mk(1, piper.InlineFastPath(false)), empty},
		// CompilePlans=false is the plan-compiler ablation pair for the two
		// guarded per-iteration rows: the default rows above run compiled,
		// these reproduce the interpreter-only baseline.
		{"SerialOverheadPerIter/P1/CompilePlans=false", spsIters, mk(1, piper.CompilePlans(false)), empty},
		{"SPSPerIter/P2/CompilePlans=false", spsIters, mk(2, piper.CompilePlans(false)), sps},
		// BatchedSerialOverhead pins the adaptive-grain configuration
		// explicitly (independent of engine defaults): the guarded metric
		// for the batching regression smoke.
		{"BatchedSerialOverhead/P1", spsIters, mk(1, piper.GrainMax(64)), empty},
		{"SPSPerIter/P2", spsIters, mk(2), sps},
		{"SPSPerIter/P2/Grain=1", spsIters, mk(2, piper.Grain(1)), sps},
		{"SPSPerIter/P2/PoolFrames=false", spsIters, mk(2, piper.PoolFrames(false)), sps},
		{"SPSPerIter/P2/InlineFastPath=false", spsIters, mk(2, piper.InlineFastPath(false)), sps},
		{"PipeFibFine/P2", 0, mk(2), fib},
		{"Dedup1MiB/P2", 0, mk(2), dd},
		{"LZFactor1MiB/P2", 0, mk(2), lzBody},
		{"LZStream8MiB/P2", 0, mk(2), lzStream},
	}

	rep := JSONReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	available := make([]string, 0, len(rows)+1)
	for _, r := range rows {
		available = append(available, r.name)
		if !cfg.matches(r.name) {
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, runJSONBench(r.name, r.perIter, r.mkEngine, r.body))
	}
	// The elasticity experiment reports a latency, not a per-op cost, so
	// it bypasses the testing.Benchmark harness (see elastic.go). Check
	// the filter before measuring: the CI smoke run filters to a single
	// microbenchmark and must not pay for burst rounds.
	available = append(available, elasticRowName)
	if cfg.matches(elasticRowName) {
		rep.Benchmarks = append(rep.Benchmarks, elasticScaleUpRow())
	}
	if len(rep.Benchmarks) == 0 {
		// A filter that matches nothing would silently write an empty
		// report — and a regression guard downstream would then fail on a
		// "missing benchmark" instead of the real mistake. Name the rows
		// so the caller can fix the filter.
		return fmt.Errorf("filters %q match no benchmarks; available: %s",
			cfg.Filters, strings.Join(available, ", "))
	}
	if len(cfg.RealProcs) > 0 || len(cfg.VirtProcs) > 0 {
		rep.Curves = SpeedupCurves(cfg.RealProcs, cfg.VirtProcs)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteJSONFile runs JSONSuite into path (conventionally
// BENCH_piper.json) under cfg.
func WriteJSONFile(path string, cfg SuiteConfig) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := JSONSuite(f, cfg); err != nil {
		f.Close()
		os.Remove(path) // don't leave a truncated report behind
		return err
	}
	return f.Close()
}

// loadBenchmark reads a JSONReport and finds the named benchmark row. A
// miss lists the rows the report does contain — the same affordance the
// suite's no-match filter error gives — because the common mistake is a
// renamed or newly added guard entry against a stale baseline (or a fresh
// run filtered down to a different row), and "not found" alone sends the
// caller off to re-run benchmarks instead of fixing the name.
func loadBenchmark(path, name string) (JSONBenchmark, error) {
	rep, err := loadReport(path)
	if err != nil {
		return JSONBenchmark{}, err
	}
	available := make([]string, 0, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		if b.Name == name {
			return b, nil
		}
		available = append(available, b.Name)
	}
	if len(available) == 0 {
		return JSONBenchmark{}, fmt.Errorf("benchmark %q not found in %s (report has no rows)", name, path)
	}
	return JSONBenchmark{}, fmt.Errorf("benchmark %q not found in %s; available: %s",
		name, path, strings.Join(available, ", "))
}

// loadReport reads and decodes one BENCH_piper.json document.
func loadReport(path string) (JSONReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return JSONReport{}, err
	}
	var rep JSONReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return JSONReport{}, err
	}
	return rep, nil
}

// metricOf extracts one guarded metric from a benchmark row by its JSON
// field name.
func metricOf(b JSONBenchmark, metric string) (float64, error) {
	switch metric {
	case "ns_per_op":
		return b.NsPerOp, nil
	case "allocs_per_op":
		return b.AllocsPerOp, nil
	case "bytes_per_op":
		return b.BytesPerOp, nil
	}
	return 0, fmt.Errorf("unknown guarded metric %q (want ns_per_op, allocs_per_op, or bytes_per_op)", metric)
}

// CheckRegression compares the named benchmark's ns_per_op between a
// freshly written report and a checked-in baseline, and returns an error
// if the fresh number is more than maxPct percent slower. Used by the CI
// benchmark-regression smoke step against BENCH_piper.json.
func CheckRegression(freshPath, baselinePath, name string, maxPct float64) error {
	return CheckMetricRegression(freshPath, baselinePath, name, "ns_per_op", maxPct, 0)
}

// CheckMetricRegression is CheckRegression generalized over the guarded
// metric (ns_per_op, allocs_per_op, or bytes_per_op): the fresh value
// must not exceed baseline·(1+maxPct/100) + slack. The absolute slack
// term exists for counting metrics — an arena-backed pipeline's
// allocs_per_op baseline sits near zero, where a pure percentage bound
// is degenerate (0 tolerates nothing; noise of ±a few allocations from
// pool warm-up would flap the guard).
func CheckMetricRegression(freshPath, baselinePath, name, metric string, maxPct, slack float64) error {
	fb, err := loadBenchmark(freshPath, name)
	if err != nil {
		return err
	}
	bb, err := loadBenchmark(baselinePath, name)
	if err != nil {
		return err
	}
	fv, err := metricOf(fb, metric)
	if err != nil {
		return err
	}
	bv, err := metricOf(bb, metric)
	if err != nil {
		return err
	}
	// A negative or NaN metric would make the bound arithmetic vacuous or
	// poisoned — real regressions would then pass silently. Refuse to
	// guard against garbage on either side instead. A zero is garbage for
	// ns_per_op (nothing runs in zero time: it means a missing row) but
	// legitimate for the counting metrics, where the slack term supplies
	// the tolerance a zero baseline needs. Note NaN fails every
	// comparison, so the checks must be written with negated comparisons.
	minValid := 0.0
	if metric == "ns_per_op" {
		minValid = 1 // decoded-as-zero missing rows must not pass
	}
	if !(bv >= minValid) || (bv == 0 && slack <= 0) {
		return fmt.Errorf("baseline %q has unusable %s %v (slack %v); regenerate %s", name, metric, bv, slack, baselinePath)
	}
	if !(fv >= minValid) {
		return fmt.Errorf("fresh report %q has unusable %s %v in %s", name, metric, fv, freshPath)
	}
	limit := bv*(1+maxPct/100) + slack
	if fv > limit {
		return fmt.Errorf("%s %s regressed: baseline %.1f, now %.1f, limit %.1f (+%.0f%% +%.0f)",
			name, metric, bv, fv, limit, maxPct, slack)
	}
	fmt.Printf("%s %s: %.1f vs baseline %.1f (limit %.1f)\n", name, metric, fv, bv, limit)
	return nil
}
