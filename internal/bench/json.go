package bench

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"testing"

	"piper"
	"piper/internal/dedup"
	"piper/internal/pipefib"
	"piper/internal/workload"
)

// JSONBenchmark is one machine-readable benchmark record, shaped so a
// driver can track the perf trajectory across PRs (BENCH_piper.json).
type JSONBenchmark struct {
	Name string `json:"name"`
	// N is the number of benchmark iterations testing.Benchmark settled on.
	N int `json:"n"`
	// NsPerOp is wall-clock nanoseconds per operation (one operation =
	// one full pipeline run, or one iteration for *PerIter benchmarks).
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp come from the runtime allocation
	// counters.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Steals, Parks, Wakes, PoolHits and PoolMisses are scheduler counter
	// deltas per operation, from Engine.Stats.
	Steals     float64 `json:"steals_per_op"`
	Parks      float64 `json:"parks_per_op"`
	Wakes      float64 `json:"wakes_per_op"`
	PoolHits   float64 `json:"pool_hits_per_op"`
	PoolMisses float64 `json:"pool_misses_per_op"`
}

// JSONReport is the top-level BENCH_piper.json document.
type JSONReport struct {
	GoMaxProcs int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	GoVersion  string          `json:"go_version"`
	Benchmarks []JSONBenchmark `json:"benchmarks"`
}

// statDelta captures counter deltas across a benchmark run.
func statDelta(before, after piper.Stats, n int) (steals, parks, wakes, hits, misses float64) {
	d := float64(n)
	return float64(after.Steals-before.Steals) / d,
		float64(after.Parks-before.Parks) / d,
		float64(after.Wakes-before.Wakes) / d,
		float64(after.FramePoolHits-before.FramePoolHits) / d,
		float64(after.FramePoolMisses-before.FramePoolMisses) / d
}

// runJSONBench runs one benchmark body against a dedicated engine and
// collects the per-op record. perIter divides the measured costs by the
// number of pipeline iterations one op executes (0 means per-op
// reporting).
func runJSONBench(name string, perIter int, mkEngine func() *piper.Engine, body func(e *piper.Engine)) JSONBenchmark {
	e := mkEngine()
	defer e.Close()
	body(e) // warm pools and workers outside the measurement
	var before, after piper.Stats
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		// Snapshot inside the closure: testing.Benchmark invokes it
		// repeatedly while calibrating b.N, and r.N is only the final
		// round's count — a delta spanning the calibration rounds would
		// inflate every per-op counter.
		before = e.Stats()
		for i := 0; i < b.N; i++ {
			body(e)
		}
		after = e.Stats()
	})
	div := 1.0
	if perIter > 0 {
		div = float64(perIter)
	}
	steals, parks, wakes, hits, misses := statDelta(before, after, r.N)
	return JSONBenchmark{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.NsPerOp()) / div,
		AllocsPerOp: float64(r.AllocsPerOp()) / div,
		BytesPerOp:  float64(r.AllocedBytesPerOp()) / div,
		Steals:      steals / div,
		Parks:       parks / div,
		Wakes:       wakes / div,
		PoolHits:    hits / div,
		PoolMisses:  misses / div,
	}
}

// JSONSuite runs the machine-readable benchmark suite: scheduler
// microbenchmarks (per-iteration cost of the frame lifecycle, pooled and
// unpooled) plus two small end-to-end workloads, and writes the report to
// w as JSON.
func JSONSuite(w io.Writer) error {
	const spsIters = 5000
	sps := func(e *piper.Engine) {
		i := 0
		e.PipeWhile(func() bool { return i < spsIters }, func(it *piper.Iter) {
			i++
			it.Continue(1)
			it.Wait(2)
		})
	}
	empty := func(e *piper.Engine) {
		i := 0
		e.PipeWhile(func() bool { return i < spsIters }, func(it *piper.Iter) { i++ })
	}
	fib := func(e *piper.Engine) { pipefib.Fine(e, 8, 1500) }
	data := workload.TextStream(1234, 1<<20, 4096, 0.35)
	dd := func(e *piper.Engine) { _ = dedup.CompressPiper(e, 8, data, io.Discard) }

	pooled := func(p int) func() *piper.Engine {
		return func() *piper.Engine { return piper.NewEngine(piper.Workers(p)) }
	}
	fresh := func(p int) func() *piper.Engine {
		return func() *piper.Engine { return piper.NewEngine(piper.Workers(p), piper.PoolFrames(false)) }
	}

	rep := JSONReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Benchmarks: []JSONBenchmark{
			runJSONBench("SerialOverheadPerIter/P1", spsIters, pooled(1), empty),
			runJSONBench("SerialOverheadPerIter/P1/PoolFrames=false", spsIters, fresh(1), empty),
			runJSONBench("SPSPerIter/P2", spsIters, pooled(2), sps),
			runJSONBench("SPSPerIter/P2/PoolFrames=false", spsIters, fresh(2), sps),
			runJSONBench("PipeFibFine/P2", 0, pooled(2), fib),
			runJSONBench("Dedup1MiB/P2", 0, pooled(2), dd),
		},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteJSONFile runs JSONSuite into path (conventionally
// BENCH_piper.json).
func WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := JSONSuite(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
