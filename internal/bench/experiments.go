package bench

import (
	"crypto/sha1"
	"fmt"
	"io"
	"time"

	"piper"
	"piper/internal/dag"
	"piper/internal/dedup"
	"piper/internal/ferret"
	"piper/internal/vidsim"
	"piper/internal/workload"
)

// SizeSpec scales experiments; Small keeps tests fast, Native approximates
// the paper's native-input workloads on a laptop-class machine.
type SizeSpec struct {
	FerretCorpus, FerretQueries, FerretImgW, FerretImgH int
	DedupBytes                                          int
	X264W, X264H, X264Frames                            int
	PipeFibN                                            int
	Reps                                                int
}

// Small is the CI-scale size.
func Small() SizeSpec {
	return SizeSpec{
		FerretCorpus: 200, FerretQueries: 80, FerretImgW: 32, FerretImgH: 32,
		DedupBytes: 1 << 20,
		X264W:      128, X264H: 64, X264Frames: 48,
		PipeFibN: 3000,
		Reps:     1,
	}
}

// Native is the full-scale size used for EXPERIMENTS.md.
func Native() SizeSpec {
	return SizeSpec{
		FerretCorpus: 1200, FerretQueries: 700, FerretImgW: 64, FerretImgH: 64,
		DedupBytes: 24 << 20,
		X264W:      320, X264H: 176, X264Frames: 120,
		PipeFibN: 12000,
		Reps:     3,
	}
}

// Fig6Ferret reproduces the ferret table: processing time, speedup over
// serial, and scalability for Cilk-P (piper), Pthreads (bind-to-stage,
// oversubscription Q=P), and TBB (token pipeline), with K = 10P.
func Fig6Ferret(w io.Writer, ps []int, sz SizeSpec) *Table {
	c := ferret.BuildCorpus(sz.FerretCorpus, sz.FerretImgW, sz.FerretImgH)
	qs := ferret.QuerySet{Offset: 1 << 20, N: sz.FerretQueries, TopK: 10}

	ts := bestOf(sz.Reps, func() { c.RunSerial(qs) })
	run := func(sys string, p int) time.Duration {
		switch sys {
		case "piper":
			eng := piper.NewEngine(piper.Workers(p))
			defer eng.Close()
			return bestOf(sz.Reps, func() { c.RunPiper(eng, 10*p, qs) })
		case "pthreads":
			return bestOf(sz.Reps, func() { c.RunBindStage(p, 10*p, qs) })
		default:
			return bestOf(sz.Reps, func() { c.RunTBB(p, 10*p, qs) })
		}
	}
	t1 := map[string]time.Duration{}
	for _, sys := range []string{"piper", "pthreads", "tbb"} {
		t1[sys] = run(sys, 1)
	}

	tbl := &Table{
		Title: fmt.Sprintf("Figure 6: ferret (corpus=%d queries=%d, K=10P), TS=%ss",
			sz.FerretCorpus, sz.FerretQueries, secs(ts)),
		Header: []string{"P",
			"CilkP-T", "Pthr-T", "TBB-T",
			"CilkP-Sp", "Pthr-Sp", "TBB-Sp",
			"CilkP-Sc", "Pthr-Sc", "TBB-Sc"},
	}
	for _, p := range ps {
		tp := map[string]time.Duration{}
		for _, sys := range []string{"piper", "pthreads", "tbb"} {
			if p == 1 {
				tp[sys] = t1[sys]
			} else {
				tp[sys] = run(sys, p)
			}
		}
		tbl.AddRow(fmt.Sprint(p),
			secs(tp["piper"]), secs(tp["pthreads"]), secs(tp["tbb"]),
			ratio(ts, tp["piper"]), ratio(ts, tp["pthreads"]), ratio(ts, tp["tbb"]),
			ratio(t1["piper"], tp["piper"]), ratio(t1["pthreads"], tp["pthreads"]), ratio(t1["tbb"], tp["tbb"]))
	}
	tbl.Notes = append(tbl.Notes,
		"Sp = TS/TP (speedup over serial); Sc = T1/TP (self-scalability)")
	if w != nil {
		tbl.Fprint(w)
	}
	return tbl
}

// Fig7Dedup reproduces the dedup table with K = 4P, plus the measured dag
// parallelism that explains the plateau (the paper's Cilkview reported
// 7.4 on the native input).
func Fig7Dedup(w io.Writer, ps []int, sz SizeSpec) *Table {
	data := workload.TextStream(1234, sz.DedupBytes, 4096, 0.35)
	sink := func(f func(io.Writer)) time.Duration {
		return bestOf(sz.Reps, func() { f(io.Discard) })
	}
	ts := sink(func(out io.Writer) { _ = dedup.CompressSerial(data, out) })

	run := func(sys string, p int) time.Duration {
		switch sys {
		case "piper":
			eng := piper.NewEngine(piper.Workers(p))
			defer eng.Close()
			return sink(func(out io.Writer) { _ = dedup.CompressPiper(eng, 4*p, data, out) })
		case "pthreads":
			return sink(func(out io.Writer) { _ = dedup.CompressBindStage(data, p, 4*p, out) })
		default:
			return sink(func(out io.Writer) { _ = dedup.CompressTBB(data, p, 4*p, out) })
		}
	}
	t1 := map[string]time.Duration{}
	for _, sys := range []string{"piper", "pthreads", "tbb"} {
		t1[sys] = run(sys, 1)
	}

	tbl := &Table{
		Title: fmt.Sprintf("Figure 7: dedup (%d MiB, K=4P), TS=%ss",
			sz.DedupBytes>>20, secs(ts)),
		Header: []string{"P",
			"CilkP-T", "Pthr-T", "TBB-T",
			"CilkP-Sp", "Pthr-Sp", "TBB-Sp",
			"CilkP-Sc", "Pthr-Sc", "TBB-Sc"},
	}
	for _, p := range ps {
		tp := map[string]time.Duration{}
		for _, sys := range []string{"piper", "pthreads", "tbb"} {
			if p == 1 {
				tp[sys] = t1[sys]
			} else {
				tp[sys] = run(sys, p)
			}
		}
		tbl.AddRow(fmt.Sprint(p),
			secs(tp["piper"]), secs(tp["pthreads"]), secs(tp["tbb"]),
			ratio(ts, tp["piper"]), ratio(ts, tp["pthreads"]), ratio(ts, tp["tbb"]),
			ratio(t1["piper"], tp["piper"]), ratio(t1["pthreads"], tp["pthreads"]), ratio(t1["tbb"], tp["tbb"]))
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("measured dag parallelism of this input: %.1f (paper's Cilkview reported 7.4 on native)",
			dedupMeasuredParallelism(data)),
		fmt.Sprintf("stage-weight model estimate: %.1f", dedupParallelism(data)))
	if w != nil {
		tbl.Fprint(w)
	}
	return tbl
}

// dedupMeasuredParallelism profiles the actual dedup pipe_while with the
// scheduler's work/span instrumentation — the direct Cilkview analogue.
func dedupMeasuredParallelism(data []byte) float64 {
	// Profile serially: wall-clock node timing is only faithful without
	// CPU contention (Cilkview also measures a serial execution).
	eng := piper.NewEngine(piper.Workers(1))
	defer eng.Close()
	chunker := dedup.NewChunker(data)
	aw := dedup.NewWriter(io.Discard)
	table := newDedupProfileTable()
	var seq int64
	rep := piper.ProfilePipe(eng, 64, func() ([]byte, bool) {
		c := chunker.Next()
		return c, c != nil
	}, func(it *piper.Iter, chunk []byte) {
		rec := &dedup.Record{Seq: seq, RawLen: len(chunk)}
		seq++
		it.Wait(1)
		table.classify(rec, chunk)
		it.Continue(2)
		if !rec.Dup {
			rec.Compressed = dedup.Compress(chunk)
		}
		it.Wait(3)
		aw.WriteRecord(rec)
	})
	return rep.Parallelism()
}

// dedupProfileTable mirrors the serial dedup stage's duplicate table for
// the profiling run.
type dedupProfileTable struct {
	m    map[[sha1.Size]byte]int64
	next int64
}

func newDedupProfileTable() *dedupProfileTable {
	return &dedupProfileTable{m: make(map[[sha1.Size]byte]int64)}
}

func (d *dedupProfileTable) classify(rec *dedup.Record, chunk []byte) {
	rec.Sum = sha1.Sum(chunk)
	if idx, ok := d.m[rec.Sum]; ok {
		rec.Dup = true
		rec.RefIndex = idx
		return
	}
	d.m[rec.Sum] = d.next
	rec.RefIndex = d.next
	d.next++
}

// dedupParallelism estimates the SSPS dag parallelism from measured
// per-stage costs on a sample of the input (the Cilkview analogue).
func dedupParallelism(data []byte) float64 {
	chunks := dedup.ChunkAll(data)
	if len(chunks) == 0 {
		return 1
	}
	sample := chunks
	if len(sample) > 64 {
		sample = sample[:64]
	}
	// Measure stage weights in microseconds on the sample.
	tSha := timeIt(func() {
		for _, c := range sample {
			shaSinkVar = sha1.Sum(c)
		}
	})
	tComp := timeIt(func() {
		for _, c := range sample {
			compSink = dedup.Compress(c)
		}
	})
	wSha := tSha.Microseconds()/int64(len(sample)) + 1
	wComp := tComp.Microseconds()/int64(len(sample)) + 1
	p := dag.SSPS(len(chunks), 1, wSha, wComp, 1)
	return p.Parallelism()
}

// Sinks defeat dead-code elimination in the sampling loops.
var (
	shaSinkVar [sha1.Size]byte
	compSink   []byte
)

// Fig8X264 reproduces the x264 table (Cilk-P vs Pthreads, K = 4P).
func Fig8X264(w io.Writer, ps []int, sz SizeSpec) *Table {
	video := vidsim.Generate(777, sz.X264W, sz.X264H, sz.X264Frames, sz.X264Frames/3)
	cfg := vidsim.DefaultConfig()
	ts := bestOf(sz.Reps, func() { vidsim.EncodeSerial(video, cfg) })

	run := func(sys string, p int) time.Duration {
		if sys == "piper" {
			eng := piper.NewEngine(piper.Workers(p))
			defer eng.Close()
			return bestOf(sz.Reps, func() { vidsim.EncodePiper(eng, 4*p, video, cfg) })
		}
		return bestOf(sz.Reps, func() { vidsim.EncodeThreads(video, cfg, p) })
	}
	t1 := map[string]time.Duration{"piper": run("piper", 1), "pthreads": run("pthreads", 1)}

	tbl := &Table{
		Title: fmt.Sprintf("Figure 8: x264 (%dx%d, %d frames, K=4P), TS=%ss",
			sz.X264W, sz.X264H, sz.X264Frames, secs(ts)),
		Header: []string{"P", "CilkP-T", "Pthr-T", "CilkP-Sp", "Pthr-Sp", "CilkP-Sc", "Pthr-Sc"},
	}
	for _, p := range ps {
		tp := map[string]time.Duration{}
		for _, sys := range []string{"piper", "pthreads"} {
			if p == 1 {
				tp[sys] = t1[sys]
			} else {
				tp[sys] = run(sys, p)
			}
		}
		tbl.AddRow(fmt.Sprint(p),
			secs(tp["piper"]), secs(tp["pthreads"]),
			ratio(ts, tp["piper"]), ratio(ts, tp["pthreads"]),
			ratio(t1["piper"], tp["piper"]), ratio(t1["pthreads"], tp["pthreads"]))
	}
	tbl.Notes = append(tbl.Notes,
		"TBB column absent by design: construct-and-run cannot express x264 (Section 10)")
	if w != nil {
		tbl.Fprint(w)
	}
	return tbl
}
