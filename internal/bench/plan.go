package bench

import (
	"fmt"
	"io"
	"time"

	"piper"
)

// Plan-compiler ablation: what compiling a shape-stable pipeline into a
// specialized execution plan buys over re-interpreting every stage
// boundary. The empty-iteration column is the pure serial scheduling
// floor (the SerialOverheadPerIter benchmarks), where the serial-only
// plan's batched fast retire and grain seeding act; the SPS column is a
// fine-grained three-stage serial-parallel-serial pipeline with a cross
// edge, where the hoisted wait-table check and fused interior continues
// act. The "plans off" row is the CompilePlans(false) interpreter
// baseline the compiled rows are differenced against.

// PlanAblation renders the plans on/off comparison.
func PlanAblation(w io.Writer, pmax int, sz SizeSpec) *Table {
	if pmax < 1 {
		pmax = 1
	}
	tbl := &Table{
		Title: fmt.Sprintf("Plan compiler ablation (empty-iter floor at P=1; SPS at P=%d)", pmax),
		Header: []string{"config", "empty ns/iter", "SPS ns/iter",
			"plans", "fused", "deopts", "floor final G"},
	}
	type cfg struct {
		name string
		opt  []piper.Option
	}
	cfgs := []cfg{
		{"plans on", nil},
		{"plans off", []piper.Option{piper.CompilePlans(false)}},
	}
	emptyIters := 50000 * int64(sz.Reps)
	spsIters := 50000 * int64(sz.Reps)
	for _, c := range cfgs {
		// Empty-iteration serial floor at P=1: the serial-only plan elides
		// per-slot retirement bookkeeping and seeds the batch grain at the
		// ceiling instead of ramping from G=1.
		e1 := piper.NewEngine(append([]piper.Option{piper.Workers(1)}, c.opt...)...)
		i := int64(0)
		e1.PipeWhile(func() bool { return i < 1000 }, func(it *piper.Iter) { i++ }) // warm pools
		i = 0
		t0 := time.Now()
		rep := e1.RunPipeline(0, func() bool { return i < emptyIters }, func(it *piper.Iter) { i++ })
		perIter := time.Since(t0).Nanoseconds() / emptyIters
		e1.Close()

		// SPS pipeline at P=pmax: stage 0 reads a sequence point, stage 1 is
		// open parallel work, stage 2 waits on the predecessor — the shape
		// every planned wait specializes to one wait-table comparison — and
		// stage 3 is a short fusable tail whose boundary the plan elides.
		e2 := piper.NewEngine(append([]piper.Option{piper.Workers(pmax)}, c.opt...)...)
		before := e2.Stats()
		var acc int64
		j := int64(0)
		t1 := time.Now()
		e2.RunPipeline(0, func() bool { return j < spsIters }, func(it *piper.Iter) {
			v := j
			j++
			it.Continue(1)
			v = v*31 + 1
			it.Wait(2)
			acc += v
			it.Continue(3)
			acc++
		})
		spsPerIter := time.Since(t1).Nanoseconds() / spsIters
		after := e2.Stats()
		e2.Close()

		tbl.AddRow(c.name,
			fmt.Sprintf("%d", perIter),
			fmt.Sprintf("%d", spsPerIter),
			fmt.Sprintf("%d", after.PlansCompiled-before.PlansCompiled),
			fmt.Sprintf("%d", after.PlanFusedStages-before.PlanFusedStages),
			fmt.Sprintf("%d", after.PlanDeopts-before.PlanDeopts),
			fmt.Sprintf("%d", rep.FinalGrain))
	}
	tbl.Notes = append(tbl.Notes,
		"plans off is the CompilePlans(false) interpreter baseline; both rows run the same bodies",
		"fused counts interior pipe_continue transitions whose boundary bookkeeping the plan elided (timing-dependent: stages must record short)",
		"floor final G contrasts the seeded batch grain (plans on: starts at the ceiling after iteration 0) with the cold G=1 ramp")
	if w != nil {
		tbl.Fprint(w)
	}
	return tbl
}
