package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"piper"
	"piper/internal/dedup"
	"piper/internal/lz"
	"piper/internal/workload"
)

// Arena data-plane ablation: what buffer recycling buys on the two
// stream workloads whose payloads flow through the arena (dedup's
// per-chunk deflate buffers, LZ's per-block suffix-sort scratch and
// factor lists). The disabled configuration (ArenaBuffers(false)) keeps
// the identical ownership API — same retain/release hand-offs, same
// gauges — but every Get allocates and every final Release goes to the
// GC, so the delta isolates recycling itself from the refactoring.

// ArenaAblation renders the arena on/off comparison.
func ArenaAblation(w io.Writer, pmax int, sz SizeSpec) *Table {
	if pmax < 1 {
		pmax = 1
	}
	data := workload.TextStream(1234, sz.DedupBytes, 4096, 0.35)

	tbl := &Table{
		Title: fmt.Sprintf("Arena data-plane ablation (dedup + LZ on %d MiB at P=%d, K=4P)",
			sz.DedupBytes>>20, pmax),
		Header: []string{"config", "workload", "time", "allocs/op", "alloc MB/op", "arena gets", "misses", "recycled MB/op"},
	}

	type work struct {
		name string
		body func(e *piper.Engine)
	}
	works := []work{
		{"dedup", func(e *piper.Engine) { _ = dedup.CompressPiper(e, 4*pmax, data, io.Discard) }},
		{"lz", func(e *piper.Engine) { _ = lz.Compress(e, 0, data, 0) }},
	}
	for _, enabled := range []bool{true, false} {
		name := "arena on"
		if !enabled {
			name = "arena off"
		}
		for _, wk := range works {
			e := piper.NewEngine(piper.Workers(pmax), piper.ArenaBuffers(enabled))
			wk.body(e) // warm pools, workers, and size classes

			// Allocation counters bracket the timed reps; per-op numbers
			// divide out the rep count.
			reps := sz.Reps
			if reps < 1 {
				reps = 1
			}
			// The explicit GC (for a clean Mallocs bracket) pushes the
			// warmed regions into the sync.Pool victim caches, one natural
			// GC away from being freed — a collection triggered by the
			// measured run's own allocations would then turn steady-state
			// checkouts into misses. Re-warming after the GC pulls the
			// inventory back into the primary caches, so it takes two
			// mid-measurement collections to perturb the miss column.
			var m0, m1 runtime.MemStats
			runtime.GC()
			wk.body(e)
			before := e.Stats()
			runtime.ReadMemStats(&m0)
			t0 := time.Now()
			for i := 0; i < reps; i++ {
				wk.body(e)
			}
			el := time.Since(t0) / time.Duration(reps)
			runtime.ReadMemStats(&m1)
			after := e.Stats()
			e.Close()

			d := float64(reps)
			tbl.AddRow(name, wk.name,
				el.Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f", float64(m1.Mallocs-m0.Mallocs)/d),
				fmt.Sprintf("%.1f", float64(m1.TotalAlloc-m0.TotalAlloc)/d/(1<<20)),
				fmt.Sprintf("%.0f", float64(after.ArenaGets-before.ArenaGets)/d),
				fmt.Sprintf("%.0f", float64(after.ArenaMisses-before.ArenaMisses)/d),
				fmt.Sprintf("%.1f", float64(after.ArenaBytesRecycled-before.ArenaBytesRecycled)/d/(1<<20)))
		}
	}
	tbl.Notes = append(tbl.Notes,
		"arena off (ArenaBuffers(false)) keeps the Ref ownership API and gauges but never recycles: every Get allocates, every final Release goes to the GC",
		"allocs/op counts every heap allocation during one full pipeline run (runtime.MemStats.Mallocs delta), including the output stream's growth",
		"misses are arena checkouts that allocated fresh storage; the warm-up run outside the measurement makes steady-state misses ≈ 0 with the arena on")
	if w != nil {
		tbl.Fprint(w)
	}
	return tbl
}
