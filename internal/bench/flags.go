package bench

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Flag-spec parsing for piperbench. Lives here rather than in the command
// so the rejection paths are unit-testable without spawning a process.

// SplitNames splits a comma-separated name list, trimming whitespace
// around each entry. An entirely empty spec means "none" and yields nil;
// an empty segment inside a non-empty spec ("a,,b", a trailing comma) is
// rejected rather than dropped — it is always a stray comma, and silently
// swallowing it would shrink a guard list the user believes is longer.
// Duplicate names are rejected: a guard list that names the same
// benchmark twice is always a typo for a second, unguarded benchmark,
// and silently checking one row twice would report vacuous coverage.
func SplitNames(flagName, spec string) ([]string, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var names []string
	seen := make(map[string]bool)
	for _, s := range strings.Split(spec, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			return nil, fmt.Errorf("empty %s name in %q (stray comma?)", flagName, spec)
		}
		if seen[s] {
			return nil, fmt.Errorf("duplicate %s name %q", flagName, s)
		}
		seen[s] = true
		names = append(names, s)
	}
	return names, nil
}

// virtualProcsCap bounds the virtual-time sweep: beyond 64 workers the
// perturbed behavioral runs on a small host measure goroutine-scheduler
// noise, not piper's machinery.
const virtualProcsCap = 64

// defaultVirtualProcs is the P range the virtual-time mode simulates when
// -procs auto is combined with -virtual.
var defaultVirtualProcs = []int{8, 16, 32, 64}

// ParseProcs parses a -procs spec into the real GOMAXPROCS sweep and the
// virtual-P list. "" yields nil, nil (no sweep). "auto" yields the
// doubling sequence 1,2,4,...,numCPU plus — with virtual — every default
// virtual P above numCPU. An explicit comma list is validated: dupes are
// rejected, and a value above numCPU is an error unless virtual is set
// (real timing at P > NumCPU measures oversubscription, not speedup), in
// which case it joins the virtual list, capped at virtualProcsCap.
func ParseProcs(spec string, numCPU int, virtual bool) (real, virt []int, err error) {
	switch spec {
	case "":
		return nil, nil, nil
	case "auto":
		real = append(real, 1)
		for p := 2; p <= numCPU; p *= 2 {
			real = append(real, p)
		}
		if last := real[len(real)-1]; last != numCPU {
			real = append(real, numCPU)
		}
		if virtual {
			for _, p := range defaultVirtualProcs {
				if p > numCPU {
					virt = append(virt, p)
				}
			}
		}
		return real, virt, nil
	}
	seen := make(map[int]bool)
	for _, s := range strings.Split(spec, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			return nil, nil, fmt.Errorf("empty -procs entry in %q (stray comma?)", spec)
		}
		p, perr := strconv.Atoi(s)
		if perr != nil || p < 1 {
			return nil, nil, fmt.Errorf("bad -procs entry %q (valid: auto, or integers 1..%d, plus up to %d with -virtual)",
				s, numCPU, virtualProcsCap)
		}
		if seen[p] {
			return nil, nil, fmt.Errorf("duplicate -procs entry %d", p)
		}
		seen[p] = true
		switch {
		case p <= numCPU:
			real = append(real, p)
		case !virtual:
			return nil, nil, fmt.Errorf("-procs %d exceeds NumCPU=%d; valid without -virtual: 1..%d (with -virtual: up to %d, simulated)",
				p, numCPU, numCPU, virtualProcsCap)
		case p > virtualProcsCap:
			return nil, nil, fmt.Errorf("-procs %d exceeds the virtual-time cap %d", p, virtualProcsCap)
		default:
			virt = append(virt, p)
		}
	}
	sort.Ints(real)
	sort.Ints(virt)
	return real, virt, nil
}
