package bench

import (
	"fmt"
	"io"
	"time"

	"piper"
	"piper/internal/dag"
	"piper/internal/pipefib"
	"piper/internal/workload"
)

// Fig9PipeFib reproduces the dependency-folding table: pipe-fib and
// pipe-fib-256, each with and without dependency folding, reporting TS,
// T1, TP, serial overhead (T1/TS), speedup (TS/TP), and scalability
// (T1/TP). pmax plays the role of the paper's 16 workers.
func Fig9PipeFib(w io.Writer, pmax int, sz SizeSpec) *Table {
	n := sz.PipeFibN
	// The coarsened program needs a proportionally larger index so each
	// 256-bit stage carries real work, mirroring the paper's fixed-input
	// comparison (their n makes both variants run ~20s).
	nCoarse := 16 * n
	tsFine := bestOf(sz.Reps, func() { pipefib.SerialFine(n) })
	tsCoarse := bestOf(sz.Reps, func() { pipefib.SerialCoarse(nCoarse) })

	type variant struct {
		name    string
		ts      time.Duration
		folding bool
		coarse  bool
	}
	variants := []variant{
		{"pipe-fib      no-fold", tsFine, false, false},
		{"pipe-fib-256  no-fold", tsCoarse, false, true},
		{"pipe-fib      fold", tsFine, true, false},
		{"pipe-fib-256  fold", tsCoarse, true, true},
	}
	tbl := &Table{
		Title: fmt.Sprintf("Figure 9: pipe-fib dependency folding (n=%d, n256=%d, P=%d)",
			n, nCoarse, pmax),
		Header: []string{"program", "fold", "TS", "T1", "TP", "overhead", "speedup", "scalability", "cross-checks"},
	}
	for _, v := range variants {
		var checks int64
		run := func(p int) time.Duration {
			eng := piper.NewEngine(piper.Workers(p), piper.DependencyFolding(v.folding))
			defer eng.Close()
			d := bestOf(sz.Reps, func() {
				if v.coarse {
					pipefib.Coarse(eng, 4*p, nCoarse)
				} else {
					pipefib.Fine(eng, 4*p, n)
				}
			})
			if p == pmax {
				checks = eng.Stats().CrossChecks
			}
			return d
		}
		t1 := run(1)
		tp := run(pmax)
		fold := "no"
		if v.folding {
			fold = "yes"
		}
		tbl.AddRow(v.name, fold, secs(v.ts), secs(t1), secs(tp),
			ratio(t1, v.ts), ratio(v.ts, tp), ratio(t1, tp),
			fmt.Sprint(checks))
	}
	tbl.Notes = append(tbl.Notes,
		"pipe-fib-256 runs 16× the index so a 256-bit stage carries comparable work",
		"cross-checks counts shared stage-counter reads at P workers (folding's target)")
	if w != nil {
		tbl.Fprint(w)
	}
	return tbl
}

// spinPipeline executes an abstract dag.Pipeline on the scheduler: node
// (i,j) spins for its weight in microseconds, stages with cross edges use
// Wait and the rest Continue. It returns the pipeline report (for space
// accounting).
func spinPipeline(eng *piper.Engine, k int, model *dag.Pipeline) piper.PipelineReport {
	i := 0
	iters := model.Iters
	return eng.RunPipeline(k, func() bool { return i < len(iters) }, func(it *piper.Iter) {
		row := iters[i]
		i++
		workload.SpinMicros(row[0].Weight)
		for j := 1; j < len(row); j++ {
			nd := row[j]
			if nd.Cross {
				//piper:allow-dynamic-stage replaying a recorded stage trace; the recorder emitted it monotone
				it.Wait(nd.Stage)
			} else {
				//piper:allow-dynamic-stage replaying a recorded stage trace; the recorder emitted it monotone
				it.Continue(nd.Stage)
			}
			workload.SpinMicros(nd.Weight)
		}
	})
}

// Thm12Uniform measures the price of throttling on a uniform pipeline:
// for K = aP with growing a, TP should approach the unthrottled ideal,
// matching TP <= (1+c/a)T1/P + cT∞.
func Thm12Uniform(w io.Writer, p int, sz SizeSpec) *Table {
	const stages, nodeMicros = 4, 40
	n := 800
	if sz.Reps == 1 {
		n = 400
	}
	reps := sz.Reps + 1 // noise matters at this scale
	model := dag.Uniform(n, stages, nodeMicros)
	t1 := float64(model.Work())

	tbl := &Table{
		Title: fmt.Sprintf("Theorem 12: uniform pipeline (n=%d, s=%d, %dµs nodes, P=%d)",
			n, stages, nodeMicros, p),
		Header: []string{"K", "a=K/P", "TP", "speedup", "model-speedup"},
	}
	ideal := bestOf(reps, func() {
		eng := piper.NewEngine(piper.Workers(1))
		defer eng.Close()
		spinPipeline(eng, n+1, model)
	})
	for _, a := range []int{1, 2, 4, 8} {
		k := a * p
		eng := piper.NewEngine(piper.Workers(p))
		tp := bestOf(reps, func() { spinPipeline(eng, k, model) })
		eng.Close()
		tbl.AddRow(fmt.Sprint(k), fmt.Sprint(a), secs(tp),
			ratio(ideal, tp),
			f2(t1/model.PredictTime(p, k)))
	}
	tbl.Notes = append(tbl.Notes,
		"throttling a uniform pipeline costs at most a (1+c/a) factor (Theorem 12)")
	if w != nil {
		tbl.Fprint(w)
	}
	return tbl
}

// Fig10Pathological runs the nonuniform pipeline of Figure 10 under
// several throttling windows, reporting speedup and the peak number of
// live iterations (the space PIPER pays). Small windows cap the speedup
// near 3 regardless of P; achieving more requires Ω(T1^{1/3}) space
// (Theorem 13).
func Fig10Pathological(w io.Writer, p int, sz SizeSpec) *Table {
	// Build the clustered dag with weights in spin-microseconds.
	target := int64(1) << 17 // T1 in µs ≈ 0.13s of spin work
	if sz.Reps > 1 {
		target = 1 << 19
	}
	model := dag.PathologicalThm13(target)
	cbrt := 1
	for int64(cbrt*cbrt*cbrt) < model.Work() {
		cbrt++
	}

	serial := bestOf(sz.Reps, func() {
		eng := piper.NewEngine(piper.Workers(1))
		defer eng.Close()
		spinPipeline(eng, len(model.Iters)+1, model)
	})

	tbl := &Table{
		Title: fmt.Sprintf("Figure 10 / Theorem 13: pathological pipeline (T1≈%dµs, %d iterations, P=%d)",
			model.Work(), len(model.Iters), p),
		Header: []string{"K", "TP", "speedup", "max-live-iters", "model-speedup", "model-P16"},
	}
	for _, k := range []int{2, 4 * p, cbrt + 2} {
		eng := piper.NewEngine(piper.Workers(p))
		var rep piper.PipelineReport
		tp := bestOf(sz.Reps, func() { rep = spinPipeline(eng, k, model) })
		eng.Close()
		tbl.AddRow(fmt.Sprint(k), secs(tp), ratio(serial, tp),
			fmt.Sprint(rep.MaxLiveIterations),
			f2(float64(model.Work())/model.PredictTime(p, k)),
			f2(float64(model.Work())/model.PredictTime(16, k)))
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("T1^(1/3) = %d: speedup beyond ~3 requires a window (space) of that order", cbrt),
		"model-P16 shows the theorem's contrast at the paper's core count")
	if w != nil {
		tbl.Fprint(w)
	}
	return tbl
}

// Ablations measures the Section 9 runtime optimizations individually on
// pipe-fib (fine-grained serial stages stress them most).
func Ablations(w io.Writer, p int, sz SizeSpec) *Table {
	n := sz.PipeFibN / 2
	type cfg struct {
		name string
		opts []piper.Option
	}
	cfgs := []cfg{
		{"baseline (all on)", nil},
		{"no dependency folding", []piper.Option{piper.DependencyFolding(false)}},
		{"eager enabling", []piper.Option{piper.LazyEnabling(false)}},
		{"no tail swap", []piper.Option{piper.TailSwap(false)}},
		{"no inline fast path", []piper.Option{piper.InlineFastPath(false)}},
	}
	tbl := &Table{
		Title:  fmt.Sprintf("Section 9 ablations on pipe-fib (n=%d, P=%d)", n, p),
		Header: []string{"config", "TP", "slowdown", "steals", "cross-checks", "fold-hits", "tail-swaps"},
	}
	var base time.Duration
	for i, c := range cfgs {
		opts := append([]piper.Option{piper.Workers(p)}, c.opts...)
		eng := piper.NewEngine(opts...)
		tp := bestOf(sz.Reps, func() { pipefib.Fine(eng, 4*p, n) })
		st := eng.Stats()
		eng.Close()
		if i == 0 {
			base = tp
		}
		tbl.AddRow(c.name, secs(tp), ratio(tp, base),
			fmt.Sprint(st.Steals), fmt.Sprint(st.CrossChecks),
			fmt.Sprint(st.FoldHits), fmt.Sprint(st.TailSwaps))
	}
	if w != nil {
		tbl.Fprint(w)
	}
	return tbl
}

// AdaptiveThrottle compares a fixed Θ(P) window against the adaptive
// policy on the Figure 10 pathology — the Section 11 trade-off: adaptive
// throttling buys back the speedup a fixed window forfeits, paying with
// live-iteration space, and costs nothing on uniform pipelines.
func AdaptiveThrottle(w io.Writer, p int, sz SizeSpec) *Table {
	target := int64(1) << 17
	if sz.Reps > 1 {
		target = 1 << 19
	}
	patho := dag.PathologicalThm13(target)
	uni := dag.Uniform(300, 4, 50)
	cbrt := 1
	for int64(cbrt*cbrt*cbrt) < patho.Work() {
		cbrt++
	}

	tbl := &Table{
		Title:  fmt.Sprintf("Adaptive throttling (extension; P=%d, T1^(1/3)=%d)", p, cbrt),
		Header: []string{"workload", "policy", "TP", "speedup", "max-live-iters"},
	}
	runFixed := func(model *dag.Pipeline, k int) (time.Duration, piper.PipelineReport) {
		eng := piper.NewEngine(piper.Workers(p))
		defer eng.Close()
		var rep piper.PipelineReport
		d := bestOf(sz.Reps, func() { rep = spinPipeline(eng, k, model) })
		return d, rep
	}
	runAdaptive := func(model *dag.Pipeline, kMin, kMax int) (time.Duration, piper.PipelineReport) {
		eng := piper.NewEngine(piper.Workers(p))
		defer eng.Close()
		var rep piper.PipelineReport
		d := bestOf(sz.Reps, func() {
			i := 0
			rep = eng.RunPipelineAdaptive(kMin, kMax, func() bool { return i < len(model.Iters) }, func(it *piper.Iter) {
				row := model.Iters[i]
				i++
				workload.SpinMicros(row[0].Weight)
				for j := 1; j < len(row); j++ {
					if row[j].Cross {
						//piper:allow-dynamic-stage replaying a recorded stage trace; the recorder emitted it monotone
						it.Wait(row[j].Stage)
					} else {
						//piper:allow-dynamic-stage replaying a recorded stage trace; the recorder emitted it monotone
						it.Continue(row[j].Stage)
					}
					workload.SpinMicros(row[j].Weight)
				}
			})
		})
		return d, rep
	}

	serial := func(model *dag.Pipeline) time.Duration {
		eng := piper.NewEngine(piper.Workers(1))
		defer eng.Close()
		return bestOf(sz.Reps, func() { spinPipeline(eng, len(model.Iters)+1, model) })
	}
	sPatho := serial(patho)
	sUni := serial(uni)

	for _, row := range []struct {
		name  string
		model *dag.Pipeline
		ts    time.Duration
	}{{"pathological", patho, sPatho}, {"uniform", uni, sUni}} {
		dFixed, repFixed := runFixed(row.model, 4*p)
		tbl.AddRow(row.name, "fixed K=4P", secs(dFixed), ratio(row.ts, dFixed),
			fmt.Sprint(repFixed.MaxLiveIterations))
		dAd, repAd := runAdaptive(row.model, 4*p, 4*cbrt)
		tbl.AddRow(row.name, "adaptive", secs(dAd), ratio(row.ts, dAd),
			fmt.Sprint(repAd.MaxLiveIterations))
	}
	tbl.Notes = append(tbl.Notes,
		"adaptive grows the window only when workers idle while the pipeline is window-bound")
	if w != nil {
		tbl.Fprint(w)
	}
	return tbl
}
