package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"piper"
	"piper/internal/workload"
)

// Elasticity experiment: the paper's bounds hold for a fixed worker count
// P, but a serving deployment faces bursty traffic where a static P either
// wastes cores in the gaps or queues without bound at the peaks. This
// experiment drives the same bursty multi-tenant workload through a fixed
// pool and an elastic one and reports what elasticity buys (cores
// returned during gaps, bounded queues at peaks) and what it costs
// (scale-up latency on the leading edge of a burst).

// elasticBurst pushes waves of short SPS pipelines through eng, with
// quiet gaps between waves, and returns the total wall time.
func elasticBurst(eng *piper.Engine, waves, perWave int, spin int64, gap time.Duration) time.Duration {
	t0 := time.Now()
	for wv := 0; wv < waves; wv++ {
		handles := make([]*piper.Handle, 0, perWave)
		for q := 0; q < perWave; q++ {
			i := 0
			var sink atomic.Uint64
			h := eng.Submit(nil, func() bool { i++; return i <= 6 }, func(it *piper.Iter) {
				sink.Add(workload.Spin(spin))
				it.Continue(1)
				sink.Add(workload.Spin(spin))
				it.Wait(2)
				sink.Add(workload.Spin(spin / 4))
			})
			handles = append(handles, h)
		}
		for _, h := range handles {
			_ = h.Wait()
		}
		if wv < waves-1 {
			time.Sleep(gap)
		}
	}
	return time.Since(t0)
}

// MeasureScaleUp returns the latency from the first submission of a
// saturating burst on a MinWorkers=1 engine until the live-worker gauge
// first reaches maxW — the elastic pool's reaction time, the price paid on
// a burst's leading edge.
func MeasureScaleUp(maxW int, spin int64) time.Duration {
	eng := piper.NewEngine(
		piper.Workers(1), piper.MinWorkers(1), piper.MaxWorkers(maxW),
		// No retires during the measurement window.
		piper.RetireAfter(time.Hour),
	)
	defer eng.Close()
	handles := make([]*piper.Handle, 0, 4*maxW)
	t0 := time.Now()
	for q := 0; q < 4*maxW; q++ {
		i := 0
		var sink atomic.Uint64
		h := eng.Submit(nil, func() bool { i++; return i <= 8 }, func(it *piper.Iter) {
			sink.Add(workload.Spin(spin))
			it.Continue(1)
			sink.Add(workload.Spin(spin))
		})
		handles = append(handles, h)
	}
	var lat time.Duration
	for {
		if eng.Stats().LiveWorkers >= int64(maxW) {
			lat = time.Since(t0)
			break
		}
		if time.Since(t0) > 5*time.Second {
			lat = time.Since(t0) // stalled; report the timeout honestly
			break
		}
		runtime.Gosched()
	}
	for _, h := range handles {
		_ = h.Wait()
	}
	return lat
}

// Elasticity renders the fixed-vs-elastic comparison table.
func Elasticity(w io.Writer, pmax int, sz SizeSpec) *Table {
	if pmax < 2 {
		pmax = 2
	}
	waves, perWave := 3, 40*sz.Reps
	spin := int64(1500)
	gap := 25 * time.Millisecond

	tbl := &Table{
		Title:  "Elastic worker pool vs fixed P (bursty serving workload)",
		Header: []string{"config", "time", "spawns", "retires", "floor"},
	}
	type cfg struct {
		name string
		opts []piper.Option
	}
	cfgs := []cfg{
		{fmt.Sprintf("fixed P=%d", pmax), []piper.Option{piper.Workers(pmax)}},
		{fmt.Sprintf("elastic 1..%d", pmax), []piper.Option{
			piper.Workers(1), piper.MinWorkers(1), piper.MaxWorkers(pmax),
			piper.RetireAfter(2 * time.Millisecond),
		}},
	}
	for _, c := range cfgs {
		eng := piper.NewEngine(c.opts...)
		el := elasticBurst(eng, waves, perWave, spin, gap)
		s := eng.Stats()
		eng.Close()
		tbl.AddRow(c.name, el.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", s.WorkerSpawns), fmt.Sprintf("%d", s.WorkerRetires),
			fmt.Sprintf("%d", s.LiveWorkers))
	}
	lat := MeasureScaleUp(pmax, spin)
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("scale-up latency 1→%d workers under a saturating burst: %v", pmax, lat.Round(time.Microsecond)),
		"the elastic pool pays its reaction time on a burst's leading edge and returns cores during the gaps")
	if w != nil {
		tbl.Fprint(w)
	}
	return tbl
}

// elasticScaleUpRow is the machine-readable elasticity record for
// BENCH_piper.json: the median scale-up latency over several rounds, so
// the perf trajectory tracks how fast the pool reacts to a burst. The
// 1→4 shape is fixed (not NumCPU-dependent) to keep reports comparable
// across hosts.
const elasticRowName = "ElasticScaleUp/Min1Max4"

func elasticScaleUpRow() JSONBenchmark {
	const rounds, maxW = 5, 4
	lats := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		lats = append(lats, float64(MeasureScaleUp(maxW, 1500)))
	}
	sort.Float64s(lats)
	return JSONBenchmark{
		Name:    elasticRowName,
		N:       rounds,
		NsPerOp: lats[rounds/2],
	}
}
