package bench

import (
	"fmt"
	"io"
	"time"

	"piper"
	"piper/internal/lz"
	"piper/internal/workload"
)

// Grain-control ablation: how much of the fixed per-iteration scheduling
// cost batching amortizes away, and what it costs in stealable-work
// availability. The empty-iteration column is the pure scheduling floor
// (the ns/iter the SerialOverheadPerIter benchmarks track); the LZ column
// is a realistic fine-grained variable-cost pipeline (suffix-array
// factorization per 16KiB block, arXiv:0903.4251) where stage bodies
// dwarf the floor and batching must not hurt.

// GrainAblation renders the Grain(1) / fixed / adaptive comparison.
func GrainAblation(w io.Writer, pmax int, sz SizeSpec) *Table {
	if pmax < 1 {
		pmax = 1
	}
	data := workload.TextStream(1234, sz.DedupBytes, 4096, 0.35)

	tbl := &Table{
		Title: fmt.Sprintf("Grain control ablation (empty-iter floor at P=1; LZ %dKiB blocks at P=%d)",
			lz.DefaultBlockSize>>10, pmax),
		Header: []string{"config", "empty ns/iter", "LZ time", "LZ batched/iter", "LZ splits", "floor final G"},
	}
	type cfg struct {
		name string
		opt  []piper.Option
	}
	cfgs := []cfg{
		{"Grain(1)", []piper.Option{piper.Grain(1)}},
		{"Grain(4)", []piper.Option{piper.Grain(4)}},
		{"Grain(16)", []piper.Option{piper.Grain(16)}},
		{"adaptive", []piper.Option{piper.GrainMax(64)}},
	}
	const emptyIters = 200000
	for _, c := range cfgs {
		// Empty-iteration floor at P=1.
		e1 := piper.NewEngine(append([]piper.Option{piper.Workers(1)}, c.opt...)...)
		i := 0
		e1.PipeWhile(func() bool { return i < 1000 }, func(it *piper.Iter) { i++ }) // warm pools
		i = 0
		t0 := time.Now()
		rep := e1.RunPipeline(0, func() bool { return i < emptyIters }, func(it *piper.Iter) { i++ })
		perIter := time.Since(t0).Nanoseconds() / emptyIters
		e1.Close()

		// LZ block pipeline at P=pmax.
		e2 := piper.NewEngine(append([]piper.Option{piper.Workers(pmax)}, c.opt...)...)
		before := e2.Stats()
		el := bestOf(sz.Reps, func() { _ = lz.Compress(e2, 0, data, 0) })
		after := e2.Stats()
		e2.Close()

		iters := after.Iterations - before.Iterations
		if iters == 0 {
			iters = 1
		}
		tbl.AddRow(c.name,
			fmt.Sprintf("%d", perIter),
			el.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2f", float64(after.BatchedIterations-before.BatchedIterations)/float64(iters)),
			fmt.Sprintf("%d", after.BatchSplits-before.BatchSplits),
			fmt.Sprintf("%d", rep.FinalGrain))
	}
	tbl.Notes = append(tbl.Notes,
		"LZ batched/iter is the fraction of LZ-pipeline iterations whose scheduling cost the batch amortized (deferred-release slots)",
		"floor final G is where the empty-iteration P=1 pipeline's grain settled (the LZ run's grain varies per pipeline)",
		"adaptive grain matches Grain(1) whenever idle workers appear and approaches the fixed ceiling on a saturated pool")
	if w != nil {
		tbl.Fprint(w)
	}
	return tbl
}
