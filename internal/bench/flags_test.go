package bench

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
)

// writeReportFile encodes a synthetic report for the guard tests.
func writeReportFile(path string, rep JSONReport) error {
	data, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func TestSplitNamesRejectsDuplicates(t *testing.T) {
	names, err := SplitNames("-guard", " a , b , c ")
	if err != nil || !reflect.DeepEqual(names, []string{"a", "b", "c"}) {
		t.Fatalf("got %v, %v", names, err)
	}
	if _, err := SplitNames("-guard", "a,b,a"); err == nil || !strings.Contains(err.Error(), "duplicate -guard") {
		t.Fatalf("duplicate not rejected: %v", err)
	}
	if _, err := SplitNames("-only", "x,x"); err == nil || !strings.Contains(err.Error(), "-only") {
		t.Fatalf("flag name missing from error: %v", err)
	}
	if names, err := SplitNames("-guard", ""); err != nil || names != nil {
		t.Fatalf("empty spec: got %v, %v", names, err)
	}
	if names, err := SplitNames("-guard", "  "); err != nil || names != nil {
		t.Fatalf("blank spec: got %v, %v", names, err)
	}
}

func TestSplitNamesRejectsEmptySegments(t *testing.T) {
	// A stray comma must be an error, not a silently shorter list: the
	// user asked to guard something and got nothing.
	for _, bad := range []string{"a,,b", "a,b,", ",a", " a , b ,, c ", ","} {
		if names, err := SplitNames("-guard", bad); err == nil {
			t.Fatalf("spec %q accepted as %v", bad, names)
		} else if !strings.Contains(err.Error(), "-guard") || !strings.Contains(err.Error(), "empty") {
			t.Fatalf("spec %q: unhelpful error %v", bad, err)
		}
	}
}

func TestParseProcs(t *testing.T) {
	// auto on an 8-CPU host: doubling sequence, virtual Ps only above it.
	real, virt, err := ParseProcs("auto", 8, true)
	if err != nil || !reflect.DeepEqual(real, []int{1, 2, 4, 8}) || !reflect.DeepEqual(virt, []int{16, 32, 64}) {
		t.Fatalf("auto/8/virtual: %v %v %v", real, virt, err)
	}
	// auto on a 6-CPU host appends NumCPU after the doubling sequence.
	real, virt, err = ParseProcs("auto", 6, false)
	if err != nil || !reflect.DeepEqual(real, []int{1, 2, 4, 6}) || virt != nil {
		t.Fatalf("auto/6: %v %v %v", real, virt, err)
	}
	// Explicit list split across the NumCPU boundary with -virtual.
	real, virt, err = ParseProcs("16,2,1,8", 2, true)
	if err != nil || !reflect.DeepEqual(real, []int{1, 2}) || !reflect.DeepEqual(virt, []int{8, 16}) {
		t.Fatalf("explicit/virtual: %v %v %v", real, virt, err)
	}
	// Empty spec means no sweep at all.
	if real, virt, err = ParseProcs("", 4, false); err != nil || real != nil || virt != nil {
		t.Fatalf("empty: %v %v %v", real, virt, err)
	}
}

func TestParseProcsRejects(t *testing.T) {
	// A value above NumCPU without -virtual must fail, naming the valid
	// range and the -virtual escape hatch.
	if _, _, err := ParseProcs("1,8", 2, false); err == nil ||
		!strings.Contains(err.Error(), "NumCPU=2") || !strings.Contains(err.Error(), "-virtual") {
		t.Fatalf("over-NumCPU not rejected usefully: %v", err)
	}
	if _, _, err := ParseProcs("1,1", 4, false); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate not rejected: %v", err)
	}
	for _, bad := range []string{"0", "-1", "two", "1,x"} {
		if _, _, err := ParseProcs(bad, 4, false); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
	// Stray commas are rejected like SplitNames rejects them, not dropped.
	for _, bad := range []string{"1,,2", "1,2,", ",1"} {
		if _, _, err := ParseProcs(bad, 4, false); err == nil || !strings.Contains(err.Error(), "empty -procs") {
			t.Fatalf("spec %q not rejected for empty segment: %v", bad, err)
		}
	}
	// Even -virtual has a ceiling.
	if _, _, err := ParseProcs("128", 2, true); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("over-cap not rejected: %v", err)
	}
}

// TestSpeedupCurvesSmoke runs the sweep at the smallest real list and one
// virtual P, checking curve shape rather than numbers.
func TestSpeedupCurvesSmoke(t *testing.T) {
	curves := SpeedupCurves([]int{1}, []int{8})
	if len(curves) != 2 {
		t.Fatalf("want 2 curves, got %d", len(curves))
	}
	for _, c := range curves {
		if c.Workload == "" || c.WorkNs <= 0 || c.SpanNs <= 0 {
			t.Fatalf("curve missing profile: %+v", c)
		}
		if len(c.Points) != 2 {
			t.Fatalf("%s: want 2 points, got %+v", c.Workload, c.Points)
		}
		p1, pv := c.Points[0], c.Points[1]
		if p1.Procs != 1 || p1.Virtual || p1.NsPerOp <= 0 || p1.Speedup != 1 {
			t.Fatalf("%s: bad real point %+v", c.Workload, p1)
		}
		if pv.Procs != 8 || !pv.Virtual || pv.NsPerOp != 0 || pv.Speedup <= 0 {
			t.Fatalf("%s: bad virtual point %+v", c.Workload, pv)
		}
	}
}

// TestCheckSpeedupRegression exercises the guard's compare and skip paths
// against synthetic reports.
func TestCheckSpeedupRegression(t *testing.T) {
	write := func(t *testing.T, name string, rep JSONReport) string {
		t.Helper()
		path := t.TempDir() + "/" + name
		if err := writeReportFile(path, rep); err != nil {
			t.Fatal(err)
		}
		return path
	}
	curve := func(speedup float64) JSONReport {
		return JSONReport{Curves: []JSONCurve{{
			Workload: "LZStream",
			Points: []JSONCurvePoint{
				{Procs: 1, Speedup: 1},
				{Procs: 2, Speedup: speedup},
				{Procs: 8, Virtual: true, Speedup: 4},
			},
		}}}
	}
	base := write(t, "base.json", curve(1.8))
	if err := CheckSpeedupRegression(write(t, "ok.json", curve(1.7)), base, "LZStream", 15); err != nil {
		t.Fatalf("within-bound drop failed: %v", err)
	}
	if err := CheckSpeedupRegression(write(t, "bad.json", curve(1.2)), base, "LZStream", 15); err == nil {
		t.Fatal("33%% drop passed the 15%% guard")
	}
	// Baseline without curves (predates the harness): skip, not fail.
	old := write(t, "old.json", JSONReport{})
	if err := CheckSpeedupRegression(write(t, "f.json", curve(1.8)), old, "LZStream", 15); err != nil {
		t.Fatalf("curveless baseline should skip: %v", err)
	}
	// 1-CPU shape: no real P>1 point on either side: skip, not fail.
	oneCPU := JSONReport{Curves: []JSONCurve{{
		Workload: "LZStream",
		Points:   []JSONCurvePoint{{Procs: 1, Speedup: 1}, {Procs: 8, Virtual: true, Speedup: 4}},
	}}}
	if err := CheckSpeedupRegression(write(t, "f1.json", oneCPU), write(t, "b1.json", oneCPU), "LZStream", 15); err != nil {
		t.Fatalf("1-CPU shape should skip: %v", err)
	}
	// Unknown workload in the fresh report is a harness bug: fail.
	if err := CheckSpeedupRegression(write(t, "f2.json", JSONReport{Curves: []JSONCurve{{Workload: "Other"}}}),
		base, "LZStream", 15); err == nil {
		t.Fatal("missing fresh curve passed")
	}
}
