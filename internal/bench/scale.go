package bench

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"piper"
	"piper/internal/core"
	"piper/internal/lz"
	"piper/internal/workload"
)

// Scalability harness: per-workload speedup curves across GOMAXPROCS
// values (the real sweep) and simulated worker counts beyond the physical
// core count (the virtual-time sweep), recorded into BENCH_piper.json
// alongside the flat benchmark rows.
//
// A real point re-runs the workload with runtime.GOMAXPROCS(p) and a
// Workers(p) engine and reports measured time; its speedup is
// T(1)/T(p). A virtual point cannot measure time honestly — the host has
// fewer cores than workers — so it reports two things instead: the
// work/span speedup bound (Brent: T_P <= T1/P + T∞, the paper's
// scalability model, from a profiled run of the same workload) and the
// *behavioral* counters of an actual Workers(P) run under the seeded
// virtual-schedule perturber (core.InstallVirtualSchedule), which puts
// the steal sweep, elastic pool, and injection overflow under P-worker
// stress regardless of physical cores. Timing rows never run perturbed.

// JSONCurvePoint is one (P, measurement) point of a speedup curve.
type JSONCurvePoint struct {
	Procs int `json:"procs"`
	// Virtual marks simulated-P points: NsPerOp is 0 (never measured),
	// Speedup is the work/span bound, and the behavioral counters come
	// from a perturbed Workers(P) run on the physical host.
	Virtual bool `json:"virtual,omitempty"`
	// NsPerOp is the measured wall-clock cost at this P (real points
	// only).
	NsPerOp float64 `json:"ns_per_op,omitempty"`
	// Speedup is T(1)/T(P) for real points and the Brent bound
	// Work/(Work/P + Span) for virtual ones.
	Speedup float64 `json:"speedup"`
	// Steals, Parks and Overflows are Engine.Stats deltas per operation
	// at this worker count.
	Steals    float64 `json:"steals_per_op"`
	Parks     float64 `json:"parks_per_op"`
	Overflows float64 `json:"overflows_per_op"`
}

// JSONCurve is one workload's speedup curve.
type JSONCurve struct {
	Workload string `json:"workload"`
	// WorkNs and SpanNs are the profiled T1 and T∞ of one operation, the
	// inputs to the virtual points' speedup bound; Parallelism is their
	// ratio (the workload's speedup ceiling on any machine).
	WorkNs      int64            `json:"work_ns"`
	SpanNs      int64            `json:"span_ns"`
	Parallelism float64          `json:"parallelism"`
	Points      []JSONCurvePoint `json:"points"`
}

// curveWorkload is one sweepable workload: ops must run the workload once
// on the given engine, and profile must run it once instrumented,
// returning the work/span report.
type curveWorkload struct {
	name    string
	body    func(e *piper.Engine)
	profile func(e *piper.Engine) piper.PipelineReport
}

// lzStreamCurveSize is the stream length of the LZStream curve workload:
// large enough that per-chunk parallelism dominates scheduling overhead,
// small enough for a multi-point sweep per CI run.
const lzStreamCurveSize = 8 << 20

func lzStreamCurveOpts() lz.StreamOptions {
	return lz.StreamOptions{Mode: lz.ModeSparse, ChunkSize: 512 << 10, BlockSize: 128 << 10}
}

func curveWorkloads() []curveWorkload {
	lzBody := func(e *piper.Engine) {
		in := workload.StreamReader(7, lzStreamCurveSize, 4096, 0.4)
		if _, err := lz.StreamCompress(e, io.Discard, in, lzStreamCurveOpts()); err != nil {
			panic(err)
		}
	}
	lzProfile := func(e *piper.Engine) piper.PipelineReport {
		var rep piper.PipelineReport
		o := lzStreamCurveOpts()
		o.Profile = &rep // implies SerialBlocks: flat graph, exact attribution
		in := workload.StreamReader(7, lzStreamCurveSize, 4096, 0.4)
		if _, err := lz.StreamCompress(e, io.Discard, in, o); err != nil {
			panic(err)
		}
		return rep
	}

	// SPSCompute is the synthetic control: a serial-parallel-serial
	// pipeline with a fixed per-iteration compute stage, so its curve
	// isolates the scheduler from any workload-side memory effects.
	const spsIters = 400
	spin := workload.UnitsPerMicrosecond() * 50
	spsBody := func(it *piper.Iter) {
		it.Continue(1)
		workload.Spin(spin)
		it.Wait(2)
	}
	sps := func(e *piper.Engine) {
		i := 0
		e.PipeWhile(func() bool { i++; return i <= spsIters }, spsBody)
	}
	spsProfile := func(e *piper.Engine) piper.PipelineReport {
		i := 0
		return piper.Profile(e, 0, func() bool { i++; return i <= spsIters }, spsBody)
	}

	return []curveWorkload{
		{"LZStream", lzBody, lzProfile},
		{"SPSCompute", sps, spsProfile},
	}
}

// virtualScheduleSeed keeps the perturbed behavioral runs reproducible
// across invocations; the per-P offset decorrelates the dice streams.
const virtualScheduleSeed = 0x5CA1AB1E

// virtualEngine builds a Workers(p) engine with the seeded
// virtual-schedule perturber installed.
func virtualEngine(p int, seed uint64) *piper.Engine {
	return piper.NewEngine(piper.Workers(p), piper.Option(func(o *core.Options) {
		o.InstallVirtualSchedule(seed)
	}))
}

// SpeedupCurves sweeps every curve workload over the real GOMAXPROCS
// values and the virtual worker counts. A real list without 1 gets it
// prepended: every speedup needs the T(1) denominator.
func SpeedupCurves(real, virt []int) []JSONCurve {
	if len(real) == 0 || real[0] != 1 {
		real = append([]int{1}, real...)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var curves []JSONCurve
	for _, wl := range curveWorkloads() {
		c := JSONCurve{Workload: wl.name}

		// Profile at P=1: T1 and T∞ of the pipeline dag, the virtual
		// points' model inputs.
		runtime.GOMAXPROCS(1)
		pe := piper.NewEngine(piper.Workers(1))
		rep := wl.profile(pe)
		pe.Close()
		c.WorkNs, c.SpanNs = rep.WorkNs, rep.SpanNs
		c.Parallelism = rep.Parallelism()

		var ns1 float64
		for _, p := range real {
			runtime.GOMAXPROCS(p)
			e := piper.NewEngine(piper.Workers(p))
			wl.body(e) // warm engine pools outside the measurement
			var before, after piper.Stats
			r := testing.Benchmark(func(b *testing.B) {
				before = e.Stats()
				for i := 0; i < b.N; i++ {
					wl.body(e)
				}
				after = e.Stats()
			})
			e.Close()
			pt := JSONCurvePoint{Procs: p, NsPerOp: float64(r.NsPerOp())}
			fillCurveCounters(&pt, before, after, r.N)
			if p == 1 {
				ns1 = pt.NsPerOp
			}
			if ns1 > 0 {
				pt.Speedup = ns1 / pt.NsPerOp
			}
			c.Points = append(c.Points, pt)
		}

		// Virtual points: Brent-bound speedup plus perturbed behavioral
		// counters at Workers(p) on the physical host.
		runtime.GOMAXPROCS(runtime.NumCPU())
		for _, p := range virt {
			pt := JSONCurvePoint{Procs: p, Virtual: true}
			if c.WorkNs > 0 && c.SpanNs > 0 {
				pt.Speedup = float64(c.WorkNs) / (float64(c.WorkNs)/float64(p) + float64(c.SpanNs))
			}
			e := virtualEngine(p, virtualScheduleSeed+uint64(p))
			before := e.Stats()
			const ops = 2
			for i := 0; i < ops; i++ {
				wl.body(e)
			}
			after := e.Stats()
			e.Close()
			fillCurveCounters(&pt, before, after, ops)
			c.Points = append(c.Points, pt)
		}
		curves = append(curves, c)
	}
	return curves
}

func fillCurveCounters(pt *JSONCurvePoint, before, after piper.Stats, n int) {
	d := float64(n)
	pt.Steals = float64(after.Steals-before.Steals) / d
	pt.Parks = float64(after.Parks-before.Parks) / d
	pt.Overflows = float64(after.InjectOverflows-before.InjectOverflows) / d
}

// findCurve locates a workload's curve in a report, listing the available
// workloads on a miss (the loadBenchmark affordance, for curves).
func findCurve(rep JSONReport, workload string) (JSONCurve, error) {
	var names []string
	for _, c := range rep.Curves {
		if c.Workload == workload {
			return c, nil
		}
		names = append(names, c.Workload)
	}
	if len(names) == 0 {
		return JSONCurve{}, fmt.Errorf("report has no speedup curves")
	}
	return JSONCurve{}, fmt.Errorf("no speedup curve for %q; available: %v", workload, names)
}

// highestRealSpeedup returns the speedup at the curve's highest real
// (measured) P, with the P value; ok is false when the curve has no real
// point above P=1 — the 1-CPU-host case the guard must skip.
func highestRealSpeedup(c JSONCurve) (p int, speedup float64, ok bool) {
	for _, pt := range c.Points {
		if !pt.Virtual && pt.Procs > 1 && pt.Procs >= p {
			p, speedup, ok = pt.Procs, pt.Speedup, true
		}
	}
	return p, speedup, ok
}

// CheckSpeedupRegression compares a workload's speedup at the highest
// real P present in both the fresh report and the baseline, failing when
// the fresh speedup has dropped more than maxPct percent. On hosts where
// no real P>1 point exists (1-CPU runners), or when the baseline predates
// speedup curves, the guard skips with an explicit log line rather than
// failing — absence of parallelism is not a regression, but it must
// never pass silently as coverage.
func CheckSpeedupRegression(freshPath, baselinePath, workload string, maxPct float64) error {
	fresh, err := loadReport(freshPath)
	if err != nil {
		return err
	}
	base, err := loadReport(baselinePath)
	if err != nil {
		return err
	}
	bc, err := findCurve(base, workload)
	if err != nil {
		fmt.Printf("speedup guard skipped: baseline %s: %v\n", baselinePath, err)
		return nil
	}
	fc, err := findCurve(fresh, workload)
	if err != nil {
		// The fresh report was generated by this very run; a missing
		// curve here is a harness misconfiguration, not a stale artifact.
		return err
	}
	fp, fs, fok := highestRealSpeedup(fc)
	bp, bs, bok := highestRealSpeedup(bc)
	if !fok || !bok {
		fmt.Printf("speedup guard skipped: no real P>1 point (fresh ok=%v, baseline ok=%v, NumCPU=%d) — 1-CPU host\n",
			fok, bok, runtime.NumCPU())
		return nil
	}
	if fp != bp {
		fmt.Printf("speedup guard skipped: highest real P differs (fresh P=%d, baseline P=%d) — different hosts\n", fp, bp)
		return nil
	}
	if !(bs > 0) || !(fs > 0) {
		return fmt.Errorf("unusable %s speedup at P=%d: fresh %.3f, baseline %.3f", workload, fp, fs, bs)
	}
	limit := bs * (1 - maxPct/100)
	if fs < limit {
		return fmt.Errorf("%s speedup at P=%d regressed: baseline %.2fx, now %.2fx, limit %.2fx (-%.0f%%)",
			workload, fp, bs, fs, limit, maxPct)
	}
	fmt.Printf("%s speedup at P=%d: %.2fx vs baseline %.2fx (limit %.2fx)\n", workload, fp, fs, bs, limit)
	return nil
}
