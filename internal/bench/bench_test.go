package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The experiment runners are exercised at Small scale so the harness
// itself is tested: every table must render with the right shape and
// sane values.

func TestTableFormatting(t *testing.T) {
	tbl := &Table{Title: "t", Header: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.Notes = append(tbl.Notes, "hello")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"t\n", "a", "bb", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig6Small(t *testing.T) {
	sz := Small()
	sz.FerretCorpus, sz.FerretQueries = 60, 20
	tbl := Fig6Ferret(nil, []int{1, 2}, sz)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "1" || tbl.Rows[1][0] != "2" {
		t.Fatalf("P column wrong: %v", tbl.Rows)
	}
}

func TestFig7Small(t *testing.T) {
	sz := Small()
	sz.DedupBytes = 256 << 10
	tbl := Fig7Dedup(nil, []int{1, 2}, sz)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if len(tbl.Notes) == 0 || !strings.Contains(tbl.Notes[0], "parallelism") {
		t.Fatalf("missing parallelism note: %v", tbl.Notes)
	}
}

func TestFig8Small(t *testing.T) {
	sz := Small()
	sz.X264Frames = 20
	tbl := Fig8X264(nil, []int{1, 2}, sz)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestFig9Small(t *testing.T) {
	sz := Small()
	sz.PipeFibN = 600
	tbl := Fig9PipeFib(nil, 2, sz)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 variants", len(tbl.Rows))
	}
}

func TestThm12Small(t *testing.T) {
	sz := Small()
	tbl := Thm12Uniform(nil, 2, sz)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestFig10Small(t *testing.T) {
	sz := Small()
	tbl := Fig10Pathological(nil, 2, sz)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The largest window must never show fewer live iterations than
	// allowed by the smallest.
	if tbl.Rows[0][3] == "" {
		t.Fatal("missing max-live column")
	}
}

func TestAblationsSmall(t *testing.T) {
	sz := Small()
	sz.PipeFibN = 800
	tbl := Ablations(nil, 2, sz)
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][2] != "1.00" {
		t.Fatalf("baseline slowdown should be 1.00, got %s", tbl.Rows[0][2])
	}
}

// TestCheckRegression exercises the CI benchmark guard against doctored
// reports: within the limit passes, beyond it fails, and a missing
// benchmark name is an error rather than a silent pass.
func TestCheckRegression(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, ns float64) string {
		rep := JSONReport{Benchmarks: []JSONBenchmark{{Name: "X/P1", NsPerOp: ns}}}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", 100)
	okFresh := write("ok.json", 110)
	badFresh := write("bad.json", 130)
	if err := CheckRegression(okFresh, base, "X/P1", 15); err != nil {
		t.Fatalf("10%% drift within 15%% limit failed: %v", err)
	}
	if err := CheckRegression(badFresh, base, "X/P1", 15); err == nil {
		t.Fatal("30% regression passed the 15% guard")
	}
	if err := CheckRegression(okFresh, base, "Missing", 15); err == nil {
		t.Fatal("missing benchmark name passed")
	}

	// A zero or missing baseline metric must be an error, not a silent
	// pass: 100*(x-0)/0 is +Inf (or NaN for x=0), and NaN never exceeds
	// maxPct, so a garbage baseline would wave real regressions through.
	zeroBase := write("zerobase.json", 0)
	if err := CheckRegression(badFresh, zeroBase, "X/P1", 15); err == nil {
		t.Fatal("zero baseline ns_per_op passed the guard")
	}
	negBase := write("negbase.json", -5)
	if err := CheckRegression(badFresh, negBase, "X/P1", 15); err == nil {
		t.Fatal("negative baseline ns_per_op passed the guard")
	}
	// A record present under the guarded name but with the metric field
	// absent decodes as 0 — the "missing metric" shape of the same bug.
	missingMetric := filepath.Join(dir, "missingmetric.json")
	if err := os.WriteFile(missingMetric, []byte(`{"benchmarks":[{"name":"X/P1"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CheckRegression(badFresh, missingMetric, "X/P1", 15); err == nil {
		t.Fatal("missing baseline metric passed the guard")
	}
	// And the fresh side: a bogus (non-positive) fresh reading makes the
	// drift -100%, which would also pass silently.
	zeroFresh := write("zerofresh.json", 0)
	if err := CheckRegression(zeroFresh, base, "X/P1", 15); err == nil {
		t.Fatal("zero fresh ns_per_op passed the guard")
	}
}

// TestCheckMetricRegression exercises the generalized guard on the
// counting metrics: the absolute slack must carry zero/near-zero
// baselines (an arena-backed pipeline's allocs_per_op), the percentage
// bound must still catch blowups, and garbage metrics must error.
func TestCheckMetricRegression(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, allocs, bytes float64) string {
		rep := JSONReport{Benchmarks: []JSONBenchmark{{Name: "X/P1", NsPerOp: 100, AllocsPerOp: allocs, BytesPerOp: bytes}}}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", 30, 50000)
	okFresh := write("ok.json", 40, 55000)
	badFresh := write("bad.json", 700, 4e6)
	if err := CheckMetricRegression(okFresh, base, "X/P1", "allocs_per_op", 15, 16); err != nil {
		t.Fatalf("within percentage+slack failed: %v", err)
	}
	if err := CheckMetricRegression(badFresh, base, "X/P1", "allocs_per_op", 15, 16); err == nil {
		t.Fatal("20× alloc blowup passed the guard")
	}
	if err := CheckMetricRegression(badFresh, base, "X/P1", "bytes_per_op", 15, 4096); err == nil {
		t.Fatal("80× bytes blowup passed the guard")
	}
	if err := CheckMetricRegression(okFresh, base, "X/P1", "parks_per_op", 15, 1); err == nil {
		t.Fatal("unknown metric name passed")
	}

	// Zero baselines: legitimate for counters when slack supplies the
	// tolerance, an error when it does not (a pure percentage bound on a
	// zero baseline tolerates nothing and flaps on warm-up noise).
	zeroBase := write("zerobase.json", 0, 0)
	zeroFresh := write("zerofresh.json", 0, 0)
	smallFresh := write("smallfresh.json", 10, 1000)
	if err := CheckMetricRegression(zeroFresh, zeroBase, "X/P1", "allocs_per_op", 15, 16); err != nil {
		t.Fatalf("zero fresh vs zero baseline with slack failed: %v", err)
	}
	if err := CheckMetricRegression(smallFresh, zeroBase, "X/P1", "allocs_per_op", 15, 16); err != nil {
		t.Fatalf("within-slack drift off a zero baseline failed: %v", err)
	}
	if err := CheckMetricRegression(smallFresh, zeroBase, "X/P1", "allocs_per_op", 15, 0); err == nil {
		t.Fatal("zero baseline with zero slack must refuse to guard")
	}
	if err := CheckMetricRegression(smallFresh, zeroBase, "X/P1", "bytes_per_op", 15, 16); err == nil {
		t.Fatal("1000 fresh bytes over a zero baseline with slack 16 passed")
	}
	// ns_per_op keeps its stricter positivity contract through the
	// generalized path: a decoded-as-zero row is a missing row, not a win.
	zeroNs := filepath.Join(dir, "zerons.json")
	if err := os.WriteFile(zeroNs, []byte(`{"benchmarks":[{"name":"X/P1","allocs_per_op":5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CheckMetricRegression(okFresh, zeroNs, "X/P1", "ns_per_op", 15, 5); err == nil {
		t.Fatal("zero baseline ns_per_op passed the generalized guard")
	}
}

// TestGuardMissingRowListsAvailable pins the guard's missing-row contract
// in both directions: when the guarded name is absent from the baseline
// report or from the fresh report, the error must name the rows that
// report does contain — the same affordance the suite's zero-match filter
// error gives — so a renamed guard entry against a stale baseline is
// diagnosable from the failure alone.
func TestGuardMissingRowListsAvailable(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rows ...string) string {
		rep := JSONReport{}
		for _, r := range rows {
			rep.Benchmarks = append(rep.Benchmarks, JSONBenchmark{Name: r, NsPerOp: 100})
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	full := write("full.json", "X/P1", "X/P1/CompilePlans=false", "Y/P2")
	stale := write("stale.json", "X/P1", "Y/P2")
	empty := write("empty.json")

	// Direction 1: the row exists in the fresh run but the baseline
	// predates it — the error must blame the baseline path and list the
	// baseline's rows.
	err := CheckMetricRegression(full, stale, "X/P1/CompilePlans=false", "ns_per_op", 15, 0)
	if err == nil {
		t.Fatal("row missing from baseline passed the guard")
	}
	for _, want := range []string{"X/P1/CompilePlans=false", "stale.json", "available", "X/P1", "Y/P2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("baseline-direction error %q does not mention %q", err, want)
		}
	}
	if strings.Contains(err.Error(), "full.json") {
		t.Errorf("baseline-direction error %q blames the fresh report", err)
	}

	// Direction 2: the baseline has the row but the fresh run (e.g. run
	// with a narrower -only filter) does not — the error must blame the
	// fresh path instead.
	err = CheckRegression(stale, full, "X/P1/CompilePlans=false", 15)
	if err == nil {
		t.Fatal("row missing from fresh report passed the guard")
	}
	for _, want := range []string{"X/P1/CompilePlans=false", "stale.json", "available", "X/P1", "Y/P2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("fresh-direction error %q does not mention %q", err, want)
		}
	}

	// A rowless report says so explicitly rather than emitting a dangling
	// "available:" with nothing after it.
	err = CheckMetricRegression(full, empty, "X/P1", "ns_per_op", 15, 0)
	if err == nil || !strings.Contains(err.Error(), "no rows") {
		t.Errorf("empty-report error = %v, want a no-rows diagnosis", err)
	}
}

// TestArenaAblationSmall renders the arena on/off table at a tiny size
// and pins the recycling contract: the enabled rows must recycle bytes
// and satisfy most checkouts from the pools, the disabled rows must
// recycle nothing and miss every checkout. The on-row miss bound is
// misses < gets rather than exactly zero: the warm-up run primes the
// pools with its own peak concurrent demand — a near-serial warm pass
// creates only a handful of distinct regions through sequential reuse —
// and the measured run's iteration overlap can legitimately peak at the
// full throttle window, allocating one fresh region per extra
// simultaneous checkout. A broken recycler is still unmissable — it
// shows misses == gets, like the disabled rows.
func TestArenaAblationSmall(t *testing.T) {
	sz := Small()
	sz.DedupBytes = 128 << 10
	tbl := ArenaAblation(nil, 2, sz)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want on/off × dedup/lz", len(tbl.Rows))
	}
	atoi := func(s string) int {
		n := 0
		for _, c := range s {
			if c < '0' || c > '9' {
				t.Fatalf("non-numeric counter %q", s)
			}
			n = n*10 + int(c-'0')
		}
		return n
	}
	for _, row := range tbl.Rows {
		gets, misses, recycled := row[5], row[6], row[7]
		switch row[0] {
		case "arena on":
			if g, m := atoi(gets), atoi(misses); m >= g {
				t.Errorf("%s/%s: steady-state misses = %d of %d gets, want strictly fewer (a disabled arena misses every get)", row[0], row[1], m, g)
			}
			if recycled == "0.0" {
				t.Errorf("%s/%s: recycled nothing", row[0], row[1])
			}
		case "arena off":
			if misses != gets {
				t.Errorf("%s/%s: misses %s != gets %s on a disabled arena", row[0], row[1], misses, gets)
			}
			if recycled != "0.0" {
				t.Errorf("%s/%s: disabled arena recycled %s MB", row[0], row[1], recycled)
			}
		default:
			t.Errorf("unexpected config %q", row[0])
		}
	}
}

// TestJSONSuiteFilterMatchesNothing pins the -only contract: a filter
// that selects zero rows must error (naming the available rows) instead
// of silently writing an empty report, and WriteJSONFile must not leave a
// truncated artifact behind.
func TestJSONSuiteFilterMatchesNothing(t *testing.T) {
	var buf bytes.Buffer
	err := JSONSuite(&buf, SuiteConfig{Filters: []string{"NoSuchBenchmarkRow"}})
	if err == nil {
		t.Fatal("zero-match filter produced no error")
	}
	for _, want := range []string{"NoSuchBenchmarkRow", "SerialOverheadPerIter/P1", "BatchedSerialOverhead/P1", elasticRowName} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteJSONFile(path, SuiteConfig{Filters: []string{"NoSuchBenchmarkRow"}}); err == nil {
		t.Fatal("WriteJSONFile accepted a zero-match filter")
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Errorf("zero-match filter left %s behind", path)
	}
}

// TestGrainAblationSmall renders the grain table at a tiny size.
func TestGrainAblationSmall(t *testing.T) {
	sz := Small()
	sz.DedupBytes = 128 << 10
	tbl := GrainAblation(nil, 2, sz)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want Grain(1)/Grain(4)/Grain(16)/adaptive", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "Grain(1)" || tbl.Rows[3][0] != "adaptive" {
		t.Fatalf("unexpected config column: %v", tbl.Rows)
	}
}

func TestElasticitySmall(t *testing.T) {
	sz := Small()
	tbl := Elasticity(nil, 2, sz)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want fixed + elastic", len(tbl.Rows))
	}
	if tbl.Rows[1][2] == "0" {
		t.Errorf("elastic config recorded no worker spawns: %v", tbl.Rows[1])
	}
	if len(tbl.Notes) == 0 || !strings.Contains(tbl.Notes[0], "scale-up latency") {
		t.Errorf("missing scale-up latency note: %v", tbl.Notes)
	}
}

func TestElasticScaleUpRow(t *testing.T) {
	row := elasticScaleUpRow()
	if row.Name != elasticRowName {
		t.Fatalf("row name = %q", row.Name)
	}
	if !(row.NsPerOp > 0) {
		t.Fatalf("scale-up latency = %v, want > 0", row.NsPerOp)
	}
}

func TestAdaptiveThrottleSmall(t *testing.T) {
	sz := Small()
	tbl := AdaptiveThrottle(nil, 2, sz)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[1] != "fixed K=4P" && row[1] != "adaptive" {
			t.Fatalf("unexpected policy %q", row[1])
		}
	}
}
