// Package bench is the experiment harness: it reruns every table and
// figure of the paper's evaluation (Section 10) and the throttling
// experiments of Section 11 on the synthetic substrates, printing rows in
// the same shape the paper reports.
//
// Measured columns are wall-clock on this host; "model" columns are the
// greedy-bound predictions min(P, T1/T∞(K)) from the dag analyzer, which
// extend the tables past the host's core count (the paper's machine had
// 16 cores; see EXPERIMENTS.md for the comparison protocol).
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a formatted experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// timeIt measures one execution of f.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// bestOf runs f reps times and keeps the minimum duration, the standard
// noise-rejection protocol for small benchmarks.
func bestOf(reps int, f func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	best := timeIt(f)
	for i := 1; i < reps; i++ {
		if d := timeIt(f); d < best {
			best = d
		}
	}
	return best
}

func secs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }
func ratio(a, b time.Duration) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", float64(a)/float64(b))
}
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
