package lz

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"io"
	"os"
	"runtime"
	"testing"

	"piper"
	"piper/internal/workload"
)

// streamInput returns a fresh reader over the test corpus; every call
// yields the identical byte sequence, which is what lets serial and
// pipeline runs consume "the same file" independently.
func streamInput(size int64) io.Reader {
	return workload.StreamReader(0xBEEF, size, 4096, 0.4)
}

// TestStreamPipelineMatchesSerial: the pipeline container must equal the
// serial reference bit for bit across modes and engine configurations —
// the streaming analogue of TestPipelineMatchesSerial.
func TestStreamPipelineMatchesSerial(t *testing.T) {
	const size = 3 << 20
	for _, mode := range []struct {
		name string
		o    StreamOptions
	}{
		{"dense", StreamOptions{ChunkSize: 512 << 10, BlockSize: 64 << 10, Mode: ModeDense}},
		{"sparse", StreamOptions{ChunkSize: 512 << 10, BlockSize: 64 << 10, Mode: ModeSparse}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			var want bytes.Buffer
			if _, err := StreamCompressSerial(&want, streamInput(size), mode.o); err != nil {
				t.Fatal(err)
			}
			cfgs := []struct {
				name string
				o    StreamOptions
				opts []piper.Option
			}{
				{"P1-default", mode.o, nil},
				{"P4-adaptive", mode.o, []piper.Option{piper.Workers(4)}},
				{"P4-grain1", mode.o, []piper.Option{piper.Workers(4), piper.Grain(1)}},
				{"P2-noplans", mode.o, []piper.Option{piper.Workers(2), piper.CompilePlans(false)}},
				{"P4-serialblocks", func() StreamOptions { o := mode.o; o.SerialBlocks = true; return o }(),
					[]piper.Option{piper.Workers(4)}},
				{"P2-throttle1", func() StreamOptions { o := mode.o; o.Throttle = 1; return o }(),
					[]piper.Option{piper.Workers(2)}},
			}
			for _, cfg := range cfgs {
				eng := piper.NewEngine(cfg.opts...)
				var got bytes.Buffer
				st := &StreamStats{}
				cfg.o.Stats = st
				if _, err := StreamCompress(eng, &got, streamInput(size), cfg.o); err != nil {
					eng.Close()
					t.Fatalf("%s: %v", cfg.name, err)
				}
				eng.Close()
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Fatalf("%s: pipeline container differs from serial reference (%d vs %d bytes)",
						cfg.name, got.Len(), want.Len())
				}
				if st.RawBytes != size || st.Chunks == 0 || st.Blocks == 0 {
					t.Fatalf("%s: implausible stats %+v", cfg.name, *st)
				}
			}
			var dec bytes.Buffer
			if _, err := StreamDecompress(&dec, bytes.NewReader(want.Bytes())); err != nil {
				t.Fatal(err)
			}
			var raw bytes.Buffer
			if _, err := io.Copy(&raw, streamInput(size)); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dec.Bytes(), raw.Bytes()) {
				t.Fatal("round trip mismatch")
			}
		})
	}
}

// TestStreamProfile: the instrumented entry point must produce the same
// container and a work/span measurement (the scalability harness's input).
func TestStreamProfile(t *testing.T) {
	o := StreamOptions{ChunkSize: 128 << 10, BlockSize: 32 << 10, Mode: ModeSparse}
	var want bytes.Buffer
	if _, err := StreamCompressSerial(&want, streamInput(1<<20), o); err != nil {
		t.Fatal(err)
	}
	var rep piper.PipelineReport
	o.Profile = &rep
	eng := piper.NewEngine(piper.Workers(2))
	defer eng.Close()
	var got bytes.Buffer
	if _, err := StreamCompress(eng, &got, streamInput(1<<20), o); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("profiled run container differs from serial reference")
	}
	if rep.WorkNs <= 0 || rep.SpanNs <= 0 || rep.Iterations != 8 {
		t.Fatalf("implausible profile: %+v", rep)
	}
}

// streamContainer compresses size bytes serially and returns the container
// plus the offsets of each chunk record (for corruption surgery).
func streamContainer(t *testing.T, o StreamOptions, size int64) ([]byte, []int) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := StreamCompressSerial(&buf, streamInput(size), o); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	// Re-parse to find record offsets: header is 4 magic bytes + 4
	// uvarints, then records of (seq, rawLen, encLen, payload).
	off := 4
	for i := 0; i < 4; i++ {
		_, n := uvarintAt(t, enc, off)
		off += n
	}
	var recs []int
	for {
		recs = append(recs, off)
		_, n := uvarintAt(t, enc, off) // seq
		off += n
		rawLen, n := uvarintAt(t, enc, off)
		off += n
		if rawLen == 0 {
			_, n = uvarintAt(t, enc, off) // total
			if off+n != len(enc) {
				t.Fatalf("trailing bytes after terminator: %d != %d", off+n, len(enc))
			}
			return enc, recs
		}
		encLen, n := uvarintAt(t, enc, off)
		off += n + int(encLen)
	}
}

func uvarintAt(t *testing.T, b []byte, off int) (uint64, int) {
	t.Helper()
	v, n := uvarint(b[off:])
	if n <= 0 {
		t.Fatalf("bad uvarint at %d", off)
	}
	return v, n
}

// uvarint is binary.Uvarint without the import clash in helpers.
func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i, c := range b {
		if c < 0x80 {
			return v | uint64(c)<<(7*i), i + 1
		}
		v |= uint64(c&0x7f) << (7 * i)
		if i >= 9 {
			return 0, -1
		}
	}
	return 0, 0
}

// TestStreamDecompressRejectsCorrupt: truncation mid-chunk, reordered
// chunk records, length overflows, and crafted headers must all produce
// errors — never panics, hangs, or silent misdecodes.
func TestStreamDecompressRejectsCorrupt(t *testing.T) {
	o := StreamOptions{ChunkSize: 64 << 10, BlockSize: 16 << 10, Mode: ModeSparse}
	enc, recs := streamContainer(t, o, 300<<10) // 5 chunks + terminator
	if len(recs) < 4 {
		t.Fatalf("want >= 3 chunk records, got %d", len(recs)-1)
	}
	decompress := func(b []byte) error {
		_, err := StreamDecompress(io.Discard, bytes.NewReader(b))
		return err
	}
	if err := decompress(enc); err != nil {
		t.Fatalf("pristine container failed: %v", err)
	}

	// Truncation at every prefix length in the middle of chunk 2's record.
	for cut := recs[1]; cut < recs[2]; cut += 131 {
		if err := decompress(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	// Dropping the terminator only must also fail.
	if err := decompress(enc[:recs[len(recs)-1]]); err == nil {
		t.Fatal("container without terminator decoded successfully")
	}

	// Reordered chunk records: swap the first two chunks wholesale. Every
	// field still parses; only the sequence numbers betray the reorder.
	swapped := append([]byte(nil), enc[:recs[0]]...)
	swapped = append(swapped, enc[recs[1]:recs[2]]...)
	swapped = append(swapped, enc[recs[0]:recs[1]]...)
	swapped = append(swapped, enc[recs[2]:]...)
	if err := decompress(swapped); err == nil {
		t.Fatal("reordered chunk records decoded successfully")
	}

	// Bit flip inside a payload: the factor structure must not survive.
	flip := append([]byte(nil), enc...)
	flip[(recs[1]+recs[2])/2] ^= 0x10
	if dec, err := decompressBytes(flip); err == nil {
		raw := new(bytes.Buffer)
		io.Copy(raw, streamInput(300<<10))
		if bytes.Equal(dec, raw.Bytes()) {
			t.Fatal("bit flip produced an identical decode")
		}
	}

	header := append([]byte(nil), enc[:recs[0]]...)
	crafted := map[string][]byte{
		"bad-magic":       append([]byte("pLZ9"), enc[4:]...),
		"chunk-too-big":   {'p', 'L', 'Z', '1', 0x80, 0x80, 0x80, 0x10, 0x80, 0x80, 1, 8, 0},         // chunkSize 2^25
		"raw-overflow":    append(append([]byte(nil), header...), 0, 0xFF, 0xFF, 0x7F, 1, 0),         // rawLen >> chunkSize
		"enc-zero":        append(append([]byte(nil), header...), 0, 1, 0),                           // encLen == 0
		"enc-overflow":    append(append([]byte(nil), header...), 0, 1, 0xFF, 0xFF, 0x7F),            // encLen > 2*chunkSize
		"factor-escape":   append(append([]byte(nil), header...), 0, 2, 2, 4, 9),                     // copy dist 9 with nothing produced
		"payload-short":   append(append([]byte(nil), header...), 0, 3, 2, 0, 'x'),                   // 1 raw byte from a 3-byte promise
		"payload-surplus": append(append([]byte(nil), header...), 0, 1, 4, 0, 'x', 0, 'y'),           // enc continues past rawLen
		"total-mismatch":  append(append([]byte(nil), header...), 0, 1, 2, 0, 'x', 1, 0, 0xFF, 0x7F), // terminator total wrong
	}
	for name, s := range crafted {
		if err := decompress(s); err == nil {
			t.Errorf("crafted stream %q decoded without error", name)
		}
	}
}

func decompressBytes(enc []byte) ([]byte, error) {
	var out bytes.Buffer
	_, err := StreamDecompress(&out, bytes.NewReader(enc))
	return out.Bytes(), err
}

// TestStreamMemLimitError: a ceiling below one chunk's working set must be
// rejected up front, not discovered by OOM.
func TestStreamMemLimitError(t *testing.T) {
	o := StreamOptions{ChunkSize: 8 << 20, MemLimit: 1 << 20}
	if _, err := StreamCompressSerial(io.Discard, streamInput(1<<10), o); !errors.Is(err, ErrMemLimit) {
		t.Fatalf("serial: want ErrMemLimit, got %v", err)
	}
	eng := piper.NewEngine()
	defer eng.Close()
	if _, err := StreamCompress(eng, io.Discard, streamInput(1<<10), o); !errors.Is(err, ErrMemLimit) {
		t.Fatalf("pipeline: want ErrMemLimit, got %v", err)
	}
}

// TestStreamMaxArenaRequestBound is the reserve-per-chunk regression
// guard: the largest arena region the compressor requests must be derived
// from the chunk geometry, never the input length — a 32 MiB stream
// through 2 MiB chunks must request nothing larger than the 2·ChunkSize
// output region.
func TestStreamMaxArenaRequestBound(t *testing.T) {
	resetMaxArenaRequest()
	o := StreamOptions{Mode: ModeSparse}
	eng := piper.NewEngine(piper.Workers(2))
	defer eng.Close()
	st := &StreamStats{}
	o.Stats = st
	if _, err := StreamCompress(eng, io.Discard, streamInput(32<<20), o); err != nil {
		t.Fatal(err)
	}
	bound := int64(2 * DefaultStreamChunkSize)
	if st.MaxArenaRequest > bound {
		t.Fatalf("stream max arena request %d exceeds chunk-derived bound %d", st.MaxArenaRequest, bound)
	}
	if got := debugMaxArenaRequest.Load(); got > bound {
		t.Fatalf("package max arena request %d exceeds chunk-derived bound %d", got, bound)
	}

	// Block pipeline with a caller-supplied per-input block size: the
	// clamp must keep the scratch reservation at the maxFactorBlockSize
	// bound instead of scaling with len(data).
	resetMaxArenaRequest()
	data := workload.TextStream(9, 3<<20, 4096, 0.35)
	enc := Compress(eng, 0, data, len(data)) // pre-clamp: a 5n-int32 region for n = 3 MiB
	blockBound := int64(scratchLen(maxFactorBlockSize) * 4)
	if got := debugMaxArenaRequest.Load(); got > blockBound {
		t.Fatalf("block max arena request %d exceeds clamp-derived bound %d", got, blockBound)
	}
	if dec, err := Decompress(enc); err != nil || !bytes.Equal(dec, data) {
		t.Fatalf("clamped block stream round trip: err=%v equal=%v", err, bytes.Equal(dec, data))
	}
	if !bytes.Equal(enc, CompressSerial(data, len(data))) {
		t.Fatal("clamped pipeline stream differs from clamped serial stream")
	}
}

// streamTestSize is the bounded-memory / round-trip stream length:
// 256 MiB by default (the documented ceiling's test point), 1 GiB when
// LZSTREAM_GB is set (the CI acceptance run).
func streamTestSize(t *testing.T) int64 {
	if os.Getenv("LZSTREAM_GB") != "" {
		return 1 << 30
	}
	if testing.Short() {
		return 64 << 20
	}
	return 256 << 20
}

// TestStreamBoundedMemory streams >= 256 MiB through the compressor under
// a 64 MiB arena ceiling and asserts both the arena's own gauge and the
// process heap stay bounded, across the grain/plan configurations the
// inline fast path distinguishes.
func TestStreamBoundedMemory(t *testing.T) {
	size := streamTestSize(t)
	const memLimit = 64 << 20
	cfgs := []struct {
		name string
		opts []piper.Option
	}{
		{"adaptive", []piper.Option{piper.Workers(2)}},
		{"grain1", []piper.Option{piper.Workers(2), piper.Grain(1)}},
		{"noplans", []piper.Option{piper.Workers(2), piper.CompilePlans(false)}},
	}
	for _, cfg := range cfgs {
		t.Run(cfg.name, func(t *testing.T) {
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)

			eng := piper.NewEngine(cfg.opts...)
			st := &StreamStats{}
			o := StreamOptions{Mode: ModeSparse, MemLimit: memLimit, Stats: st}
			n, err := StreamCompress(eng, io.Discard, streamInput(size), o)
			eng.Close()
			if err != nil {
				t.Fatal(err)
			}
			if st.RawBytes != size || n != st.CompressedBytes {
				t.Fatalf("stats mismatch: raw=%d want %d, wrote %d vs %d", st.RawBytes, size, n, st.CompressedBytes)
			}
			if st.PeakLiveArenaBytes > memLimit {
				t.Fatalf("peak live arena bytes %d exceeds MemLimit %d", st.PeakLiveArenaBytes, memLimit)
			}
			if st.DerivedThrottle < 1 {
				t.Fatalf("throttle %d", st.DerivedThrottle)
			}

			runtime.GC()
			runtime.ReadMemStats(&after)
			// The heap check is the leak detector: after the run the
			// retained delta must be a small multiple of the working set,
			// nowhere near the input size. The ceiling here is far below
			// the smallest input this test streams.
			delta := int64(after.HeapInuse) - int64(before.HeapInuse)
			if delta > memLimit+(32<<20) {
				t.Fatalf("retained heap delta %d MiB exceeds ceiling (input %d MiB)",
					delta>>20, size>>20)
			}
			t.Logf("%s: %d MiB in, %d MiB out, peak arena %d MiB, retained delta %d MiB, throttle %d",
				cfg.name, size>>20, n>>20, st.PeakLiveArenaBytes>>20, delta>>20, st.DerivedThrottle)
		})
	}
}

// TestStreamGBRoundTrip is the acceptance run: a large seeded stream must
// compress bit-identically to the serial reference and round-trip exactly,
// without ever materializing input or output (digests on both sides), with
// pipeline memory under the default documented ceiling.
func TestStreamGBRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	size := streamTestSize(t)
	o := StreamOptions{Mode: ModeSparse}

	// Serial reference digest of the container.
	serialHash := sha256.New()
	if _, err := StreamCompressSerial(serialHash, streamInput(size), o); err != nil {
		t.Fatal(err)
	}

	// Pipeline run: container digest and, through an io.Pipe, the decoded
	// stream digest — compressor and decompressor run concurrently, so
	// peak memory is the pipeline's working set, not the stream size.
	eng := piper.NewEngine(piper.Workers(4))
	defer eng.Close()
	st := &StreamStats{}
	o.Stats = st
	pipeHash := sha256.New()
	pr, pw := io.Pipe()
	decDone := make(chan error, 1)
	decHash := sha256.New()
	go func() {
		_, err := StreamDecompress(decHash, pr)
		pr.CloseWithError(err)
		decDone <- err
	}()
	if _, err := StreamCompress(eng, io.MultiWriter(pipeHash, pw), streamInput(size), o); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-decDone; err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(pipeHash.Sum(nil), serialHash.Sum(nil)) {
		t.Fatal("pipeline container digest differs from serial reference")
	}
	rawHash := sha256.New()
	if _, err := io.Copy(rawHash, streamInput(size)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decHash.Sum(nil), rawHash.Sum(nil)) {
		t.Fatal("round-trip digest differs from input digest")
	}
	if st.PeakLiveArenaBytes > DefaultStreamMemLimit {
		t.Fatalf("peak live arena bytes %d exceeds the documented %d ceiling",
			st.PeakLiveArenaBytes, int64(DefaultStreamMemLimit))
	}
	t.Logf("%d MiB round-tripped, %d MiB compressed, peak arena %d MiB, throttle %d",
		size>>20, st.CompressedBytes>>20, st.PeakLiveArenaBytes>>20, st.DerivedThrottle)
}
