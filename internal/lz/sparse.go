package lz

import (
	"encoding/binary"
	"math/bits"
)

// Sparse sliding chunk index for the streaming compressor (stream.go).
//
// The block pipeline's dense factorizer needs five n-sized int32 arrays
// per block — fine at 16 KiB blocks, fatal at streaming scale, where the
// working set must stay O(chunk + index) no matter how large the input
// grows. Following the sparse suffix/LCP idea (Ayad, Loukides, Pissis,
// Verbeek, "Sparse Suffix and LCP Array: Simple, Direct, Small, and
// Fast", arXiv:2310.09023), only positions on an s-aligned sampling grid
// are indexed: the index stores one int32 per sampled position instead of
// five per position, trading match-finding exhaustiveness for a footprint
// the sample rate controls directly.
//
// Concretely the index is a fingerprint-chained catalogue of the chunk's
// sampled suffixes: each grid position's 8-byte prefix is hashed into a
// chain, and — the part that makes parallel block factorization
// deterministic — the chain heads are snapshotted at every block
// boundary, so the factorizer of block b sees exactly the sampled
// suffixes of blocks 0..b-1 regardless of how the scheduler interleaves
// the other blocks. Within a block, factorization replays its own grid
// insertions sequentially (factorizeBlockSparse), or uses an exact dense
// suffix array of just that block (factorizeBlockDense), so candidate
// sets never depend on cross-block timing.

const (
	// indexHashBits sizes the per-block chain-head tables (2^bits heads).
	indexHashBits = 12
	indexHashSize = 1 << indexHashBits
	// fingerprintLen is the hashed prefix width: positions closer than
	// this to the chunk end are not indexed and not looked up.
	fingerprintLen = 8
	// maxChainProbe bounds the candidates examined per chain walk, which
	// keeps lookup cost O(1) on repetitive data at a small and
	// deterministic compression cost.
	maxChainProbe = 8
	// minCopyLen is the streaming factorizers' emission threshold: a
	// match shorter than this encodes no better than literals, and the
	// threshold is what makes the worst-case encoded size of a chunk
	// exactly 2·raw bytes (see appendFactors), so output regions can be
	// reserved tightly against the arena's power-of-2 classes.
	minCopyLen = 4
)

// load64 reads 8 little-endian bytes at i; the caller guarantees
// i+fingerprintLen <= len(b).
func load64(b []byte, i int) uint64 { return binary.LittleEndian.Uint64(b[i:]) }

// hash8 maps an 8-byte fingerprint to a chain index.
func hash8(x uint64) uint32 { return uint32((x * 0x9E3779B185EBCA87) >> (64 - indexHashBits)) }

// sampledSlots is the number of grid positions of an n-byte chunk that
// carry a full fingerprint.
func sampledSlots(n, rate int) int {
	if n < fingerprintLen {
		return 0
	}
	return (n-fingerprintLen)/rate + 1
}

// indexScratchLen is the chunk index's working-memory requirement in
// int32 elements: one chain link per sampled slot, one head table
// snapshot per block, and one live head table for the build sweep.
func indexScratchLen(n, rate, blockSize int) int {
	nblocks := (n + blockSize - 1) / blockSize
	return sampledSlots(n, rate) + (nblocks+1)*indexHashSize
}

// chunkIndex is the sparse match index of one chunk. prev chains sampled
// slots that share a fingerprint hash (by descending position); heads
// holds, per block, the chain heads over strictly earlier blocks only.
type chunkIndex struct {
	data      []byte
	rate      int
	blockSize int
	prev      []int32
	heads     []int32 // nblocks × indexHashSize, snapshot at each block start
}

// buildChunkIndex fills ix over data using caller-provided backing of at
// least indexScratchLen(len(data), rate, blockSize) elements. One serial
// O(n/rate) sweep; the streaming pipeline runs it at the top of each
// chunk's parallel stage.
func buildChunkIndex(ix *chunkIndex, data []byte, rate, blockSize int, backing []int32) {
	n := len(data)
	slots := sampledSlots(n, rate)
	nblocks := (n + blockSize - 1) / blockSize
	ix.data, ix.rate, ix.blockSize = data, rate, blockSize
	ix.prev = backing[:slots]
	ix.heads = backing[slots : slots+nblocks*indexHashSize]
	live := backing[slots+nblocks*indexHashSize : slots+(nblocks+1)*indexHashSize]
	for i := range live {
		live[i] = -1
	}
	slot := 0
	for b := 0; b < nblocks; b++ {
		copy(ix.heads[b*indexHashSize:(b+1)*indexHashSize], live)
		blockEnd := (b + 1) * blockSize
		for slot < slots && slot*rate < blockEnd {
			q := slot * rate
			h := hash8(load64(data, q))
			ix.prev[slot] = live[h]
			live[h] = int32(slot)
			slot++
		}
	}
}

// bestBefore walks the chain of data[p:p+fingerprintLen] restricted to
// blocks strictly before blockStart and returns the best (src, len) found,
// seeded with the caller's current best so the merge with in-block
// candidates is a single comparison chain. Longer wins; on equal length
// the larger source position (smaller distance) wins. src is -1 when no
// candidate beats the seed.
func (ix *chunkIndex) bestBefore(blockStart, p, maxLen int, bestSrc, bestL int32) (int32, int32) {
	if p+fingerprintLen > len(ix.data) {
		return bestSrc, bestL
	}
	b := blockStart / ix.blockSize
	slot := ix.heads[b*indexHashSize+int(hash8(load64(ix.data, p)))]
	for probes := 0; slot >= 0 && probes < maxChainProbe; probes++ {
		q := int(slot) * ix.rate
		if l := commonLen(ix.data, q, p, maxLen); l > bestL || (l == bestL && int32(q) > bestSrc) {
			bestSrc, bestL = int32(q), l
		}
		slot = ix.prev[slot]
	}
	return bestSrc, bestL
}

// commonLen is the longest common prefix of data[q:] and data[p:], capped
// at max, word-compared for streaming throughput. q < p; overlap is fine
// (the LZ77 self-copy case): the decoder reproduces the chunk prefix
// byte-identically, so comparing against the raw chunk equals comparing
// against decoded output.
func commonLen(data []byte, q, p, max int) int32 {
	l := 0
	for l+8 <= max {
		x := load64(data, q+l) ^ load64(data, p+l)
		if x != 0 {
			return int32(l + bits.TrailingZeros64(x)>>3)
		}
		l += 8
	}
	for l < max && data[q+l] == data[p+l] {
		l++
	}
	return int32(l)
}

// sparseScratchLen is factorizeBlockSparse's working-memory requirement
// for a blockSize-byte block, in int32 elements: a local chain-head table
// plus one link per in-block grid slot.
func sparseScratchLen(blockSize, rate int) int {
	return indexHashSize + blockSize/rate + 2
}

// factorizeBlockSparse factorizes chunk[start:end] using only the sampled
// grid: cross-block candidates come from the chunk index's block-start
// snapshot, in-block candidates from a local chain the factorizer builds
// over its own grid positions as the greedy pointer advances. Every
// candidate set is a pure function of (chunk, start, end, rate), so
// parallel block factorization is bit-deterministic. Factors are appended
// to dst with chunk-absolute distances; copies shorter than minCopyLen
// are emitted as literals.
func factorizeBlockSparse(chunk []byte, ix *chunkIndex, start, end int, scratch []int32, dst []Factor) []Factor {
	n := len(chunk)
	rate := ix.rate
	localHead := scratch[:indexHashSize]
	for i := range localHead {
		localHead[i] = -1
	}
	firstSlot := (start + rate - 1) / rate
	localPrev := scratch[indexHashSize:]
	slots := sampledSlots(n, rate)
	nextIns := firstSlot

	insertUpTo := func(p int) {
		for nextIns < slots && nextIns*rate < p {
			q := nextIns * rate
			h := hash8(load64(chunk, q))
			localPrev[nextIns-firstSlot] = localHead[h]
			localHead[h] = int32(nextIns)
			nextIns++
		}
	}

	for p := start; p < end; {
		insertUpTo(p)
		var bestSrc, bestL int32 = -1, 0
		maxLen := end - p
		if p+fingerprintLen <= n {
			slot := localHead[hash8(load64(chunk, p))]
			for probes := 0; slot >= 0 && probes < maxChainProbe; probes++ {
				q := int(slot) * rate
				if l := commonLen(chunk, q, p, maxLen); l > bestL || (l == bestL && int32(q) > bestSrc) {
					bestSrc, bestL = int32(q), l
				}
				slot = localPrev[int(slot)-firstSlot]
			}
			if start > 0 {
				bestSrc, bestL = ix.bestBefore(start, p, maxLen, bestSrc, bestL)
			}
		}
		if bestL >= minCopyLen {
			dst = append(dst, Factor{Dist: int32(p) - bestSrc, Len: bestL})
			p += int(bestL)
		} else {
			dst = append(dst, Factor{Lit: chunk[p]})
			p++
		}
	}
	return dst
}

// factorizeBlockDense factorizes chunk[start:end] with the exact dense
// in-block machinery of factorizeInto — a suffix array of just this block
// with PSV/NSV candidates — merged at each factor start with the sparse
// cross-block candidates of the chunk index. backing must hold
// scratchLen(end-start) int32 elements. The in-block candidates dominate
// length ties automatically (their positions are ≥ start, every
// cross-block position is < start), matching bestBefore's tie rule.
func factorizeBlockDense(chunk []byte, ix *chunkIndex, start, end int, backing []int32, dst []Factor) []Factor {
	block := chunk[start:end]
	nb := len(block)
	if nb == 0 {
		return dst
	}
	sa := backing[:nb:nb]
	isa := backing[nb : 2*nb : 2*nb]
	psv := backing[2*nb : 3*nb : 3*nb]
	nsv := backing[3*nb : 4*nb : 4*nb]
	ext := backing[4*nb : 5*nb+1 : 5*nb+1]
	suffixArrayInto(block, sa, isa, psv, nsv, ext)
	for r, p := range sa {
		isa[p] = int32(r)
	}
	ansvInto(sa, psv, nsv, ext)

	match := func(p int, q int32) int32 {
		if q < 0 {
			return 0
		}
		return commonLen(block, int(q), p, nb-p)
	}
	for pr := 0; pr < nb; {
		r := isa[pr]
		q1, q2 := psv[r], nsv[r]
		l1, l2 := match(pr, q1), match(pr, q2)
		rel, bestL := q1, l1
		if l2 > l1 || (l2 == l1 && q2 > q1) {
			rel, bestL = q2, l2
		}
		bestSrc := int32(-1)
		if bestL > 0 {
			bestSrc = int32(start) + rel
		}
		p := start + pr
		if start > 0 {
			bestSrc, bestL = ix.bestBefore(start, p, end-p, bestSrc, bestL)
		}
		if bestL >= minCopyLen {
			dst = append(dst, Factor{Dist: int32(p) - bestSrc, Len: bestL})
			pr += int(bestL)
		} else {
			dst = append(dst, Factor{Lit: block[pr]})
			pr++
		}
	}
	return dst
}
