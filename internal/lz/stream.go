package lz

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"

	"piper"
	"piper/internal/arena"
)

// Streaming compressor: the GB-scale form of the LZ workload.
//
// The block pipeline (pipelines.go) factorizes one resident byte slice;
// this file factorizes an io.Reader of unbounded length under a hard
// memory ceiling. The shape is the same SPS pipe_while, one level up:
//
//	stage 0 (serial):    read the next chunk off the stream into a
//	                     recycled arena region
//	stage 1 (parallel):  build the chunk's sparse match index, then
//	                     factorize the chunk's blocks — through a nested
//	                     pipeline, so one large chunk cannot serialize
//	                     the stream — and encode the factors
//	stage 2 (pipe_wait): emit the chunk record to the output writer, in
//	                     stream order
//
// Memory is bounded by construction, not by measurement: every buffer a
// chunk needs (raw bytes, index, per-block factor lists and scratch,
// encoded output) is reserved at a size derived from the chunk geometry
// alone — never from the input length — and checked out of the engine's
// arena size classes, and the pipeline's throttle K is derived from
// MemLimit divided by that per-chunk footprint. The steady state recycles
// every region, so a terabyte stream runs in the same few dozen MiB as a
// gigabyte one.

// StreamMode selects how a chunk's blocks find their matches.
type StreamMode int

const (
	// ModeDense factorizes each block with an exact dense suffix array of
	// that block (PSV/NSV candidates, as in the block pipeline), merged
	// with sparse cross-block candidates from the chunk index. Best
	// compression; per-block scratch is 5 int32 per block byte.
	ModeDense StreamMode = iota
	// ModeSparse matches only on the sampled grid, in-block and cross-
	// block alike. Scratch falls to one int32 per SampleRate block bytes
	// and factorization becomes a single hash-probe sweep — the
	// throughput configuration for multi-GiB streams.
	ModeSparse
)

const (
	// DefaultStreamChunkSize is the default chunk granularity: large
	// enough that the sparse index finds distant repeats, small enough
	// that a handful of in-flight chunks fit comfortably under the
	// default ceiling.
	DefaultStreamChunkSize = 2 << 20
	// DefaultStreamBlockSize is the default intra-chunk parallel grain.
	DefaultStreamBlockSize = 128 << 10
	// DefaultSampleRate is the default sparse-index sampling step.
	DefaultSampleRate = 8
	// DefaultStreamMemLimit is the documented default ceiling on the
	// compressor's resident pipeline memory: 256 MiB.
	DefaultStreamMemLimit = 256 << 20
	// maxStreamChunkSize keeps chunk-absolute distances (and every scratch
	// reservation) within the arena's largest size class.
	maxStreamChunkSize = 16 << 20
	minStreamChunkSize = 64 << 10
	minStreamBlockSize = 4 << 10
	// streamNestedThrottle is the nested block pipeline's throttling
	// limit — the number of a chunk's blocks in flight at once, which the
	// footprint accounting multiplies into the ceiling.
	streamNestedThrottle = 4
)

// ErrMemLimit reports a StreamOptions whose MemLimit cannot hold even one
// chunk's working set; shrink ChunkSize or raise the limit.
var ErrMemLimit = errors.New("lz: MemLimit below the per-chunk working set; shrink ChunkSize or raise MemLimit")

// StreamOptions configures StreamCompress / StreamCompressSerial. The
// zero value selects the defaults above (dense mode, 2 MiB chunks,
// 128 KiB blocks, sample rate 8, 256 MiB ceiling).
type StreamOptions struct {
	ChunkSize  int
	BlockSize  int
	SampleRate int
	Mode       StreamMode
	// MemLimit is the hard ceiling on the pipeline's resident memory
	// (arena bytes checked out across all in-flight chunks). The
	// throttle is derived as MemLimit / per-chunk footprint; 0 means
	// DefaultStreamMemLimit.
	MemLimit int64
	// Throttle caps in-flight chunks below what MemLimit alone would
	// allow; 0 means use the MemLimit-derived value.
	Throttle int
	// SerialBlocks factorizes a chunk's blocks sequentially inside the
	// chunk's parallel stage instead of through a nested pipeline —
	// chunk-level parallelism only. Used by the profiled runs (a flat
	// stage graph keeps work/span attribution exact) and as the
	// footprint-minimal configuration.
	SerialBlocks bool
	// Profile, when non-nil, runs the outer pipeline instrumented and
	// stores the work/span report — the scalability harness's input for
	// the virtual-time speedup model. Implies SerialBlocks.
	Profile *piper.PipelineReport
	// Stats, when non-nil, receives run counters at completion.
	Stats *StreamStats
}

// StreamStats reports one streaming run.
type StreamStats struct {
	Chunks, Blocks            int64
	RawBytes, CompressedBytes int64
	// PeakLiveArenaBytes is the high-water mark of the engine arena's
	// LiveBytes gauge observed at region checkout during the run — the
	// measured side of the MemLimit contract (serial runs, which use
	// plain allocations, report 0).
	PeakLiveArenaBytes int64
	// MaxArenaRequest is the largest single region request the run made;
	// bounded by the chunk geometry, never by the input length.
	MaxArenaRequest int64
	// DerivedThrottle is the chunk throttle actually used.
	DerivedThrottle int
}

// debugMaxArenaRequest tracks the largest arena region request the
// package has made since the last reset — the regression hook for the
// reserve-per-chunk sizing contract (tests assert it stays at a bound
// derived from chunk/block geometry even for GiB inputs).
var debugMaxArenaRequest atomic.Int64

func resetMaxArenaRequest() { debugMaxArenaRequest.Store(0) }

func noteArenaRequest(track *atomic.Int64, n int64) {
	for {
		cur := track.Load()
		if n <= cur || track.CompareAndSwap(cur, n) {
			return
		}
	}
}

// arenaGet is the package's single arena checkout point: it records the
// request size against the sizing contract and, when a run is being
// measured, the post-checkout live high-water mark.
func arenaGet(a *arena.Arena, sc *streamCounters, n int) *arena.Ref {
	noteArenaRequest(&debugMaxArenaRequest, int64(n))
	r := a.Get(n)
	if sc != nil {
		noteArenaRequest(&sc.maxReq, int64(n))
		noteArenaRequest(&sc.peakLive, a.Stats().LiveBytes)
	}
	return r
}

// streamCounters is the atomic backing for StreamStats during a run.
type streamCounters struct {
	chunks, blocks, raw atomic.Int64
	peakLive, maxReq    atomic.Int64
}

// normalized applies defaults and clamps, returning the derived chunk
// throttle alongside.
func (o StreamOptions) normalized() (StreamOptions, int, error) {
	if o.ChunkSize <= 0 {
		o.ChunkSize = DefaultStreamChunkSize
	}
	o.ChunkSize = clampInt(o.ChunkSize, minStreamChunkSize, maxStreamChunkSize)
	if o.BlockSize <= 0 {
		o.BlockSize = DefaultStreamBlockSize
	}
	o.BlockSize = clampInt(o.BlockSize, minStreamBlockSize, o.ChunkSize)
	if o.SampleRate <= 0 {
		o.SampleRate = DefaultSampleRate
	}
	o.SampleRate = clampInt(o.SampleRate, 1, 256)
	if o.MemLimit <= 0 {
		o.MemLimit = DefaultStreamMemLimit
	}
	if o.Profile != nil {
		o.SerialBlocks = true
	}
	k := int(o.MemLimit / o.chunkFootprint())
	if k < 1 {
		return o, 0, ErrMemLimit
	}
	if k > 32 {
		k = 32 // more in-flight chunks than any pool is wide buys nothing
	}
	if o.Throttle > 0 && o.Throttle < k {
		k = o.Throttle
	}
	return o, k, nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// classCeil rounds a request to the arena size class that will actually
// be charged, so the footprint arithmetic matches the LiveBytes gauge.
func classCeil(n int) int64 {
	if n <= 256 {
		return 256
	}
	return int64(1) << bits.Len(uint(n-1))
}

// blockScratchBytes is one block's factorizer scratch reservation.
func (o StreamOptions) blockScratchBytes() int {
	if o.Mode == ModeSparse {
		return sparseScratchLen(o.BlockSize, o.SampleRate) * 4
	}
	return scratchLen(o.BlockSize) * 4
}

// blockFactorBytes is one block's worst-case factor-list reservation
// (every input position a literal factor) — the per-block, never
// per-input, sizing rule.
func (o StreamOptions) blockFactorBytes() int {
	return o.BlockSize * int(unsafe.Sizeof(Factor{}))
}

// chunkFootprint is the arena charge of one in-flight chunk, rounded to
// the classes the arena will bill: raw bytes, encoded output (worst case
// 2·raw, exact — see appendFactors), sparse index, and the nested block
// pipeline's in-flight scratch and factor regions. MemLimit divided by
// this is the chunk throttle.
func (o StreamOptions) chunkFootprint() int64 {
	nblocks := streamNestedThrottle
	if o.SerialBlocks {
		nblocks = 1
	}
	return classCeil(o.ChunkSize) +
		classCeil(2*o.ChunkSize) +
		classCeil(indexScratchLen(o.ChunkSize, o.SampleRate, o.BlockSize)*4) +
		int64(nblocks)*(classCeil(o.blockScratchBytes())+classCeil(o.blockFactorBytes()))
}

// Container format. All integers are uvarints.
//
//	magic "pLZ1"
//	chunkSize, blockSize, sampleRate, mode
//	chunk*:     seq, rawLen (>0), encLen, payload[encLen]
//	terminator: seq, 0, totalRawLen
//
// A chunk payload is a factor sequence (len, dist | 0, literal byte) with
// chunk-absolute distances; block boundaries are an encoder-internal
// parallelization detail and do not appear in the container. seq makes
// reordered records detectable, encLen makes mid-chunk truncation
// detectable, and the terminator's total makes dropped tails detectable.
var streamMagic = [4]byte{'p', 'L', 'Z', '1'}

// appendFactors encodes a factor list without a count header. Worst case
// is exactly 2 bytes per raw byte: a literal costs 2, and a copy of
// len >= minCopyLen costs at most 4+4 <= 2·len bytes.
func appendFactors(dst []byte, fs []Factor) []byte {
	for _, f := range fs {
		if f.Len == 0 {
			dst = append(dst, 0, f.Lit)
			continue
		}
		dst = appendUvarint(dst, uint64(f.Len))
		dst = appendUvarint(dst, uint64(f.Dist))
	}
	return dst
}

// chunkJob carries one chunk through the outer pipeline.
type chunkJob struct {
	seq  uint64
	data []byte // view of raw
	out  []byte // encoded payload, view of outRef
	raw  *arena.Ref
	oref *arena.Ref
}

var chunkJobPool = sync.Pool{New: func() any { return new(chunkJob) }}

// StreamCompress compresses r onto w through eng's pipeline and returns
// the bytes written. The output is bit-identical to
// StreamCompressSerial(w, r, o) for the same options and input.
func StreamCompress(eng *piper.Engine, w io.Writer, r io.Reader, o StreamOptions) (int64, error) {
	o, k, err := o.normalized()
	if err != nil {
		return 0, err
	}
	a := eng.Arena()
	sc := &streamCounters{}
	var written int64
	var hdr [4 * binary.MaxVarintLen64]byte
	n, err := w.Write(appendStreamHeader(hdr[:0], o))
	written += int64(n)
	if err != nil {
		return written, err
	}

	var (
		seq   uint64
		total uint64
	)
	// firstErr is set in the serial emit stage (write failures) and in the
	// serial read stage (read failures); the two stages belong to
	// different iterations and may overlap, hence the atomic.
	var firstErr atomic.Pointer[error]
	setErr := func(e error) { firstErr.CompareAndSwap(nil, &e) }
	next := func() (*chunkJob, bool) {
		if firstErr.Load() != nil {
			return nil, false
		}
		ref := arenaGet(a, sc, o.ChunkSize)
		buf := ref.B[:o.ChunkSize]
		nr, re := io.ReadFull(r, buf)
		if nr == 0 {
			ref.Release()
			if re != nil && re != io.EOF && re != io.ErrUnexpectedEOF {
				setErr(re)
			}
			return nil, false
		}
		if re != nil && re != io.EOF && re != io.ErrUnexpectedEOF {
			setErr(re) // compress what we read, then stop
		}
		j := chunkJobPool.Get().(*chunkJob)
		j.raw, j.data, j.seq = ref, buf[:nr], seq
		seq++
		return j, true
	}
	body := func(it *piper.Iter, j *chunkJob) {
		defer func() {
			if j.oref != nil {
				j.oref.Release()
			}
			j.raw.Release()
			*j = chunkJob{}
			chunkJobPool.Put(j)
		}()
		it.Continue(1)
		compressChunk(it, a, sc, o, j)
		it.Wait(2)
		if firstErr.Load() != nil {
			return
		}
		rec := appendUvarint(hdr[:0], j.seq)
		rec = appendUvarint(rec, uint64(len(j.data)))
		rec = appendUvarint(rec, uint64(len(j.out)))
		for _, b := range [][]byte{rec, j.out} {
			n, err := w.Write(b)
			written += int64(n)
			if err != nil {
				setErr(err)
				return
			}
		}
		total += uint64(len(j.data))
	}
	if o.Profile != nil {
		*o.Profile = piper.ProfilePipe(eng, k, next, body)
	} else {
		piper.PipeThrottled(eng, k, next, body)
	}
	if ep := firstErr.Load(); ep != nil {
		return written, *ep
	}
	term := appendUvarint(hdr[:0], seq)
	term = appendUvarint(term, 0)
	term = appendUvarint(term, total)
	n, err = w.Write(term)
	written += int64(n)
	if err != nil {
		return written, err
	}
	fillStreamStats(o.Stats, sc, k, total, written)
	return written, nil
}

func appendStreamHeader(dst []byte, o StreamOptions) []byte {
	dst = append(dst, streamMagic[:]...)
	dst = appendUvarint(dst, uint64(o.ChunkSize))
	dst = appendUvarint(dst, uint64(o.BlockSize))
	dst = appendUvarint(dst, uint64(o.SampleRate))
	return appendUvarint(dst, uint64(o.Mode))
}

func fillStreamStats(st *StreamStats, sc *streamCounters, k int, raw uint64, written int64) {
	if st == nil {
		return
	}
	*st = StreamStats{
		Chunks:             sc.chunks.Load(),
		Blocks:             sc.blocks.Load(),
		RawBytes:           int64(raw),
		CompressedBytes:    written,
		PeakLiveArenaBytes: sc.peakLive.Load(),
		MaxArenaRequest:    sc.maxReq.Load(),
		DerivedThrottle:    k,
	}
}

// compressChunk builds the chunk's sparse index, factorizes its blocks —
// in a nested pipeline unless SerialBlocks — and encodes the factors into
// j.out. Runs entirely in the outer pipeline's parallel stage; the nested
// pipeline is spawned through the iteration handle (it.PipeWhileThrottled
// suspends this iteration until the inner pipeline drains), never through
// the engine's top-level entry point, which would park a worker.
func compressChunk(outer *piper.Iter, a *arena.Arena, sc *streamCounters, o StreamOptions, j *chunkJob) {
	n := len(j.data)
	idxLen := indexScratchLen(n, o.SampleRate, o.BlockSize)
	idxRef := arenaGet(a, sc, idxLen*4)
	defer idxRef.Release()
	var ix chunkIndex
	buildChunkIndex(&ix, j.data, o.SampleRate, o.BlockSize, arena.View[int32](idxRef, idxLen))

	j.oref = arenaGet(a, sc, 2*o.ChunkSize)
	out := j.oref.B[:0]
	sc.chunks.Add(1)

	if o.SerialBlocks {
		// Deferred, not straight-line: factorizeBlock runs under a live
		// cancellation scope, and an unwind between these Gets and a bare
		// Release would leak both regions until arena teardown (arenaref).
		sref := arenaGet(a, sc, o.blockScratchBytes())
		defer sref.Release()
		fref := arenaGet(a, sc, o.blockFactorBytes())
		defer fref.Release()
		scratch := arena.View[int32](sref, o.blockScratchBytes()/4)
		for start := 0; start < n; start += o.BlockSize {
			end := start + o.BlockSize
			if end > n {
				end = n
			}
			fs := factorizeBlock(o.Mode, j.data, &ix, start, end, scratch,
				arena.View[Factor](fref, end-start)[:0])
			out = appendFactors(out, fs)
			sc.blocks.Add(1)
		}
		j.out = out
		return
	}

	// Nested pipeline: suffix-array construction (and all other per-block
	// factorization work) parallelizes across the chunk's blocks, so one
	// large chunk does not serialize the stream. The serial pipe_wait
	// stage concatenates the encodings in block order.
	type blockJob struct {
		start, end int
		factors    []Factor
		sref, fref *arena.Ref
	}
	var cur *blockJob
	start := 0
	outer.PipeWhileThrottled(streamNestedThrottle, func() bool {
		if start >= n {
			return false
		}
		end := start + o.BlockSize
		if end > n {
			end = n
		}
		cur = &blockJob{start: start, end: end}
		start = end
		return true
	}, func(it *piper.Iter) {
		b := cur // stage 0: capture before the next iteration's cond runs
		defer func() {
			if b.fref != nil {
				b.fref.Release()
			}
			if b.sref != nil {
				b.sref.Release()
			}
		}()
		it.Continue(1)
		b.sref = arenaGet(a, sc, o.blockScratchBytes())
		b.fref = arenaGet(a, sc, o.blockFactorBytes())
		b.factors = factorizeBlock(o.Mode, j.data, &ix, b.start, b.end,
			arena.View[int32](b.sref, o.blockScratchBytes()/4),
			arena.View[Factor](b.fref, b.end-b.start)[:0])
		sc.blocks.Add(1)
		it.Wait(2)
		out = appendFactors(out, b.factors)
	})
	j.out = out
}

// factorizeBlock dispatches on the stream mode.
func factorizeBlock(mode StreamMode, chunk []byte, ix *chunkIndex, start, end int, scratch []int32, dst []Factor) []Factor {
	if mode == ModeSparse {
		return factorizeBlockSparse(chunk, ix, start, end, scratch, dst)
	}
	return factorizeBlockDense(chunk, ix, start, end, scratch, dst)
}

// StreamCompressSerial is the single-threaded reference: same chunking,
// same index, same per-block factorization, same container — the stream
// the pipeline must reproduce bit for bit. It allocates its working set
// directly (no engine, no arena) and holds exactly one chunk's worth.
func StreamCompressSerial(w io.Writer, r io.Reader, o StreamOptions) (int64, error) {
	o, _, err := o.normalized()
	if err != nil {
		return 0, err
	}
	var written int64
	var hdr [4 * binary.MaxVarintLen64]byte
	n, err := w.Write(appendStreamHeader(hdr[:0], o))
	written += int64(n)
	if err != nil {
		return written, err
	}
	chunk := make([]byte, o.ChunkSize)
	idx := make([]int32, indexScratchLen(o.ChunkSize, o.SampleRate, o.BlockSize))
	scratch := make([]int32, o.blockScratchBytes()/4)
	factors := make([]Factor, 0, o.BlockSize)
	out := make([]byte, 0, 2*o.ChunkSize)
	var seq, total uint64
	for {
		nr, re := io.ReadFull(r, chunk)
		if nr == 0 {
			if re != nil && re != io.EOF && re != io.ErrUnexpectedEOF {
				return written, re
			}
			break
		}
		data := chunk[:nr]
		var ix chunkIndex
		buildChunkIndex(&ix, data, o.SampleRate, o.BlockSize, idx)
		out = out[:0]
		for start := 0; start < nr; start += o.BlockSize {
			end := start + o.BlockSize
			if end > nr {
				end = nr
			}
			factors = factorizeBlock(o.Mode, data, &ix, start, end, scratch, factors[:0])
			out = appendFactors(out, factors)
		}
		rec := appendUvarint(hdr[:0], seq)
		rec = appendUvarint(rec, uint64(nr))
		rec = appendUvarint(rec, uint64(len(out)))
		for _, b := range [][]byte{rec, out} {
			nw, werr := w.Write(b)
			written += int64(nw)
			if werr != nil {
				return written, werr
			}
		}
		seq++
		total += uint64(nr)
		if re != nil {
			if re != io.EOF && re != io.ErrUnexpectedEOF {
				return written, re
			}
			break // partial chunk: the stream ended
		}
	}
	term := appendUvarint(hdr[:0], seq)
	term = appendUvarint(term, 0)
	term = appendUvarint(term, total)
	n, err = w.Write(term)
	written += int64(n)
	return written, err
}

// StreamDecompress decodes a container produced by StreamCompress or
// StreamCompressSerial, writing the raw bytes to w. Every header field is
// treated as attacker-controlled: sizes are bounded before any
// allocation, chunk sequence numbers must be contiguous, payloads must
// consume exactly their declared length while producing exactly their
// declared raw length, and the terminator's total must match.
func StreamDecompress(w io.Writer, r io.Reader) (int64, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return 0, errCorrupt
	}
	if magic != streamMagic {
		return 0, fmt.Errorf("lz: bad stream magic %q", magic[:])
	}
	chunkSize, err := readBoundedUvarint(br, maxStreamChunkSize)
	if err != nil || chunkSize < minStreamChunkSize {
		return 0, errCorrupt
	}
	blockSize, err := readBoundedUvarint(br, chunkSize)
	if err != nil || blockSize < minStreamBlockSize {
		return 0, errCorrupt
	}
	if _, err := readBoundedUvarint(br, 256); err != nil { // sample rate
		return 0, errCorrupt
	}
	if _, err := readBoundedUvarint(br, int64(ModeSparse)); err != nil {
		return 0, errCorrupt
	}
	enc := make([]byte, 2*chunkSize)
	raw := make([]byte, 0, chunkSize)
	var written int64
	var seq, total uint64
	for {
		gotSeq, err := binary.ReadUvarint(br)
		if err != nil {
			return written, errCorrupt
		}
		rawLen, err := readBoundedUvarint(br, chunkSize)
		if err != nil {
			return written, fmt.Errorf("lz: chunk %d raw length overflow", seq)
		}
		if rawLen == 0 {
			// Terminator. Its sequence number is the chunk count, so a
			// record dropped or replayed anywhere upstream is caught even
			// if every surviving record decoded cleanly.
			declared, err := binary.ReadUvarint(br)
			if err != nil || gotSeq != seq || declared != total {
				return written, errCorrupt
			}
			return written, nil
		}
		if gotSeq != seq {
			return written, fmt.Errorf("lz: chunk out of order: got seq %d, want %d", gotSeq, seq)
		}
		encLen, err := readBoundedUvarint(br, 2*chunkSize)
		if err != nil || encLen == 0 {
			return written, fmt.Errorf("lz: chunk %d encoded length overflow", seq)
		}
		if _, err := io.ReadFull(br, enc[:encLen]); err != nil {
			return written, fmt.Errorf("lz: chunk %d truncated", seq)
		}
		raw, err = decodeChunkPayload(raw[:0], enc[:encLen], int(rawLen))
		if err != nil {
			return written, err
		}
		nw, werr := w.Write(raw)
		written += int64(nw)
		if werr != nil {
			return written, werr
		}
		seq++
		total += uint64(rawLen)
	}
}

// readBoundedUvarint reads one uvarint and rejects values above max
// before the caller can turn them into an allocation or an offset.
func readBoundedUvarint(br *bufio.Reader, max int64) (int64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil || v > uint64(max) {
		return 0, errCorrupt
	}
	return int64(v), nil
}

// decodeChunkPayload expands one chunk's factor sequence into dst. The
// payload must consume exactly len(enc) bytes and produce exactly rawLen
// output bytes; distances must stay inside the produced chunk prefix.
func decodeChunkPayload(dst, enc []byte, rawLen int) ([]byte, error) {
	for len(dst) < rawLen {
		l, n := binary.Uvarint(enc)
		if n <= 0 {
			return dst, errCorrupt
		}
		enc = enc[n:]
		if l == 0 {
			if len(enc) == 0 {
				return dst, errCorrupt
			}
			dst = append(dst, enc[0])
			enc = enc[1:]
			continue
		}
		d, n := binary.Uvarint(enc)
		if n <= 0 {
			return dst, errCorrupt
		}
		enc = enc[n:]
		if d == 0 || d > uint64(len(dst)) || l > uint64(rawLen-len(dst)) {
			return dst, fmt.Errorf("lz: factor escapes its chunk: dist %d len %d at %d", d, l, len(dst))
		}
		src := len(dst) - int(d)
		for k := 0; k < int(l); k++ {
			dst = append(dst, dst[src+k])
		}
	}
	if len(enc) != 0 {
		return dst, errCorrupt // declared encLen larger than the factors consumed
	}
	return dst, nil
}
