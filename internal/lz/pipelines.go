package lz

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"unsafe"

	"piper"
	"piper/internal/arena"
)

// Block pipeline: the input splits into fixed-size blocks, each factorized
// independently (factors never cross a block boundary, so blocks decode in
// isolation). As a pipe_while this is the classic SPS shape —
//
//	stage 0 (serial):  slice the next block off the input
//	stage 1 (parallel): suffix-array factorization of the block
//	stage 2 (serial, pipe_wait): encode the factors into the output, in order
//
// — with a parallel stage whose cost swings with the block's content,
// which is exactly the fine-grained variable-cost regime the batched
// inline fast path and its adaptive grain control target.

// DefaultBlockSize is the pipeline's default block granularity. Small
// enough that per-iteration scheduling cost is visible (the point of the
// workload), large enough that factors still find their repeats.
const DefaultBlockSize = 16 << 10

// maxBlockSize keeps ranks within int32 for the suffix sorter; it bounds
// what the decoder accepts in a stream header.
const maxBlockSize = 1 << 30

// maxFactorBlockSize caps the block size the encoders will actually use.
// The factorizer's arena reservations are derived from the block size
// (scratchLen(n)·4 and n·sizeof(Factor) bytes), so the cap is what keeps
// them per-block instead of per-input: without it, Compress(eng, 0, data,
// len(data)) on a 1 GiB input would demand a single 20 GiB region, far
// past the arena's 2^26-byte largest class. 2 MiB blocks keep the largest
// request at scratchLen(2 MiB)·4 ≈ 2^25.4 — inside the pooled classes —
// while factors at that range have long stopped improving. The clamped
// value is what lands in the stream header, so pipeline and serial
// encoders still agree bit for bit.
const maxFactorBlockSize = 2 << 20

var errCorrupt = errors.New("lz: corrupt stream")

// appendUvarint / readUvarint: minimal varint plumbing for the encoding.
func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(dst, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

// appendBlock encodes one block's factor list.
func appendBlock(dst []byte, factors []Factor) []byte {
	dst = appendUvarint(dst, uint64(len(factors)))
	for _, f := range factors {
		if f.Len == 0 {
			dst = appendUvarint(dst, 0)
			dst = append(dst, f.Lit)
			continue
		}
		dst = appendUvarint(dst, uint64(f.Len))
		dst = appendUvarint(dst, uint64(f.Dist))
	}
	return dst
}

// job carries one block through the pipeline; scratch backs the
// factorizer's int32 working arrays and fref the factor output, both
// checked out of the engine's arena in the parallel stage.
type job struct {
	block   []byte
	factors []Factor
	scratch *arena.Ref
	fref    *arena.Ref
}

// jobPool recycles job headers; each body returns its job after the
// serial encode stage.
var jobPool = sync.Pool{New: func() any { return new(job) }}

// Compress factorizes data on eng with blockSize-byte blocks (0 means
// DefaultBlockSize) and returns the encoded stream. k is the throttling
// limit (0 means the engine default).
//
// Each block's factorization runs entirely in recycled arena regions —
// one for the suffix-sort working arrays, one holding the factor list
// until the serial stage encodes it — released by defer at body end, so
// cancellation and panic unwinding cannot leak them. The steady state
// allocates nothing per block.
func Compress(eng *piper.Engine, k int, data []byte, blockSize int) []byte {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize > maxFactorBlockSize {
		blockSize = maxFactorBlockSize
	}
	// Presize for an output as large as the input plus header margin: any
	// compressible stream fits without reallocation, so the encode stage's
	// only allocation is this one up-front buffer.
	out := appendUvarint(make([]byte, 0, 64+len(data)+len(data)/16), uint64(len(data)))
	out = appendUvarint(out, uint64(blockSize))
	a := eng.Arena()
	off := 0
	piper.PipeThrottled(eng, k, func() (*job, bool) {
		if off >= len(data) {
			return nil, false
		}
		end := off + blockSize
		if end > len(data) {
			end = len(data)
		}
		j := jobPool.Get().(*job)
		j.block = data[off:end]
		off = end
		return j, true
	}, func(it *piper.Iter, j *job) {
		defer func() {
			if j.fref != nil {
				j.fref.Release()
				j.fref = nil
			}
			if j.scratch != nil {
				j.scratch.Release()
				j.scratch = nil
			}
			j.block, j.factors = nil, nil
			jobPool.Put(j)
		}()
		it.Continue(1) // parallel: factorize the block
		n := len(j.block)
		j.scratch = arenaGet(a, nil, scratchLen(n)*4)
		j.fref = arenaGet(a, nil, n*int(unsafe.Sizeof(Factor{})))
		j.factors = factorizeInto(j.block,
			arena.View[int32](j.scratch, scratchLen(n)),
			arena.View[Factor](j.fref, n)[:0])
		it.Wait(2) // serial, in order: encode
		out = appendBlock(out, j.factors)
	})
	return out
}

// CompressSerial is the single-threaded reference (the TS baseline the
// pipeline's output must match bit for bit).
func CompressSerial(data []byte, blockSize int) []byte {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize > maxFactorBlockSize {
		blockSize = maxFactorBlockSize
	}
	out := appendUvarint(nil, uint64(len(data)))
	out = appendUvarint(out, uint64(blockSize))
	for off := 0; off < len(data); {
		end := off + blockSize
		if end > len(data) {
			end = len(data)
		}
		out = appendBlock(out, Factorize(data[off:end]))
		off = end
	}
	return out
}

// Decompress decodes a stream produced by Compress or CompressSerial.
func Decompress(stream []byte) ([]byte, error) {
	total, n := binary.Uvarint(stream)
	if n <= 0 {
		return nil, errCorrupt
	}
	stream = stream[n:]
	blockSize, n := binary.Uvarint(stream)
	if n <= 0 || blockSize == 0 || blockSize > maxBlockSize {
		return nil, errCorrupt
	}
	stream = stream[n:]
	// The headers are attacker-controlled; total is only a capacity hint,
	// so clamp it rather than letting a crafted huge value panic makeslice
	// (the final length check still enforces the exact total). A factor
	// costs at least two stream bytes and emits at most blockSize output
	// bytes, so the honest output is bounded by the remaining stream size
	// times blockSize; the cheaper constant clamp below suffices for the
	// allocation hint.
	capHint := total
	if limit := uint64(len(stream)) * 8; capHint > limit {
		capHint = limit
	}
	out := make([]byte, 0, capHint)
	for uint64(len(out)) < total {
		nf, n := binary.Uvarint(stream)
		if n <= 0 || nf == 0 {
			// A block always holds at least one factor (empty blocks are
			// never emitted), so a zero count cannot make progress.
			return nil, errCorrupt
		}
		stream = stream[n:]
		blockStart := len(out)
		for f := uint64(0); f < nf; f++ {
			l, n := binary.Uvarint(stream)
			if n <= 0 {
				return nil, errCorrupt
			}
			stream = stream[n:]
			if l == 0 {
				if len(stream) == 0 {
					return nil, errCorrupt
				}
				out = append(out, stream[0])
				stream = stream[1:]
				continue
			}
			d, n := binary.Uvarint(stream)
			if n <= 0 {
				return nil, errCorrupt
			}
			stream = stream[n:]
			// Both fields are attacker-controlled uint64s: bound them
			// before any int conversion so oversized values cannot wrap
			// into plausible offsets. A copy reaches strictly backwards
			// (Dist >= 1), stays inside its block, and cannot push the
			// block past blockSize.
			produced := uint64(len(out) - blockStart)
			if d == 0 || d > produced || l > blockSize || produced+l > blockSize {
				return nil, fmt.Errorf("lz: factor escapes its block: dist %d len %d", d, l)
			}
			src := len(out) - int(d)
			for k := 0; k < int(l); k++ {
				out = append(out, out[src+k])
			}
		}
		if len(out)-blockStart > int(blockSize) {
			return nil, errCorrupt
		}
	}
	if uint64(len(out)) != total {
		return nil, errCorrupt
	}
	return out, nil
}

// Ratio reports compressed/raw size for a quick workload sanity metric.
func Ratio(raw, compressed []byte) float64 {
	if len(raw) == 0 {
		return 1
	}
	return float64(len(compressed)) / float64(len(raw))
}
