package lz

import (
	"bytes"
	"testing"

	"piper"
	"piper/internal/workload"
)

// TestFactorizeMatchesNaive: the suffix-array factorizer must produce the
// same greedy phrase boundaries (position, length) as the quadratic
// reference. Distances may differ when several previous occurrences tie
// on length, so the comparison is on boundaries plus a round-trip check.
func TestFactorizeMatchesNaive(t *testing.T) {
	rng := workload.NewRNG(42)
	cases := [][]byte{
		nil,
		[]byte("a"),
		[]byte("aaaaaaa"),
		[]byte("abababab"),
		[]byte("abracadabra"),
		[]byte("mississippi"),
		bytes.Repeat([]byte("abc"), 40),
	}
	for c := 0; c < 30; c++ {
		n := 1 + rng.Intn(200)
		alpha := 1 + rng.Intn(4)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(alpha))
		}
		cases = append(cases, b)
	}
	for ci, data := range cases {
		got := Factorize(data)
		want := naiveFactorize(data)
		if len(got) != len(want) {
			t.Fatalf("case %d (%q): %d factors, naive %d", ci, truncate(data), len(got), len(want))
		}
		for k := range got {
			if got[k].Len != want[k].Len || (got[k].Len == 0 && got[k].Lit != want[k].Lit) {
				t.Fatalf("case %d (%q) factor %d: got %+v, naive %+v", ci, truncate(data), k, got[k], want[k])
			}
		}
		if rec := Reconstruct(nil, got); !bytes.Equal(rec, data) {
			t.Fatalf("case %d: reconstruction mismatch", ci)
		}
	}
}

// TestFactorDistancesValid: every copy factor must point inside the
// already-produced prefix.
func TestFactorDistancesValid(t *testing.T) {
	data := workload.TextStream(7, 1<<15, 1024, 0.4)
	pos := int32(0)
	for _, f := range Factorize(data) {
		if f.Len == 0 {
			pos++
			continue
		}
		if f.Dist < 1 || f.Dist > pos {
			t.Fatalf("factor at %d has invalid distance %d", pos, f.Dist)
		}
		pos += f.Len
	}
	if int(pos) != len(data) {
		t.Fatalf("factors cover %d bytes, want %d", pos, len(data))
	}
}

// TestRoundTripSerial: encode/decode round trip through the serial
// compressor across block sizes and data shapes.
func TestRoundTripSerial(t *testing.T) {
	inputs := map[string][]byte{
		"empty":      nil,
		"tiny":       []byte("x"),
		"runs":       bytes.Repeat([]byte{0xaa}, 100_000),
		"text":       workload.TextStream(3, 1<<18, 4096, 0.35),
		"entropic":   randomBytes(11, 1<<16),
		"odd-sizing": workload.TextStream(9, (1<<16)+12345, 512, 0.5),
	}
	for name, data := range inputs {
		for _, bs := range []int{0, 1 << 10, 64 << 10} {
			enc := CompressSerial(data, bs)
			dec, err := Decompress(enc)
			if err != nil {
				t.Fatalf("%s/bs=%d: decompress: %v", name, bs, err)
			}
			if !bytes.Equal(dec, data) {
				t.Fatalf("%s/bs=%d: round trip mismatch (%d vs %d bytes)", name, bs, len(dec), len(data))
			}
		}
	}
}

// TestPipelineMatchesSerial: the piper pipeline must produce the serial
// encoder's stream bit for bit — stage 2's pipe_wait makes the emission
// order serial — across engine configurations including the batching
// extremes.
func TestPipelineMatchesSerial(t *testing.T) {
	data := workload.TextStream(1234, 1<<19, 4096, 0.35)
	want := CompressSerial(data, 8<<10)
	cfgs := []struct {
		name string
		opts []piper.Option
	}{
		{"P1-adaptive", []piper.Option{piper.Workers(1)}},
		{"P4-adaptive", []piper.Option{piper.Workers(4)}},
		{"P4-grain1", []piper.Option{piper.Workers(4), piper.Grain(1)}},
		{"P4-grain4", []piper.Option{piper.Workers(4), piper.Grain(4)}},
		{"P2-coroutine", []piper.Option{piper.Workers(2), piper.InlineFastPath(false)}},
	}
	for _, cfg := range cfgs {
		eng := piper.NewEngine(cfg.opts...)
		got := Compress(eng, 0, data, 8<<10)
		eng.Close()
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: pipeline stream differs from serial encoder", cfg.name)
		}
	}
	dec, err := Decompress(want)
	if err != nil || !bytes.Equal(dec, data) {
		t.Fatalf("round trip: err=%v equal=%v", err, bytes.Equal(dec, data))
	}
	if r := Ratio(data, want); r >= 1.0 {
		t.Logf("note: ratio %.3f >= 1 on this input", r)
	}
}

// TestDecompressRejectsCorrupt: truncations and bit flips must error, not
// panic or hang.
func TestDecompressRejectsCorrupt(t *testing.T) {
	data := workload.TextStream(5, 1<<14, 1024, 0.3)
	enc := CompressSerial(data, 4<<10)
	for cut := 0; cut < len(enc); cut += 97 {
		if _, err := Decompress(enc[:cut]); err == nil && cut < len(enc) {
			// A clean prefix may decode only if it happens to be a full
			// stream; with a fixed total length it cannot.
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	flip := append([]byte(nil), enc...)
	flip[len(flip)/3] ^= 0x40
	if dec, err := Decompress(flip); err == nil && bytes.Equal(dec, data) {
		t.Fatal("bit flip produced an identical decode")
	}

	// Crafted adversarial streams: every field is attacker-controlled and
	// must produce errors, not panics or runaway allocations.
	crafted := map[string][]byte{
		"dist-zero":      {4, 16, 1, 2, 0},                                                              // copy factor with Dist=0
		"dist-huge":      {4, 16, 1, 2, 255, 255, 3},                                                    // Dist far beyond produced output
		"len-huge":       {4, 16, 1, 255, 255, 3, 1},                                                    // Len beyond the block bound
		"zero-factors":   {4, 16, 0},                                                                    // empty block can't make progress
		"huge-total":     append([]byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 1}, 16, 1, 0, 'x'), // total=2^63+
		"huge-blocksize": {4, 255, 255, 255, 255, 255, 255, 255, 255, 255, 1},
	}
	for name, s := range crafted {
		if _, err := Decompress(s); err == nil {
			t.Errorf("crafted stream %q decoded without error", name)
		}
	}
}

func truncate(b []byte) []byte {
	if len(b) > 24 {
		return b[:24]
	}
	return b
}

func randomBytes(seed uint64, n int) []byte {
	b := make([]byte, n)
	workload.NewRNG(seed).Bytes(b)
	return b
}

func BenchmarkFactorize64K(b *testing.B) {
	data := workload.TextStream(77, 64<<10, 4096, 0.35)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Factorize(data)
	}
}
