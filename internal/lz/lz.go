// Package lz implements LZ77 factorization via suffix arrays, after
// "On the Use of Suffix Arrays for Memory-Efficient Lempel-Ziv Data
// Compression" (Ferreira, Oliveira, Figueiredo; arXiv:0903.4251): instead
// of hash chains or an online search tree, the factorizer builds the
// suffix array of a block once and derives each factor's longest previous
// match from the lexicographic neighbours with smaller text positions
// (PSV/NSV), computing match lengths only at factor start positions.
//
// As a piper workload (see pipelines.go) the block factorizer is the
// interesting kind of pipeline stage for grain control: per-block cost is
// fine-grained but highly variable — a repetitive block yields a handful
// of long factors while an entropic one degenerates toward per-byte
// literals — which is the regime where batching's fixed-cost amortization
// and its adaptive backoff both matter.
package lz

// Factor is one LZ77 phrase: Len bytes copied from Dist bytes back, or a
// single literal when Len == 0.
type Factor struct {
	// Dist is the backwards distance to the previous occurrence
	// (1 <= Dist <= position) for a copy factor.
	Dist int32
	// Len is the copy length; 0 marks a literal factor.
	Len int32
	// Lit is the literal byte of a Len == 0 factor.
	Lit byte
}

// scratchLen is the factorizer's working-memory requirement for an
// n-byte block, in int32 elements: five n-sized arrays plus one extra
// slot for the (n+1)-sized counting-sort table. The layout is carved by
// factorizeInto; the suffix sorter's rank/tmp/buf arrays are dead once
// the sort returns, so the ISA/PSV/NSV sweep reuses their slots.
func scratchLen(n int) int { return 5*n + 1 }

// Factorize computes the greedy LZ77 factorization of data: at each
// position the longest match against any earlier position (or a literal
// when no match exists). Factors never reference before the start of
// data, so a block factorizes independently of its neighbours.
func Factorize(data []byte) []Factor {
	n := len(data)
	if n == 0 {
		return nil
	}
	return factorizeInto(data, make([]int32, scratchLen(n)), make([]Factor, 0, 16+n/8))
}

// factorizeInto is Factorize on caller-provided working memory: backing
// must hold at least scratchLen(len(data)) int32 elements (their contents
// do not matter), and factors are appended to dst. A dst with capacity
// len(data) never reallocates — every factor consumes at least one input
// position. The pipeline feeds both from recycled arena regions.
func factorizeInto(data []byte, backing []int32, dst []Factor) []Factor {
	n := len(data)
	if n == 0 {
		return dst
	}
	sa := backing[:n:n]
	isa := backing[n : 2*n : 2*n]
	psv := backing[2*n : 3*n : 3*n]
	nsv := backing[3*n : 4*n : 4*n]
	ext := backing[4*n : 5*n+1 : 5*n+1]
	// The suffix sort borrows the isa/psv/nsv slots as rank/tmp/buf and
	// ext as its counting table; only sa survives it.
	suffixArrayInto(data, sa, isa, psv, nsv, ext)
	// isa is the inverse permutation: isa[p] is the lexicographic rank of
	// the suffix starting at p.
	for r, p := range sa {
		isa[p] = int32(r)
	}
	ansvInto(sa, psv, nsv, ext)

	// Greedy pass: match lengths are computed by direct comparison, but
	// only at factor start positions, so the total comparison work is
	// bounded by n plus the number of factors — the memory-efficient
	// trade the paper makes against storing full LCP/LPF arrays.
	match := func(p int, q int32) int32 {
		if q < 0 {
			return 0
		}
		var l int32
		for int(l) < n-p && data[int(q)+int(l)] == data[p+int(l)] {
			l++
		}
		return l
	}
	for p := 0; p < n; {
		r := isa[p]
		q1, q2 := psv[r], nsv[r]
		l1, l2 := match(p, q1), match(p, q2)
		src, l := q1, l1
		if l2 > l1 || (l2 == l1 && q2 > q1) {
			// Prefer the longer match; on ties the nearer source (larger
			// position → smaller distance) encodes tighter.
			src, l = q2, l2
		}
		if l == 0 {
			dst = append(dst, Factor{Lit: data[p]})
			p++
			continue
		}
		dst = append(dst, Factor{Dist: int32(p) - src, Len: l})
		p += int(l)
	}
	return dst
}

// ansvInto fills psv[r]/nsv[r] with, for the suffix ranked r, the text
// position of the nearest lexicographic neighbour (previous/next rank)
// whose text position is smaller — the only two candidates for the
// longest previous match of SA[r] (any other earlier suffix is
// lexicographically farther, hence shares a no-longer common prefix).
// Computed with the classic all-nearest-smaller-values stack sweep; ext
// is stack storage of at least len(sa) elements.
func ansvInto(sa, psv, nsv, ext []int32) {
	n := len(sa)
	stack := ext[:0]
	for r := 0; r < n; r++ {
		p := sa[r]
		for len(stack) > 0 && stack[len(stack)-1] > p {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			psv[r] = stack[len(stack)-1]
		} else {
			psv[r] = -1
		}
		stack = append(stack, p)
	}
	stack = stack[:0]
	for r := n - 1; r >= 0; r-- {
		p := sa[r]
		for len(stack) > 0 && stack[len(stack)-1] > p {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			nsv[r] = stack[len(stack)-1]
		} else {
			nsv[r] = -1
		}
		stack = append(stack, p)
	}
}

// Reconstruct expands factors into dst (which must be empty or nil) and
// returns the decoded block.
func Reconstruct(dst []byte, factors []Factor) []byte {
	for _, f := range factors {
		if f.Len == 0 {
			dst = append(dst, f.Lit)
			continue
		}
		// Byte-at-a-time on purpose: a factor may overlap its own output
		// (Dist < Len encodes a run), exactly as in LZ77.
		start := len(dst) - int(f.Dist)
		for k := 0; k < int(f.Len); k++ {
			dst = append(dst, dst[start+k])
		}
	}
	return dst
}

// suffixArrayInto builds the suffix array of data into sa by prefix
// doubling with a two-pass radix sort per round — O(n log n), no
// dependencies, and byte alphabets need no initial sort.Slice. n is
// bounded by block sizes (int32 ranks), which the pipeline enforces.
// rank, tmp and buf must be n-sized, count (n+1)-sized; all four are
// working memory with no surviving content.
func suffixArrayInto(data []byte, sa, rank, tmp, buf, count []int32) {
	n := len(data)
	for i := 0; i < n; i++ {
		sa[i] = int32(i)
		rank[i] = int32(data[i])
	}
	if n < 2 {
		return
	}
	// Initial order by first byte (counting sort over the 256-symbol
	// alphabet), then compress the byte values into dense ranks so the
	// doubling rounds can counting-sort over [0, n).
	var cnt [257]int32
	for _, r := range rank {
		cnt[r+1]++
	}
	for c := 1; c < 257; c++ {
		cnt[c] += cnt[c-1]
	}
	for i := 0; i < n; i++ {
		r := rank[i]
		sa[cnt[r]] = int32(i)
		cnt[r]++
	}
	tmp[sa[0]] = 0
	dense := int32(0)
	for i := 1; i < n; i++ {
		if data[sa[i]] != data[sa[i-1]] {
			dense++
		}
		tmp[sa[i]] = dense
	}
	rank, tmp = tmp, rank
	if int(dense) == n-1 {
		return
	}

	for h := 1; ; h *= 2 {
		// Sort by (rank[i], rank[i+h]) pairs. Radix pass 1: order by the
		// second key — suffixes with i+h >= n (empty second key) come
		// first, then the current sa order restricted to positions i-h
		// gives the second-key order for the rest.
		k := 0
		for i := n - h; i < n; i++ {
			buf[k] = int32(i)
			k++
		}
		for _, p := range sa {
			if p >= int32(h) {
				buf[k] = p - int32(h)
				k++
			}
		}
		// Radix pass 2: stable counting sort by the first key.
		for i := range count[:n+1] {
			count[i] = 0
		}
		for i := 0; i < n; i++ {
			count[rank[i]+1]++
		}
		for c := 1; c <= n; c++ {
			count[c] += count[c-1]
		}
		for _, p := range buf {
			r := rank[p]
			sa[count[r]] = p
			count[r]++
		}
		// Re-rank: equal pairs share a rank.
		second := func(p int32) int32 {
			if int(p)+h < n {
				return rank[int(p)+h]
			}
			return -1
		}
		tmp[sa[0]] = 0
		maxRank := int32(0)
		for i := 1; i < n; i++ {
			a, b := sa[i-1], sa[i]
			if rank[a] != rank[b] || second(a) != second(b) {
				maxRank++
			}
			tmp[b] = maxRank
		}
		rank, tmp = tmp, rank
		if int(maxRank) == n-1 {
			break
		}
	}
}

// naiveFactorize is the quadratic reference factorizer used by the tests:
// at each position, scan every earlier start for the longest match.
// Exported to the package tests only through its lowercase name.
func naiveFactorize(data []byte) []Factor {
	n := len(data)
	var factors []Factor
	for p := 0; p < n; {
		bestLen, bestSrc := 0, -1
		for q := 0; q < p; q++ {
			l := 0
			for p+l < n && data[q+l] == data[p+l] {
				l++
			}
			if l > bestLen || (l == bestLen && l > 0 && q > bestSrc) {
				bestLen, bestSrc = l, q
			}
		}
		if bestLen == 0 {
			factors = append(factors, Factor{Lit: data[p]})
			p++
			continue
		}
		factors = append(factors, Factor{Dist: int32(p - bestSrc), Len: int32(bestLen)})
		p += bestLen
	}
	return factors
}
