// Package pipefib implements the paper's pipe-fib microbenchmark
// (Section 10, Figure 9): computing the n-th Fibonacci number in binary
// with a pipeline of Θ(n²) work and Θ(n) span. Iteration i computes
// F(i+3) by ripple-carry addition of the two previous numbers, one bit
// per stage in the fine-grained variant and one 256-bit block per stage
// in the coarsened pipe-fib-256 variant. Every stage is serial
// (pipe_wait), which makes cross-edge checking the dominant overhead and
// dependency folding measurable.
//
// The three result buffers rotate; the safety of the rotation is exactly
// the pipeline discipline: iteration i may overwrite bit j of the buffer
// last used by iteration i-3 only after iterations i-2 and i-1 have read
// it, which the serial bit stages guarantee.
package pipefib

import (
	"math/big"
	"sync/atomic"

	"piper"
)

// Fine computes F(n) bit-serially on a PIPER engine with throttle k.
// n must be at least 3.
func Fine(eng *piper.Engine, k, n int) *big.Int {
	if n < 3 {
		return fibSmall(n)
	}
	maxBits := n + 2
	bufs := [3][]uint8{
		make([]uint8, maxBits),
		make([]uint8, maxBits),
		make([]uint8, maxBits),
	}
	// lens[k] is the published bit-length of F(k), 0 while unknown.
	lens := make([]atomic.Int64, n+1)
	bufs[0][0] = 1 // F(1) = 1
	bufs[1][0] = 1 // F(2) = 1
	lens[1].Store(1)
	lens[2].Store(1)

	// has reports whether F(fk) has a bit at position j, given that the
	// pipeline discipline guarantees bits <= j of F(fk) are final: either
	// the producer finished and published its length, or it is still
	// running beyond bit j, in which case the bit exists.
	has := func(fk int, j int) bool {
		if l := lens[fk].Load(); l != 0 {
			return int64(j) < l
		}
		return true
	}

	i := 0
	iters := n - 2 // iterations compute F(3)..F(n)
	piper.PipeThrottled(eng, k, func() (int, bool) {
		if i >= iters {
			return 0, false
		}
		v := i
		i++
		return v, true
	}, func(it *piper.Iter, idx int) {
		a := bufs[idx%3]       // F(idx+1)
		b := bufs[(idx+1)%3]   // F(idx+2)
		out := bufs[(idx+2)%3] // F(idx+3), overwriting F(idx)
		carry := uint8(0)
		j := 0
		for {
			//piper:allow-dynamic-stage digit wavefront: stage j+1 waits on digit j of the previous iteration, strictly increasing in j
			it.Wait(int64(j) + 1)
			hasA, hasB := has(idx+1, j), has(idx+2, j)
			if !hasA && !hasB && carry == 0 {
				break
			}
			s := carry
			if hasA {
				s += a[j]
			}
			if hasB {
				s += b[j]
			}
			out[j] = s & 1
			carry = s >> 1
			j++
		}
		lens[idx+3].Store(int64(j))
	})

	return bitsToBig(bufs[(iters-1+2)%3], int(lens[n].Load()))
}

// blockBits is the coarsening factor of pipe-fib-256.
const blockBits = 256

const wordsPerBlock = blockBits / 64

// Coarse computes F(n) with 256-bit blocks per stage (pipe-fib-256).
func Coarse(eng *piper.Engine, k, n int) *big.Int {
	if n < 3 {
		return fibSmall(n)
	}
	maxBlocks := (n+2)/blockBits + 2
	type blocks = []uint64
	bufs := [3]blocks{
		make(blocks, maxBlocks*wordsPerBlock),
		make(blocks, maxBlocks*wordsPerBlock),
		make(blocks, maxBlocks*wordsPerBlock),
	}
	// lens[k] holds the published block count of F(k).
	lens := make([]atomic.Int64, n+1)
	bufs[0][0] = 1
	bufs[1][0] = 1
	lens[1].Store(1)
	lens[2].Store(1)

	has := func(fk int, j int) bool {
		if l := lens[fk].Load(); l != 0 {
			return int64(j) < l
		}
		return true
	}

	i := 0
	iters := n - 2
	piper.PipeThrottled(eng, k, func() (int, bool) {
		if i >= iters {
			return 0, false
		}
		v := i
		i++
		return v, true
	}, func(it *piper.Iter, idx int) {
		a := bufs[idx%3]
		b := bufs[(idx+1)%3]
		out := bufs[(idx+2)%3]
		var carry uint64
		j := 0
		for {
			//piper:allow-dynamic-stage limb wavefront: stage j+1 waits on limb j of the previous iteration, strictly increasing in j
			it.Wait(int64(j) + 1)
			hasA, hasB := has(idx+1, j), has(idx+2, j)
			if !hasA && !hasB && carry == 0 {
				break
			}
			base := j * wordsPerBlock
			for w := 0; w < wordsPerBlock; w++ {
				var aw, bw uint64
				if hasA {
					aw = a[base+w]
				}
				if hasB {
					bw = b[base+w]
				}
				s1 := aw + bw
				c1 := b2u(s1 < aw)
				s2 := s1 + carry
				c2 := b2u(s2 < s1)
				out[base+w] = s2
				carry = c1 + c2
			}
			j++
		}
		lens[idx+3].Store(int64(j))
	})

	nBlocks := int(lens[n].Load())
	return wordsToBig(bufs[(iters-1+2)%3], nBlocks*wordsPerBlock)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// SerialFine is the single-threaded counterpart of Fine with the same
// data layout (the TS of Figure 9).
func SerialFine(n int) *big.Int {
	if n < 3 {
		return fibSmall(n)
	}
	maxBits := n + 2
	bufs := [3][]uint8{
		make([]uint8, maxBits),
		make([]uint8, maxBits),
		make([]uint8, maxBits),
	}
	lens := make([]int, n+1)
	bufs[0][0] = 1
	bufs[1][0] = 1
	lens[1], lens[2] = 1, 1
	iters := n - 2
	for idx := 0; idx < iters; idx++ {
		a, b, out := bufs[idx%3], bufs[(idx+1)%3], bufs[(idx+2)%3]
		la, lb := lens[idx+1], lens[idx+2]
		carry := uint8(0)
		j := 0
		for j < la || j < lb || carry > 0 {
			s := carry
			if j < la {
				s += a[j]
			}
			if j < lb {
				s += b[j]
			}
			out[j] = s & 1
			carry = s >> 1
			j++
		}
		lens[idx+3] = j
	}
	return bitsToBig(bufs[(iters-1+2)%3], lens[n])
}

// SerialCoarse is the single-threaded counterpart of Coarse.
func SerialCoarse(n int) *big.Int {
	if n < 3 {
		return fibSmall(n)
	}
	maxBlocks := (n+2)/blockBits + 2
	bufs := [3][]uint64{
		make([]uint64, maxBlocks*wordsPerBlock),
		make([]uint64, maxBlocks*wordsPerBlock),
		make([]uint64, maxBlocks*wordsPerBlock),
	}
	lens := make([]int, n+1)
	bufs[0][0] = 1
	bufs[1][0] = 1
	lens[1], lens[2] = 1, 1
	iters := n - 2
	for idx := 0; idx < iters; idx++ {
		a, b, out := bufs[idx%3], bufs[(idx+1)%3], bufs[(idx+2)%3]
		la, lb := lens[idx+1], lens[idx+2]
		var carry uint64
		j := 0
		for j < la || j < lb || carry > 0 {
			base := j * wordsPerBlock
			for w := 0; w < wordsPerBlock; w++ {
				var aw, bw uint64
				if j < la {
					aw = a[base+w]
				}
				if j < lb {
					bw = b[base+w]
				}
				s1 := aw + bw
				c1 := b2u(s1 < aw)
				s2 := s1 + carry
				c2 := b2u(s2 < s1)
				out[base+w] = s2
				carry = c1 + c2
			}
			j++
		}
		lens[idx+3] = j
	}
	return wordsToBig(bufs[(iters-1+2)%3], lens[n]*wordsPerBlock)
}

// Reference computes F(n) with math/big, the correctness oracle.
func Reference(n int) *big.Int {
	a, b := big.NewInt(1), big.NewInt(1) // F(1), F(2)
	if n <= 2 {
		return a
	}
	for i := 3; i <= n; i++ {
		a.Add(a, b)
		a, b = b, a
	}
	return b
}

func fibSmall(n int) *big.Int {
	if n < 1 {
		return big.NewInt(0)
	}
	return Reference(n)
}

func bitsToBig(bits []uint8, n int) *big.Int {
	v := new(big.Int)
	for j := n - 1; j >= 0; j-- {
		v.Lsh(v, 1)
		if bits[j] != 0 {
			v.Or(v, big.NewInt(1))
		}
	}
	return v
}

func wordsToBig(words []uint64, n int) *big.Int {
	v := new(big.Int)
	buf := make([]byte, 8*n)
	for w := 0; w < n; w++ {
		x := words[w]
		for by := 0; by < 8; by++ {
			buf[8*n-1-(8*w+by)] = byte(x >> (8 * by))
		}
	}
	return v.SetBytes(buf)
}
