package pipefib

import (
	"testing"

	"piper"
)

func TestReferenceSmall(t *testing.T) {
	want := []int64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	for n := 1; n <= 10; n++ {
		if got := Reference(n).Int64(); got != want[n] {
			t.Fatalf("Reference(%d) = %d, want %d", n, got, want[n])
		}
	}
}

func TestSerialFineMatchesReference(t *testing.T) {
	for _, n := range []int{3, 4, 5, 10, 50, 100, 500, 1234} {
		got := SerialFine(n)
		want := Reference(n)
		if got.Cmp(want) != 0 {
			t.Fatalf("SerialFine(%d) = %s, want %s", n, got, want)
		}
	}
}

func TestSerialCoarseMatchesReference(t *testing.T) {
	for _, n := range []int{3, 10, 100, 300, 1000, 2500} {
		got := SerialCoarse(n)
		want := Reference(n)
		if got.Cmp(want) != 0 {
			t.Fatalf("SerialCoarse(%d) mismatch", n)
		}
	}
}

func TestFineMatchesReference(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		eng := piper.NewEngine(piper.Workers(p))
		for _, n := range []int{3, 5, 16, 64, 200, 800} {
			got := Fine(eng, 4*p, n)
			want := Reference(n)
			if got.Cmp(want) != 0 {
				t.Fatalf("P=%d: Fine(%d) = %s, want %s", p, n, got, want)
			}
		}
		eng.Close()
	}
}

func TestCoarseMatchesReference(t *testing.T) {
	for _, p := range []int{1, 4} {
		eng := piper.NewEngine(piper.Workers(p))
		for _, n := range []int{3, 100, 500, 2000, 5000} {
			got := Coarse(eng, 4*p, n)
			want := Reference(n)
			if got.Cmp(want) != 0 {
				t.Fatalf("P=%d: Coarse(%d) mismatch", p, n)
			}
		}
		eng.Close()
	}
}

func TestFineWithoutFolding(t *testing.T) {
	eng := piper.NewEngine(piper.Workers(4), piper.DependencyFolding(false))
	defer eng.Close()
	if got := Fine(eng, 16, 600); got.Cmp(Reference(600)) != 0 {
		t.Fatal("Fine without dependency folding computed a wrong value")
	}
}

func TestFoldingActivity(t *testing.T) {
	eng := piper.NewEngine(piper.Workers(2))
	defer eng.Close()
	// Fold hits require iterations to actually overlap, which is
	// scheduling-dependent at small sizes; retry with growing n.
	for _, n := range []int{800, 2000, 4000} {
		Fine(eng, 8, n)
		if eng.Stats().FoldHits > 0 {
			return
		}
	}
	t.Fatal("pipe-fib never exercised the dependency-folding cache")
}

func TestSmallEdgeCases(t *testing.T) {
	eng := piper.NewEngine(piper.Workers(2))
	defer eng.Close()
	for n := 1; n <= 4; n++ {
		if Fine(eng, 4, n).Cmp(Reference(n)) != 0 {
			t.Fatalf("Fine(%d) edge case wrong", n)
		}
		if Coarse(eng, 4, n).Cmp(Reference(n)) != 0 {
			t.Fatalf("Coarse(%d) edge case wrong", n)
		}
	}
}

func BenchmarkSerialFine2000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SerialFine(2000)
	}
}

func BenchmarkFineP2(b *testing.B) {
	eng := piper.NewEngine(piper.Workers(2))
	defer eng.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fine(eng, 8, 2000)
	}
}
