package bindstage

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"piper/internal/workload"
)

func sourceFrom(xs []int) func() (any, bool) {
	i := 0
	return func() (any, bool) {
		if i >= len(xs) {
			return nil, false
		}
		v := xs[i]
		i++
		return v, true
	}
}

func TestSerialOnlyPreservesOrder(t *testing.T) {
	xs := make([]int, 500)
	for i := range xs {
		xs[i] = i
	}
	p := New(8).AddSerial(func(v any) any { return v.(int) * 2 })
	var got []int
	p.Run(sourceFrom(xs), func(v any) { got = append(got, v.(int)) })
	if len(got) != len(xs) {
		t.Fatalf("got %d items", len(got))
	}
	for i, v := range got {
		if v != 2*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestParallelStageRestoresOrder(t *testing.T) {
	const n = 2000
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	p := New(16).
		AddSerial(func(v any) any { return v }).
		AddParallel(4, func(v any) any { return v.(int) + 1000 }).
		AddSerial(func(v any) any { return v })
	var got []int
	p.Run(sourceFrom(xs), func(v any) { got = append(got, v.(int)) })
	for i, v := range got {
		if v != i+1000 {
			t.Fatalf("order violated: got[%d] = %d", i, v)
		}
	}
}

func TestDroppedElements(t *testing.T) {
	const n = 100
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	p := New(8).AddParallel(3, func(v any) any {
		if v.(int)%2 == 0 {
			return nil // drop evens
		}
		return v
	})
	var got []int
	p.Run(sourceFrom(xs), func(v any) { got = append(got, v.(int)) })
	if len(got) != n/2 {
		t.Fatalf("got %d items, want %d", len(got), n/2)
	}
	for i, v := range got {
		if v != 2*i+1 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestSSPSShape(t *testing.T) {
	// dedup-shaped pipeline: serial, serial, parallel, serial.
	const n = 1000
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	var stage1Seen atomic.Int64
	p := New(16).
		AddSerial(func(v any) any { return v }).
		AddSerial(func(v any) any {
			// serial: must observe strictly increasing values
			if int64(v.(int)) != stage1Seen.Load() {
				t.Errorf("serial stage out of order: %v after %d", v, stage1Seen.Load())
			}
			stage1Seen.Store(int64(v.(int)) + 1)
			return v
		}).
		AddParallel(4, func(v any) any { return v.(int) * 3 }).
		AddSerial(func(v any) any { return v })
	var got []int
	p.Run(sourceFrom(xs), func(v any) { got = append(got, v.(int)) })
	for i, v := range got {
		if v != 3*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestQuickOrderAndCompleteness(t *testing.T) {
	prop := func(seed uint64, nRaw uint16, qRaw, capRaw uint8) bool {
		n := int(nRaw%500) + 1
		q := int(qRaw%6) + 1
		qcap := int(capRaw%30) + 1
		r := workload.NewRNG(seed)
		xs := r.Perm(n)
		p := New(qcap).
			AddParallel(q, func(v any) any { return v.(int) + 7 }).
			AddSerial(func(v any) any { return v })
		var got []int
		p.Run(sourceFrom(xs), func(v any) { got = append(got, v.(int)) })
		if len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != xs[i]+7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptySource(t *testing.T) {
	p := New(4).AddSerial(func(v any) any { return v })
	ran := false
	p.Run(func() (any, bool) { return nil, false }, func(any) { ran = true })
	if ran {
		t.Fatal("sink ran for empty source")
	}
}
