// Package bindstage implements the bind-to-stage pipeline execution model
// used by the PARSEC Pthreaded implementations of ferret and dedup: each
// stage owns a pool of worker threads (the "oversubscription method" of
// Reed, Chen, and Johnson), stages communicate through bounded queues, and
// serial stages process elements in arrival order, with reorder buffers
// restoring sequence order after parallel stages.
//
// This is the comparison baseline for Figures 6 and 7 of the paper.
package bindstage

import (
	"container/heap"
	"sync"
)

// Kind distinguishes serial (single-thread, in-order) from parallel
// (Q-thread, unordered) stages.
type Kind int8

const (
	// Serial stages run on one thread and see elements in pipeline order.
	Serial Kind = iota
	// Parallel stages run on Q threads and may process elements out of
	// order; order is restored before the next serial stage.
	Parallel
)

// Stage describes one pipeline stage.
type Stage struct {
	Kind Kind
	// Threads is the pool size Q for parallel stages; serial stages
	// always use exactly one thread (as the PARSEC implementations do for
	// their input and output stages).
	Threads int
	// Fn transforms an element. A nil return drops the element (it still
	// counts for ordering purposes).
	Fn func(v any) any
}

// Pipeline is a construct-and-run bind-to-stage pipeline.
type Pipeline struct {
	stages   []Stage
	queueCap int
}

// New creates a pipeline whose inter-stage queues hold at most queueCap
// elements — the throttling mechanism of the Pthreaded implementations.
func New(queueCap int) *Pipeline {
	if queueCap <= 0 {
		queueCap = 64
	}
	return &Pipeline{queueCap: queueCap}
}

// AddSerial appends a serial, in-order stage.
func (p *Pipeline) AddSerial(fn func(v any) any) *Pipeline {
	p.stages = append(p.stages, Stage{Kind: Serial, Threads: 1, Fn: fn})
	return p
}

// AddParallel appends a parallel stage with q threads.
func (p *Pipeline) AddParallel(q int, fn func(v any) any) *Pipeline {
	if q < 1 {
		q = 1
	}
	p.stages = append(p.stages, Stage{Kind: Parallel, Threads: q, Fn: fn})
	return p
}

// item carries an element and its pipeline sequence number.
type item struct {
	seq int64
	v   any
}

// Run pulls elements from source until it reports ok == false, pushes
// them through the stages, and delivers survivors to sink in pipeline
// order (sink runs on the final serial output thread). Run blocks until
// the pipeline drains.
func (p *Pipeline) Run(source func() (any, bool), sink func(any)) {
	in := make(chan item, p.queueCap)
	go func() {
		defer close(in)
		var seq int64
		for {
			v, ok := source()
			if !ok {
				return
			}
			in <- item{seq: seq, v: v}
			seq++
		}
	}()

	ch := in
	prevParallel := false
	for i := range p.stages {
		st := p.stages[i]
		switch st.Kind {
		case Serial:
			if prevParallel {
				ch = reorder(ch, p.queueCap)
			}
			ch = p.runSerial(st, ch)
			prevParallel = false
		case Parallel:
			ch = p.runParallel(st, ch)
			prevParallel = true
		}
	}
	if prevParallel {
		ch = reorder(ch, p.queueCap)
	}
	for it := range ch {
		if it.v != nil {
			sink(it.v)
		}
	}
}

func (p *Pipeline) runSerial(st Stage, in <-chan item) chan item {
	out := make(chan item, p.queueCap)
	go func() {
		defer close(out)
		for it := range in {
			if it.v != nil {
				it.v = st.Fn(it.v)
			}
			out <- it
		}
	}()
	return out
}

func (p *Pipeline) runParallel(st Stage, in <-chan item) chan item {
	out := make(chan item, p.queueCap)
	var wg sync.WaitGroup
	for t := 0; t < st.Threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range in {
				if it.v != nil {
					it.v = st.Fn(it.v)
				}
				out <- it
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// seqHeap is a min-heap of items keyed by sequence number.
type seqHeap []item

func (h seqHeap) Len() int           { return len(h) }
func (h seqHeap) Less(i, j int) bool { return h[i].seq < h[j].seq }
func (h seqHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *seqHeap) Push(x any)        { *h = append(*h, x.(item)) }
func (h *seqHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// reorder restores sequence order after a parallel stage. Its buffer is
// unbounded in principle but in practice holds at most (queue capacity ×
// stage threads) items, the same bound the Pthreaded reorder logic has.
func reorder(in <-chan item, cap int) chan item {
	out := make(chan item, cap)
	go func() {
		defer close(out)
		var next int64
		var h seqHeap
		for it := range in {
			heap.Push(&h, it)
			for len(h) > 0 && h[0].seq == next {
				out <- heap.Pop(&h).(item)
				next++
			}
		}
		for len(h) > 0 {
			out <- heap.Pop(&h).(item)
		}
	}()
	return out
}
