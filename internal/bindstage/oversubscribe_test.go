package bindstage

import (
	"sync/atomic"
	"testing"
	"time"
)

// Tests for the oversubscription behaviour (Reed/Chen/Johnson's Q
// threads per stage) and multi-stage composition.

func TestOversubscriptionRunsConcurrently(t *testing.T) {
	const n, q = 64, 8
	xs := make([]int, n)
	var live, peak atomic.Int64
	p := New(n).AddParallel(q, func(v any) any {
		l := live.Add(1)
		for {
			pk := peak.Load()
			if l <= pk || peak.CompareAndSwap(pk, l) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		live.Add(-1)
		return v
	})
	p.Run(sourceFrom(xs), func(any) {})
	// With q=8 threads and a deep queue, several elements must have been
	// in flight at once (exact count is scheduling-dependent).
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency %d, want >= 2", peak.Load())
	}
	if peak.Load() > q {
		t.Fatalf("peak concurrency %d exceeds pool size %d", peak.Load(), q)
	}
}

func TestBoundedQueuesThrottle(t *testing.T) {
	// A slow sink with tiny queues keeps the source from running away.
	const qcap = 2
	var produced atomic.Int64
	var consumed atomic.Int64
	i := 0
	p := New(qcap).AddSerial(func(v any) any { return v })
	done := make(chan struct{})
	go func() {
		p.Run(func() (any, bool) {
			if i >= 100 {
				return nil, false
			}
			i++
			produced.Add(1)
			return i, true
		}, func(any) {
			time.Sleep(500 * time.Microsecond)
			consumed.Add(1)
		})
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	inFlight := produced.Load() - consumed.Load()
	// Source queue + stage queue + a few in hand.
	if inFlight > 3*qcap+4 {
		t.Fatalf("%d elements in flight despite queue cap %d", inFlight, qcap)
	}
	<-done
	if consumed.Load() != 100 {
		t.Fatalf("consumed = %d", consumed.Load())
	}
}

func TestBackToBackParallelStages(t *testing.T) {
	const n = 500
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	p := New(8).
		AddParallel(3, func(v any) any { return v.(int) + 1 }).
		AddParallel(3, func(v any) any { return v.(int) * 2 }).
		AddSerial(func(v any) any { return v })
	var got []int
	p.Run(sourceFrom(xs), func(v any) { got = append(got, v.(int)) })
	for i, v := range got {
		if v != (i+1)*2 {
			t.Fatalf("got[%d] = %d, want %d", i, v, (i+1)*2)
		}
	}
}

func TestNoStagesPassThrough(t *testing.T) {
	xs := []int{3, 1, 4, 1, 5}
	p := New(4)
	var got []int
	p.Run(sourceFrom(xs), func(v any) { got = append(got, v.(int)) })
	for i, v := range got {
		if v != xs[i] {
			t.Fatalf("got = %v", got)
		}
	}
}

func TestSerialAfterSerial(t *testing.T) {
	const n = 200
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	var firstSeen, secondSeen int
	p := New(4).
		AddSerial(func(v any) any {
			if v.(int) != firstSeen {
				t.Errorf("first serial stage out of order: %v", v)
			}
			firstSeen++
			return v
		}).
		AddSerial(func(v any) any {
			if v.(int) != secondSeen {
				t.Errorf("second serial stage out of order: %v", v)
			}
			secondSeen++
			return v
		})
	p.Run(sourceFrom(xs), func(any) {})
	if firstSeen != n || secondSeen != n {
		t.Fatalf("stages saw %d and %d elements", firstSeen, secondSeen)
	}
}
