package lint

import (
	"go/ast"
)

// pipelineEntries names every function and method through which user code
// hands the scheduler a pipeline condition or body. Each function-literal
// argument of a call to one of these runs inside pipeline iterations —
// the cond/next closure is the serial stage-0 prefix, the body closure is
// the iteration — so both are bound by the batch-safety contract.
var pipelineEntries = map[string]bool{
	// Root-package entry points (pipe.go, piper.go).
	"piper.Pipe":           true,
	"piper.PipeThrottled":  true,
	"piper.SubmitPipe":     true,
	"piper.SubmitPipeWait": true,
	"piper.Profile":        true,
	"piper.ProfilePipe":    true,
	"piper.Each":           true,
	"piper.Run":            true,
	// Engine methods (the aliased core types).
	"piper/internal/core.Engine.PipeWhile":           true,
	"piper/internal/core.Engine.PipeWhileThrottled":  true,
	"piper/internal/core.Engine.RunPipeline":         true,
	"piper/internal/core.Engine.RunPipelineAdaptive": true,
	"piper/internal/core.Engine.ProfilePipeline":     true,
	"piper/internal/core.Engine.Submit":              true,
	"piper/internal/core.Engine.SubmitThrottled":     true,
	"piper/internal/core.Engine.SubmitWait":          true,
	"piper/internal/core.Engine.SubmitWaitThrottled": true,
	// Nested pipelines spawned through the iteration handle.
	"piper/internal/core.Iter.PipeWhile":          true,
	"piper/internal/core.Iter.PipeWhileThrottled": true,
}

// isPipelineEntry reports whether call registers pipeline code.
func isPipelineEntry(p *Pass, call *ast.CallExpr) bool {
	return pipelineEntries[callKey(p.Info, call)]
}

// pipelineBody is one closure the scheduler will execute inside
// iterations: a function literal passed (directly, or through a local
// variable) to a pipeline entry point.
type pipelineBody struct {
	lit  *ast.FuncLit
	call *ast.CallExpr // the registering call
}

// pipelineBodies finds every pipeline closure in the file. A closure
// passed by name — `body := func(it *piper.Iter) {...}; eng.Submit(ctx,
// cond, body)` — resolves through the variable's defining assignment, so
// the serving-driver idiom is covered, not just inline literals.
func pipelineBodies(p *Pass, file *ast.File) []pipelineBody {
	// Map each local function-valued variable to its defining literal.
	lits := map[any]*ast.FuncLit{} // types.Object -> literal
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if i >= len(st.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if lit, ok := st.Rhs[i].(*ast.FuncLit); ok {
					if obj := p.Info.Defs[id]; obj != nil {
						lits[obj] = lit
					} else if obj := p.Info.Uses[id]; obj != nil {
						lits[obj] = lit
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range st.Names {
				if i >= len(st.Values) {
					break
				}
				if lit, ok := st.Values[i].(*ast.FuncLit); ok {
					if obj := p.Info.Defs[id]; obj != nil {
						lits[obj] = lit
					}
				}
			}
		}
		return true
	})

	var bodies []pipelineBody
	seen := map[*ast.FuncLit]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPipelineEntry(p, call) {
			return true
		}
		for _, arg := range call.Args {
			var lit *ast.FuncLit
			switch a := ast.Unparen(arg).(type) {
			case *ast.FuncLit:
				lit = a
			case *ast.Ident:
				if obj := p.Info.Uses[a]; obj != nil {
					lit = lits[obj]
				}
			}
			if lit != nil && !seen[lit] {
				seen[lit] = true
				bodies = append(bodies, pipelineBody{lit: lit, call: call})
			}
		}
		return true
	})
	return bodies
}

// inspectBody walks a pipeline closure, descending into nested function
// literals (deferred cleanups, Iter.Go tasks — they run inside the
// iteration too) but not into closures that are pipeline bodies in their
// own right: those are visited separately through `all`, so descending
// here would double-report their findings.
func inspectBody(body pipelineBody, all []pipelineBody, visit func(ast.Node) bool) {
	skip := map[*ast.FuncLit]bool{}
	for _, other := range all {
		if other.lit != body.lit {
			skip[other.lit] = true
		}
	}
	ast.Inspect(body.lit.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && skip[lit] {
			return false
		}
		return visit(n)
	})
}
