// Package linttest is the fixture harness for the analyzers in
// internal/lint, mirroring golang.org/x/tools/go/analysis/analysistest on
// the standard library: a fixture package under testdata/src annotates
// the lines it expects diagnostics on with
//
//	// want "regexp" "another regexp"
//
// and Run checks that the analyzers produce exactly those findings —
// every expectation matched by a diagnostic on that line, every
// diagnostic claimed by an expectation.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"piper/internal/lint"
)

// expectation is one `// want` pattern, anchored to a file line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// wantRe captures the quoted patterns after a want marker.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads the fixture package at testdata/src/<pkg> (relative to the
// test's working directory), records it under importPath, applies the
// analyzers, and reports any mismatch between the diagnostics produced
// and the `// want` expectations in the fixture source.
func Run(t *testing.T, pkg, importPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pkg))
	loaded, err := lint.CheckDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkg, err)
	}

	var wants []*expectation
	for _, file := range loaded.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := loaded.Fset.Position(c.Pos())
				patterns, err := parsePatterns(m[1])
				if err != nil {
					t.Fatalf("%s:%d: malformed want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, pat := range patterns {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}

	diags := lint.Run([]*lint.Package{loaded}, analyzers)
	for _, d := range diags {
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// parsePatterns splits `"p1" "p2"` into its unquoted patterns.
func parsePatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			return nil, fmt.Errorf("expected quoted pattern at %q", s)
		}
		// Find the closing quote, honoring escapes.
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		pat, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %v", s[:end+1], err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+1:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no patterns")
	}
	return out, nil
}
