package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ArenaRef enforces the internal/arena ownership rules intra-procedurally:
// a function that checks a region out of the arena (any call returning
// *arena.Ref bound to a local variable) must release it through a
// deferred Release — a straight-line Release leaks the region when a
// panic or cancellation unwinds the body between Get and Release, which
// is exactly the bug class the leak storms hunt dynamically. The analyzer
// also flags straight-line use of a ref after its Release.
//
// Refs whose ownership leaves the function — returned, stored in a field
// or container, aliased, retained for a hand-off, passed to another
// function, or captured by a non-deferred closure — are skipped:
// cross-procedure ownership is the dynamic layer's job (SetDebug
// poisoning, LiveArenaBytes drain checks). Read-only accessors (Bytes,
// Refs, the B field, arena.View) do not transfer ownership, so they
// neither exempt a ref nor count as a release.
var ArenaRef = &Analyzer{
	Name:  "arenaref",
	Allow: "ref",
	Doc: "require every locally-owned arena Ref to be released via defer (a non-deferred Release " +
		"leaks on panic/cancel unwinding) and flag use of a Ref after Release",
	Run: runArenaRef,
}

const arenaPkgPath = "piper/internal/arena"

// isRefType reports whether t is *arena.Ref.
func isRefType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == arenaPkgPath && named.Obj().Name() == "Ref"
}

// producesRef reports whether call's result is a single *arena.Ref.
func producesRef(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	return t != nil && isRefType(t)
}

func runArenaRef(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkRefOwners(p, fn.Body)
				}
			case *ast.FuncLit:
				checkRefOwners(p, fn.Body)
			}
			return true
		})
	}
}

// litRange classifies one function literal nested in the body under
// analysis.
type litRange struct {
	lit      *ast.FuncLit
	deferred bool // the literal is the operand of `defer func(){...}()`
}

// refState accumulates what the function does with one local ref.
type refState struct {
	id       *ast.Ident    // defining occurrence
	get      *ast.CallExpr // producing call, for reporting
	escapes  bool
	deferred bool            // a deferred Release covers every unwind path
	releases []*ast.CallExpr // straight-line Release call sites
}

// checkRefOwners runs the ownership check over one function body. Nested
// function literals get their own checkRefOwners visit for refs they bind
// themselves; here they matter only as capture sites for this function's
// refs — a deferred closure may carry the Release, any other closure
// capturing a ref makes its lifetime non-lexical and exempts it.
func checkRefOwners(p *Pass, body *ast.BlockStmt) {
	// Nested literal ranges, with top-level deferred closures identified.
	var lits []litRange
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, litRange{lit: lit})
		}
		if d, ok := n.(*ast.DeferStmt); ok && nestedLitAt(lits, d.Pos()) == nil {
			if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
				lits = append(lits, litRange{lit: lit, deferred: true})
			}
		}
		return true
	})
	// Deduplicate: the deferred-literal entry wins over the plain one.
	byLit := map[*ast.FuncLit]bool{}
	for _, lr := range lits {
		if lr.deferred {
			byLit[lr.lit] = true
		}
	}
	inNested := func(pos token.Pos) *litRange { return nestedLitAt(lits, pos) }
	isDeferredLit := func(lit *ast.FuncLit) bool { return byLit[lit] }

	// 1. Owners: root-level `v := <call returning *arena.Ref>`.
	owners := map[types.Object]*refState{}
	ast.Inspect(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Lhs) != len(st.Rhs) {
			return true
		}
		for i, lhs := range st.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			call, ok := ast.Unparen(st.Rhs[i]).(*ast.CallExpr)
			if !ok || !producesRef(p.Info, call) {
				continue
			}
			if inNested(id.Pos()) != nil {
				continue // bound inside a closure: that closure's own visit handles it
			}
			if obj := p.Info.Defs[id]; obj != nil {
				owners[obj] = &refState{id: id, get: call}
			} else if obj := p.Info.Uses[id]; obj != nil {
				// Plain `=` rebinding an existing variable: re-checkout
				// into the same name. Track only the first binding; a
				// rebound owner is beyond straight-line analysis.
				if owners[obj] == nil {
					owners[obj] = &refState{id: id, get: call, escapes: true}
				} else {
					owners[obj].escapes = true
				}
			}
		}
		return true
	})
	if len(owners) == 0 {
		return
	}
	ownerOf := func(e ast.Expr) *refState {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := p.Info.Uses[id]; obj != nil {
			return owners[obj]
		}
		return nil
	}

	// 2. Mark the safe uses; classify releases as deferred or not.
	safe := map[*ast.Ident]bool{}
	markSafe := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			safe[id] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// defer v.Release()
			if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" {
				if s := ownerOf(sel.X); s != nil {
					s.deferred = true
					markSafe(sel.X)
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if s := ownerOf(sel.X); s != nil {
					switch sel.Sel.Name {
					case "Release":
						markSafe(sel.X)
						lr := inNested(n.Pos())
						switch {
						case lr == nil:
							// Straight-line release — unless it is the
							// direct operand of a defer, which the
							// DeferStmt case above already marked.
							if !s.deferred || !isDeferCall(body, n) {
								s.releases = append(s.releases, n)
							}
						case isDeferredLit(lr.lit):
							s.deferred = true // release inside defer func(){...}()
						default:
							s.escapes = true // released by some other closure
						}
					case "Bytes", "Refs", "B":
						markSafe(sel.X)
					case "Retain":
						// Retain is the hand-off half of the ownership
						// protocol: the extra reference travels to another
						// stage, so lexical pairing no longer applies.
						markSafe(sel.X)
						s.escapes = true
					}
				}
			}
			// A ref passed to arena.View is a read, not a hand-off.
			if key := callKey(p.Info, n); key == arenaPkgPath+".View" {
				for _, arg := range n.Args {
					if s := ownerOf(arg); s != nil {
						markSafe(arg)
					}
				}
			}
		case *ast.SelectorExpr:
			// v.B reads (and v.B = ... writes) touch the payload slice
			// header, not the reference count.
			if sel := n; sel.Sel.Name == "B" {
				if s := ownerOf(sel.X); s != nil {
					markSafe(sel.X)
				}
			}
		}
		return true
	})

	// 3. Any remaining use is an escape: returned, stored, aliased,
	// passed along, sent, address-taken, compared, or captured.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || safe[id] {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return true
		}
		if s := owners[obj]; s != nil && id != s.id {
			// Uses inside a deferred closure beyond Release/accessors and
			// nil checks are still escapes; a bare `v != nil` guard inside
			// the defer is the one common benign pattern, which the nil
			// comparison below whitelists.
			if !isNilCheckUse(body, id) {
				s.escapes = true
			}
		}
		return true
	})

	// 4. Verdicts.
	for _, s := range owners {
		if s.escapes {
			continue
		}
		switch {
		case s.deferred:
			// Covered on every unwind path.
		case len(s.releases) > 0:
			for _, rel := range s.releases {
				p.Reportf(rel.Pos(), "arena ref %s released without defer: a panic or cancellation "+
					"unwinding between Get and Release leaks the region (ownership rules, "+
					"internal/arena); use defer %s.Release()", s.id.Name, s.id.Name)
			}
		default:
			p.Reportf(s.get.Pos(), "arena ref %s is never released in this function and never "+
				"escapes it: add defer %s.Release()", s.id.Name, s.id.Name)
		}
	}

	// 5. Straight-line use-after-release: within one statement list, any
	// use of a ref after the statement that released it.
	checkUseAfterRelease(p, body, owners)
}

// nestedLitAt returns the literal range containing pos, if any.
func nestedLitAt(lits []litRange, pos token.Pos) *litRange {
	var best *litRange
	for i := range lits {
		lr := &lits[i]
		if lr.lit.Pos() < pos && pos < lr.lit.End() {
			if best == nil || lr.lit.Pos() > best.lit.Pos() {
				best = lr // innermost
			}
		}
	}
	return best
}

// isDeferCall reports whether call appears as the direct operand of a
// defer statement in body.
func isDeferCall(body *ast.BlockStmt, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && d.Call == call {
			found = true
		}
		return !found
	})
	return found
}

// isNilCheckUse reports whether the identifier's only role is a nil
// comparison (`if v != nil { ... }`), the benign guard inside deferred
// cleanups.
func isNilCheckUse(body *ast.BlockStmt, id *ast.Ident) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			if ast.Unparen(side) == id {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkUseAfterRelease reports straight-line uses after a non-deferred
// Release in the same statement list.
func checkUseAfterRelease(p *Pass, body *ast.BlockStmt, owners map[types.Object]*refState) {
	released := map[*ast.CallExpr]*refState{}
	for _, s := range owners {
		for _, rel := range s.releases {
			released[rel] = s
		}
	}
	if len(released) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		live := map[*refState]bool{}
		for _, st := range block.List {
			// Uses before the releasing statement (or in it) are fine.
			for s := range live {
				s := s
				ast.Inspect(st, func(u ast.Node) bool {
					id, ok := u.(*ast.Ident)
					if !ok {
						return true
					}
					if obj := p.Info.Uses[id]; obj != nil && owners[obj] == s {
						p.Reportf(id.Pos(), "use of arena ref %s after Release: the region may "+
							"already be recycled (SetDebug poisons it); restructure so the Release "+
							"is last", s.id.Name)
						live[s] = false
					}
					return true
				})
			}
			for s, ok := range live {
				if !ok {
					delete(live, s) // one report per release site
				}
			}
			if es, ok := st.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if s := released[call]; s != nil {
						live[s] = true
					}
				}
			}
		}
		return true
	})
}
