package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// newInfo allocates the full types.Info the analyzers consume.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves patterns (as `go list` does, e.g. "./...") from dir and
// returns every matched package parsed and type-checked. Only non-test
// GoFiles are analyzed: the usage contracts bind production code, while
// tests deliberately violate them (misuse tests, raw-channel oracles) and
// are policed by the dynamic layer instead.
//
// Dependencies — in-module and standard library alike — are type-checked
// from source through the compiler-independent importer, so loading needs
// no export data, no module proxy, and no dependencies beyond the Go
// toolchain already required to build the repo.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) > 0 {
			listed = append(listed, lp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		pkg, err := checkPackage(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// The fixture loader shares one file set and importer across calls so the
// real piper packages the fixtures import are type-checked once per test
// binary, not once per fixture.
var (
	sharedOnce sync.Once
	sharedFset *token.FileSet
	sharedImp  types.Importer
)

// CheckDir parses and type-checks the single package rooted at dir,
// recording it under importPath. It bypasses `go list`, so it loads
// directories the go tool refuses to enumerate — the analyzer fixtures
// under testdata/, which deliberately violate the contracts and must
// never build as part of the module. The caller chooses importPath
// because some analyzers key on it (nakedgo's engine-internal rule).
func CheckDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			files = append(files, name)
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sharedOnce.Do(func() {
		sharedFset = token.NewFileSet()
		sharedImp = importer.ForCompiler(sharedFset, "source", nil)
	})
	return checkPackage(sharedFset, sharedImp, importPath, dir, files)
}

// checkPackage parses and type-checks one package's files.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, files []string) (*Package, error) {
	var asts []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	return CheckFiles(fset, imp, path, dir, asts)
}

// CheckFiles type-checks already-parsed files as one package. The vet
// driver uses it directly: under `go vet -vettool` the go command hands
// over the file list and an export-data importer, so there is nothing
// left to discover.
func CheckFiles(fset *token.FileSet, imp types.Importer, path, dir string, asts []*ast.File) (*Package, error) {
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: asts, Types: tpkg, Info: info}, nil
}
