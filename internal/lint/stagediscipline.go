package lint

import (
	"go/ast"
	"go/constant"
)

// StageDiscipline checks the stage arguments handed to Iter.Wait and
// Iter.Continue. The runtime enforces strict monotonicity per iteration
// (checkStageArg panics on a non-increasing argument) and the
// differential fuzzer hunts cross-iteration waits that outrun what the
// body actually records; this analyzer moves both to compile time where
// the arguments are constants:
//
//   - a non-constant stage argument defeats static verification (and is
//     the precondition for every dynamic-stage unsoundness class), so it
//     must carry a //piper:allow-dynamic-stage annotation explaining the
//     dependency structure — the x264-style row dags in internal/vidsim
//     are the intended users;
//   - consecutive constant transitions on a straight-line path must
//     strictly increase, mirroring the runtime panic;
//   - in a body whose transitions are all constant, a Wait whose stage
//     exceeds every other recorded stage by more than one waits on a node
//     the previous iteration never runs: the edge resolves only when the
//     predecessor completes outright, silently serializing the pipeline.
var StageDiscipline = &Analyzer{
	Name:  "stagediscipline",
	Allow: "dynamic-stage",
	Doc: "flag non-constant stage arguments to Iter.Wait/Continue (annotate intentional dynamic " +
		"dags with //piper:allow-dynamic-stage <reason>), constant transitions that do not " +
		"strictly increase, and waits above the max stage the body records",
	Run: runStageDiscipline,
}

// stageTransitions maps funcKey to whether the call is a Wait (true) or a
// Continue (false).
var stageTransitions = map[string]bool{
	"piper/internal/core.Iter.Wait":     true,
	"piper/internal/core.Iter.Continue": false,
}

// transition is one Wait/Continue call inside the function under analysis.
type transition struct {
	call   *ast.CallExpr
	isWait bool
	val    int64 // constant stage argument
	konst  bool  // val is valid
}

func runStageDiscipline(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkStages(p, body)
			}
			return true
		})
	}
}

// transitionAt returns the transition a call expression denotes, if any.
func transitionAt(p *Pass, call *ast.CallExpr) (transition, bool) {
	isWait, ok := stageTransitions[callKey(p.Info, call)]
	if !ok || len(call.Args) != 1 {
		return transition{}, false
	}
	t := transition{call: call, isWait: isWait}
	if tv, ok := p.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, exact := constant.Int64Val(tv.Value); exact {
			t.val, t.konst = v, true
		}
	}
	return t, true
}

// checkStages analyzes the transitions lexically inside one function body,
// not descending into nested function literals (each gets its own visit:
// a closure's transitions belong to whatever iteration eventually runs it,
// not to the enclosing body's stage sequence).
func checkStages(p *Pass, body *ast.BlockStmt) {
	var trans []transition
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if t, ok := transitionAt(p, call); ok {
				trans = append(trans, t)
			}
		}
		return true
	})
	if len(trans) == 0 {
		return
	}

	allConst := true
	for _, t := range trans {
		if !t.konst {
			allConst = false
			p.Reportf(t.call.Pos(), "non-constant stage argument: the scheduler cannot be statically "+
				"checked against a dynamic stage dag (checkStageArg only catches violations at run "+
				"time); annotate //piper:allow-dynamic-stage <reason> if the dependency structure "+
				"requires it")
		}
	}
	if !allConst {
		return
	}

	// Strictly-increasing on straight-line paths: consecutive direct
	// transitions in one statement list. Any intervening statement that
	// hides a transition (a loop, a branch) resets the chain — its body
	// may record stages this scan cannot order.
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		var last *transition
		for _, st := range block.List {
			if t, ok := directTransition(p, st); ok {
				if last != nil && t.val <= last.val {
					p.Reportf(t.call.Pos(), "stage argument %d does not increase past the preceding "+
						"transition to stage %d: stage arguments must strictly increase within an "+
						"iteration (checkStageArg panics on this at run time)", t.val, last.val)
				}
				last = &t
			} else if containsTransition(p, st) {
				last = nil
			}
		}
		return true
	})

	// Wait above the recorded max: with every transition constant, the
	// largest stage any other transition records bounds what the previous
	// iteration publishes mid-flight.
	for i, t := range trans {
		if !t.isWait {
			continue
		}
		var max int64
		for j, o := range trans {
			if j != i && o.val > max {
				max = o.val
			}
		}
		if t.val > max+1 {
			p.Reportf(t.call.Pos(), "wait on stage %d exceeds every stage this body otherwise records "+
				"(max %d): the cross-iteration edge is only satisfied by the previous iteration "+
				"completing outright, which serializes the pipeline — likely a mistyped stage number",
				t.val, max)
		}
	}
}

// directTransition matches a statement that is exactly a transition call:
// `it.Wait(c)` or `it.Continue(c)` as an expression statement.
func directTransition(p *Pass, st ast.Stmt) (transition, bool) {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return transition{}, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return transition{}, false
	}
	return transitionAt(p, call)
}

// containsTransition reports whether any transition call hides anywhere
// inside the statement (outside nested function literals).
func containsTransition(p *Pass, st ast.Stmt) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := transitionAt(p, call); ok {
				found = true
			}
		}
		return !found
	})
	return found
}
