package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicAlign machine-checks the two layout disciplines the hot structs
// (frame, engine, worker, the deque) maintain by hand:
//
//   - any field passed by address to a raw 64-bit sync/atomic function
//     must sit at an 8-aligned offset under 32-bit (GOARCH=386) struct
//     layout, where the compiler only guarantees 4-byte alignment —
//     misalignment faults at run time on 32-bit hardware. (The typed
//     atomic.Int64/Uint64 wrappers are exempt: the runtime aligns them.)
//   - a cache-line pad field must actually work: the fields on either
//     side of it must land in distinct 64-byte lines under amd64 layout,
//     otherwise the pad is silently too small and the "isolated" hot
//     words still false-share.
var AtomicAlign = &Analyzer{
	Name:  "atomicalign",
	Allow: "align",
	Doc: "check that raw 64-bit sync/atomic operands are 8-aligned under 32-bit struct layout and " +
		"that cache-line pad fields actually separate their neighbors into distinct 64-byte lines",
	Run: runAtomicAlign,
}

// atomic64Funcs are the raw sync/atomic entry points operating on 64-bit
// words through a pointer.
var atomic64Funcs = map[string]bool{
	"sync/atomic.LoadInt64":            true,
	"sync/atomic.StoreInt64":           true,
	"sync/atomic.AddInt64":             true,
	"sync/atomic.SwapInt64":            true,
	"sync/atomic.CompareAndSwapInt64":  true,
	"sync/atomic.LoadUint64":           true,
	"sync/atomic.StoreUint64":          true,
	"sync/atomic.AddUint64":            true,
	"sync/atomic.SwapUint64":           true,
	"sync/atomic.CompareAndSwapUint64": true,
}

var (
	sizes386   = types.SizesFor("gc", "386")
	sizesAMD64 = types.SizesFor("gc", "amd64")
)

func runAtomicAlign(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkAtomicOperand(p, n)
			case *ast.TypeSpec:
				checkPadding(p, n)
			}
			return true
		})
	}
}

// checkAtomicOperand flags atomic.XxxInt64(&s.f, ...) where f's offset is
// not 8-aligned under 386 layout.
func checkAtomicOperand(p *Pass, call *ast.CallExpr) {
	if !atomic64Funcs[callKey(p.Info, call)] || len(call.Args) == 0 {
		return
	}
	addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok {
		return
	}
	sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
	if !ok {
		return // &local or &slice[i]: the compiler/runtime align those
	}
	off, path, ok := fieldOffset(p.Info, sel, sizes386)
	if !ok {
		return
	}
	if off%8 != 0 {
		p.Reportf(call.Args[0].Pos(), "64-bit atomic operand %s sits at offset %d under 32-bit "+
			"(GOARCH=386) struct layout, which only guarantees 4-byte alignment: the access faults "+
			"on 32-bit hardware; move the field to the front of the struct or pad it to an "+
			"8-aligned offset", path, off)
	}
}

// fieldOffset computes the cumulative byte offset of the field a selector
// chain denotes within its outermost struct, under the given layout.
func fieldOffset(info *types.Info, sel *ast.SelectorExpr, sizes types.Sizes) (int64, string, bool) {
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return 0, "", false
	}
	t := selection.Recv()
	var off int64
	for _, idx := range selection.Index() {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return 0, "", false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		off += sizes.Offsetsof(fields)[idx]
		t = st.Field(idx).Type()
	}
	name := selection.Obj().Name()
	if recv, ok := deref(selection.Recv()).(*types.Named); ok {
		name = recv.Obj().Name() + "." + name
	}
	return off, name, true
}

func deref(t types.Type) types.Type {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

// isPadField recognizes a deliberate cache-line pad: a byte-array field
// whose name or type says so (cacheLinePad, _pad0 [56]byte, ...).
func isPadField(f *types.Var) bool {
	named := strings.Contains(strings.ToLower(f.Name()), "pad")
	if n, ok := f.Type().(*types.Named); ok && strings.Contains(strings.ToLower(n.Obj().Name()), "pad") {
		named = true
	}
	if !named {
		return false
	}
	arr, ok := f.Type().Underlying().(*types.Array)
	if !ok {
		return false
	}
	basic, ok := arr.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Byte && arr.Len() >= 1
}

// checkPadding verifies, under amd64 layout, that each pad field pushes
// its following neighbor into a different 64-byte line than the one the
// preceding neighbor starts in.
func checkPadding(p *Pass, spec *ast.TypeSpec) {
	obj := p.Info.Defs[spec.Name]
	if obj == nil {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok || st.NumFields() == 0 {
		return
	}
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	offsets := sizesAMD64.Offsetsof(fields)
	const line = 64
	for i, f := range fields {
		if !isPadField(f) || i == 0 || i == len(fields)-1 {
			continue
		}
		if isPadField(fields[i-1]) {
			continue // interior of a pad run: the run's head already checked it
		}
		// The nearest real fields on either side of (a run of) pads.
		prev := i - 1
		for prev >= 0 && isPadField(fields[prev]) {
			prev--
		}
		next := i + 1
		for next < len(fields) && isPadField(fields[next]) {
			next++
		}
		if prev < 0 || next >= len(fields) {
			continue
		}
		if offsets[prev]/line == offsets[next]/line {
			p.Reportf(spec.Name.Pos(), "pad field %s.%s is too small: %s (offset %d) and %s (offset %d) "+
				"still share a 64-byte cache line under amd64 layout, so the pad buys no false-sharing "+
				"isolation; widen it so the neighbors land in distinct lines",
				spec.Name.Name, f.Name(), fields[prev].Name(), offsets[prev], fields[next].Name(), offsets[next])
		}
	}
}
