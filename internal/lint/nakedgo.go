package lint

import (
	"go/ast"
)

// NakedGo flags `go` statements that sidestep piper's goroutine
// accounting:
//
//   - inside a pipeline body, a raw goroutine escapes the iteration's
//     fork-join scope — Iter.Go registers the task with the scope so
//     Sync and pipeline teardown wait for it, a naked `go` does not, and
//     the leak storms catch the survivors only at run time;
//   - inside the engine core (piper/internal/core), every goroutine must
//     ride the worker-accounting WaitGroup that Close drains; the few
//     deliberate spawn points (worker loops, frame takeover, coroutine
//     drivers) carry //piper:allow-go annotations documenting how each is
//     accounted.
var NakedGo = &Analyzer{
	Name:  "nakedgo",
	Allow: "go",
	Doc: "flag go statements in pipeline bodies (use Iter.Go so the fork-join scope tracks the task) " +
		"and in engine-internal code (goroutines must be accounted to the Close-time WaitGroup); " +
		"annotate deliberate spawn points with //piper:allow-go <reason>",
	Run: runNakedGo,
}

// enginePkgPath is the package whose every goroutine must be accounted.
const enginePkgPath = "piper/internal/core"

func runNakedGo(p *Pass) {
	inEngine := p.Pkg != nil && p.Pkg.Path() == enginePkgPath
	for _, file := range p.Files {
		bodies := pipelineBodies(p, file)
		// Pipeline bodies first: a naked go there is the user-facing bug.
		inBody := map[*ast.GoStmt]bool{}
		for _, body := range bodies {
			inspectBody(body, bodies, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					inBody[g] = true
					p.Reportf(g.Pos(), "raw go statement in pipeline body: the goroutine escapes the "+
						"iteration's fork-join scope, so Sync and teardown will not wait for it; use "+
						"Iter.Go, or annotate //piper:allow-go <reason> if its lifetime is otherwise bounded")
				}
				return true
			})
		}
		if !inEngine {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok && !inBody[g] {
				p.Reportf(g.Pos(), "raw go statement in engine-internal code: goroutines here must be "+
					"accounted so Close can drain them; route the spawn through the worker WaitGroup "+
					"or annotate //piper:allow-go <how it is accounted>")
			}
			return true
		})
	}
}
