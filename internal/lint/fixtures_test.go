package lint_test

import (
	"testing"

	"piper/internal/lint"
	"piper/internal/lint/linttest"
)

func TestBatchSafetyFixture(t *testing.T) {
	linttest.Run(t, "batchsafety", "fixture/batchsafety", lint.BatchSafety)
}

func TestArenaRefFixture(t *testing.T) {
	linttest.Run(t, "arenaref", "fixture/arenaref", lint.ArenaRef)
}

func TestStageDisciplineFixture(t *testing.T) {
	linttest.Run(t, "stagediscipline", "fixture/stagediscipline", lint.StageDiscipline)
}

func TestAtomicAlignFixture(t *testing.T) {
	linttest.Run(t, "atomicalign", "fixture/atomicalign", lint.AtomicAlign)
}

func TestNakedGoFixture(t *testing.T) {
	linttest.Run(t, "nakedgo", "fixture/nakedgo", lint.NakedGo)
}

// The engine-internal rule keys on the import path, which the harness
// lets the fixture assume.
func TestNakedGoEngineFixture(t *testing.T) {
	linttest.Run(t, "enginecore", "piper/internal/core", lint.NakedGo)
}
