// Package atomicalign is the atomicalign analyzer fixture: misaligned
// raw 64-bit atomics and undersized cache-line pads, plus clean layouts.
package atomicalign

import "sync/atomic"

type misaligned struct {
	flag bool
	n    int64 // offset 4 under GOARCH=386 layout
}

func bump(m *misaligned) {
	atomic.AddInt64(&m.n, 1) // want "64-bit atomic operand misaligned.n sits at offset 4"
}

type aligned struct {
	n    int64
	flag bool
}

func bumpAligned(a *aligned) {
	atomic.AddInt64(&a.n, 1)
}

// The typed wrappers are runtime-aligned; only raw pointer atomics need
// the layout check.
type typed struct {
	flag bool
	n    atomic.Int64
}

func bumpTyped(t *typed) { t.n.Add(1) }

type badPad struct { // want "pad field badPad._pad is too small"
	hot  atomic.Int64
	_pad [8]byte
	cold atomic.Int64
}

type goodPad struct {
	hot  atomic.Int64
	_pad [56]byte
	cold atomic.Int64
}

//piper:allow-align both words are written by the same goroutine; the pad only splits reader traffic
type acceptedPad struct {
	hot  atomic.Int64
	_pad [8]byte
	cold atomic.Int64
}

var (
	_ = badPad{}
	_ = goodPad{}
	_ = acceptedPad{}
)
