// Package stagediscipline is the stagediscipline analyzer fixture:
// decreasing, dynamic, and runaway stage arguments, plus the clean
// monotone patterns.
package stagediscipline

import "piper"

func decreasing(eng *piper.Engine) {
	i := 0
	piper.Pipe(eng, func() (int, bool) { i++; return i, i < 4 }, func(it *piper.Iter, v int) {
		it.Continue(2)
		it.Wait(1) // want "stage argument 1 does not increase past the preceding transition to stage 2"
	})
}

func dynamic(it *piper.Iter, rows int) {
	for r := 0; r < rows; r++ {
		it.Wait(int64(r) + 1) // want "non-constant stage argument"
	}
}

func dynamicAnnotated(it *piper.Iter, rows int) {
	for r := 0; r < rows; r++ {
		//piper:allow-dynamic-stage wavefront: row r waits on row r-1 of the previous iteration
		it.Wait(int64(r) + 1)
	}
}

func typoStage(it *piper.Iter) {
	it.Continue(1)
	it.Wait(2)
	it.Wait(30) // want "wait on stage 30 exceeds every stage this body otherwise records"
}

func clean(it *piper.Iter) {
	it.Continue(1)
	it.Wait(2)
	it.Wait(3)
}

// Branching resets the straight-line chain: the scan does not guess
// which arm ran.
func cleanBranch(it *piper.Iter, fast bool) {
	if fast {
		it.Continue(1)
	} else {
		it.Wait(1)
	}
	it.Wait(2)
}
