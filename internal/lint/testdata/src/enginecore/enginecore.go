// Package core is the nakedgo analyzer fixture (engine-internal half):
// the harness loads it under the import path piper/internal/core, where
// every goroutine must be accounted to the Close-time WaitGroup.
package core

func spawnLoop(loops []func()) {
	for _, l := range loops {
		go l() // want "raw go statement in engine-internal code"
	}
}

func accountedSpawn(wg interface{ Add(int) }, l func()) {
	wg.Add(1)
	//piper:allow-go accounted: Close drains the worker WaitGroup this Add charged
	go l()
}
