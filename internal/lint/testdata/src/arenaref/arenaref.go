// Package arenaref is the arenaref analyzer fixture: locally-owned refs
// that leak, release without defer, or get used after release, plus the
// clean ownership patterns.
package arenaref

import "piper/internal/arena"

func leakNoRelease(a *arena.Arena) int {
	ref := a.Get(64) // want "arena ref ref is never released in this function"
	return len(ref.Bytes())
}

func straightLineRelease(a *arena.Arena) int {
	ref := a.Get(64)
	n := len(ref.Bytes())
	ref.Release() // want "arena ref ref released without defer"
	return n
}

func useAfterRelease(a *arena.Arena) byte {
	ref := a.Get(64)
	b := ref.Bytes()[0]
	ref.Release()             // want "arena ref ref released without defer"
	return b + ref.Bytes()[0] // want "use of arena ref ref after Release"
}

func deferredRelease(a *arena.Arena) int {
	ref := a.Get(64)
	defer ref.Release()
	return len(ref.Bytes())
}

func deferredClosureRelease(a *arena.Arena) int {
	ref := a.Get(64)
	defer func() {
		if ref != nil {
			ref.Release()
		}
	}()
	return len(ref.Bytes())
}

// Ownership that leaves the function is the dynamic layer's problem.
func escapes(a *arena.Arena) *arena.Ref {
	ref := a.Get(64)
	return ref
}

func handsOff(a *arena.Arena, sink chan *arena.Ref) {
	ref := a.Get(64)
	defer ref.Release()
	sink <- ref.Retain()
}

// arena.View is a read, not a hand-off: it neither exempts nor releases.
func viewIsRead(a *arena.Arena) []int32 {
	ref := a.Get(64)
	defer ref.Release()
	return arena.View[int32](ref, 16)
}

func annotated(a *arena.Arena) int {
	ref := a.Get(64)
	n := len(ref.Bytes())
	//piper:allow-ref nothing between Get and Release can panic, and the handle never crosses a cancel point
	ref.Release()
	return n
}
