// Package batchsafety is the batchsafety analyzer fixture: pipeline
// bodies that block through raw synchronization, plus clean counterparts.
package batchsafety

import (
	"sync"
	"time"

	"piper"
)

func flagged(eng *piper.Engine, ch chan int, mu *sync.Mutex, wg *sync.WaitGroup) {
	i := 0
	piper.Pipe(eng, func() (int, bool) { i++; return i, i < 10 }, func(it *piper.Iter, v int) {
		ch <- v  // want "raw channel send in pipeline body"
		<-ch     // want "raw channel receive in pipeline body"
		select { // want "select in pipeline body"
		case <-ch: // want "raw channel receive in pipeline body"
		default:
		}
		for range ch { // want "range over channel in pipeline body"
		}
		mu.Lock()                    // want "sync.Mutex.Lock in pipeline body"
		wg.Wait()                    // want "sync.WaitGroup.Wait in pipeline body"
		time.Sleep(time.Millisecond) // want "time.Sleep in pipeline body"
	})
}

// The serving-driver idiom: the body reaches the entry point through a
// local variable, not an inline literal.
func flaggedNamed(eng *piper.Engine, ch chan int) {
	body := func(it *piper.Iter, v int) {
		ch <- v // want "raw channel send in pipeline body"
	}
	i := 0
	piper.Pipe(eng, func() (int, bool) { i++; return i, i < 3 }, body)
}

// The cond/next closure runs as the serial stage-0 prefix of each
// iteration, so it is bound by the contract too.
func flaggedCond(eng *piper.Engine, ch chan int) {
	piper.Pipe(eng, func() (int, bool) {
		v, ok := <-ch // want "raw channel receive in pipeline body"
		return v, ok
	}, func(it *piper.Iter, v int) { _ = v })
}

func clean(eng *piper.Engine, ch chan int, mu *sync.Mutex, sink []int) {
	// Outside pipeline bodies, raw blocking is ordinary Go.
	ch <- 1
	mu.Lock()
	defer mu.Unlock()
	i := 0
	piper.Pipe(eng, func() (int, bool) { i++; return i, i < 10 }, func(it *piper.Iter, v int) {
		it.Wait(1)
		sink[v] = v
		//piper:allow-block the metrics channel is buffered and drained faster than produced
		ch <- v
	})
}
