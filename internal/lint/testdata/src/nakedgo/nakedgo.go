// Package nakedgo is the nakedgo analyzer fixture (user-code half): raw
// goroutines inside pipeline bodies versus Iter.Go.
package nakedgo

import "piper"

func flagged(eng *piper.Engine, results []int) {
	i := 0
	piper.Pipe(eng, func() (int, bool) { i++; return i, i < 8 }, func(it *piper.Iter, v int) {
		go func() { results[v] = v * v }() // want "raw go statement in pipeline body"
	})
}

func clean(eng *piper.Engine, results []int) {
	i := 0
	piper.Pipe(eng, func() (int, bool) { i++; return i, i < 8 }, func(it *piper.Iter, v int) {
		it.Go(func() { results[v] = v * v })
		it.Sync()
	})
	go func() { results[0] = 0 }() // outside a body: ordinary Go
}

func annotated(eng *piper.Engine, done chan struct{}) {
	i := 0
	piper.Pipe(eng, func() (int, bool) { i++; return i, i < 8 }, func(it *piper.Iter, v int) {
		//piper:allow-go the caller joins on done before the pipeline returns
		go func() { done <- struct{}{} }()
	})
}
