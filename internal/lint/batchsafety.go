package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BatchSafety enforces the batch-safety contract documented on Pipe
// (pipe.go): a pipeline body may block only through piper primitives
// (Wait, Sync, nested pipelines — the scheduler detects those and splits
// the claimed batch), because blocking on external synchronization that a
// later iteration of the same pipeline would satisfy deadlocks the worker
// that claimed the batch. The analyzer flags the blocking constructs the
// contract names — raw channel operations, select, sync.Mutex/RWMutex
// lock acquisition, sync.WaitGroup.Wait, sync.Cond.Wait, time.Sleep —
// lexically inside pipeline conditions and bodies.
var BatchSafety = &Analyzer{
	Name:  "batchsafety",
	Allow: "block",
	Doc: "flag raw blocking constructs (channel ops, select, mutex/WaitGroup/Cond waits, time.Sleep) " +
		"inside pipeline bodies, which defeat batch splitting and can deadlock a claimed batch; " +
		"suppress an intentional one with //piper:allow-block <reason>",
	Run: runBatchSafety,
}

const batchContract = "bodies may block only through piper primitives (batch-safety contract, pipe.go); " +
	"annotate //piper:allow-block <reason> if intentional"

// blockingCalls maps funcKey to the construct name shown in diagnostics.
var blockingCalls = map[string]string{
	"time.Sleep":          "time.Sleep",
	"sync.Mutex.Lock":     "sync.Mutex.Lock",
	"sync.RWMutex.Lock":   "sync.RWMutex.Lock",
	"sync.RWMutex.RLock":  "sync.RWMutex.RLock",
	"sync.WaitGroup.Wait": "sync.WaitGroup.Wait",
	"sync.Cond.Wait":      "sync.Cond.Wait",
	"sync.Once.Do":        "sync.Once.Do",
}

func runBatchSafety(p *Pass) {
	for _, file := range p.Files {
		bodies := pipelineBodies(p, file)
		for _, body := range bodies {
			inspectBody(body, bodies, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SendStmt:
					p.Reportf(n.Arrow, "raw channel send in pipeline body: %s", batchContract)
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						p.Reportf(n.OpPos, "raw channel receive in pipeline body: %s", batchContract)
					}
				case *ast.SelectStmt:
					p.Reportf(n.Select, "select in pipeline body: %s", batchContract)
				case *ast.RangeStmt:
					if t := p.Info.TypeOf(n.X); t != nil {
						if _, ok := t.Underlying().(*types.Chan); ok {
							p.Reportf(n.For, "range over channel in pipeline body: %s", batchContract)
						}
					}
				case *ast.CallExpr:
					if name, ok := blockingCalls[callKey(p.Info, n)]; ok {
						p.Reportf(n.Pos(), "%s in pipeline body: %s", name, batchContract)
					}
				}
				return true
			})
		}
	}
}
