// Package lint is piper's static usage-contract checker: a suite of
// analyzers that enforce, at compile time, the contracts the scheduler's
// optimizations rest on — the batch-safety rule from pipe.go (bodies may
// block only through piper primitives), the arena ownership rules from
// internal/arena (every checked-out region releases on every unwind
// path), monotone stage discipline, 64-bit atomic alignment with honest
// cache-line padding, and accounted goroutine spawns. The dynamic layer
// (differential fuzzer, SetDebug poisoning, leak storms) finds violations
// after they run; these analyzers find them before.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape —
// Analyzer, Pass, Reportf, analysistest-style fixtures — but is built
// entirely on the standard library (go/ast, go/types, `go list`), so the
// module stays dependency-free and the checker runs anywhere the Go
// toolchain does.
//
// Every analyzer honors a per-line escape hatch: a comment of the form
//
//	//piper:allow-<verb> <reason>
//
// on the flagged line (or the line directly above it) suppresses that
// analyzer's findings there. The reason is mandatory: an annotation
// without one does not suppress, so every exemption is documented at the
// site. Verbs: allow-block (batchsafety), allow-ref (arenaref),
// allow-dynamic-stage (stagediscipline), allow-align (atomicalign),
// allow-go (nakedgo).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flag names.
	Name string
	// Doc is the one-paragraph description shown by -help.
	Doc string
	// Allow is the annotation verb that suppresses this analyzer's
	// findings: "//piper:allow-<Allow> <reason>" on the flagged line or
	// the line above.
	Allow string
	// Run performs the check over one package, reporting findings
	// through the Pass.
	Run func(*Pass)
}

// Analyzers is the full suite, in the order the multichecker runs them.
func Analyzers() []*Analyzer {
	return []*Analyzer{BatchSafety, ArenaRef, StageDiscipline, AtomicAlign, NakedGo}
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one analyzer's run over one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
	allow map[string]map[int]bool // filename -> lines carrying this analyzer's allow verb
}

// Reportf records a finding at pos unless an allow annotation covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowedAt(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowedAt reports whether an annotation suppresses findings at position:
// the comment sits on the same line or the line directly above.
func (p *Pass) allowedAt(position token.Position) bool {
	lines := p.allow[position.Filename]
	return lines[position.Line] || lines[position.Line-1]
}

// allowPrefix introduces every suppression annotation.
const allowPrefix = "//piper:allow-"

// buildAllow indexes the file's suppression comments for one verb. Only
// annotations carrying a non-empty reason count: the escape hatch is
// "allow-block because X", never a bare wave-through.
func buildAllow(fset *token.FileSet, files []*ast.File, verb string) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	want := allowPrefix + verb
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, want)
				if !ok {
					continue
				}
				// Exact verb match: "//piper:allow-go x" must not satisfy
				// a lookup for verb "g". The verb ends at the first space.
				if text != "" && text[0] != ' ' && text[0] != '\t' {
					continue
				}
				if strings.TrimSpace(text) == "" {
					continue // no reason given: annotation is inert
				}
				pos := fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					out[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return out
}

// Run applies the analyzers to every package and returns the surviving
// findings sorted by position.
//
// Test files are excluded: the contracts govern shipped code, and the
// test suite deliberately violates them — misuse tests assert the
// runtime panics, scheduler tests probe blocking with raw channels. The
// standalone loader never sees test files (`go list` GoFiles), but vet
// units include them, so the filter lives here where every mode passes
// through.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var files []*ast.File
		for _, f := range pkg.Files {
			if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			files = append(files, f)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
				allow:    buildAllow(pkg.Fset, files, a.Allow),
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// --- shared type-resolution helpers -----------------------------------

// funcObj resolves a call's callee to its *types.Func, seeing through
// parentheses and selectors. Returns nil for calls of function values,
// conversions, and builtins.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.IndexExpr: // explicit generic instantiation: Pipe[T](...)
		return funcObj(info, &ast.CallExpr{Fun: fun.X})
	case *ast.IndexListExpr:
		return funcObj(info, &ast.CallExpr{Fun: fun.X})
	}
	return nil
}

// funcKey names a function for table lookups: "pkgpath.Name" for
// package-level functions, "pkgpath.Recv.Name" for methods (pointer
// receivers dereferenced).
func funcKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// callKey is funcKey for a call expression, or "" if unresolvable.
func callKey(info *types.Info, call *ast.CallExpr) string {
	return funcKey(funcObj(info, call))
}
