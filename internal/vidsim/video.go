// Package vidsim is a synthetic x264-style video encoder used to
// reproduce the paper's x264 experiment (Figures 2, 3, 8). It implements
// the parts of an H.264-like encoder that give the benchmark its
// scheduling structure: I/P/B frame-type decisions (GOP pattern plus
// scene-cut detection), macroblock intra prediction, motion search
// against the previous reference frame's *reconstruction* (so the
// cross-frame row dependencies are real: violating them corrupts the
// output), and per-frame bit accounting.
//
// The PARSEC native input (512 frames of 1080p video) is replaced by a
// deterministic synthetic sequence of moving rectangles over noise, which
// exercises the same code paths: motion search finds real matches, scene
// cuts force real I-frames, and B-frames buffer between references.
package vidsim

import "piper/internal/workload"

// MB is the macroblock edge in pixels.
const MB = 16

// Video is a sequence of luma frames.
type Video struct {
	W, H   int // pixels; multiples of MB
	Frames [][]byte
}

// Rows reports the number of macroblock rows.
func (v *Video) Rows() int { return v.H / MB }

// Cols reports the number of macroblock columns.
func (v *Video) Cols() int { return v.W / MB }

// rect is one moving object in the synthetic scene.
type rect struct {
	x, y, vx, vy, w, h int
	shade              byte
}

// Generate synthesizes n frames of w×h video: moving rectangles over a
// static dithered background, with an abrupt scene change every sceneLen
// frames (0 disables scene changes). Deterministic in seed.
func Generate(seed uint64, w, h, n, sceneLen int) *Video {
	if w%MB != 0 || h%MB != 0 {
		panic("vidsim: dimensions must be multiples of 16")
	}
	v := &Video{W: w, H: h, Frames: make([][]byte, n)}
	r := workload.NewRNG(seed)
	bg := make([]byte, w*h)
	makeScene := func() []rect {
		rs := make([]rect, 4+r.Intn(4))
		for i := range rs {
			rs[i] = rect{
				x: r.Intn(w), y: r.Intn(h),
				vx: r.Intn(9) - 4, vy: r.Intn(7) - 3,
				w: 8 + r.Intn(w/4), h: 8 + r.Intn(h/4),
				shade: byte(64 + r.Intn(192)),
			}
		}
		return rs
	}
	newBackground := func() {
		base := byte(r.Intn(128))
		for i := range bg {
			bg[i] = base + byte(i%7)*3 + byte(r.Intn(4))
		}
	}
	newBackground()
	rects := makeScene()
	for f := 0; f < n; f++ {
		if sceneLen > 0 && f > 0 && f%sceneLen == 0 {
			newBackground()
			rects = makeScene()
		}
		frame := make([]byte, w*h)
		copy(frame, bg)
		for i := range rects {
			rc := &rects[i]
			rc.x += rc.vx
			rc.y += rc.vy
			if rc.x < -rc.w {
				rc.x = w
			}
			if rc.x > w {
				rc.x = -rc.w
			}
			if rc.y < -rc.h {
				rc.y = h
			}
			if rc.y > h {
				rc.y = -rc.h
			}
			for y := rc.y; y < rc.y+rc.h; y++ {
				if y < 0 || y >= h {
					continue
				}
				for x := rc.x; x < rc.x+rc.w; x++ {
					if x < 0 || x >= w {
						continue
					}
					frame[y*w+x] = rc.shade
				}
			}
		}
		// Sensor noise.
		for p := 0; p < len(frame); p += 97 {
			frame[p] += byte(r.Intn(3))
		}
		v.Frames[f] = frame
	}
	return v
}

// FrameType classifies frames.
type FrameType int8

const (
	TypeI FrameType = iota
	TypeP
	TypeB
)

func (t FrameType) String() string {
	switch t {
	case TypeI:
		return "I"
	case TypeP:
		return "P"
	default:
		return "B"
	}
}

// TypeDecider implements x264's decide_frame_type: a GOP pattern
// (an IDR every gop frames, a B-run of bRun between references) overridden
// by scene-cut detection on the mean absolute difference between
// consecutive source frames.
type TypeDecider struct {
	video     *Video
	gop, bRun int
	cutThresh int
	sinceIDR  int
	sinceRef  int
}

// NewTypeDecider uses gop-frame IDR spacing and runs of bRun B-frames.
func NewTypeDecider(v *Video, gop, bRun, cutThresh int) *TypeDecider {
	if gop < 1 {
		gop = 60
	}
	return &TypeDecider{video: v, gop: gop, bRun: bRun, cutThresh: cutThresh}
}

// Decide classifies frame fi. It must be called for fi = 0, 1, 2, ... in
// order (it keeps GOP state), which the serial stage 0 guarantees.
func (d *TypeDecider) Decide(fi int) FrameType {
	defer func() { d.sinceIDR++ }()
	if fi == 0 || d.sinceIDR >= d.gop {
		d.sinceIDR = 0
		d.sinceRef = 0
		return TypeI
	}
	if d.cutThresh > 0 && d.meanAbsDiff(fi) > d.cutThresh {
		d.sinceIDR = 0
		d.sinceRef = 0
		return TypeI
	}
	if d.sinceRef < d.bRun {
		d.sinceRef++
		return TypeB
	}
	d.sinceRef = 0
	return TypeP
}

// meanAbsDiff samples the mean absolute luma difference with the previous
// frame (subsampled for speed, as real lookahead does).
func (d *TypeDecider) meanAbsDiff(fi int) int {
	a, b := d.video.Frames[fi-1], d.video.Frames[fi]
	var sum, cnt int
	for p := 0; p < len(a); p += 31 {
		diff := int(a[p]) - int(b[p])
		if diff < 0 {
			diff = -diff
		}
		sum += diff
		cnt++
	}
	return sum / cnt
}
