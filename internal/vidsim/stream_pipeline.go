package vidsim

import (
	"bytes"

	"piper"
)

// EncodePiperStream produces the coded bitstream with the on-the-fly
// pipeline of Figure 2: rows are coded in parallel across frames (each
// row into its own buffer) subject to the usual cross-frame dependencies,
// and the serial END stage splices frames into the stream in order. The
// output must be byte-identical to EncodeStream for any worker count.
func EncodePiperStream(eng *piper.Engine, k int, v *Video, cfg Config) *Stream {
	e := NewEncoder(v, cfg)
	cfg = e.Cfg
	d := NewTypeDecider(v, cfg.Gop, cfg.BRun, cfg.CutThresh)
	rows := v.Rows()

	head := &streamWriter{}
	head.buf.Write(streamMagic)
	head.uvarint(uint64(v.W))
	head.uvarint(uint64(v.H))
	head.uvarint(uint64(len(v.Frames)))
	head.uvarint(uint64(cfg.QShift))
	var out bytes.Buffer
	out.Write(head.buf.Bytes())

	var prevRef *Recon
	var recons []*Recon
	cursor, iterIdx := 0, 0

	piper.PipeThrottled(eng, k, func() (*ipJob, bool) {
		return gather(d, len(v.Frames), &cursor)
	}, func(it *piper.Iter, job *ipJob) {
		// Stage 0 (serial): link the reference chain.
		job.prev = prevRef
		job.rc = e.NewRecon(job.fi)
		prevRef = job.rc
		skip := int64(cfg.W * iterIdx)
		iterIdx++

		base := processIPFrame + skip
		//piper:allow-dynamic-stage offset dependency into the row stages (base grows by W per iteration)
		it.Wait(base)

		rowBufs := make([]*streamWriter, rows)
		for r := 0; r < rows; r++ {
			w := &streamWriter{}
			e.EncodeRowStream(job.fi, job.typ, r, job.rc, job.prev, w)
			rowBufs[r] = w
			if job.typ == TypeI {
				//piper:allow-dynamic-stage I-frame rows have no reference dependency
				it.Continue(base + int64(r) + 1)
			} else {
				//piper:allow-dynamic-stage P-frame row r waits on the reference frame's row r
				it.Wait(base + int64(r) + 1)
			}
		}

		it.Wait(endStage) // serial: splice the frame into the stream
		out.WriteByte(frameMarker)
		fw := &streamWriter{}
		fw.uvarint(uint64(job.fi))
		out.Write(fw.buf.Bytes())
		out.WriteByte(byte(job.typ))
		for _, w := range rowBufs {
			out.Write(w.buf.Bytes())
		}
		recons = append(recons, job.rc)
	})
	out.WriteByte(endMarker)
	return &Stream{Bytes: out.Bytes(), Recons: recons}
}
