package vidsim

import (
	"sync"

	"piper"
)

// Stage constants from Figure 2 of the paper.
const (
	processIPFrame = int64(1)
	processBFrames = int64(1) << 40
	endStage       = processBFrames + 1
)

// FrameStat is the per-frame encoding outcome.
type FrameStat struct {
	Frame int
	Type  FrameType
	Bits  int64
	Sig   uint64
}

// Result is a complete encode.
type Result struct {
	Stats      []FrameStat // indexed by frame number
	Order      []int       // reference frames in bitstream write order
	TotalBits  int64
	Checksum   uint64 // combined over frames in display order
	Violations int64  // audited dependency violations (0 under correct scheduling)
}

func finalize(e *Encoder, stats []FrameStat, order []int) *Result {
	res := &Result{Stats: stats, Order: order, Violations: e.Violations()}
	var sum uint64 = 14695981039346656037
	for _, st := range stats {
		res.TotalBits += st.Bits
		sum = (sum ^ st.Sig ^ uint64(st.Type)) * 1099511628211
	}
	res.Checksum = sum
	return res
}

// ipJob is one pipe_while iteration: a reference (I or P) frame plus the
// B-frames buffered before it.
type ipJob struct {
	fi      int
	typ     FrameType
	bframes []int
	rc      *Recon
	prev    *Recon // reference reconstruction of the previous job
}

// gather implements the stage-0 input loop of Figure 2 (lines 9–15):
// buffer B-frames until the next reference frame. A stream ending in
// B-frames promotes the last one to P so every job has a reference.
func gather(d *TypeDecider, nFrames int, cursor *int) (*ipJob, bool) {
	if *cursor >= nFrames {
		return nil, false
	}
	job := &ipJob{}
	fi := *cursor
	*cursor++
	typ := d.Decide(fi)
	for typ == TypeB && *cursor < nFrames {
		job.bframes = append(job.bframes, fi)
		fi = *cursor
		*cursor++
		typ = d.Decide(fi)
	}
	if typ == TypeB {
		typ = TypeP // trailing B becomes the reference
	}
	job.fi, job.typ = fi, typ
	return job, true
}

// bRefs selects the B-frame references for a job: forward prediction from
// the previous reference, backward from the current one. After an IDR
// (TypeI) the forward reference is dropped — IDR semantics forbid
// crossing it, which also makes the parallel schedule race-free (an
// I-frame job never waited on its predecessor's rows).
func (j *ipJob) bRefs() (fwd, bwd *Recon) {
	if j.typ == TypeI {
		return nil, j.rc
	}
	return j.prev, j.rc
}

// EncodeSerial is the single-threaded reference encoder (TS).
func EncodeSerial(v *Video, cfg Config) *Result {
	e := NewEncoder(v, cfg)
	d := NewTypeDecider(v, cfg.Gop, cfg.BRun, cfg.CutThresh)
	stats := make([]FrameStat, len(v.Frames))
	var order []int
	var prevRef *Recon
	cursor := 0
	for {
		job, ok := gather(d, len(v.Frames), &cursor)
		if !ok {
			break
		}
		job.prev = prevRef
		job.rc = e.NewRecon(job.fi)
		prevRef = job.rc
		encodeJob(e, job, stats)
		order = append(order, job.fi)
	}
	return finalize(e, stats, order)
}

// encodeJob runs the row loop and the B-frame batch for one job.
func encodeJob(e *Encoder, job *ipJob, stats []FrameStat) {
	rows := e.Video.Rows()
	var bits int64
	var sig uint64 = 99194853094755497
	for r := 0; r < rows; r++ {
		b, s := e.EncodeRow(job.fi, job.typ, r, job.rc, refFor(job))
		bits += b
		sig = (sig ^ s) * 1099511628211
	}
	stats[job.fi] = FrameStat{Frame: job.fi, Type: job.typ, Bits: bits, Sig: sig}
	fwd, bwd := job.bRefs()
	for _, bi := range job.bframes {
		bb, bs := e.EncodeB(bi, fwd, bwd)
		stats[bi] = FrameStat{Frame: bi, Type: TypeB, Bits: bb, Sig: bs}
	}
}

func refFor(job *ipJob) *Recon {
	if job.typ == TypeP {
		return job.prev
	}
	return nil
}

// EncodePiper runs the on-the-fly hybrid pipeline of Figure 2 on a PIPER
// engine: a serial stage 0 that reads frames and decides types, w·i
// skipped stages implementing the motion-range offset dependency, one
// stage per macroblock row with a data-dependent pipe_wait (P) or
// pipe_continue (I), a parallel B-frame stage (cilk_for), and a serial
// write stage.
// Reconstruction buffers live on the engine's arena and flow by ownership
// hand-off: stage 0 of each job takes out two references on its fresh
// reconstruction — one for the job's own row loop and B-batch, one that
// rides the prevRef chain slot and transfers to the successor job as its
// motion-search reference. Each body releases its own pair by defer, so a
// cancellation or panic unwinding the body cannot leak pixels; the final
// chain reference is released when the pipeline returns.
func EncodePiper(eng *piper.Engine, k int, v *Video, cfg Config) *Result {
	e := NewEncoder(v, cfg)
	e.A = eng.Arena()
	cfg = e.Cfg
	d := NewTypeDecider(v, cfg.Gop, cfg.BRun, cfg.CutThresh)
	stats := make([]FrameStat, len(v.Frames))
	var order []int
	var prevRef *Recon
	cursor, iterIdx := 0, 0
	rows := v.Rows()
	defer func() { prevRef.release() }() // last job's chain reference

	piper.PipeThrottled(eng, k, func() (*ipJob, bool) {
		return gather(d, len(v.Frames), &cursor)
	}, func(it *piper.Iter, job *ipJob) {
		// Still stage 0 (serial): allocate the reconstruction and link the
		// reference chain. The chain slot's reference is taken here, while
		// the slot is exclusively ours; the predecessor's chain reference
		// transfers to this job and is released when the body finishes.
		job.prev = prevRef
		job.rc = e.NewRecon(job.fi)
		job.rc.retain() // the chain slot's reference
		prevRef = job.rc
		defer job.rc.release()
		defer job.prev.release()
		skip := int64(cfg.W * iterIdx)
		iterIdx++

		base := processIPFrame + skip
		it.Wait(base) //piper:allow-dynamic-stage line 17: offset dependency into the row stages (base grows by W per iteration)

		var bits int64
		var sig uint64 = 99194853094755497
		for r := 0; r < rows; r++ {
			b, s := e.EncodeRow(job.fi, job.typ, r, job.rc, refFor(job))
			bits += b
			sig = (sig ^ s) * 1099511628211
			// Lines 20–24: conditional dependency on the previous
			// reference frame's rows.
			if job.typ == TypeI {
				//piper:allow-dynamic-stage lines 20-24: I-frame rows have no reference dependency
				it.Continue(base + int64(r) + 1)
			} else {
				//piper:allow-dynamic-stage lines 20-24: P-frame row r waits on the reference frame's row r
				it.Wait(base + int64(r) + 1)
			}
		}
		stats[job.fi] = FrameStat{Frame: job.fi, Type: job.typ, Bits: bits, Sig: sig}

		it.Continue(processBFrames) // line 26: skip over later rows
		fwd, bwd := job.bRefs()
		bfs := job.bframes
		it.For(len(bfs), 1, func(jx int) {
			bb, bs := e.EncodeB(bfs[jx], fwd, bwd)
			stats[bfs[jx]] = FrameStat{Frame: bfs[jx], Type: TypeB, Bits: bb, Sig: bs}
		})

		it.Wait(endStage) // line 30: serial, in-order output
		order = append(order, job.fi)
	})
	return finalize(e, stats, order)
}

// EncodeThreads is the PARSEC-style Pthreaded baseline: frame-level
// threads (bounded in flight), each waiting on the previous reference
// frame's row counter through a condition variable, with in-order output.
func EncodeThreads(v *Video, cfg Config, threads int) *Result {
	e := NewEncoder(v, cfg)
	cfg = e.Cfg
	d := NewTypeDecider(v, cfg.Gop, cfg.BRun, cfg.CutThresh)
	stats := make([]FrameStat, len(v.Frames))

	// Construct-and-run: the job list is built up front, serially (this
	// is exactly the a-priori structure an on-the-fly pipeline avoids).
	var jobs []*ipJob
	cursor := 0
	for {
		job, ok := gather(d, len(v.Frames), &cursor)
		if !ok {
			break
		}
		jobs = append(jobs, job)
	}
	var prevRef *Recon
	syncs := make([]*rowSync, len(jobs))
	for i, job := range jobs {
		job.prev = prevRef
		job.rc = e.NewRecon(job.fi)
		prevRef = job.rc
		syncs[i] = newRowSync(job.rc)
	}

	sem := make(chan struct{}, threads)
	order := make([]int, len(jobs))
	var wg sync.WaitGroup
	rows := v.Rows()
	for i := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			job := jobs[i]
			var refSync *rowSync
			if i > 0 {
				refSync = syncs[i-1]
			}
			var bits int64
			var sig uint64 = 99194853094755497
			for r := 0; r < rows; r++ {
				if job.typ == TypeP && refSync != nil {
					need := r + cfg.W
					if need > rows-1 {
						need = rows - 1
					}
					refSync.waitRows(need + 1)
				}
				b, s := e.EncodeRow(job.fi, job.typ, r, job.rc, refFor(job))
				bits += b
				sig = (sig ^ s) * 1099511628211
				syncs[i].rowDone()
			}
			if job.typ == TypeI && refSync != nil {
				// I-frames produce no row waits, but their B-batch timing
				// must not matter: bRefs drops the forward ref for IDR.
				_ = refSync
			}
			stats[job.fi] = FrameStat{Frame: job.fi, Type: job.typ, Bits: bits, Sig: sig}
			fwd, bwd := job.bRefs()
			if fwd != nil && refSync != nil {
				refSync.waitRows(rows)
			}
			for _, bi := range job.bframes {
				bb, bs := e.EncodeB(bi, fwd, bwd)
				stats[bi] = FrameStat{Frame: bi, Type: TypeB, Bits: bb, Sig: bs}
			}
			order[i] = job.fi
		}(i)
	}
	wg.Wait()
	return finalize(e, stats, order)
}

// rowSync publishes row completion to waiting frame threads.
type rowSync struct {
	rc *Recon
	mu sync.Mutex
	cv *sync.Cond
}

func newRowSync(rc *Recon) *rowSync {
	rs := &rowSync{rc: rc}
	rs.cv = sync.NewCond(&rs.mu)
	return rs
}

func (rs *rowSync) rowDone() {
	rs.mu.Lock()
	rs.cv.Broadcast()
	rs.mu.Unlock()
}

func (rs *rowSync) waitRows(n int) {
	rs.mu.Lock()
	for rs.rc.RowsDone() < n {
		rs.cv.Wait()
	}
	rs.mu.Unlock()
}
