package vidsim

import (
	"testing"

	"piper"
)

func smallVideo(seed uint64) *Video {
	return Generate(seed, 128, 64, 40, 15)
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(1, 64, 32, 10, 0)
	b := Generate(1, 64, 32, 10, 0)
	for f := range a.Frames {
		for p := range a.Frames[f] {
			if a.Frames[f][p] != b.Frames[f][p] {
				t.Fatal("video generation not deterministic")
			}
		}
	}
}

func TestGenerateBadDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-multiple-of-16 dims")
		}
	}()
	Generate(1, 30, 32, 2, 0)
}

func TestTypeDeciderPattern(t *testing.T) {
	v := Generate(2, 64, 32, 30, 0) // no scene cuts
	d := NewTypeDecider(v, 12, 2, 0)
	types := make([]FrameType, 30)
	for i := range types {
		types[i] = d.Decide(i)
	}
	if types[0] != TypeI {
		t.Fatal("frame 0 must be I")
	}
	// With bRun=2 the pattern after an I is B B P B B P ...
	if types[1] != TypeB || types[2] != TypeB || types[3] != TypeP {
		t.Fatalf("pattern start = %v %v %v, want B B P", types[1], types[2], types[3])
	}
	// An IDR appears within every gop+1 window.
	for lo := 0; lo+13 < len(types); lo++ {
		hasI := false
		for _, ty := range types[lo : lo+13] {
			if ty == TypeI {
				hasI = true
				break
			}
		}
		if !hasI {
			t.Fatalf("no IDR in window starting at %d", lo)
		}
	}
}

func TestSceneCutForcesI(t *testing.T) {
	v := Generate(3, 64, 32, 40, 10) // scene change every 10 frames
	d := NewTypeDecider(v, 1000, 2, 20)
	types := make([]FrameType, 40)
	iCount := 0
	for i := range types {
		types[i] = d.Decide(i)
		if types[i] == TypeI {
			iCount++
		}
	}
	// Frame 0 plus ~one per scene change.
	if iCount < 3 {
		t.Fatalf("scene cuts produced only %d I-frames", iCount)
	}
}

func TestSerialEncodeBasics(t *testing.T) {
	v := smallVideo(4)
	res := EncodeSerial(v, DefaultConfig())
	if res.Violations != 0 {
		t.Fatalf("serial encode reported %d dependency violations", res.Violations)
	}
	if res.TotalBits <= 0 {
		t.Fatal("no bits produced")
	}
	if len(res.Order) == 0 || res.Order[0] != 0 {
		t.Fatalf("order = %v", res.Order)
	}
	for fi, st := range res.Stats {
		if st.Frame != fi {
			t.Fatalf("stats[%d] holds frame %d", fi, st.Frame)
		}
	}
}

// TestMotionSearchFindsMotion: P-frames of a moving scene must cost far
// fewer bits than intra-coding everything.
func TestMotionSearchFindsMotion(t *testing.T) {
	v := smallVideo(5)
	res := EncodeSerial(v, DefaultConfig())
	var iBits, iN, pBits, pN int64
	for _, st := range res.Stats {
		switch st.Type {
		case TypeI:
			iBits += st.Bits
			iN++
		case TypeP:
			pBits += st.Bits
			pN++
		}
	}
	if iN == 0 || pN == 0 {
		t.Fatalf("need both I and P frames (got %d I, %d P)", iN, pN)
	}
	if pBits/pN >= iBits/iN {
		t.Fatalf("P frames (%d avg bits) should be cheaper than I frames (%d avg bits)",
			pBits/pN, iBits/iN)
	}
}

// TestPiperMatchesSerial: bit-exact reproduction across executors, the
// cross-executor oracle. Because inter prediction reads reconstructions,
// any dependency violation by the scheduler would change the checksum.
func TestPiperMatchesSerial(t *testing.T) {
	v := smallVideo(6)
	cfg := DefaultConfig()
	want := EncodeSerial(v, cfg)
	for _, p := range []int{1, 2, 4, 8} {
		eng := piper.NewEngine(piper.Workers(p))
		got := EncodePiper(eng, 4*p, v, cfg)
		eng.Close()
		if got.Violations != 0 {
			t.Fatalf("P=%d: %d dependency violations", p, got.Violations)
		}
		if got.Checksum != want.Checksum {
			t.Fatalf("P=%d: checksum %x != serial %x", p, got.Checksum, want.Checksum)
		}
		if got.TotalBits != want.TotalBits {
			t.Fatalf("P=%d: bits %d != serial %d", p, got.TotalBits, want.TotalBits)
		}
		for i := range want.Order {
			if got.Order[i] != want.Order[i] {
				t.Fatalf("P=%d: write order differs at %d", p, i)
			}
		}
	}
}

func TestThreadsMatchesSerial(t *testing.T) {
	v := smallVideo(7)
	cfg := DefaultConfig()
	want := EncodeSerial(v, cfg)
	for _, th := range []int{1, 2, 4} {
		got := EncodeThreads(v, cfg, th)
		if got.Violations != 0 {
			t.Fatalf("threads=%d: %d dependency violations", th, got.Violations)
		}
		if got.Checksum != want.Checksum {
			t.Fatalf("threads=%d: checksum mismatch", th)
		}
	}
}

// TestOffsetDependencyW2: a wider motion range (w=2) still schedules
// correctly (more skipped stages per iteration).
func TestOffsetDependencyW2(t *testing.T) {
	v := smallVideo(8)
	cfg := DefaultConfig()
	cfg.W = 2
	want := EncodeSerial(v, cfg)
	eng := piper.NewEngine(piper.Workers(4))
	defer eng.Close()
	got := EncodePiper(eng, 16, v, cfg)
	if got.Violations != 0 {
		t.Fatalf("%d dependency violations", got.Violations)
	}
	if got.Checksum != want.Checksum {
		t.Fatal("checksum mismatch with w=2")
	}
}

// TestAllIStream: gop=1 makes every reference an I-frame; the pipeline is
// then fully parallel across row stages (no cross edges).
func TestAllIStream(t *testing.T) {
	v := smallVideo(9)
	cfg := DefaultConfig()
	cfg.Gop = 1
	cfg.BRun = 0
	want := EncodeSerial(v, cfg)
	for _, st := range want.Stats {
		if st.Type != TypeI {
			t.Fatalf("frame %d has type %v, want I", st.Frame, st.Type)
		}
	}
	eng := piper.NewEngine(piper.Workers(4))
	defer eng.Close()
	got := EncodePiper(eng, 8, v, cfg)
	if got.Checksum != want.Checksum {
		t.Fatal("checksum mismatch for all-I stream")
	}
}

// TestBFramesEncoded: every B frame gets stats and costs fewer bits on
// average than references.
func TestBFramesEncoded(t *testing.T) {
	v := smallVideo(10)
	res := EncodeSerial(v, DefaultConfig())
	var bN int64
	for _, st := range res.Stats {
		if st.Type == TypeB {
			bN++
			if st.Sig == 0 {
				t.Fatalf("B frame %d has empty signature", st.Frame)
			}
		}
	}
	if bN == 0 {
		t.Fatal("no B frames in stream")
	}
}

func TestReconRowsDone(t *testing.T) {
	v := smallVideo(11)
	e := NewEncoder(v, DefaultConfig())
	rc := e.NewRecon(0)
	if rc.RowsDone() != 0 {
		t.Fatal("fresh recon should have 0 rows")
	}
	e.EncodeRow(0, TypeI, 0, rc, nil)
	if rc.RowsDone() != 1 {
		t.Fatalf("rows done = %d, want 1", rc.RowsDone())
	}
}
