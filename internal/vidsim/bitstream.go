package vidsim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Bitstream serialization: a real (if simple) coded representation of the
// reference frames, with a decoder that reconstructs them bit-exactly.
// The stream codes, per reference frame, each macroblock's prediction
// mode, motion vector, and quantized residual (zero-run-length coded), so
// decode(encode(v)) reproduces the encoder's reconstruction exactly —
// the strongest possible oracle for the pipeline's dependency handling:
// any out-of-order row encode changes the predictions and breaks the
// decoder comparison.
//
// Stream layout:
//
//	magic "PVS1"
//	uvarint width, height, frame count, QShift
//	per reference frame (in encode order):
//	  0xFE, uvarint frameIndex, byte type (I/P)
//	  per macroblock (row major):
//	    byte mode (0 intra, 1 inter)
//	    inter: zigzag-varint mvdx, mvdy
//	    residual: repeated (uvarint zeroRun, zigzag-varint value);
//	    a zeroRun covering the rest of the block ends it implicitly
//	0xFF end marker
var streamMagic = []byte("PVS1")

const (
	mbModeIntra = 0
	mbModeInter = 1
	frameMarker = 0xFE
	endMarker   = 0xFF
)

// mbRecord is the coded form of one macroblock.
type mbRecord struct {
	inter      bool
	mvdx, mvdy int
	// qres holds the quantized residual values (res >> QShift), row
	// major, MB×MB entries.
	qres [MB * MB]int16
}

// streamWriter accumulates the coded stream.
type streamWriter struct {
	buf bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

func (w *streamWriter) uvarint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf.Write(w.tmp[:n])
}

func (w *streamWriter) varint(v int64) {
	n := binary.PutVarint(w.tmp[:], v)
	w.buf.Write(w.tmp[:n])
}

func (w *streamWriter) mb(rec *mbRecord) {
	if rec.inter {
		w.buf.WriteByte(mbModeInter)
		w.varint(int64(rec.mvdx))
		w.varint(int64(rec.mvdy))
	} else {
		w.buf.WriteByte(mbModeIntra)
	}
	// Zero-run-length code the residuals.
	i := 0
	for i < len(rec.qres) {
		run := 0
		for i+run < len(rec.qres) && rec.qres[i+run] == 0 {
			run++
		}
		if i+run == len(rec.qres) {
			w.uvarint(uint64(run)) // trailing zeros: run with no value
			break
		}
		w.uvarint(uint64(run))
		w.varint(int64(rec.qres[i+run]))
		i += run + 1
	}
}

// encodeMBRecord computes the coded record for one macroblock and applies
// its reconstruction, sharing dcPredict/motionSearch with the estimating
// path so the two can never choose different predictions.
func (e *Encoder) encodeMBRecord(fi, r, c int, rc *Recon, ref *Recon) mbRecord {
	v := e.Video
	src := v.Frames[fi]
	x0, y0 := c*MB, r*MB
	var rec mbRecord
	if ref != nil {
		bdx, bdy, bestSAD := e.motionSearch(src, ref.Pix, x0, y0, r)
		if bestSAD <= 24*MB*MB {
			rec.inter = true
			rec.mvdx, rec.mvdy = bdx, bdy
		}
	}
	var predAt func(x, y int) int
	if rec.inter {
		mx, my := x0+rec.mvdx, y0+rec.mvdy
		predAt = func(x, y int) int {
			return int(ref.Pix[(my+(y-y0))*v.W+mx+(x-x0)])
		}
	} else {
		pred := dcPredict(rc.Pix, v.W, x0, y0)
		predAt = func(x, y int) int { return pred }
	}
	q := e.Cfg.QShift
	k := 0
	for y := y0; y < y0+MB; y++ {
		row := y * v.W
		for x := x0; x < x0+MB; x++ {
			p := predAt(x, y)
			res := int(src[row+x]) - p
			qv := res / (1 << q) // toward zero, matching reconstructMB
			rec.qres[k] = int16(qv)
			k++
			rc.Pix[row+x] = clampByte(p + qv*(1<<q))
		}
	}
	return rec
}

func clampByte(v int) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// EncodeRowStream codes macroblock row r into w and applies the
// reconstruction, the stream-producing twin of EncodeRow.
func (e *Encoder) EncodeRowStream(fi int, typ FrameType, r int, rc *Recon, ref *Recon, w *streamWriter) {
	useRef := ref
	if typ == TypeI {
		useRef = nil
	}
	if useRef != nil {
		rows := e.Video.Rows()
		need := r + e.Cfg.W
		if need > rows-1 {
			need = rows - 1
		}
		if useRef.RowsDone() < need+1 {
			e.violations.Add(1)
		}
	}
	for c := 0; c < e.Video.Cols(); c++ {
		rec := e.encodeMBRecord(fi, r, c, rc, useRef)
		w.mb(&rec)
	}
	rc.rowsDone.Store(int32(r + 1))
}

// Stream is a fully coded video plus the encoder reconstructions for
// verification.
type Stream struct {
	Bytes  []byte
	Recons []*Recon // reference-frame reconstructions, in encode order
}

// EncodeStream codes all reference frames of the video serially (B-frames
// are cost-modelled only, as in the pipelines) and returns the stream.
func EncodeStream(v *Video, cfg Config) *Stream {
	e := NewEncoder(v, cfg)
	d := NewTypeDecider(v, cfg.Gop, cfg.BRun, cfg.CutThresh)
	w := &streamWriter{}
	w.buf.Write(streamMagic)
	w.uvarint(uint64(v.W))
	w.uvarint(uint64(v.H))
	w.uvarint(uint64(len(v.Frames)))
	w.uvarint(uint64(e.Cfg.QShift))

	var prevRef *Recon
	var recons []*Recon
	cursor := 0
	for {
		job, ok := gather(d, len(v.Frames), &cursor)
		if !ok {
			break
		}
		job.prev = prevRef
		job.rc = e.NewRecon(job.fi)
		prevRef = job.rc
		w.buf.WriteByte(frameMarker)
		w.uvarint(uint64(job.fi))
		w.buf.WriteByte(byte(job.typ))
		for r := 0; r < v.Rows(); r++ {
			e.EncodeRowStream(job.fi, job.typ, r, job.rc, job.prev, w)
		}
		recons = append(recons, job.rc)
	}
	w.buf.WriteByte(endMarker)
	return &Stream{Bytes: w.buf.Bytes(), Recons: recons}
}

// DecodedFrame is one reconstructed reference frame.
type DecodedFrame struct {
	Frame int
	Type  FrameType
	Pix   []byte
}

// Decode reconstructs the reference frames from a coded stream. The
// decoder maintains its own reconstruction state and must agree with the
// encoder's recon buffers bit for bit.
func Decode(stream []byte) (w, h int, frames []DecodedFrame, err error) {
	if !bytes.HasPrefix(stream, streamMagic) {
		return 0, 0, nil, errors.New("vidsim: bad stream magic")
	}
	r := bytes.NewReader(stream[len(streamMagic):])
	uv := func() uint64 {
		v, e2 := binary.ReadUvarint(r)
		if e2 != nil && err == nil {
			err = e2
		}
		return v
	}
	sv := func() int64 {
		v, e2 := binary.ReadVarint(r)
		if e2 != nil && err == nil {
			err = e2
		}
		return v
	}
	w = int(uv())
	h = int(uv())
	_ = uv() // frame count (informational)
	q := uint(uv())
	if err != nil {
		return 0, 0, nil, err
	}
	if w <= 0 || h <= 0 || w%MB != 0 || h%MB != 0 || w > 1<<14 || h > 1<<14 {
		return 0, 0, nil, fmt.Errorf("vidsim: implausible dimensions %dx%d", w, h)
	}
	var prev []byte
	for {
		marker, e2 := r.ReadByte()
		if e2 != nil {
			return 0, 0, nil, errors.New("vidsim: truncated stream")
		}
		if marker == endMarker {
			return w, h, frames, nil
		}
		if marker != frameMarker {
			return 0, 0, nil, fmt.Errorf("vidsim: bad frame marker 0x%02x", marker)
		}
		fi := int(uv())
		tb, e2 := r.ReadByte()
		if e2 != nil {
			return 0, 0, nil, e2
		}
		typ := FrameType(tb)
		pix := make([]byte, w*h)
		for mb := 0; mb < (w/MB)*(h/MB); mb++ {
			x0 := (mb % (w / MB)) * MB
			y0 := (mb / (w / MB)) * MB
			mode, e2 := r.ReadByte()
			if e2 != nil {
				return 0, 0, nil, e2
			}
			var predAt func(x, y int) int
			switch mode {
			case mbModeInter:
				mvdx, mvdy := int(sv()), int(sv())
				if prev == nil {
					return 0, 0, nil, errors.New("vidsim: inter block without reference")
				}
				mx, my := x0+mvdx, y0+mvdy
				if mx < 0 || my < 0 || mx+MB > w || my+MB > h {
					return 0, 0, nil, fmt.Errorf("vidsim: motion vector (%d,%d) out of frame", mvdx, mvdy)
				}
				ref := prev
				predAt = func(x, y int) int {
					return int(ref[(my+(y-y0))*w+mx+(x-x0)])
				}
			case mbModeIntra:
				pred := dcPredict(pix, w, x0, y0)
				predAt = func(x, y int) int { return pred }
			default:
				return 0, 0, nil, fmt.Errorf("vidsim: bad MB mode 0x%02x", mode)
			}
			// Decode the residual run-length stream into the block.
			var qres [MB * MB]int16
			i := 0
			for i < len(qres) {
				run := int(uv())
				if err != nil {
					return 0, 0, nil, err
				}
				if run > len(qres)-i {
					return 0, 0, nil, errors.New("vidsim: residual run overflows block")
				}
				i += run
				if i == len(qres) {
					break
				}
				qres[i] = int16(sv())
				i++
			}
			if err != nil {
				return 0, 0, nil, err
			}
			k := 0
			for y := y0; y < y0+MB; y++ {
				for x := x0; x < x0+MB; x++ {
					pix[y*w+x] = clampByte(predAt(x, y) + int(qres[k])*(1<<q))
					k++
				}
			}
		}
		frames = append(frames, DecodedFrame{Frame: fi, Type: typ, Pix: pix})
		prev = pix
	}
}

// PSNR computes the peak signal-to-noise ratio in dB between two frames.
func PSNR(a, b []byte) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var mse float64
	for i := range a {
		d := float64(int(a[i]) - int(b[i]))
		mse += d * d
	}
	mse /= float64(len(a))
	if mse == 0 {
		return 99
	}
	// 10*log10(255^2/mse) without importing math: log10 via a small
	// series is overkill — use the change-of-base with natural log
	// approximated by repeated square root (Briggs). Precision to 0.01dB
	// is ample for tests.
	return 10 * log10(255*255/mse)
}

// log10 is Briggs' method: log10(x) = log2(x)/log2(10) with log2 via
// repeated squaring/halving. Stdlib math would be fine; this keeps the
// kernel self-contained and deterministic across platforms.
func log10(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Normalize x into [1, 10).
	n := 0
	for x >= 10 {
		x /= 10
		n++
	}
	for x < 1 {
		x *= 10
		n--
	}
	// Binary digits of log10(x) for x in [1,10).
	frac := 0.0
	add := 0.5
	for i := 0; i < 40; i++ {
		x *= x
		if x >= 10 {
			frac += add
			x /= 10
		}
		add /= 2
	}
	return float64(n) + frac
}
