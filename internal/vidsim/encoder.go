package vidsim

import (
	"sync"
	"sync/atomic"

	"piper/internal/arena"
)

// Config sets the encoder parameters that matter for scheduling.
type Config struct {
	// W is the row-offset dependency in macroblock rows — the paper's
	// w = mv_range / pixels_per_row. Motion vectors may reach this many
	// MB rows below the current row in the reference frame.
	W int
	// QShift is the quantization strength (larger = coarser).
	QShift uint
	// Gop, BRun, CutThresh configure the frame-type decider.
	Gop, BRun, CutThresh int
}

// DefaultConfig mirrors a small but realistic operating point.
func DefaultConfig() Config {
	return Config{W: 1, QShift: 4, Gop: 24, BRun: 2, CutThresh: 24}
}

// Recon is a frame reconstruction being produced by the encoder. Inter
// prediction reads reconstructions, not source frames, so a scheduler
// that violated the row dependencies would corrupt the bitstream — the
// tests rely on this to give the dependency audit teeth.
type Recon struct {
	Frame    int
	Pix      []byte
	ref      *arena.Ref   // arena region backing Pix; nil off the arena path
	rowsDone atomic.Int32 // completed macroblock rows
}

// RowsDone reports how many MB rows of the reconstruction are complete.
func (rc *Recon) RowsDone() int { return int(rc.rowsDone.Load()) }

// retain adds a reference to the arena region backing Pix. No-op for
// reconstructions allocated off the arena path.
func (rc *Recon) retain() {
	if rc.ref != nil {
		rc.ref.Retain()
	}
}

// release drops one reference to the backing arena region, recycling the
// pixels once the last holder lets go. Nil-safe so callers can release a
// possibly-absent predecessor unconditionally.
func (rc *Recon) release() {
	if rc != nil && rc.ref != nil {
		rc.ref.Release()
	}
}

// Encoder encodes one video with shared, immutable configuration.
// Its methods are safe for concurrent use on distinct frames/rows as long
// as the pipeline dependencies are respected; the violations counter
// records any read of reconstruction rows that were not yet complete.
type Encoder struct {
	Video *Video
	Cfg   Config
	// A, when set, backs reconstruction buffers with recycled arena
	// regions; nil means plain allocation (the serial and threaded
	// baselines, which never release).
	A          *arena.Arena
	violations atomic.Int64
	scratch    sync.Pool // spare *Recon for EncodeB's no-reference path
}

// NewEncoder wraps a video.
func NewEncoder(v *Video, cfg Config) *Encoder {
	if cfg.W < 1 {
		cfg.W = 1
	}
	return &Encoder{Video: v, Cfg: cfg}
}

// Violations reports audited dependency violations (must stay 0 under a
// correct scheduler).
func (e *Encoder) Violations() int64 { return e.violations.Load() }

// NewRecon allocates the reconstruction buffer for frame fi: a recycled
// arena region when the encoder is arena-backed, a fresh slice otherwise.
// Recycled pixels are not zeroed — every pixel an encode reads (intra
// neighbours, completed reference rows) was written first, and the
// determinism tests against the serial encoder hold the proof.
func (e *Encoder) NewRecon(fi int) *Recon {
	n := e.Video.W * e.Video.H
	if e.A == nil {
		return &Recon{Frame: fi, Pix: make([]byte, n)}
	}
	ref := e.A.Get(n)
	ref.B = ref.B[:n]
	return &Recon{Frame: fi, Pix: ref.B, ref: ref}
}

// searchRange is the motion-search radius in pixels for a given row
// offset w.
func (e *Encoder) searchRange() int { return e.Cfg.W * MB }

// EncodeRow encodes macroblock row r of frame fi into rc. For TypeP the
// ref reconstruction must have rows 0..min(r+W, rows-1) complete; the
// encoder audits this. It returns the row's bit cost and a checksum.
func (e *Encoder) EncodeRow(fi int, typ FrameType, r int, rc *Recon, ref *Recon) (int64, uint64) {
	v := e.Video
	cols := v.Cols()
	var bits int64
	var sum uint64 = 1469598103934665603
	for c := 0; c < cols; c++ {
		var mbBits int64
		var mbSig uint64
		if typ == TypeI || ref == nil {
			mbBits, mbSig = e.encodeIntraMB(fi, r, c, rc)
		} else {
			mbBits, mbSig = e.encodeInterMB(fi, r, c, rc, ref)
		}
		bits += mbBits
		sum = (sum ^ mbSig) * 1099511628211
	}
	rc.rowsDone.Store(int32(r + 1))
	return bits, sum
}

// dcPredict computes the DC intra predictor for the macroblock at
// (x0, y0): the mean of the reconstructed row above and column to the
// left, or 128 at the frame corner. Both the encoder and the decoder
// run this on their own reconstruction, which is what keeps them in sync.
func dcPredict(pix []byte, stride, x0, y0 int) int {
	var dc, n int
	if y0 > 0 {
		for x := x0; x < x0+MB; x++ {
			dc += int(pix[(y0-1)*stride+x])
			n++
		}
	}
	if x0 > 0 {
		for y := y0; y < y0+MB; y++ {
			dc += int(pix[y*stride+x0-1])
			n++
		}
	}
	if n == 0 {
		return 128
	}
	return dc / n
}

// encodeIntraMB performs DC intra prediction from the already-encoded
// neighbours inside the same reconstruction.
func (e *Encoder) encodeIntraMB(fi, r, c int, rc *Recon) (int64, uint64) {
	v := e.Video
	src := v.Frames[fi]
	x0, y0 := c*MB, r*MB
	pred := dcPredict(rc.Pix, v.W, x0, y0)
	bits, sig := e.reconstructMB(src, rc, x0, y0, func(x, y int) int { return pred })
	return bits + 6, sig ^ 0xA5A5 // mode header
}

// encodeInterMB motion-searches the reference reconstruction within the
// legal window and falls back to intra when the match is poor.
func (e *Encoder) encodeInterMB(fi, r, c int, rc *Recon, ref *Recon) (int64, uint64) {
	v := e.Video
	src := v.Frames[fi]
	x0, y0 := c*MB, r*MB
	rows := v.Rows()

	// Audit the cross-frame dependency: we may touch ref rows up to r+W.
	need := r + e.Cfg.W
	if need > rows-1 {
		need = rows - 1
	}
	if ref.RowsDone() < need+1 {
		e.violations.Add(1)
	}

	bdx, bdy, bestSAD := e.motionSearch(src, ref.Pix, x0, y0, r)

	// Intra fallback for bad matches (e.g. right after occlusions).
	if bestSAD > 24*MB*MB {
		return e.encodeIntraMB(fi, r, c, rc)
	}

	mx, my := x0+bdx, y0+bdy
	bits, sig := e.reconstructMB(src, rc, x0, y0, func(x, y int) int {
		return int(ref.Pix[(my+(y-y0))*v.W+mx+(x-x0)])
	})
	sig = sig*31 + uint64(uint32(bdx*131071+bdy))
	return bits + 10, sig // mv + header bits
}

// reconstructMB quantizes the residual against pred and writes the
// reconstruction, returning the bit estimate and a content signature.
func (e *Encoder) reconstructMB(src []byte, rc *Recon, x0, y0 int, pred func(x, y int) int) (int64, uint64) {
	v := e.Video
	q := e.Cfg.QShift
	var bits int64
	var sig uint64 = 14695981039346656037
	for y := y0; y < y0+MB; y++ {
		row := y * v.W
		for x := x0; x < x0+MB; x++ {
			p := pred(x, y)
			res := int(src[row+x]) - p
			// Quantize toward zero (Go's integer division), as real
			// codecs do: small residuals of either sign become 0.
			qres := res / (1 << q) * (1 << q)
			rec := p + qres
			if rec < 0 {
				rec = 0
			}
			if rec > 255 {
				rec = 255
			}
			rc.Pix[row+x] = byte(rec)
			ares := res
			if ares < 0 {
				ares = -ares
			}
			bits += int64(ares >> q)
			sig = (sig ^ uint64(byte(rec))) * 1099511628211
		}
	}
	return bits, sig
}

// motionSearch finds the best motion vector for the MB at (x0, y0) of
// row r within the legal window (reference rows <= r + W), scanning a
// 4-pixel grid with deterministic tie-breaking. It returns the vector
// and its SAD.
func (e *Encoder) motionSearch(src, refPix []byte, x0, y0, r int) (int, int, int64) {
	v := e.Video
	bestSAD, bdx, bdy := e.sad(src, refPix, x0, y0, x0, y0, int64(1)<<62), 0, 0
	rangePx := e.searchRange()
	maxY := (r+e.Cfg.W+1)*MB - MB // stay within completed ref rows
	if maxY > v.H-MB {
		maxY = v.H - MB
	}
	for dy := -rangePx; dy <= rangePx; dy += 4 {
		y := y0 + dy
		if y < 0 || y > maxY {
			continue
		}
		for dx := -rangePx; dx <= rangePx; dx += 4 {
			x := x0 + dx
			if x < 0 || x > v.W-MB {
				continue
			}
			s := e.sad(src, refPix, x0, y0, x, y, bestSAD)
			if s < bestSAD || (s == bestSAD && (dy < bdy || (dy == bdy && dx < bdx))) {
				bestSAD, bdx, bdy = s, dx, dy
			}
		}
	}
	return bdx, bdy, bestSAD
}

// sad computes the sum of absolute differences between the MB at (x0,y0)
// in src and the block at (x,y) in ref, with early exit past limit.
func (e *Encoder) sad(src, ref []byte, x0, y0, x, y int, limit int64) int64 {
	v := e.Video
	var s int64
	for r := 0; r < MB; r++ {
		a := src[(y0+r)*v.W+x0 : (y0+r)*v.W+x0+MB]
		b := ref[(y+r)*v.W+x : (y+r)*v.W+x+MB]
		for i := 0; i < MB; i++ {
			d := int64(a[i]) - int64(b[i])
			if d < 0 {
				d = -d
			}
			s += d
		}
		if s >= limit {
			return s
		}
	}
	return s
}

// EncodeB encodes B-frame bi (no reconstruction is produced; B-frames are
// not references). fwd is the preceding I/P reconstruction (may be nil
// right after a scene cut, when only backward prediction is safe), bwd
// the succeeding one; both must be fully reconstructed.
func (e *Encoder) EncodeB(bi int, fwd, bwd *Recon) (int64, uint64) {
	v := e.Video
	rows := v.Rows()
	if fwd != nil && fwd.RowsDone() < rows {
		e.violations.Add(1)
	}
	if bwd != nil && bwd.RowsDone() < rows {
		e.violations.Add(1)
	}
	src := v.Frames[bi]
	var bits int64
	var sum uint64 = 1469598103934665603
	// The intra scratch reconstruction is only needed when a block has no
	// reference at all (fwd == bwd == nil, right after a cut with no
	// successor) — allocate it lazily from the encoder's pool instead of
	// burning a frame-sized buffer on every call.
	var scratch *Recon
	defer func() {
		if scratch != nil {
			scratch.rowsDone.Store(0)
			e.scratch.Put(scratch)
		}
	}()
	for r := 0; r < rows; r++ {
		for c := 0; c < v.Cols(); c++ {
			x0, y0 := c*MB, r*MB
			best := int64(1) << 62
			var sig uint64
			for ri, ref := range []*Recon{fwd, bwd} {
				if ref == nil {
					continue
				}
				s := e.sad(src, ref.Pix, x0, y0, x0, y0, best)
				if s < best {
					best = s
					sig = uint64(ri)
				}
			}
			if best == int64(1)<<62 {
				// No reference at all: intra-code the block. Blocks
				// intra-code in raster order (the references are fixed for
				// the whole call), so every neighbour dcPredict reads was
				// written this call — a recycled scratch needs no zeroing.
				if scratch == nil {
					if sp, ok := e.scratch.Get().(*Recon); ok {
						scratch = sp
					} else {
						scratch = &Recon{Pix: make([]byte, len(src))}
					}
				}
				b, g := e.encodeIntraMB(bi, r, c, scratch)
				bits += b
				sum = (sum ^ g) * 1099511628211
				continue
			}
			bits += best>>e.Cfg.QShift + 4
			sum = (sum ^ (sig*2654435761 + uint64(best))) * 1099511628211
		}
	}
	return bits, sum
}
