package vidsim

import (
	"bytes"
	"testing"

	"piper"
)

// TestStreamDecodeMatchesEncoderRecon: the decoder must reproduce the
// encoder's reconstructions bit for bit — the codec round-trip oracle.
func TestStreamDecodeMatchesEncoderRecon(t *testing.T) {
	v := Generate(41, 128, 64, 30, 12)
	st := EncodeStream(v, DefaultConfig())
	w, h, frames, err := Decode(st.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if w != v.W || h != v.H {
		t.Fatalf("decoded dims %dx%d", w, h)
	}
	if len(frames) != len(st.Recons) {
		t.Fatalf("decoded %d frames, encoder made %d recons", len(frames), len(st.Recons))
	}
	for i, df := range frames {
		rc := st.Recons[i]
		if df.Frame != rc.Frame {
			t.Fatalf("frame order mismatch at %d: %d vs %d", i, df.Frame, rc.Frame)
		}
		if !bytes.Equal(df.Pix, rc.Pix) {
			t.Fatalf("frame %d reconstruction mismatch", df.Frame)
		}
	}
}

// TestStreamQualityReasonable: decoded frames should resemble the source
// (lossy but not garbage), and quality must drop as QShift coarsens.
func TestStreamQualityReasonable(t *testing.T) {
	v := Generate(42, 128, 64, 12, 0)
	measure := func(q uint) float64 {
		cfg := DefaultConfig()
		cfg.QShift = q
		_, _, frames, err := Decode(EncodeStream(v, cfg).Bytes)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, df := range frames {
			total += PSNR(v.Frames[df.Frame], df.Pix)
		}
		return total / float64(len(frames))
	}
	fine := measure(2)
	coarse := measure(6)
	if fine < 25 {
		t.Fatalf("PSNR at q=2 is %.1f dB, want >= 25", fine)
	}
	if coarse >= fine {
		t.Fatalf("coarser quantization should reduce PSNR: q2=%.1f q6=%.1f", fine, coarse)
	}
}

// TestStreamCompresses: the coded stream should be much smaller than raw
// reference frames for a motion-heavy scene.
func TestStreamCompresses(t *testing.T) {
	v := Generate(43, 128, 64, 30, 0)
	st := EncodeStream(v, DefaultConfig())
	raw := len(st.Recons) * v.W * v.H
	if len(st.Bytes) >= raw/2 {
		t.Fatalf("stream %d bytes vs raw %d — not compressing", len(st.Bytes), raw)
	}
}

// TestDecodeRejectsGarbage.
func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, _, err := Decode([]byte("not a stream")); err == nil {
		t.Error("bad magic accepted")
	}
	v := Generate(44, 64, 32, 6, 0)
	st := EncodeStream(v, DefaultConfig())
	if _, _, _, err := Decode(st.Bytes[:len(st.Bytes)/2]); err == nil {
		t.Error("truncated stream accepted")
	}
	mut := append([]byte{}, st.Bytes...)
	mut[10] = 0xFD // corrupt header area
	if _, _, _, err := Decode(mut); err == nil {
		// Corruption may land harmlessly; flip a structural byte instead.
		mut2 := append([]byte{}, st.Bytes...)
		mut2[len(streamMagic)] = 0xFF
		if _, _, _, err2 := Decode(mut2); err2 == nil {
			t.Error("corrupted stream accepted twice")
		}
	}
}

// TestStreamRecordEquivalence: the record-based MB encoder and the
// estimating encoder must produce identical reconstructions (they share
// dcPredict/motionSearch; this test guards against divergence).
func TestStreamRecordEquivalence(t *testing.T) {
	v := Generate(45, 128, 64, 8, 0)
	cfg := DefaultConfig()

	eA := NewEncoder(v, cfg)
	eB := NewEncoder(v, cfg)
	// Frame 0: intra. Frame 1: inter against frame 0.
	rcA0, rcB0 := eA.NewRecon(0), eB.NewRecon(0)
	w := &streamWriter{}
	for r := 0; r < v.Rows(); r++ {
		eA.EncodeRow(0, TypeI, r, rcA0, nil)
		eB.EncodeRowStream(0, TypeI, r, rcB0, nil, w)
	}
	if !bytes.Equal(rcA0.Pix, rcB0.Pix) {
		t.Fatal("intra reconstructions diverge between estimate and stream paths")
	}
	rcA1, rcB1 := eA.NewRecon(1), eB.NewRecon(1)
	for r := 0; r < v.Rows(); r++ {
		eA.EncodeRow(1, TypeP, r, rcA1, rcA0)
		eB.EncodeRowStream(1, TypeP, r, rcB1, rcB0, w)
	}
	if !bytes.Equal(rcA1.Pix, rcB1.Pix) {
		t.Fatal("inter reconstructions diverge between estimate and stream paths")
	}
}

// TestPSNRProperties.
func TestPSNRProperties(t *testing.T) {
	a := make([]byte, 1024)
	for i := range a {
		a[i] = byte(i)
	}
	if p := PSNR(a, a); p < 90 {
		t.Fatalf("identical frames PSNR = %v", p)
	}
	b := append([]byte{}, a...)
	for i := range b {
		b[i] ^= 0x7F
	}
	if p := PSNR(a, b); p > 20 {
		t.Fatalf("wildly different frames PSNR = %v", p)
	}
	if PSNR(a, a[:10]) != 0 {
		t.Fatal("mismatched lengths should give 0")
	}
}

// TestLog10 against known values.
func TestLog10(t *testing.T) {
	cases := map[float64]float64{1: 0, 10: 1, 100: 2, 1000: 3, 2: 0.30103, 0.1: -1}
	for x, want := range cases {
		if got := log10(x); got < want-0.001 || got > want+0.001 {
			t.Fatalf("log10(%v) = %v, want %v", x, got, want)
		}
	}
}

// TestPiperStreamIdentical: the parallel pipeline must emit a
// byte-identical bitstream at every worker count, and it must decode.
func TestPiperStreamIdentical(t *testing.T) {
	v := Generate(46, 128, 64, 30, 12)
	cfg := DefaultConfig()
	want := EncodeStream(v, cfg)
	for _, p := range []int{1, 2, 4} {
		eng := piper.NewEngine(piper.Workers(p))
		got := EncodePiperStream(eng, 4*p, v, cfg)
		eng.Close()
		if !bytes.Equal(got.Bytes, want.Bytes) {
			t.Fatalf("P=%d: parallel bitstream differs from serial", p)
		}
	}
	_, _, frames, err := Decode(want.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != len(want.Recons) {
		t.Fatalf("decoded %d frames", len(frames))
	}
}
