package vidsim

import (
	"testing"

	"piper/internal/workload"
)

// White-box tests for the encoder kernels.

func flatVideo(w, h, n int, shade byte) *Video {
	v := &Video{W: w, H: h, Frames: make([][]byte, n)}
	for f := range v.Frames {
		frame := make([]byte, w*h)
		for p := range frame {
			frame[p] = shade
		}
		v.Frames[f] = frame
	}
	return v
}

// TestSADIdenticalBlocksZero: SAD of a block against itself is 0, and
// the early-exit limit is respected.
func TestSADProperties(t *testing.T) {
	v := Generate(31, 64, 32, 2, 0)
	e := NewEncoder(v, DefaultConfig())
	if s := e.sad(v.Frames[0], v.Frames[0], 16, 16, 16, 16, 1<<62); s != 0 {
		t.Fatalf("self-SAD = %d", s)
	}
	full := e.sad(v.Frames[0], v.Frames[1], 0, 0, 0, 0, 1<<62)
	limited := e.sad(v.Frames[0], v.Frames[1], 0, 0, 0, 0, 1)
	if full > 0 && limited > full {
		t.Fatalf("early exit returned more than full SAD: %d vs %d", limited, full)
	}
}

// TestIntraFlatFrameCheap: a perfectly flat frame DC-predicts exactly, so
// intra residual bits are ~0 after the first macroblock.
func TestIntraFlatFrameCheap(t *testing.T) {
	v := flatVideo(64, 32, 1, 100)
	e := NewEncoder(v, DefaultConfig())
	rc := e.NewRecon(0)
	var total int64
	for r := 0; r < v.Rows(); r++ {
		b, _ := e.EncodeRow(0, TypeI, r, rc, nil)
		total += b
	}
	// Only per-MB headers remain, plus the first macroblock's bootstrap
	// residual (no neighbours yet: it predicts from the 128 default).
	maxBits := int64(256 + v.Rows()*v.Cols()*8 + 16)
	if total > maxBits {
		t.Fatalf("flat frame cost %d bits, want <= %d", total, maxBits)
	}
}

// TestInterStaticSceneCheap: identical consecutive frames make P-frames
// almost free (the (0,0) motion vector matches exactly).
func TestInterStaticSceneCheap(t *testing.T) {
	v := flatVideo(64, 32, 2, 90)
	e := NewEncoder(v, DefaultConfig())
	ref := e.NewRecon(0)
	for r := 0; r < v.Rows(); r++ {
		e.EncodeRow(0, TypeI, r, ref, nil)
	}
	rc := e.NewRecon(1)
	var total int64
	for r := 0; r < v.Rows(); r++ {
		b, _ := e.EncodeRow(1, TypeP, r, rc, ref)
		total += b
	}
	maxHeaders := int64(v.Rows()*v.Cols()) * 12
	if total > maxHeaders {
		t.Fatalf("static P-frame cost %d bits, want <= %d", total, maxHeaders)
	}
	if e.Violations() != 0 {
		t.Fatalf("violations = %d", e.Violations())
	}
}

// TestAuditDetectsViolation: encoding a P-frame row against an
// incomplete reference must trip the dependency audit — this is what
// gives the scheduler tests teeth.
func TestAuditDetectsViolation(t *testing.T) {
	v := flatVideo(64, 64, 2, 80)
	e := NewEncoder(v, DefaultConfig())
	ref := e.NewRecon(0) // zero rows complete
	rc := e.NewRecon(1)
	e.EncodeRow(1, TypeP, 0, rc, ref)
	if e.Violations() == 0 {
		t.Fatal("audit missed an out-of-order reference access")
	}
}

// TestEncodeBViolationAudit: B-frames require fully reconstructed refs.
func TestEncodeBViolationAudit(t *testing.T) {
	v := flatVideo(64, 32, 3, 70)
	e := NewEncoder(v, DefaultConfig())
	partial := e.NewRecon(0)
	e.EncodeRow(0, TypeI, 0, partial, nil) // only 1 of 2 rows
	e.EncodeB(1, partial, nil)
	if e.Violations() == 0 {
		t.Fatal("EncodeB accepted a partial reference without complaint")
	}
}

// TestEncodeBNoRefs: with neither reference the block intra-codes.
func TestEncodeBNoRefs(t *testing.T) {
	v := flatVideo(32, 32, 1, 60)
	e := NewEncoder(v, DefaultConfig())
	bits, sig := e.EncodeB(0, nil, nil)
	if bits <= 0 || sig == 0 {
		t.Fatalf("no-ref B-frame produced bits=%d sig=%d", bits, sig)
	}
}

// TestReconstructionClamps: extreme residuals stay within byte range.
func TestReconstructionClamps(t *testing.T) {
	v := flatVideo(32, 32, 1, 255)
	e := NewEncoder(v, DefaultConfig())
	rc := e.NewRecon(0)
	e.EncodeRow(0, TypeI, 0, rc, nil)
	for _, px := range rc.Pix[:32*16] {
		if px > 255 {
			t.Fatal("unclamped reconstruction") // unreachable by type, documents intent
		}
	}
}

// TestConfigNormalization: W < 1 becomes 1.
func TestConfigNormalization(t *testing.T) {
	v := flatVideo(32, 32, 1, 10)
	e := NewEncoder(v, Config{W: 0, QShift: 4})
	if e.Cfg.W != 1 {
		t.Fatalf("W = %d, want 1", e.Cfg.W)
	}
}

// TestMotionRangeRespected: best match never references rows beyond
// r + W in the reference (checked indirectly: encode with a ref whose
// legal rows are complete and assert no violation).
func TestMotionRangeRespected(t *testing.T) {
	r := workload.NewRNG(5)
	v := &Video{W: 64, H: 64, Frames: make([][]byte, 2)}
	for f := range v.Frames {
		frame := make([]byte, 64*64)
		r.Bytes(frame)
		v.Frames[f] = frame
	}
	cfg := DefaultConfig()
	cfg.W = 1
	e := NewEncoder(v, cfg)
	ref := e.NewRecon(0)
	// Complete only rows 0..1 of the reference (r=0 needs rows <= 0+1).
	e.EncodeRow(0, TypeI, 0, ref, nil)
	e.EncodeRow(0, TypeI, 1, ref, nil)
	rc := e.NewRecon(1)
	e.EncodeRow(1, TypeP, 0, rc, ref)
	if e.Violations() != 0 {
		t.Fatalf("row 0 with W=1 should only need ref rows <= 1; violations = %d", e.Violations())
	}
}

// TestGatherBuffersBFrames: the stage-0 input loop buffers B's and
// promotes a trailing B to P.
func TestGatherBuffersBFrames(t *testing.T) {
	v := Generate(33, 64, 32, 10, 0)
	d := NewTypeDecider(v, 100, 2, 0) // I BBP BBP ...
	cursor := 0
	var jobs []*ipJob
	for {
		job, ok := gather(d, len(v.Frames), &cursor)
		if !ok {
			break
		}
		jobs = append(jobs, job)
	}
	if len(jobs) == 0 {
		t.Fatal("no jobs")
	}
	if jobs[0].fi != 0 || jobs[0].typ != TypeI || len(jobs[0].bframes) != 0 {
		t.Fatalf("job 0 = %+v", jobs[0])
	}
	// Subsequent jobs carry their preceding B-run.
	if len(jobs) > 1 && len(jobs[1].bframes) != 2 {
		t.Fatalf("job 1 bframes = %v, want 2", jobs[1].bframes)
	}
	// Every frame appears exactly once across jobs.
	seen := make(map[int]bool)
	for _, j := range jobs {
		if seen[j.fi] {
			t.Fatalf("frame %d appears twice", j.fi)
		}
		seen[j.fi] = true
		for _, b := range j.bframes {
			if seen[b] {
				t.Fatalf("frame %d appears twice", b)
			}
			seen[b] = true
		}
	}
	if len(seen) != len(v.Frames) {
		t.Fatalf("covered %d of %d frames", len(seen), len(v.Frames))
	}
}

// TestBRefsIDRRule: I-frame jobs drop the forward reference.
func TestBRefsIDRRule(t *testing.T) {
	rcA, rcB := &Recon{}, &Recon{}
	jI := &ipJob{typ: TypeI, rc: rcB, prev: rcA}
	if fwd, bwd := jI.bRefs(); fwd != nil || bwd != rcB {
		t.Fatal("IDR must use backward-only prediction")
	}
	jP := &ipJob{typ: TypeP, rc: rcB, prev: rcA}
	if fwd, bwd := jP.bRefs(); fwd != rcA || bwd != rcB {
		t.Fatal("P job must use both references")
	}
}
