package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Async submission and cancellation (the serving layer).
//
// PipeWhile is a blocking call with panic-on-failure semantics — fine for
// batch programs, unusable for a server that launches many pipelines on
// behalf of remote callers and needs to cancel stragglers. Submit starts a
// pipeline without blocking and returns a Handle; the pipeline reports
// completion, cancellation, or a captured panic through the Handle as an
// error instead of crossing goroutines.
//
// Cancellation is cooperative at stage boundaries, the natural preemption
// points of a pipe_while program: once an abort is requested, the control
// frame stops spawning iterations (the loop condition is not evaluated
// again), and every live iteration unwinds at its next Wait or Continue
// via a private panic sentinel that the coroutine runner recovers. The
// unwind path is the ordinary retirement path — finishIter publishes
// stageDone (waking any successor parked on a cross edge, so aborts
// cascade down the chain instead of deadlocking it), outstanding fork-join
// children are joined first, the join counter releases the throttling
// window, and the frame recycles through its pool. Abort therefore
// composes with every runtime optimization for free: lazy enabling and
// tail-swap see a normally-retiring iteration, dependency folding is
// bypassed because stageDone dominates every cached value, and nested
// pipelines inherit the root's abort state so a cancel tears down the
// whole tree.
//
// The abort flag lives in the Handle, not the pipeline: pipelines recycle
// through a pool, and a context callback firing after completion must not
// scribble on an unrelated pipeline's state. The pipeline only borrows a
// pointer to the Handle's abortState, severed when the pipeline is
// released.

// ErrEngineClosed is reported through a Handle when Submit is called on an
// engine that has already been closed.
var ErrEngineClosed = errors.New("piper: engine closed")

// ErrSaturated is reported through a Handle when Submit finds the engine's
// pending-pipeline budget (Options.MaxPending, or the tenant class's own
// quota) exhausted. It is the reject admission policy: the caller learns
// immediately, sheds or retries with its own policy, and no scheduler
// state was allocated. SubmitWait is the blocking alternative — it never
// reports ErrSaturated.
var ErrSaturated = errors.New("piper: engine saturated: pending-pipeline budget exhausted")

// ErrUnknownTenant is reported through a Handle when SubmitTenant names a
// tenant class the engine was not configured with (Options.Tenants). It
// is a configuration error, deliberately not a silent fallback to the
// default class: misrouted traffic would otherwise corrupt both tenants'
// QoS accounting.
var ErrUnknownTenant = errors.New("piper: unknown tenant class")

// ErrAdmissionExpired is reported through a Handle when a SubmitWait
// submission was still queued for admission when its tenant class's
// Deadline elapsed. It matches errors.Is(err, context.DeadlineExceeded).
var ErrAdmissionExpired = fmt.Errorf("piper: tenant admission deadline exceeded: %w", context.DeadlineExceeded)

// PanicError wraps a panic raised by a pipeline's condition or body (or a
// fork-join child rethrown at its sync). It is reported through the
// submitting Handle instead of crossing goroutine boundaries.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the stack trace of the panicking goroutine, captured at
	// recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("piper: pipeline panicked: %v", e.Value)
}

// abortState is the cancellation word shared by a submitted pipeline and
// every pipeline nested under it. It outlives the (pooled) pipeline
// because it is owned by the Handle.
type abortState struct {
	flag atomic.Int32
	err  atomic.Pointer[error]
}

// request asks the pipeline tree to abort with the given error, reporting
// whether this call was the first. The error is published before the flag
// so any reader that observes the flag also observes the error.
func (a *abortState) request(err error) bool {
	if err == nil {
		err = context.Canceled
	}
	if a.err.CompareAndSwap(nil, &err) {
		a.flag.Store(1)
		return true
	}
	return false
}

func (a *abortState) requested() bool { return a.flag.Load() != 0 }

func (a *abortState) loadErr() error {
	if p := a.err.Load(); p != nil {
		return *p
	}
	return context.Canceled
}

// abortUnwind is the sentinel panic value that unwinds an iteration body
// at a stage boundary after an abort request. It never escapes the
// runtime: the coroutine runner recovers it and retires the frame through
// the normal path. User code that recovers indiscriminately can swallow
// it and delay (but not break) cancellation, like any cooperative scheme.
type abortUnwind struct{}

// Handle tracks one submitted pipeline. All methods are safe for
// concurrent use; Wait and Report may be called any number of times.
type Handle struct {
	eng  *Engine
	done chan struct{}
	// stop cancels the context.AfterFunc registration, if any.
	stop func() bool
	// abort is shared with the pipeline tree by pointer; it stays valid
	// after the pipeline recycles.
	abort abortState

	// rep and err are written by the completing worker before done is
	// closed (or by Submit itself for an engine-closed handle).
	rep PipelineReport
	err error
}

// Wait blocks until the pipeline completes and returns nil on success,
// the context's error if the submission was canceled, a *PanicError if
// the condition or body panicked, or ErrEngineClosed.
func (h *Handle) Wait() error {
	<-h.done
	return h.err
}

// Report is Wait returning the pipeline's space/shape report alongside
// the error. A canceled pipeline still reports the iterations it started.
func (h *Handle) Report() (PipelineReport, error) {
	<-h.done
	return h.rep, h.err
}

// Done returns a channel closed when the pipeline completes, for use in
// select loops.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Cancel requests cancellation independently of the submission context,
// as if the context had been canceled. It never blocks; completion is
// still observed through Wait.
func (h *Handle) Cancel() {
	if h.abort.request(context.Canceled) && h.eng != nil {
		h.eng.stats.cancelRequests.Add(1)
	}
}

// Submit starts a pipeline asynchronously: it queues the pipeline and
// returns immediately with a Handle for the result. If ctx is canceled
// before the pipeline completes, the run is aborted at stage boundaries —
// no further iterations start, live iterations unwind at their next Wait
// or Continue (waking any successors parked on their cross edges),
// throttling tokens are released, and all frames drain back to their
// pools — and Wait returns the context's error. Unlike PipeWhile, a panic
// in cond or body does not propagate to the caller; it is captured as a
// *PanicError. ctx may be nil, meaning no cancellation.
func (e *Engine) Submit(ctx context.Context, cond func() bool, body func(*Iter)) *Handle {
	return e.SubmitThrottled(ctx, 0, cond, body)
}

// SubmitThrottled is Submit with an explicit throttling limit K
// (0 means the engine default). Under a MaxPending budget it applies the
// reject admission policy: a saturated engine fails the Handle immediately
// with ErrSaturated.
func (e *Engine) SubmitThrottled(ctx context.Context, k int, cond func() bool, body func(*Iter)) *Handle {
	return e.submitClass(ctx, DefaultTenant, k, cond, body, false)
}

// SubmitTenant is Submit admitted through the named tenant class
// (Options.Tenants): the submission counts against that class's quota
// and QoS accounting instead of the default class's. An unconfigured
// name fails the Handle with ErrUnknownTenant.
func (e *Engine) SubmitTenant(ctx context.Context, tenant string, cond func() bool, body func(*Iter)) *Handle {
	return e.submitClass(ctx, tenant, 0, cond, body, false)
}

// SubmitWait is Submit under the blocking admission policy: if the
// engine's MaxPending budget (or the class quota) is exhausted it joins
// the admission queue instead of rejecting. Queued submissions are
// admitted in FIFO order within a class and weighted-fairly across
// classes (see TenantClass). It returns a failed Handle only if ctx is
// done first (context-deadline admission — the Handle reports the
// context's cause), the class admission deadline expires
// (ErrAdmissionExpired), or the engine closes while waiting
// (ErrEngineClosed). Without a budget (MaxPending 0, no tenant classes)
// it is identical to Submit.
func (e *Engine) SubmitWait(ctx context.Context, cond func() bool, body func(*Iter)) *Handle {
	return e.SubmitWaitThrottled(ctx, 0, cond, body)
}

// SubmitWaitTenant is SubmitWait admitted through the named tenant
// class. An unconfigured name fails the Handle with ErrUnknownTenant.
func (e *Engine) SubmitWaitTenant(ctx context.Context, tenant string, cond func() bool, body func(*Iter)) *Handle {
	return e.submitClass(ctx, tenant, 0, cond, body, true)
}

// SubmitWaitThrottled is SubmitWait with an explicit throttling limit K
// (0 means the engine default).
func (e *Engine) SubmitWaitThrottled(ctx context.Context, k int, cond func() bool, body func(*Iter)) *Handle {
	return e.submitClass(ctx, DefaultTenant, k, cond, body, true)
}

// submitClass routes a submission through the engine's admission queue
// (when one is configured) and launches it. block selects the blocking
// (SubmitWait) versus reject (Submit) admission policy.
func (e *Engine) submitClass(ctx context.Context, tenant string, k int, cond func() bool, body func(*Iter), block bool) *Handle {
	h := &Handle{eng: e, done: make(chan struct{})}
	ci, admitted := 0, false
	if e.adm != nil {
		var ok bool
		if ci, ok = e.adm.lookup(tenant); !ok {
			h.err = fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
			close(h.done)
			return h
		}
		var err error
		if block {
			err = e.adm.waitAdmit(ctx, ci)
		} else {
			err = e.adm.tryAdmit(ci)
		}
		if err != nil {
			h.err = err
			close(h.done)
			return h
		}
		admitted = true
	} else if tenant != DefaultTenant {
		h.err = fmt.Errorf("%w: %q (engine has no tenant classes)", ErrUnknownTenant, tenant)
		close(h.done)
		return h
	}
	return e.submitAdmitted(ctx, k, cond, body, h, admitted, ci)
}

// submitAdmitted launches an already-admitted submission. admitted records
// whether h holds an admission slot of tenant class ci; the slot is
// released by finishTopLevel at completion, or right here if the engine
// turns out to be closed.
func (e *Engine) submitAdmitted(ctx context.Context, k int, cond func() bool, body func(*Iter), h *Handle, admitted bool, ci int) *Handle {
	// The read side of submitMu spans the closed check and the inject, so
	// a Submit racing Close either fails with ErrEngineClosed or has its
	// root frame published before the closed flag flips — where the
	// workers' drain-before-exit scan is guaranteed to find it.
	e.submitMu.RLock()
	if e.closed.Load() {
		e.submitMu.RUnlock()
		if admitted {
			e.adm.release(ci)
		}
		h.err = ErrEngineClosed
		close(h.done)
		return h
	}
	e.stats.submits.Add(1)
	pl := e.newPipeline(k, cond, body, 1)
	pl.abort = &h.abort
	pl.sub = h
	pl.admitted = admitted
	pl.tenant = ci
	if ctx != nil {
		if err := context.Cause(ctx); err != nil {
			// Canceled before launch: mark the abort now, but still run the
			// pipeline through the scheduler so completion, accounting, and
			// pool recycling follow the one and only lifecycle.
			if h.abort.request(err) {
				e.stats.cancelRequests.Add(1)
			}
		} else {
			h.stop = context.AfterFunc(ctx, func() {
				// Only the Handle's own abortState is touched here: the
				// pipeline may already have completed and recycled.
				if h.abort.request(context.Cause(ctx)) {
					e.stats.cancelRequests.Add(1)
				}
			})
		}
	}
	e.inject(pl.control)
	e.submitMu.RUnlock()
	return h
}

// finishTopLevel publishes the completion of a top-level pipeline: through
// the Handle for submitted pipelines, through the done channel for
// blocking PipeWhile calls. Runs on the worker that retired the control
// frame; for submitted pipelines it also releases the pipeline, so a
// Handle left un-Waited never pins scheduler state.
func (e *Engine) finishTopLevel(pl *pipeline) {
	h := pl.sub
	if h == nil {
		close(pl.done)
		return
	}
	h.rep = pl.report()
	switch {
	case pl.panicVal.Load() != nil:
		pb := pl.panicVal.Load()
		h.err = &PanicError{Value: pb.v, Stack: pb.stack}
		e.stats.abortedPipes.Add(1)
	case pl.abortRequested():
		h.err = pl.abort.loadErr()
		e.stats.abortedPipes.Add(1)
	}
	if h.stop != nil {
		h.stop()
		h.stop = nil
	}
	if pl.admitted {
		// Release the admission slot before publishing completion, so a
		// SubmitWait caller blocked on the budget is admitted no later
		// than this handle's Wait returns.
		e.adm.release(pl.tenant)
	}
	e.releasePipeline(pl)
	close(h.done)
}
