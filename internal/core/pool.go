package core

import (
	"sync"
	"sync/atomic"
)

// Frame pooling (Section 9 spirit: keep per-iteration bookkeeping cheap).
//
// The steady state of a throttled pipeline creates and retires one
// iteration frame per iteration. Without pooling each frame costs a
// ~400-byte struct (and, when it blocks or the inline fast path is off,
// two unbuffered channels and a fresh goroutine); with pooling an
// iteration frame recycles through a sync.Pool. Under the inline fast
// path the pooled unit is a bare header — the coroutine tail attaches
// only on promotion and recycles separately — while under the ablation
// the frame recycles together with its channel pair AND its goroutine:
// the coroutine runner parks on its resume channel after yielding yDone
// and serves the frame's next incarnation instead of exiting (see
// frame.corun). Closure frames and pipeline/control pairs recycle through
// their own pools. The Options.PoolFrames ablation switch restores
// allocate-per-use for measurement.
//
// Recycling discipline. A frame may be reused only when no goroutine can
// still dereference its non-atomic fields. Iteration frames are
// reference-counted (frame.refs): one reference is held by the scheduler
// from acquisition until retirement in afterDone (or the control frame's
// inline-completion path), and one travels down the successor chain — it
// is held first by the pipeline's prevIter slot and transfers to the
// successor's prev pointer, which the successor drops once it has
// observed stageDone (dropPrev). Stale *racy* readers — a thief that
// loaded a victim's assigned pointer just before the frame retired, or a
// predecessor's next pointer — touch only atomic fields plus the
// immutable kind, and the worst they can do is claim a park of the
// frame's next incarnation, which the parking protocols already treat as
// a spurious wake (publish-then-recheck; see parkOnCross and syncScope).
// Each pool therefore serves exactly one frame kind, so kind never
// changes on reuse and remains safely readable without synchronization.
//
// A pooled iteration frame whose runner goroutine is parked for reuse
// holds a reference to the engine's closedCh; if the sync.Pool drops the
// frame under GC pressure the goroutine stays parked until Engine.Close,
// bounding the leak by the engine's lifetime.

// framePools is the engine's recycling state.
//
// With the inline fast path (the default), pools.iter holds bare inline
// headers — frames without channels or runner goroutines — and pools.co
// holds detached coroutine tails; the tail pool is hit only when an
// iteration promotes, so the steady state of an unblocked pipeline never
// touches it. With InlineFastPath off, pools.iter holds full coroutine
// frames whose tails stay attached and whose runners park for reuse, and
// pools.co is never used.
type framePools struct {
	iter     sync.Pool // *frame, kindIter (see above for what it carries)
	co       sync.Pool // *coTail: channel pairs attached on promotion
	task     sync.Pool // *frame, kindClosure
	pipeline sync.Pool // *pipeline with its embedded control frame

	hits   atomic.Int64
	misses atomic.Int64

	// Live gauges: checked-out-not-yet-retired counts per frame kind,
	// maintained on every acquire/release (pooled or not). An idle engine
	// has all three at zero; the cancellation and fuzz tests assert this
	// to prove aborted frames drain cleanly mid-flight.
	liveIter     atomic.Int64
	liveClosure  atomic.Int64
	livePipeline atomic.Int64
}

// acquireIterFrame returns a ready iteration frame: recycled when pooling
// is enabled, freshly allocated otherwise.
func (e *Engine) acquireIterFrame() *frame {
	e.pools.liveIter.Add(1)
	var f *frame
	if e.opts.PoolFrames {
		if v := e.pools.iter.Get(); v != nil {
			f = v.(*frame)
			e.pools.hits.Add(1)
		}
	}
	if f == nil {
		if e.opts.PoolFrames {
			e.pools.misses.Add(1)
		}
		f = &frame{
			kind:     kindIter,
			eng:      e,
			reusable: e.opts.PoolFrames,
		}
		if !e.opts.InlineFastPath {
			// Always-coroutine ablation: the tail is part of the frame for
			// its whole lifetime (the runner goroutine is a closure over
			// it), so it is allocated with the frame, not pooled apart.
			f.co = &coTail{resume: make(chan struct{}), yield: make(chan yieldMsg)}
		}
		f.it.f = f
	}
	// Reset the per-incarnation state. The runner goroutine (if parked for
	// reuse) observes these writes through the resume-channel handshake.
	f.stage.Store(0)
	f.status.Store(statusRunning)
	f.waitStage.Store(0)
	f.next.Store(nil)
	f.prev = nil
	f.inStage0 = true
	f.foldCache = 0
	f.nFoldHits, f.nCrossChecks = 0, 0
	f.plan = nil
	f.planCur = 0
	f.crossDone = false
	f.rec = nil
	f.instrOn = false
	f.nodeStart, f.curCrit, f.workAcc = 0, 0, 0
	f.prevCritCursor = 0
	f.critLog.reset()
	f.curScope = nil
	f.waitingScope.Store(nil)
	f.panicked = nil
	f.w = nil
	f.inline = false
	f.batched = false
	f.refs.Store(2) // scheduler ownership + the successor-chain slot
	return f
}

// unref drops one reference to an iteration frame, recycling it when the
// last reference goes.
func (f *frame) unref() {
	if f.refs.Add(-1) != 0 {
		return
	}
	f.eng.pools.liveIter.Add(-1)
	if !f.reusable {
		return // GC reclaims the frame and its (exiting) runner
	}
	if f.co != nil && f.eng.opts.InlineFastPath {
		// A promoted frame's runner exits after its final yield instead of
		// parking for reuse; detach the tail for the next promotion so the
		// frame recycles as a bare inline header. Safe here: the last
		// reference is gone, so the final handshake (which this unref is
		// ordered after) was the last touch on the channels.
		f.started = false
		f.eng.pools.co.Put(f.co)
		f.co = nil
	}
	// Clear reference-holding fields so the pool does not pin dead object
	// graphs; scalar state resets on acquire.
	f.pl = nil
	f.eng.pools.iter.Put(f)
}

// acquireCoTail returns a coroutine tail for a promoting iteration:
// recycled when pooling is enabled, freshly allocated otherwise. Hit only
// on promotion — the inline fast path's steady state never comes here.
func (e *Engine) acquireCoTail() *coTail {
	if e.opts.PoolFrames {
		if v := e.pools.co.Get(); v != nil {
			e.pools.hits.Add(1)
			return v.(*coTail)
		}
		e.pools.misses.Add(1)
	}
	return &coTail{resume: make(chan struct{}), yield: make(chan yieldMsg)}
}

// dropPrev releases the frame's reference on its predecessor. Runner-local
// (called only from the frame's own coroutine), hence at most once per
// incarnation: prev is set non-nil only at creation.
func (f *frame) dropPrev() {
	if p := f.prev; p != nil {
		f.prev = nil
		p.unref()
	}
}

// acquireClosureFrame returns a fork-join task frame bound to sc and fn.
func (e *Engine) acquireClosureFrame(sc *scope, fn func(*worker)) *frame {
	e.pools.liveClosure.Add(1)
	if e.opts.PoolFrames {
		if v := e.pools.task.Get(); v != nil {
			t := v.(*frame)
			e.pools.hits.Add(1)
			t.scope = sc
			t.fn = fn
			return t
		}
		e.pools.misses.Add(1)
	}
	return &frame{kind: kindClosure, eng: e, scope: sc, fn: fn, reusable: e.opts.PoolFrames}
}

// releaseClosureFrame recycles a retired task frame. Closure frames are
// referenced only by the worker executing them (deque slots beyond the
// top/bottom window are never dereferenced), so no refcount is needed.
func (e *Engine) releaseClosureFrame(t *frame) {
	e.pools.liveClosure.Add(-1)
	if !t.reusable {
		return
	}
	t.scope = nil
	t.fn = nil
	e.pools.task.Put(t)
}

// acquirePipeline returns a pipeline with its control frame, reset for a
// new pipe_while execution.
func (e *Engine) acquirePipeline() *pipeline {
	e.pools.livePipeline.Add(1)
	var pl *pipeline
	if e.opts.PoolFrames {
		if v := e.pools.pipeline.Get(); v != nil {
			pl = v.(*pipeline)
			e.pools.hits.Add(1)
		}
	}
	if pl == nil {
		if e.opts.PoolFrames {
			e.pools.misses.Add(1)
		}
		pl = &pipeline{eng: e}
		pl.control = &frame{kind: kindControl, eng: e, reusable: e.opts.PoolFrames}
		pl.control.pl = pl
	}
	pl.cond, pl.body = nil, nil
	pl.join.Store(0)
	pl.parent = nil
	pl.done = nil
	pl.sub = nil
	pl.admitted = false
	pl.tenant = 0
	pl.abort = nil
	pl.nextIndex = 0
	pl.phase = phaseLoop
	pl.prevIter = nil
	// Grain state: a fixed Options.Grain pins the claim; otherwise the
	// adaptive policy starts every pipeline at 1 (probing, via grainHold,
	// before the first growth step) and grows toward GrainMax. The
	// coroutine tier never batches, so its reports honestly pin 1.
	switch {
	case !e.opts.InlineFastPath:
		pl.grain, pl.grainMax, pl.grainFixed = 1, 1, true
	case e.opts.Grain > 0:
		pl.grain, pl.grainMax, pl.grainFixed = int64(e.opts.Grain), int64(e.opts.Grain), true
	default:
		pl.grain, pl.grainMax, pl.grainFixed = 1, int64(e.opts.GrainMax), false
	}
	pl.grainHold = true
	// Plan-compiler state. Eligibility is decided once per execution: the
	// compiled dispatch subsumes the fold cache and never performs eager
	// check-rights, so the ablations that disable those interpret instead
	// (see plan.go). planSeeded short-circuits openBatch's one-time seed
	// check for ineligible pipelines.
	pl.plan.Store(nil)
	pl.planEligible = e.opts.CompilePlans && e.opts.DependencyFolding && !e.opts.EagerEnabling
	pl.planSeeded = !pl.planEligible
	pl.serialPlan = nil
	// The +1 pre-pays this pipeline's own stats.pipelines increment, which
	// newPipeline performs right after this acquire returns; without it the
	// first batch open would read a self-inflicted contention signal.
	pl.lastStealStamp = e.stats.steals.Load() + e.stats.thiefEnables.Load() +
		e.stats.pipelines.Load() + 1
	pl.sawSteals = false
	pl.planCompiled = false
	pl.planStages, pl.planFused = 0, 0
	pl.planDeopts.Store(0)
	pl.instrument = false
	pl.workNs.Store(0)
	pl.spanNs.Store(0)
	pl.panicVal.Store(nil)
	pl.maxLive.Store(0)
	cf := pl.control
	cf.status.Store(statusRunning)
	cf.w = nil
	return pl
}

// releasePipeline recycles a completed pipeline after its results have
// been read (launch or the nested PipeWhile). At that point every
// iteration has retired and the control frame has signalled completion,
// so only the releasing goroutine still holds the pipeline.
func (e *Engine) releasePipeline(pl *pipeline) {
	e.pools.livePipeline.Add(-1)
	if !pl.control.reusable {
		return
	}
	pl.cond, pl.body = nil, nil
	pl.parent = nil
	pl.done = nil
	pl.sub = nil
	pl.admitted = false
	pl.tenant = 0
	pl.abort = nil
	pl.prevIter = nil
	e.pools.pipeline.Put(pl)
}
