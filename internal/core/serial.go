package core

// RunSerial executes a pipeline body with pipe_while semantics on the
// calling goroutine, with no scheduler at all: Wait and Continue only
// advance the stage counter (there is no previous iteration running, so
// every cross edge is vacuously satisfied the moment it is declared).
// This is the TS baseline of the paper's tables — the "serial
// counterpart" a speedup is measured against — and doubles as a
// debugging mode: any stage-discipline violation (non-increasing stages)
// panics identically to the parallel execution.
//
// The single frame is reused across iterations, so it must honor the same
// per-iteration reset contract as acquireIterFrame: everything an
// iteration body can observe through its Iter — the index, the stage
// counter, the stage-0 flag, the fork-join scope, and the panic slot —
// starts each iteration in its acquired state. Fork-join scope and nested
// pipelines are serially elided (Go runs the child inline, a nested
// PipeWhile recurses into RunSerial with a fresh frame), so today only
// curScope could carry state across iterations, and only if an elision
// path ever left it populated; resetSerialIter re-establishes the full
// contract anyway and serialContractCheck panics loudly if a future
// change breaks the elision invariant instead of letting the next
// iteration observe its predecessor's scope.
func RunSerial(cond func() bool, body func(*Iter)) PipelineReport {
	f := &frame{kind: kindIter, serial: true}
	it := &Iter{f: f}
	var n int64
	for cond() {
		f.resetSerialIter(n)
		body(it)
		f.serialContractCheck()
		n++
	}
	return PipelineReport{Iterations: n, MaxLiveIterations: 1, FinalGrain: 1}
}

// resetSerialIter is the serial mirror of acquireIterFrame's
// per-incarnation reset, restricted to the fields a serial body can reach.
func (f *frame) resetSerialIter(index int64) {
	f.index = index
	f.stage.Store(0)
	f.waitStage.Store(0)
	f.inStage0 = true
	f.foldCache = 0
	f.curScope = nil
	f.panicked = nil
}

// serialContractCheck asserts the serial-elision invariant at iteration
// exit: Go and For run children inline and nested pipelines recurse into
// RunSerial, so no scope may survive the body. A violation means a future
// code path deferred work on a serial frame — state the next iteration
// would observe as stale — and is a runtime bug, not a user error.
func (f *frame) serialContractCheck() {
	if f.curScope != nil {
		panic("piper: internal error: serial iteration retired with a live fork-join scope")
	}
}

// serialWait is the Wait/Continue path for RunSerial frames.
func (f *frame) serialAdvance(j int64) {
	f.stage.Store(j)
	f.inStage0 = false
}
