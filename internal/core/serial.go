package core

// RunSerial executes a pipeline body with pipe_while semantics on the
// calling goroutine, with no scheduler at all: Wait and Continue only
// advance the stage counter (there is no previous iteration running, so
// every cross edge is vacuously satisfied the moment it is declared).
// This is the TS baseline of the paper's tables — the "serial
// counterpart" a speedup is measured against — and doubles as a
// debugging mode: any stage-discipline violation (non-increasing stages)
// panics identically to the parallel execution.
func RunSerial(cond func() bool, body func(*Iter)) PipelineReport {
	f := &frame{kind: kindIter, serial: true}
	it := &Iter{f: f}
	var n int64
	for cond() {
		f.index = n
		f.stage.Store(0)
		f.inStage0 = true
		body(it)
		n++
	}
	return PipelineReport{Iterations: n, MaxLiveIterations: 1}
}

// serialWait is the Wait/Continue path for RunSerial frames.
func (f *frame) serialAdvance(j int64) {
	f.stage.Store(j)
	f.inStage0 = false
}
