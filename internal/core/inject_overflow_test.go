package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestInjectOverflowSubmitBurst is the regression test for the injection
// overflow path under concurrent Submit bursts. A single worker is held
// hostage inside a pipeline body while producers submit far more root
// frames than the worker's injection ring can hold, forcing the spill to
// the mutex-guarded overflow list. Every submitted pipeline must then
// execute exactly once — no frame lost in the spill, none double-executed
// by the ring/overflow handoff — including pipelines canceled while still
// queued.
func TestInjectOverflowSubmitBurst(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 1 // one ring (capacity 64), easy to overflow
	e := NewEngine(opts)
	defer e.Close()

	hostageRelease := make(chan struct{})
	hostageRunning := make(chan struct{})
	i := 0
	hostage := e.Submit(context.Background(), func() bool { i++; return i == 1 }, func(it *Iter) {
		close(hostageRunning)
		<-hostageRelease
	})
	<-hostageRunning // the only worker is now blocked inside a body

	const burst = 8 * injectRingCap // 512 pipelines against one 64-slot ring
	const producers = 8
	runs := make([]atomic.Int32, burst)
	handles := make([]*Handle, burst)
	cancels := make([]context.CancelFunc, burst)
	var wg sync.WaitGroup
	for prod := 0; prod < producers; prod++ {
		prod := prod
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := prod; idx < burst; idx += producers {
				idx := idx
				ctx := context.Context(nil)
				if idx%5 == 0 { // a fifth get canceled while still queued
					c, cancel := context.WithCancel(context.Background())
					ctx, cancels[idx] = c, cancel
				}
				started := false
				handles[idx] = e.Submit(ctx,
					func() bool { s := started; started = true; return !s },
					func(it *Iter) { runs[idx].Add(1) })
			}
		}()
	}
	wg.Wait()
	for _, cancel := range cancels {
		if cancel != nil {
			cancel()
		}
	}
	if got := e.Stats().InjectOverflows; got == 0 {
		t.Fatalf("burst of %d never hit the overflow path (ring cap %d)", burst, injectRingCap)
	}

	close(hostageRelease)
	if err := hostage.Wait(); err != nil {
		t.Fatalf("hostage pipeline: %v", err)
	}
	var executed, skipped int32
	for idx, h := range handles {
		err := h.Wait() // every handle completes: no frame was lost
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("pipeline %d: %v", idx, err)
		}
		switch n := runs[idx].Load(); n {
		case 1:
			executed++
		case 0:
			skipped++
			if err == nil {
				t.Fatalf("pipeline %d reported success without running", idx)
			}
		default:
			t.Fatalf("pipeline %d executed %d times", idx, n)
		}
	}
	if executed+skipped != burst {
		t.Fatalf("%d executed + %d skipped != %d", executed, skipped, burst)
	}
	t.Logf("executed=%d canceled-before-start=%d overflows=%d",
		executed, skipped, e.Stats().InjectOverflows)
	checkEngineDrained(t, e)
}
