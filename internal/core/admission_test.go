package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// waitTenant polls the named class's snapshot until pred holds, failing
// the test after timeout. The admission gauges are exact under the
// admitter mutex, so polling them is how these tests sequence waiter
// arrival deterministically.
func waitTenant(t *testing.T, e *Engine, name string, timeout time.Duration, pred func(TenantStats) bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		for _, ts := range e.TenantStats() {
			if ts.Name == name && pred(ts) {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant %q: condition not reached; stats: %+v", name, e.TenantStats())
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// gatedSubmitTenant pins one admission slot of the named class until
// gate closes.
func gatedSubmitTenant(e *Engine, tenant string, gate <-chan struct{}) *Handle {
	i := 0
	return e.SubmitTenant(nil, tenant, func() bool { i++; return i == 1 }, func(it *Iter) {
		it.Continue(1)
		<-gate
	})
}

// TestSubmitWaitFIFOAdmission is the starvation-freedom regression for
// the admission queue: N SubmitWait callers blocked on a full budget
// must be admitted in exactly their arrival order once slots free. The
// old token-channel admission woke blocked senders in *random* order
// (Go's select among blocked channel sends), so a continually-refilled
// queue could defer any given waiter indefinitely; the FIFO class queue
// makes the order deterministic and the wait bounded.
func TestSubmitWaitFIFOAdmission(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 2
	opts.MaxPending = 1
	e := NewEngine(opts)
	defer e.Close()

	gate := make(chan struct{})
	h0 := gatedSubmit(e, gate)

	const n = 12
	var (
		mu    sync.Mutex
		order []int
		wg    sync.WaitGroup
	)
	handles := make([]*Handle, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			j := 0
			// With MaxPending 1 the admitted pipelines run one at a time,
			// so the order their bodies record is the admission order.
			handles[i] = e.SubmitWait(nil, func() bool { j++; return j == 1 }, func(it *Iter) {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
			if err := handles[i].Wait(); err != nil {
				t.Errorf("waiter %d: Wait = %v", i, err)
			}
		}()
		// Sequence the arrivals: waiter i must be queued before waiter
		// i+1 starts, or the arrival order itself would be racy.
		waitTenant(t, e, DefaultTenant, 5*time.Second, func(ts TenantStats) bool {
			return ts.Waiting == int64(i+1)
		})
	}

	close(gate)
	if err := h0.Wait(); err != nil {
		t.Fatalf("gated pipeline failed: %v", err)
	}
	wg.Wait()

	if len(order) != n {
		t.Fatalf("admitted %d of %d waiters", len(order), n)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("admission order %v: waiter %d admitted at position %d, want FIFO", order, got, i)
		}
	}
	ts := e.TenantStats()[0]
	if ts.Submitted != n+1 || ts.Admitted != n+1 || ts.Rejected != 0 || ts.Canceled != 0 {
		t.Errorf("accounting: %+v, want %d submitted == admitted", ts, n+1)
	}
	checkEngineDrained(t, e)
}

// TestTenantWeightedFairShare pins the deficit-round-robin split: with
// classes weighted 3 ("gold") and 1 ("bulk") both backlogged behind a
// one-slot budget, freed slots must be granted in a 1-bulk/3-gold cycle
// regardless of arrival interleaving.
func TestTenantWeightedFairShare(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 2
	opts.MaxPending = 1
	opts.Tenants = []TenantClass{
		{Name: "bulk", Weight: 1},
		{Name: "gold", Weight: 3},
	}
	e := NewEngine(opts)
	defer e.Close()

	gate := make(chan struct{})
	h0 := gatedSubmit(e, gate)

	const perClass = 8
	var (
		mu    sync.Mutex
		order []string
		wg    sync.WaitGroup
	)
	enqueue := func(class string, already int64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j := 0
			h := e.SubmitWaitTenant(nil, class, func() bool { j++; return j == 1 }, func(it *Iter) {
				mu.Lock()
				order = append(order, class)
				mu.Unlock()
			})
			if err := h.Wait(); err != nil {
				t.Errorf("%s: Wait = %v", class, err)
			}
		}()
		waitTenant(t, e, class, 5*time.Second, func(ts TenantStats) bool {
			return ts.Waiting == already+1
		})
	}
	// Interleave arrivals gold-first; DRR must ignore the interleaving
	// and serve by weight.
	for i := 0; i < perClass; i++ {
		enqueue("gold", int64(i))
		enqueue("bulk", int64(i))
	}

	close(gate)
	if err := h0.Wait(); err != nil {
		t.Fatalf("gated pipeline failed: %v", err)
	}
	wg.Wait()

	if len(order) != 2*perClass {
		t.Fatalf("admitted %d of %d waiters: %v", len(order), 2*perClass, order)
	}
	// One full round grants bulk its 1 and gold its 3 (ring order puts
	// bulk first — it registered first). Both classes stay backlogged for
	// the first two full rounds: assert the exact 8-admission prefix.
	want := []string{"bulk", "gold", "gold", "gold", "bulk", "gold", "gold", "gold"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("admission order %v: position %d = %s, want %s (DRR 1:3 split)", order[:len(want)], i, order[i], w)
		}
	}
	gold, bulk := 0, 0
	for _, c := range order[:len(want)] {
		if c == "gold" {
			gold++
		} else {
			bulk++
		}
	}
	if gold != 6 || bulk != 2 {
		t.Fatalf("first %d admissions: gold=%d bulk=%d, want 6:2", len(want), gold, bulk)
	}
	checkEngineDrained(t, e)
}

// TestTenantQuota pins the per-class MaxPending quota: a class at its
// quota rejects (Submit) or queues (SubmitWait) even while the global
// budget and other classes have room.
func TestTenantQuota(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 2
	opts.MaxPending = 4
	opts.Tenants = []TenantClass{
		{Name: "capped", MaxPending: 1},
		{Name: "free"},
	}
	e := NewEngine(opts)
	defer e.Close()

	gate := make(chan struct{})
	h0 := gatedSubmitTenant(e, "capped", gate)
	waitTenant(t, e, "capped", 5*time.Second, func(ts TenantStats) bool { return ts.Pending == 1 })

	// The capped class is full: reject policy fails fast...
	h1 := e.SubmitTenant(nil, "capped", func() bool { return false }, func(*Iter) {})
	if err := h1.Wait(); !errors.Is(err, ErrSaturated) {
		t.Fatalf("capped class at quota: err = %v, want ErrSaturated", err)
	}
	// ...while the global budget still admits other classes.
	h2 := e.SubmitTenant(nil, "free", func() bool { return false }, func(*Iter) {})
	if err := h2.Wait(); err != nil {
		t.Fatalf("free class blocked by capped class's quota: %v", err)
	}

	// A queued capped waiter is admitted as soon as the quota frees.
	done := make(chan error, 1)
	go func() {
		h := e.SubmitWaitTenant(nil, "capped", func() bool { return false }, func(*Iter) {})
		done <- h.Wait()
	}()
	waitTenant(t, e, "capped", 5*time.Second, func(ts TenantStats) bool { return ts.Waiting == 1 })
	close(gate)
	if err := h0.Wait(); err != nil {
		t.Fatalf("gated pipeline failed: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("queued capped waiter: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("capped waiter not admitted after its quota freed")
	}
	checkEngineDrained(t, e)
}

// TestTenantAdmissionDeadline pins the class Deadline: a waiter still
// queued when it expires fails with ErrAdmissionExpired (which matches
// context.DeadlineExceeded) and is accounted as rejected.
func TestTenantAdmissionDeadline(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 2
	opts.MaxPending = 1
	opts.Tenants = []TenantClass{{Name: "dl", Deadline: 20 * time.Millisecond}}
	e := NewEngine(opts)
	defer e.Close()

	gate := make(chan struct{})
	h0 := gatedSubmit(e, gate)

	t0 := time.Now()
	h := e.SubmitWaitTenant(nil, "dl", func() bool { return false }, func(*Iter) {})
	err := h.Wait()
	if !errors.Is(err, ErrAdmissionExpired) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired admission: err = %v, want ErrAdmissionExpired (a DeadlineExceeded)", err)
	}
	if waited := time.Since(t0); waited < 20*time.Millisecond {
		t.Fatalf("rejected after %v, before the 20ms class deadline", waited)
	}
	ts := e.TenantStats()
	for _, s := range ts {
		if s.Name == "dl" && (s.Rejected != 1 || s.Admitted != 0) {
			t.Errorf("dl class accounting: %+v, want 1 rejected", s)
		}
	}

	close(gate)
	if err := h0.Wait(); err != nil {
		t.Fatalf("gated pipeline failed: %v", err)
	}
	checkEngineDrained(t, e)
}

// TestTenantDeadlineOrdersAdmission pins the EDF tie-break: among
// classes eligible in the same DRR round, the class whose head waiter
// holds the earliest admission deadline is served first, even if the
// deadline-free class's waiter arrived earlier.
func TestTenantDeadlineOrdersAdmission(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 2
	opts.MaxPending = 1
	opts.Tenants = []TenantClass{
		{Name: "patient"},
		{Name: "urgent", Deadline: time.Hour},
	}
	e := NewEngine(opts)
	defer e.Close()

	gate := make(chan struct{})
	h0 := gatedSubmit(e, gate)

	var (
		mu    sync.Mutex
		order []string
		wg    sync.WaitGroup
	)
	enqueue := func(class string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j := 0
			h := e.SubmitWaitTenant(nil, class, func() bool { j++; return j == 1 }, func(it *Iter) {
				mu.Lock()
				order = append(order, class)
				mu.Unlock()
			})
			if err := h.Wait(); err != nil {
				t.Errorf("%s: Wait = %v", class, err)
			}
		}()
		waitTenant(t, e, class, 5*time.Second, func(ts TenantStats) bool { return ts.Waiting == 1 })
	}
	enqueue("patient") // arrives first...
	enqueue("urgent")  // ...but urgent holds a deadline

	close(gate)
	if err := h0.Wait(); err != nil {
		t.Fatalf("gated pipeline failed: %v", err)
	}
	wg.Wait()
	want := []string{"urgent", "patient"}
	for i, w := range want {
		if i >= len(order) || order[i] != w {
			t.Fatalf("admission order %v, want %v (EDF before ring order)", order, want)
		}
	}
	checkEngineDrained(t, e)
}

// TestSubmitUnknownTenant pins the configuration-error contract: an
// unconfigured class name fails the Handle with ErrUnknownTenant, on
// engines with and without tenant configuration.
func TestSubmitUnknownTenant(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 1
	opts.Tenants = []TenantClass{{Name: "known"}}
	e := NewEngine(opts)
	defer e.Close()
	if err := e.SubmitTenant(nil, "mystery", nil, nil).Wait(); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: err = %v, want ErrUnknownTenant", err)
	}
	if err := e.SubmitWaitTenant(nil, "mystery", nil, nil).Wait(); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant (wait): err = %v, want ErrUnknownTenant", err)
	}

	// No admission control at all: only the default class exists.
	plain := NewEngine(Options{Workers: 1})
	defer plain.Close()
	if err := plain.SubmitTenant(nil, "anyone", nil, nil).Wait(); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("tenant on plain engine: err = %v, want ErrUnknownTenant", err)
	}
	i := 0
	if err := plain.SubmitTenant(nil, DefaultTenant, func() bool { i++; return i == 1 }, func(*Iter) {}).Wait(); err != nil {
		t.Fatalf("default tenant on plain engine: %v", err)
	}
}

// TestTenantCloseReleasesWaiters pins Close against queued admissions:
// every parked SubmitWait caller must resolve with ErrEngineClosed, and
// the class accounting must balance.
func TestTenantCloseReleasesWaiters(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 2
	opts.MaxPending = 1
	e := NewEngine(opts)

	gate := make(chan struct{})
	h0 := gatedSubmit(e, gate)

	const n = 6
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			h := e.SubmitWait(nil, func() bool { return false }, func(*Iter) {})
			errs <- h.Wait()
		}()
		i := i
		waitTenant(t, e, DefaultTenant, 5*time.Second, func(ts TenantStats) bool {
			return ts.Waiting == int64(i+1)
		})
	}
	close(gate)
	if err := h0.Wait(); err != nil {
		t.Fatalf("gated pipeline failed: %v", err)
	}
	// One waiter is admitted by the freed slot and completes; Close must
	// release the rest with ErrEngineClosed. (Close is legal here: the
	// admitted pipeline is empty and completes before its Wait returns.)
	e.Close()
	admitted, closed := 0, 0
	for i := 0; i < n; i++ {
		select {
		case err := <-errs:
			switch {
			case err == nil:
				admitted++
			case errors.Is(err, ErrEngineClosed):
				closed++
			default:
				t.Errorf("waiter err = %v, want nil or ErrEngineClosed", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("waiter leaked: still blocked after Close")
		}
	}
	if admitted+closed != n {
		t.Fatalf("accounting: admitted=%d closed=%d, want %d total", admitted, closed, n)
	}
	ts := e.TenantStats()[0]
	if ts.Waiting != 0 || ts.Pending != 0 {
		t.Errorf("gauges after Close: %+v, want zero Waiting/Pending", ts)
	}
	if ts.Submitted != ts.Admitted+ts.Rejected+ts.Canceled {
		t.Errorf("per-class sum: %+v, want Submitted == Admitted+Rejected+Canceled", ts)
	}
}
