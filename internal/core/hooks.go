package core

// Schedule-perturbation hooks: a test-only injection point that widens the
// interleaving space the differential fuzzer and the race detector can
// explore. Batching, promotion, and the parking protocols are all
// publish-then-recheck machines whose rare interleavings depend on timing
// the scheduler normally never produces; the hooks let a test inject
// seeded delays and forced decisions at the named points below without
// exposing any scheduling internals.
//
// Production engines always run with a nil hook set — Options.hooks is
// unexported, so only tests inside this package can install one — and the
// hot paths pay a single predictable nil-check branch.

// hookPoint names a scheduler decision point at which a perturbation hook
// may run.
type hookPoint uint8

const (
	// hookIteration fires in the control-frame step before an iteration is
	// launched (once per batch on the inline path).
	hookIteration hookPoint = iota
	// hookBatchSlot fires between the claimed slots of an inline batch,
	// after one iteration body completes and before the next begins.
	hookBatchSlot
	// hookReleaseControl fires right after the control frame is pushed to
	// the deque at an iteration's stage-0 exit, while the releasing
	// iteration's body is still running.
	hookReleaseControl
	// hookParkPublish fires inside the cross-edge parking protocol between
	// publishing the waiting state and re-checking the edge — the window
	// every waker races against.
	hookParkPublish
	// hookPollWork fires at the top of a worker's work scan.
	hookPollWork
)

// schedHooks is the perturbation hook set. Any field may be nil; non-nil
// fields must be safe for concurrent use from every worker goroutine.
type schedHooks struct {
	// point is invoked at the named decision points; it may sleep, spin,
	// or Gosched to stretch a race window.
	point func(hookPoint)
	// forceOverflow makes Engine.inject spill straight to the overflow
	// list, as if every live injection ring were full.
	forceOverflow func() bool
	// stealFirst makes a worker's scan raid the other shards before its
	// own deque, scrambling the preferred LIFO order.
	stealFirst func() bool
}

// hookAt runs the point hook if one is installed. Kept out-of-line so the
// nil fast path inlines to a load and a branch at every call site.
func (e *Engine) hookAt(p hookPoint) {
	if h := e.hooks; h != nil && h.point != nil {
		h.point(p)
	}
}
