package core

import "testing"

// BenchmarkCrossSatisfied measures the cross-edge check on its hot paths:
// the folding-cache hit (a single runner-local comparison), the shared
// counter read (folding ablated, so every check loads the predecessor's
// published stage), and the retired-predecessor fast-out (prev dropped,
// stageDone cached).
func BenchmarkCrossSatisfied(b *testing.B) {
	mk := func(folding bool) (*Engine, *frame, *frame) {
		opts := DefaultOptions()
		opts.Workers = 1
		opts.DependencyFolding = folding
		e := NewEngine(opts)
		b.Cleanup(e.Close)
		prev := &frame{kind: kindIter, eng: e}
		prev.stage.Store(1 << 40)
		f := &frame{kind: kindIter, eng: e, prev: prev}
		return e, prev, f
	}

	b.Run("FoldHit", func(b *testing.B) {
		_, _, f := mk(true)
		f.crossSatisfied(1) // populate the cache with the shared read
		for i := 0; i < b.N; i++ {
			if !f.crossSatisfied(2) {
				b.Fatal("edge should be satisfied")
			}
		}
	})
	b.Run("SharedRead", func(b *testing.B) {
		_, _, f := mk(false)
		for i := 0; i < b.N; i++ {
			if !f.crossSatisfied(2) {
				b.Fatal("edge should be satisfied")
			}
		}
	})
	b.Run("PrevRetired", func(b *testing.B) {
		_, prev, f := mk(true)
		prev.refs.Store(2) // keep unref from recycling the test frame
		prev.stage.Store(stageDone)
		f.crossSatisfied(1) // observes stageDone, drops prev, caches it
		for i := 0; i < b.N; i++ {
			if !f.crossSatisfied(2) {
				b.Fatal("edge should be satisfied")
			}
		}
	})
}
