package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newEngineOpts(t testing.TB, mutate func(*Options)) *Engine {
	opts := DefaultOptions()
	mutate(&opts)
	e := NewEngine(opts)
	t.Cleanup(e.Close)
	return e
}

// TestSteadyStateAllocs guards the pooling win with testing.AllocsPerRun
// on a steady-state SPS pipeline: with PoolFrames on, recycled frames,
// channels and goroutines must cut per-iteration allocations at least 2×
// versus the allocate-fresh ablation (in practice the pooled number is
// near zero). The fresh baseline ablates the inline fast path too — with
// it on, even allocate-per-use iterations cost only the bare inline
// header, which a separate assertion pins down.
func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews allocation counts")
	}
	const iters = 2000
	measure := func(e *Engine) float64 {
		var sink atomic.Int64
		run := func() {
			i := 0
			e.PipeWhile(func() bool { return i < iters }, func(it *Iter) {
				i++
				it.Continue(1)
				sink.Add(it.Index())
				it.Wait(2)
			})
		}
		run() // warm the pools and the workers
		return testing.AllocsPerRun(5, run) / iters
	}

	pooled := measure(newEngineOpts(t, func(o *Options) { o.Workers = 2 }))
	fresh := measure(newEngineOpts(t, func(o *Options) {
		o.Workers = 2
		o.PoolFrames = false
		o.InlineFastPath = false
	}))
	inlineFresh := measure(newEngineOpts(t, func(o *Options) { o.Workers = 2; o.PoolFrames = false }))
	t.Logf("allocs/iteration: pooled=%.3f fresh=%.3f inline-fresh=%.3f", pooled, fresh, inlineFresh)
	if fresh < 2 {
		t.Fatalf("fresh-allocation baseline implausibly low (%.3f allocs/iter): measurement broken?", fresh)
	}
	if pooled*2 > fresh {
		t.Errorf("pooling saves less than 2x: pooled=%.3f fresh=%.3f allocs/iter", pooled, fresh)
	}
	if pooled > 1 {
		t.Errorf("pooled steady state allocates %.3f/iter, want < 1", pooled)
	}
	// An unpooled inline iteration that never blocks allocates just its
	// header frame: no channels, no runner goroutine.
	if inlineFresh > 1.5 {
		t.Errorf("inline unpooled iteration allocates %.3f/iter, want ~1 (header only)", inlineFresh)
	}
}

// TestPoolStatsCount checks that steady-state iteration frames are served
// from the pool (hits dominate misses) and that the ablation switch
// really disables recycling.
func TestPoolStatsCount(t *testing.T) {
	e := newEngineOpts(t, func(o *Options) { o.Workers = 2 })
	for rep := 0; rep < 5; rep++ {
		i := 0
		e.PipeWhile(func() bool { return i < 400 }, func(it *Iter) {
			i++
			it.Continue(1)
			it.Wait(2)
		})
	}
	s := e.Stats()
	if s.FramePoolHits == 0 {
		t.Errorf("no pool hits after 2000 pooled iterations (misses=%d)", s.FramePoolMisses)
	}
	// sync.Pool's per-P caches make the exact hit rate scheduling-
	// dependent (notably under the race detector); just require that
	// recycling dominates.
	if s.FramePoolHits < s.FramePoolMisses {
		t.Errorf("pool hit rate too low: hits=%d misses=%d", s.FramePoolHits, s.FramePoolMisses)
	}

	off := newEngineOpts(t, func(o *Options) { o.Workers = 2; o.PoolFrames = false })
	i := 0
	off.PipeWhile(func() bool { return i < 100 }, func(it *Iter) { i++; it.Continue(1); it.Wait(2) })
	if s := off.Stats(); s.FramePoolHits != 0 || s.FramePoolMisses != 0 {
		t.Errorf("PoolFrames(false) still touched the pool: hits=%d misses=%d",
			s.FramePoolHits, s.FramePoolMisses)
	}
}

// TestBurstInjectionWakesAllWorkers is the lost-wakeup regression test:
// P pipelines are injected in a burst against P parked workers, and every
// pipeline's stage-1 node spins until all P have reached it — which is
// only possible if the injection signals woke P distinct workers. The old
// single-slot wake channel dropped the burst's tokens and relied on
// polling; event-driven parking must deliver one wake per injection.
func TestBurstInjectionWakesAllWorkers(t *testing.T) {
	const p = 8
	e := newTestEngine(t, p)

	for rep := 0; rep < 3; rep++ {
		// Let every worker park.
		deadline := time.Now().Add(5 * time.Second)
		for e.idle.Load() < p {
			if time.Now().After(deadline) {
				t.Fatalf("rep %d: workers never parked (idle=%d)", rep, e.idle.Load())
			}
			runtime.Gosched()
		}

		var entered atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < p; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				i := 0
				e.PipeWhile(func() bool { return i < 1 }, func(it *Iter) {
					i++
					it.Continue(1)
					// Rendezvous: requires all P pipelines to be running
					// simultaneously, hence P awake workers.
					entered.Add(1)
					for entered.Load() < p {
						runtime.Gosched()
					}
				})
			}()
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatalf("rep %d: burst stalled with %d/%d pipelines running — lost wakeup",
				rep, entered.Load(), p)
		}
	}
	s := e.Stats()
	if s.Wakes == 0 {
		t.Error("no wake tokens recorded despite parked-worker burst")
	}
	if s.Parks == 0 {
		t.Error("no parks recorded despite idle engine")
	}
}

// TestInjectOverflow forces the sharded rings to spill into the overflow
// list by injecting far more pipelines than total ring capacity from many
// goroutines at once, and checks nothing is lost.
func TestInjectOverflow(t *testing.T) {
	e := newTestEngine(t, 2)
	const pipelines = 600 // 2 workers x 64-slot rings << 600 concurrent roots
	var ran atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < pipelines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			e.PipeWhile(func() bool { return i < 2 }, func(it *Iter) {
				i++
				it.Continue(1)
				ran.Add(1)
			})
		}()
	}
	wg.Wait()
	if got := ran.Load(); got != 2*pipelines {
		t.Fatalf("ran %d iterations, want %d", got, 2*pipelines)
	}
}

// TestPoolReuseAfterPanic checks that a panicking iteration's frame
// recycles cleanly: subsequent pipelines on the same engine must see
// fresh state.
func TestPoolReuseAfterPanic(t *testing.T) {
	e := newTestEngine(t, 2)
	for rep := 0; rep < 10; rep++ {
		func() {
			defer func() {
				if r := recover(); fmt.Sprint(r) != "boom" {
					t.Fatalf("rep %d: recovered %v, want boom", rep, r)
				}
			}()
			i := 0
			e.PipeWhile(func() bool { return i < 20 }, func(it *Iter) {
				i++
				it.Continue(1)
				if it.Index() == 13 {
					panic("boom")
				}
				it.Wait(2)
			})
		}()
		// A clean pipeline right after must run all iterations in order.
		i := 0
		var order []int64
		e.PipeWhile(func() bool { return i < 50 }, func(it *Iter) {
			i++
			it.Wait(1)
			order = append(order, it.Index())
		})
		for k, v := range order {
			if v != int64(k) {
				t.Fatalf("rep %d: order[%d] = %d after panic recovery", rep, k, v)
			}
		}
	}
}

// TestPooledEquivalence runs the same dependency-heavy pipeline with
// pooling on and off and checks identical results — the ablation switch
// must not change semantics.
func TestPooledEquivalence(t *testing.T) {
	run := func(e *Engine) []int64 {
		var out []int64
		i := 0
		e.PipeWhile(func() bool { return i < 300 }, func(it *Iter) {
			i++
			it.Continue(1)
			x := it.Index() * 3
			it.Wait(2)
			out = append(out, x)
		})
		return out
	}
	a := run(newEngineOpts(t, func(o *Options) { o.Workers = 4 }))
	b := run(newEngineOpts(t, func(o *Options) { o.Workers = 4; o.PoolFrames = false }))
	if len(a) != len(b) {
		t.Fatalf("length mismatch: pooled=%d fresh=%d", len(a), len(b))
	}
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("output[%d]: pooled=%d fresh=%d", k, a[k], b[k])
		}
	}
}
