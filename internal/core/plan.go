package core

import (
	"piper/internal/dag"
)

// Pipeline plan compilation.
//
// A pipe_while program's stage structure is declared on the fly — each
// iteration announces its transitions by calling Wait and Continue — so
// the interpreter re-derives static facts at every stage boundary:
// argument validation, cross-edge structure, fold-cache state, and the
// instrumentation and eager-enabling branches. For the overwhelmingly
// common case of a shape-stable pipeline (every iteration takes the same
// transitions), all of that is decidable once.
//
// The compiler works by trace recording: iteration 0 runs under the
// ordinary interpreter with a lightweight recorder attached (planRecorder)
// that notes each transition's target stage, kind (wait/continue), and
// wall-clock cost. When iteration 0 retires cleanly, sealPlan validates
// the recorded shape through internal/dag (ValidateIter), derives the
// wait table (MaxCross) and the fusable transition set (FuseShort), and
// publishes an immutable *plan on the pipeline. Iterations created after
// publication bind the plan and dispatch each Wait/Continue against a
// cursor into its transition list:
//
//   - a matching unfused transition runs a specialized path that skips
//     argument re-validation, the instrumentation branches, and the
//     fold-cache compare chain (planCrossSatisfied is a single wait-table
//     comparison with a sticky crossDone bit);
//   - a matching fused transition — an interior pipe_continue between two
//     short stages — is elided entirely: no stage publication, no checks,
//     the two stage bodies run as one. Deferred publication is
//     conservative for successors (they observe the next unfused stage,
//     or stageDone), so cross-edge semantics are preserved exactly;
//   - a mismatch (the body diverged from the recorded shape) deopts:
//     planDiverge materializes the true stage counter, drops the plan
//     pipeline-wide, and falls through to the interpreter mid-iteration.
//     Compiled and interpreted execution interleave freely within one
//     pipeline, which is what makes the differential fuzzer's
//     plan-on/plan-off configs directly comparable.
//
// A plan whose recorded iteration never left stage 0 (serialOnly) enables
// the strongest specialization: runInlineBatchSerial (frame.go) retires
// whole batches with one published stage/status transition, and the
// control step elides the throttle gate while no iteration is live. The
// recorded per-stage costs also seed the adaptive grain (plan.seedGrain),
// replacing the cold G=1 ramp for bodies the recording proves short.
//
// Plans are compiled only when Options.CompilePlans is set together with
// DependencyFolding and lazy enabling (the compiled dispatch subsumes the
// fold cache and never performs eager check-rights, so the ablations that
// disable those must measure the interpreter), and never for instrumented
// pipelines (work/span accounting needs every node boundary observed).
// Tracing needs no such gate: its events are iteration-level segments,
// which compiled dispatch delimits identically, and a traced run pins the
// batch grain to 1 dynamically (openBatch), so per-iteration segments
// survive even a serial-only plan.

// maxPlanNodes bounds the recorded transition count. Programs with more
// stages than this fall back to the interpreter permanently — at that
// many boundaries per iteration the per-boundary savings are noise.
const maxPlanNodes = 32

// fuseThresholdNs is the recorded-stage-cost ceiling for fusing a
// pipe_continue transition: both neighbouring stages must be shorter than
// this for the boundary bookkeeping to dominate the work it separates.
const fuseThresholdNs = 2000

// planNode is one compiled stage transition.
type planNode struct {
	stage int64 // target stage
	wait  bool  // pipe_wait (incoming cross edge) vs pipe_continue
	fused bool  // transition elided at dispatch; stage publication deferred
}

// plan is the immutable compiled form of a pipeline's recorded shape.
// Published once through pipeline.plan and shared by every subsequent
// iteration frame; deopt swaps the pointer to nil but never mutates it.
type plan struct {
	nodes []planNode
	// serialOnly marks a recorded iteration that never left stage 0: the
	// whole body is the serial prologue, enabling the batched fast retire
	// loop and the throttle-gate elision.
	serialOnly bool
	// maxWait is the highest stage any transition waits on (-1 if none): a
	// predecessor observed past it can never block a planned wait again,
	// so the compiled cross check latches (see planCrossSatisfied).
	maxWait int64
	// fused counts fused transitions, for Stats and the report.
	fused int64
	// seedGrain is the initial adaptive-grain hint derived from the
	// recorded iteration cost (0: no hint; start at G=1 as before).
	seedGrain int64
}

// planRecorder captures iteration 0's transitions. It is embedded in the
// pipeline (no allocation) and attached to at most one frame at a time;
// only that frame's runner goroutine touches it.
type planRecorder struct {
	n        int
	overflow bool
	start    int64
	stages   [maxPlanNodes]int64
	waits    [maxPlanNodes]bool
	times    [maxPlanNodes]int64
}

func (r *planRecorder) reset() {
	r.n = 0
	r.overflow = false
	r.start = nowNs()
}

// note records one executed transition. Called from the generic
// Wait/Continue paths after argument validation, so stages are already
// known to strictly increase.
func (r *planRecorder) note(j int64, wait bool) {
	if r.n >= maxPlanNodes {
		r.overflow = true
		return
	}
	r.stages[r.n] = j
	r.waits[r.n] = wait
	r.times[r.n] = nowNs()
	r.n++
}

// sealPlan compiles the recorded iteration 0 into a plan and publishes it
// on the pipeline. Called from finishIter on the recording frame's runner
// goroutine, before the frame's completion is published. Recordings cut
// short — a panic, an abort, or a transition-count overflow — seal
// nothing: later iterations keep interpreting.
func (pl *pipeline) sealPlan(f *frame) {
	r := f.rec
	f.rec = nil
	if r.overflow || f.panicked != nil || pl.panicked() || pl.abortRequested() {
		return
	}
	p := compilePlan(r, nowNs())
	if p == nil {
		return
	}
	pl.planCompiled = true
	pl.planStages = int64(r.n) + 1
	pl.planFused = p.fused
	pl.eng.stats.plansCompiled.Add(1)
	if p.fused > 0 {
		pl.eng.stats.planFusedStages.Add(p.fused)
	}
	pl.plan.Store(p)
}

// compilePlan lowers a recording into a plan via the dag package's
// single-iteration analyses. Returns nil if the recorded shape fails
// structural validation (belt and suspenders: the interpreter's
// checkStageArg already enforced it during recording).
func compilePlan(r *planRecorder, end int64) *plan {
	nodes := make([]dag.Node, r.n+1)
	prevT := r.start
	nodes[0] = dag.Node{Stage: 0}
	for t := 0; t < r.n; t++ {
		nodes[t].Weight = maxInt64(r.times[t]-prevT, 0)
		prevT = r.times[t]
		nodes[t+1] = dag.Node{Stage: r.stages[t], Cross: r.waits[t]}
	}
	nodes[r.n].Weight = maxInt64(end-prevT, 0)
	if err := dag.ValidateIter(nodes); err != nil {
		return nil
	}
	fusable := dag.FuseShort(nodes, fuseThresholdNs)
	p := &plan{
		nodes:      make([]planNode, r.n),
		serialOnly: r.n == 0,
		maxWait:    dag.MaxCross(nodes),
	}
	for t := 0; t < r.n; t++ {
		p.nodes[t] = planNode{stage: r.stages[t], wait: r.waits[t], fused: fusable[t+1]}
		if fusable[t+1] {
			p.fused++
		}
	}
	total := maxInt64(end-r.start, 0)
	switch {
	case p.serialOnly && total < fuseThresholdNs:
		// A short pure-serial body: the recording proves the per-iteration
		// bookkeeping dominates, so start the batch ramp at the ceiling.
		p.seedGrain = defaultGrainMax
	case total < fuseThresholdNs:
		p.seedGrain = 8
	case total < 5*fuseThresholdNs:
		p.seedGrain = 4
	}
	return p
}

// planStep dispatches stage transition j (wait or continue) against the
// compiled plan. Returns true when the transition was fully handled;
// false means execution diverged from the recorded shape — the plan has
// been dropped and the true stage counter materialized, and the caller
// must fall through to the generic interpreter path, which revalidates j
// from scratch.
func (f *frame) planStep(p *plan, j int64, wait bool) bool {
	cur := f.planCur
	if cur >= len(p.nodes) || p.nodes[cur].stage != j || p.nodes[cur].wait != wait {
		f.planDiverge(p)
		return false
	}
	f.planCur = cur + 1
	if p.nodes[cur].fused {
		// Fused interior continue: the two stage bodies run as one. The
		// stage counter is published at the next unfused transition (or as
		// stageDone at retirement), which is conservative for successors;
		// the abort check moves to that same boundary.
		return true
	}
	f.abortCheck()
	f.stage.Store(j)
	if !wait {
		if f.inline {
			if f.inStage0 {
				f.leaveStage0Inline()
			}
			return true
		}
		if f.inStage0 {
			f.inStage0 = false
			f.park(yieldMsg{kind: yLeftStage0})
		}
		return true
	}
	if f.inline {
		if !f.planCrossSatisfied(p, j) {
			// Same promotion protocol as the interpreted Wait: the park's
			// publish-then-recheck re-validates the edge.
			f.promote()
			f.parkOnCross(j)
			f.abortCheck()
		} else if f.inStage0 {
			f.leaveStage0Inline()
		}
		return true
	}
	left0 := f.inStage0
	f.inStage0 = false
	if f.planCrossSatisfied(p, j) {
		if left0 {
			f.park(yieldMsg{kind: yLeftStage0})
		}
		return true
	}
	f.parkOnCross(j)
	f.abortCheck()
	return true
}

// planCrossSatisfied is the compiled cross-edge check: a sticky
// runner-local bit plus one wait-table comparison replace the fold-cache
// compare chain. Once the predecessor's counter passes the plan's highest
// waited-on stage it can never block a PLANNED wait again (plan stages
// strictly increase and every planned wait is <= maxWait), so the bit
// latches. The predecessor reference itself is dropped only at stageDone,
// exactly like the interpreter: a later divergence can introduce a wait
// on a stage above maxWait, and the generic path it falls back to must
// still find prev to check the edge for real — dropping early on the
// wait-table comparison is the one shortcut that is NOT semantics-
// preserving (found by the differential fuzzer).
func (f *frame) planCrossSatisfied(p *plan, j int64) bool {
	if f.crossDone {
		f.nFoldHits++
		return true
	}
	prev := f.prev
	if prev == nil {
		f.crossDone = true
		return true
	}
	f.nCrossChecks++
	c := prev.stage.Load()
	if c == stageDone {
		f.crossDone = true
		f.dropPrev()
		return true
	}
	if c > p.maxWait {
		f.crossDone = true
		return true
	}
	return c > j
}

// planDiverge abandons compiled dispatch for this pipeline: the body took
// a transition the recorded shape does not predict. Fused transitions
// deferred their stage publication, so the true counter is materialized
// first — the generic path's argument validation and cross-edge protocol
// then resume from exact interpreter state.
func (f *frame) planDiverge(p *plan) {
	if cur := f.planCur; cur > 0 {
		if s := p.nodes[cur-1].stage; s > f.stage.Load() {
			f.stage.Store(s)
		}
	}
	f.plan = nil
	f.pl.deoptPlan()
}

// deoptPlan retracts the pipeline's published plan so no further
// iteration binds it. Frames already dispatching on the old pointer each
// diverge (or complete) independently; the plan itself is immutable.
func (pl *pipeline) deoptPlan() {
	if pl.plan.Swap(nil) != nil {
		pl.planDeopts.Add(1)
		pl.eng.stats.planDeopts.Add(1)
	}
}
