package core

import (
	"runtime"
	"sync"
	"time"

	"piper/internal/workload"
)

// Virtual-schedule mode: the scalability harness's bridge to the
// schedule-perturbation hooks (hooks.go).
//
// On a host with few cores, an engine built with Workers(P) for P beyond
// runtime.NumCPU() still exercises the full P-worker scheduling machinery
// — P deque shards, the steal sweep over them, the elastic pool's
// park/wake protocol, injection-ring overflow — just compressed onto the
// physical cores by the Go scheduler, with none of the contention timing
// real parallelism would produce. InstallVirtualSchedule widens that
// timing artificially: a seeded perturber injects delays, yield points,
// forced overflow, and scrambled steal order at the scheduler's decision
// points, deterministically in distribution (a fixed seed draws a fixed
// dice sequence; interleaving still varies, but every behavioral rate the
// harness records is stable to within sampling noise). The result is not
// a performance model — virtual runs measure *behavior* (steals, parks,
// overflows per iteration) while speedup at virtual P comes from the
// work/span bound — but it puts the steal-sweep, grain, and elastic-pool
// heuristics under P=8..64 stress on a 1-CPU host, which no real
// configuration here can.

// InstallVirtualSchedule installs the seeded virtual-schedule perturber on
// o. It is the only exported path to the hooks field: production engines
// never set it, and the harness sets it only for virtual-P benchmark runs
// (never for timing rows — perturbation delays would pollute them).
func (o *Options) InstallVirtualSchedule(seed uint64) {
	var mu sync.Mutex
	rng := workload.NewRNG(seed)
	roll := func(n int) int {
		mu.Lock()
		v := rng.Intn(n)
		mu.Unlock()
		return v
	}
	o.hooks = &schedHooks{
		point: func(p hookPoint) {
			switch roll(16) {
			case 0:
				// Stretch the decision window far enough for another
				// worker goroutine to be scheduled into it — the stand-in
				// for a concurrently executing core.
				time.Sleep(time.Duration(1+roll(20)) * time.Microsecond)
			case 1, 2:
				runtime.Gosched()
			}
			if p == hookParkPublish && roll(4) == 0 {
				// The publish-then-recheck window is where wakers race
				// parking workers; oversubscribed hosts hit it hardest.
				runtime.Gosched()
			}
		},
		forceOverflow: func() bool { return roll(8) == 0 },
		stealFirst:    func() bool { return roll(4) == 0 },
	}
}
