package core

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
)

// Plan-compiler tests: compiled dispatch must be semantically identical
// to the interpreter — same outputs, same serial-stage ordering, same
// panic and cancellation behavior — while the report and Stats expose
// what was compiled, fused, seeded, and deopted.

// planOpts returns DefaultOptions with CompilePlans forced to the given
// state (it defaults on; the explicit form keeps the pairing tests
// readable).
func planOpts(compile bool) Options {
	o := DefaultOptions()
	o.CompilePlans = compile
	return o
}

// runFusedProgram executes a shape-stable pipeline whose tail is a run of
// short interior continues — the fusable region — with a cross edge in
// the middle, and checks the per-stage ordering invariant on the fly the
// same way the fuzzer does: progress[i] is iteration i's self-declared
// stage, published before the runtime's own counter advances, so when a
// pipe_wait into (i, j) resolves, progress[i-1] > j must already hold.
func runFusedProgram(t *testing.T, opts Options, n int) ([]uint64, PipelineReport, *Engine) {
	t.Helper()
	opts.Workers = 4
	e := NewEngine(opts)
	t.Cleanup(e.Close)

	out := make([]uint64, n)
	progress := make([]atomic.Int64, n+1)
	var violations atomic.Int64
	i := 0
	rep := e.RunPipeline(0, func() bool { return i < n }, func(it *Iter) {
		idx := int(it.Index())
		i++
		acc := uint64(idx)*0x9e3779b97f4a7c15 + 1
		progress[idx].Store(1)
		it.Continue(1)
		acc = acc*31 + 1
		progress[idx].Store(2)
		it.Wait(2)
		if idx > 0 && progress[idx-1].Load() <= 2 {
			violations.Add(1)
		}
		acc = acc*31 + 2
		// Fusable tail: three short interior continues. Under a compiled
		// plan their boundary bookkeeping is elided entirely.
		it.Continue(3)
		acc = acc*31 + 3
		it.Continue(4)
		acc = acc*31 + 4
		it.Continue(5)
		acc = acc*31 + 5
		out[idx] = acc
		progress[idx].Store(math.MaxInt64)
	})
	if v := violations.Load(); v != 0 {
		t.Errorf("%d serial-stage ordering violations", v)
	}
	return out, rep, e
}

// TestPlanEquivalenceFused is the plan-equivalence unit test: the fused
// pipeline must produce bit-identical per-iteration values compiled and
// interpreted, hold the per-stage ordering invariant in both modes, and
// the compiled run's report must show the expected plan metadata.
func TestPlanEquivalenceFused(t *testing.T) {
	const n = 500
	compiled, crep, ce := runFusedProgram(t, planOpts(true), n)
	interp, irep, ie := runFusedProgram(t, planOpts(false), n)
	for i := range compiled {
		if compiled[i] != interp[i] {
			t.Fatalf("iteration %d: compiled %#x != interpreted %#x", i, compiled[i], interp[i])
		}
	}
	if !crep.PlanCompiled {
		t.Errorf("compiled run: PlanCompiled = false")
	}
	if crep.PlanStages != 6 {
		t.Errorf("PlanStages = %d, want 6 (stages 0..5)", crep.PlanStages)
	}
	// The three interior continues are fusable; the stage-0 exit and the
	// cross edge never are. Fusing depends on recorded stage costs, so a
	// slow CI box could in principle time a stage past the threshold —
	// assert the metadata is consistent rather than exactly 3.
	if crep.PlanFusedStages < 0 || crep.PlanFusedStages > 3 {
		t.Errorf("PlanFusedStages = %d, want 0..3", crep.PlanFusedStages)
	}
	if crep.PlanDeopts != 0 {
		t.Errorf("PlanDeopts = %d, want 0 for a shape-stable program", crep.PlanDeopts)
	}
	if irep.PlanCompiled || irep.PlanStages != 0 || irep.PlanFusedStages != 0 {
		t.Errorf("interpreted run leaked plan metadata: %+v", irep)
	}
	if s := ce.Stats(); s.PlansCompiled != 1 || s.PlanFusedStages != crep.PlanFusedStages {
		t.Errorf("compiled engine stats: PlansCompiled=%d PlanFusedStages=%d, want 1/%d",
			s.PlansCompiled, s.PlanFusedStages, crep.PlanFusedStages)
	}
	if s := ie.Stats(); s.PlansCompiled != 0 {
		t.Errorf("interpreted engine compiled %d plans", s.PlansCompiled)
	}
	checkEngineDrained(t, ce)
	checkEngineDrained(t, ie)
}

// TestPlanDeoptOnShapeChange: a program whose iterations change shape
// after recording must retract the plan exactly once, keep producing
// correct values through the mid-flight interpreter fallback, and report
// the deopt.
func TestPlanDeoptOnShapeChange(t *testing.T) {
	opts := planOpts(true)
	opts.Workers = 2
	e := NewEngine(opts)
	defer e.Close()

	const n = 300
	var sum atomic.Int64
	i := 0
	rep := e.RunPipeline(0, func() bool { return i < n }, func(it *Iter) {
		idx := it.Index()
		i++
		if idx%2 == 0 {
			it.Continue(1)
			it.Wait(2)
			sum.Add(idx)
		} else {
			// Diverges from the recorded even shape at the first transition.
			it.Continue(3)
			sum.Add(idx * 10)
		}
	})
	var want int64
	for k := int64(0); k < n; k++ {
		if k%2 == 0 {
			want += k
		} else {
			want += k * 10
		}
	}
	if got := sum.Load(); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if !rep.PlanCompiled {
		t.Errorf("PlanCompiled = false (iteration 0 was recordable)")
	}
	if rep.PlanDeopts != 1 {
		t.Errorf("PlanDeopts = %d, want exactly 1 (retraction is pipeline-wide)", rep.PlanDeopts)
	}
	if s := e.Stats(); s.PlanDeopts != 1 {
		t.Errorf("Stats.PlanDeopts = %d, want 1", s.PlanDeopts)
	}
	checkEngineDrained(t, e)
}

// TestSerialPlanSeedsGrain: a short pure-serial body's recorded cost
// seeds the adaptive grain at the ceiling, so batching engages right
// after the recording iteration instead of ramping from 1 — the
// difference is visible on a run too short for the cold ramp to finish.
func TestSerialPlanSeedsGrain(t *testing.T) {
	opts := planOpts(true)
	opts.Workers = 1
	e := NewEngine(opts)
	defer e.Close()

	const n = 100
	i := 0
	rep := e.RunPipeline(0, func() bool { return i < n }, func(it *Iter) { i++ })
	if rep.Iterations != n {
		t.Fatalf("Iterations = %d, want %d", rep.Iterations, n)
	}
	if !rep.PlanCompiled || rep.PlanStages != 1 {
		t.Errorf("serial plan not compiled: %+v", rep)
	}
	if rep.FinalGrain != defaultGrainMax {
		t.Errorf("FinalGrain = %d, want the seeded ceiling %d", rep.FinalGrain, int64(defaultGrainMax))
	}
	if s := e.Stats(); s.BatchedIterations < n/2 {
		t.Errorf("BatchedIterations = %d, want >= %d (seeding should batch nearly the whole run)",
			s.BatchedIterations, n/2)
	}
	checkEngineDrained(t, e)
}

// TestSerialPlanPanicPropagates: a panic inside the compiled serial fast
// loop must stop the batch, surface through PipeWhile, and drain —
// identical to the interpreted batch behavior.
func TestSerialPlanPanicPropagates(t *testing.T) {
	e := newEngineOpts(t, func(o *Options) { o.Workers = 1 })
	var rec any
	func() {
		defer func() { rec = recover() }()
		i := 0
		e.PipeWhile(func() bool { i++; return i <= 1000 }, func(it *Iter) {
			if it.Index() == 257 {
				panic("boom at 257")
			}
		})
	}()
	if rec != "boom at 257" {
		t.Fatalf("recovered %v, want the iteration panic", rec)
	}
	checkEngineDrained(t, e)
}

// TestSerialPlanCancelDrains: cancellation mid-run of a compiled
// serial-only pipeline must abort at a batch boundary and drain every
// frame back to the pools. The condition is unbounded so cancellation is
// the only way the pipeline can end — a bounded run can legitimately
// finish before the cancel watcher fires on a loaded machine.
func TestSerialPlanCancelDrains(t *testing.T) {
	e := newEngineOpts(t, func(o *Options) { o.Workers = 2 })
	ctx, cancel := context.WithCancel(context.Background())
	h := e.Submit(ctx, func() bool { return true }, func(it *Iter) {
		if it.Index() == 500 {
			cancel()
		}
	})
	if err := h.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	checkEngineDrained(t, e)
}

// TestSerialPlanForkJoin: fork-join inside stage 0 stays legal under a
// serial-only plan — a stolen child promotes the slot through the fast
// loop's slow tail — and the commutative sum proves no task is lost or
// duplicated.
func TestSerialPlanForkJoin(t *testing.T) {
	opts := planOpts(true)
	opts.Workers = 4
	e := NewEngine(opts)
	defer e.Close()

	const n = 400
	var sum atomic.Int64
	i := 0
	rep := e.RunPipeline(0, func() bool { return i < n }, func(it *Iter) {
		idx := it.Index()
		i++
		it.Go(func() { sum.Add(idx) })
		it.Go(func() { sum.Add(idx * 3) })
		it.Sync()
	})
	if rep.Iterations != n {
		t.Fatalf("Iterations = %d, want %d", rep.Iterations, n)
	}
	if got, want := sum.Load(), int64(n*(n-1)/2*4); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	checkEngineDrained(t, e)
}

// TestPlanGatedByAblations: the compiler must stand down when its
// prerequisites are ablated — dependency folding off, eager enabling on —
// and for instrumented runs, whose work/span accounting needs every node
// boundary observed.
func TestPlanGatedByAblations(t *testing.T) {
	run := func(opts Options) Stats {
		opts.Workers = 2
		e := NewEngine(opts)
		defer e.Close()
		i := 0
		e.PipeWhile(func() bool { i++; return i <= 200 }, func(it *Iter) {
			it.Continue(1)
			it.Wait(2)
		})
		return e.Stats()
	}
	noFold := planOpts(true)
	noFold.DependencyFolding = false
	if s := run(noFold); s.PlansCompiled != 0 {
		t.Errorf("DependencyFolding=false compiled %d plans", s.PlansCompiled)
	}
	eager := planOpts(true)
	eager.EagerEnabling = true
	if s := run(eager); s.PlansCompiled != 0 {
		t.Errorf("EagerEnabling=true compiled %d plans", s.PlansCompiled)
	}

	inst := planOpts(true)
	inst.Workers = 2
	e := NewEngine(inst)
	defer e.Close()
	i := 0
	rep := e.ProfilePipeline(0, func() bool { i++; return i <= 200 }, func(it *Iter) {
		it.Continue(1)
		it.Wait(2)
	})
	if rep.PlanCompiled {
		t.Errorf("instrumented run compiled a plan")
	}
	if s := e.Stats(); s.PlansCompiled != 0 {
		t.Errorf("instrumented engine compiled %d plans", s.PlansCompiled)
	}
}
