package core

import (
	"runtime"
	"sync/atomic"
	"testing"

	"piper/internal/workload"
)

// --- RunSerial -------------------------------------------------------------

func TestRunSerialMatchesParallel(t *testing.T) {
	runPipe := func(exec func(cond func() bool, body func(*Iter))) []int64 {
		var out []int64
		i := 0
		exec(func() bool { return i < 200 }, func(it *Iter) {
			i++
			it.Continue(1)
			v := it.Index() * 3
			it.Wait(2)
			out = append(out, v)
		})
		return out
	}
	serial := runPipe(func(c func() bool, b func(*Iter)) { RunSerial(c, b) })
	e := newTestEngine(t, 4)
	parallel := runPipe(func(c func() bool, b func(*Iter)) { e.PipeWhile(c, b) })
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for k := range serial {
		if serial[k] != parallel[k] {
			t.Fatalf("output %d differs: %d vs %d", k, serial[k], parallel[k])
		}
	}
}

func TestRunSerialStageDiscipline(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RunSerial must enforce strictly increasing stages")
		}
	}()
	i := 0
	RunSerial(func() bool { return i < 1 }, func(it *Iter) {
		i++
		it.Continue(5)
		it.Wait(2)
	})
}

func TestRunSerialForkJoinElision(t *testing.T) {
	var sum int
	i := 0
	RunSerial(func() bool { return i < 3 }, func(it *Iter) {
		i++
		it.Continue(1)
		it.Go(func() { sum++ })
		it.Sync()
		it.For(10, 3, func(k int) { sum += k })
	})
	if sum != 3*(1+45) {
		t.Fatalf("sum = %d, want %d", sum, 3*46)
	}
}

func TestRunSerialNestedPipeline(t *testing.T) {
	e := newTestEngine(t, 2)
	_ = e
	var count int
	i := 0
	RunSerial(func() bool { return i < 4 }, func(it *Iter) {
		i++
		it.Continue(1)
		j := 0
		it.PipeWhile(func() bool { return j < 5 }, func(in *Iter) {
			j++
			in.Continue(1)
			count++
		})
	})
	if count != 20 {
		t.Fatalf("count = %d", count)
	}
}

func TestRunSerialReport(t *testing.T) {
	i := 0
	rep := RunSerial(func() bool { return i < 7 }, func(it *Iter) { i++ })
	if rep.Iterations != 7 || rep.MaxLiveIterations != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunSerialIndexAndStage(t *testing.T) {
	i := 0
	RunSerial(func() bool { return i < 3 }, func(it *Iter) {
		if it.Index() != int64(i) {
			t.Errorf("index = %d, want %d", it.Index(), i)
		}
		i++
		it.Wait(4)
		if it.Stage() != 4 {
			t.Errorf("stage = %d, want 4", it.Stage())
		}
	})
}

// --- Adaptive throttling -----------------------------------------------------

// TestAdaptiveFixedWhenBoundsEqual behaves exactly like a fixed window.
func TestAdaptiveFixedWhenBoundsEqual(t *testing.T) {
	e := newTestEngine(t, 4)
	var peak atomic.Int64
	var live atomic.Int64
	i := 0
	rep := e.RunPipelineAdaptive(3, 3, func() bool { return i < 100 }, func(it *Iter) {
		l := live.Add(1)
		for {
			p := peak.Load()
			if l <= p || peak.CompareAndSwap(p, l) {
				break
			}
		}
		i++
		it.Continue(1)
		runtime.Gosched()
		live.Add(-1)
	})
	if peak.Load() > 3 {
		t.Fatalf("live iterations %d exceeded fixed bound 3", peak.Load())
	}
	if rep.FinalThrottle != 3 {
		t.Fatalf("final throttle = %d, want 3", rep.FinalThrottle)
	}
}

// TestAdaptiveGrowsUnderStarvation: the Figure 10 pathology with idle
// workers must widen the window beyond the minimum. The growth trigger
// (idle workers while window-bound) is scheduling-dependent, so the test
// retries with increasingly heavy iterations under host load. It runs on
// the coroutine tier: the per-segment handshakes interleave the workers
// enough to surface window-boundness even at GOMAXPROCS < P, whereas the
// inline tier may legitimately serialize the whole pipeline there (greedy
// inline iterations never block, so starvation cannot arise to trigger
// growth).
func TestAdaptiveGrowsUnderStarvation(t *testing.T) {
	e := newEngineOpts(t, func(o *Options) { o.Workers = 4; o.InlineFastPath = false })
	attempt := func(heavyMicros int64) bool {
		// One heavy iteration blocks the serial tail stage while light
		// ones pile up: with kMin=2 the pipeline starves 3 of 4 workers.
		i := 0
		const n = 120
		rep := e.RunPipelineAdaptive(2, 64, func() bool { return i < n }, func(it *Iter) {
			idx := it.Index()
			i++
			it.Continue(1)
			if idx%30 == 0 {
				workload.SpinMicros(heavyMicros)
			} else {
				workload.SpinMicros(50) // light
			}
			it.Wait(2) // serial tail: everyone queues behind the heavy one
		})
		if rep.MaxLiveIterations > 64 {
			t.Fatalf("adaptive window exceeded kMax: %d", rep.MaxLiveIterations)
		}
		return rep.MaxLiveIterations > 2
	}
	for _, heavy := range []int64{3000, 10000, 30000} {
		if attempt(heavy) {
			if e.Stats().ThrottleGrows == 0 {
				t.Fatal("window grew but ThrottleGrows == 0")
			}
			return
		}
	}
	t.Fatal("adaptive window never grew despite starvation")
}

// TestAdaptiveNeverExceedsMax under a pile-up workload.
func TestAdaptiveNeverExceedsMax(t *testing.T) {
	e := newTestEngine(t, 4)
	var live, peak atomic.Int64
	i := 0
	e.RunPipelineAdaptive(1, 5, func() bool { return i < 200 }, func(it *Iter) {
		l := live.Add(1)
		for {
			p := peak.Load()
			if l <= p || peak.CompareAndSwap(p, l) {
				break
			}
		}
		i++
		it.Continue(1)
		runtime.Gosched()
		it.Wait(2)
		live.Add(-1)
	})
	if peak.Load() > 5 {
		t.Fatalf("live iterations %d exceeded kMax 5", peak.Load())
	}
}

// TestAdaptiveShrinks: a pipeline that stops being window-bound gives
// space back.
func TestAdaptiveShrinks(t *testing.T) {
	e := newTestEngine(t, 2)
	i := 0
	const n = 400
	rep := e.RunPipelineAdaptive(2, 32, func() bool { return i < n }, func(it *Iter) {
		idx := it.Index()
		i++
		it.Continue(1)
		if idx < 40 && idx%10 == 0 {
			workload.SpinMicros(2000) // early heavy phase grows the window
		}
		it.Wait(2)
	})
	s := e.Stats()
	if s.ThrottleGrows > 0 && s.ThrottleShrinks == 0 {
		t.Log("note: window grew but never shrank (schedule-dependent)")
	}
	_ = rep
}

// TestAdaptiveCorrectOutput: adaptation must not disturb semantics.
func TestAdaptiveCorrectOutput(t *testing.T) {
	e := newTestEngine(t, 4)
	var order []int64
	i := 0
	e.RunPipelineAdaptive(1, 16, func() bool { return i < 300 }, func(it *Iter) {
		i++
		it.Continue(1)
		v := it.Index()
		it.Wait(2)
		order = append(order, v)
	})
	for k, v := range order {
		if v != int64(k) {
			t.Fatalf("order violated at %d: %d", k, v)
		}
	}
}
