package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestImplicitSyncAtIterationEnd: children spawned with Go but never
// Synced must complete before the iteration is considered done (the
// implicit cilk_sync of every Cilk function).
func TestImplicitSyncAtIterationEnd(t *testing.T) {
	e := newTestEngine(t, 4)
	const n = 100
	var done atomic.Int64
	i := 0
	e.PipeWhile(func() bool { return i < n }, func(it *Iter) {
		i++
		it.Continue(1)
		for g := 0; g < 3; g++ {
			it.Go(func() {
				runtime.Gosched()
				done.Add(1)
			})
		}
		// No Sync: the runtime must insert one.
	})
	if got := done.Load(); got != 3*n {
		t.Fatalf("children completed = %d, want %d (implicit sync missing?)", got, 3*n)
	}
}

// TestMultipleSyncRounds: Go/Sync/Go/Sync in one stage.
func TestMultipleSyncRounds(t *testing.T) {
	e := newTestEngine(t, 4)
	var order []int
	i := 0
	e.PipeWhile(func() bool { return i < 1 }, func(it *Iter) {
		i++
		it.Continue(1)
		var a, b atomic.Int32
		it.Go(func() { a.Store(1) })
		it.Sync()
		if a.Load() != 1 {
			t.Error("first round child not joined")
		}
		order = append(order, 1)
		it.Go(func() { b.Store(2) })
		it.Sync()
		if b.Load() != 2 {
			t.Error("second round child not joined")
		}
		order = append(order, 2)
	})
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

// TestSyncWithoutGo is a no-op.
func TestSyncWithoutGo(t *testing.T) {
	e := newTestEngine(t, 2)
	i := 0
	e.PipeWhile(func() bool { return i < 5 }, func(it *Iter) {
		i++
		it.Continue(1)
		it.Sync()
		it.Sync()
	})
}

// TestForEdgeCases: n=0, n=1, grain larger than n, negative inputs.
func TestForEdgeCases(t *testing.T) {
	e := newTestEngine(t, 4)
	i := 0
	e.PipeWhile(func() bool { return i < 1 }, func(it *Iter) {
		i++
		it.Continue(1)
		ran := 0
		it.For(0, 4, func(int) { ran++ })
		if ran != 0 {
			t.Errorf("For(0) ran %d times", ran)
		}
		it.For(-5, 4, func(int) { ran++ })
		if ran != 0 {
			t.Errorf("For(-5) ran %d times", ran)
		}
		it.For(1, 100, func(k int) {
			if k != 0 {
				t.Errorf("For(1) index %d", k)
			}
			ran++
		})
		if ran != 1 {
			t.Errorf("For(1) ran %d times", ran)
		}
		var total atomic.Int64
		it.For(33, 0, func(k int) { total.Add(int64(k)) }) // automatic grain
		if total.Load() != 33*32/2 {
			t.Errorf("auto-grain sum = %d", total.Load())
		}
	})
}

// TestForNested: For inside a For leaf body must not be allowed to break
// — leaves run on arbitrary workers, so the inner For still belongs to
// the same iteration and must execute correctly when run inline from the
// iteration's own goroutine.
func TestForLargeFanout(t *testing.T) {
	e := newTestEngine(t, 4)
	const n = 100000
	counts := make([]atomic.Int32, n)
	i := 0
	e.PipeWhile(func() bool { return i < 1 }, func(it *Iter) {
		i++
		it.Continue(1)
		it.For(n, 64, func(k int) { counts[k].Add(1) })
	})
	for k := range counts {
		if c := counts[k].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", k, c)
		}
	}
}

// TestGoAcrossStages: children spawned in one stage may be joined in a
// later stage of the same iteration.
func TestGoAcrossStages(t *testing.T) {
	e := newTestEngine(t, 4)
	const n = 50
	var sum atomic.Int64
	i := 0
	e.PipeWhile(func() bool { return i < n }, func(it *Iter) {
		i++
		it.Continue(1)
		it.Go(func() { sum.Add(1) })
		it.Continue(2) // move a stage with the child outstanding
		it.Sync()
	})
	if sum.Load() != n {
		t.Fatalf("sum = %d, want %d", sum.Load(), n)
	}
}

// TestForInsideManyIterations: parallel-for and pipeline parallelism
// compose.
func TestForInsideManyIterations(t *testing.T) {
	e := newTestEngine(t, 4)
	const n, m = 40, 500
	var total atomic.Int64
	i := 0
	e.PipeWhile(func() bool { return i < n }, func(it *Iter) {
		i++
		it.Continue(1)
		it.For(m, 16, func(k int) { total.Add(1) })
		it.Wait(2)
	})
	if total.Load() != n*m {
		t.Fatalf("total = %d, want %d", total.Load(), n*m)
	}
}

// TestScopeStatsCount: closure tasks show up in stats.
func TestScopeStatsCount(t *testing.T) {
	e := newTestEngine(t, 2)
	i := 0
	e.PipeWhile(func() bool { return i < 1 }, func(it *Iter) {
		i++
		it.Continue(1)
		it.For(256, 1, func(int) {})
	})
	if e.Stats().ClosureTasks == 0 {
		t.Fatal("expected closure tasks in stats")
	}
}

// TestForPanicPropagates: a panic in a For body surfaces at PipeWhile.
func TestForPanicPropagates(t *testing.T) {
	e := newTestEngine(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from For body")
		}
	}()
	i := 0
	e.PipeWhile(func() bool { return i < 1 }, func(it *Iter) {
		i++
		it.Continue(1)
		it.For(10, 1, func(k int) {
			if k == 7 {
				panic(fmt.Sprintf("for body %d", k))
			}
		})
	})
}
