package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for the tier-1/tier-2 execution split: inline iterations must
// promote to coroutine frames exactly when they block, and the promoted
// protocol must compose with cancellation, nesting, and throttling.

// TestEmptyPipelineZeroPromotions pins the acceptance invariant of the
// inline fast path: a pipeline whose iterations never block runs entirely
// inline — every iteration counted by InlineIterations, zero promotions,
// zero cross suspends.
func TestEmptyPipelineZeroPromotions(t *testing.T) {
	e := newTestEngine(t, 1)
	const n = 5000
	i := 0
	e.PipeWhile(func() bool { return i < n }, func(it *Iter) { i++ })
	s := e.Stats()
	if s.InlineIterations != n {
		t.Errorf("InlineIterations = %d, want %d", s.InlineIterations, n)
	}
	if s.Promotions != 0 {
		t.Errorf("Promotions = %d, want 0 for an empty serial pipeline", s.Promotions)
	}
	if s.CrossSuspends != 0 {
		t.Errorf("CrossSuspends = %d, want 0", s.CrossSuspends)
	}
}

// TestPromotionOnBlockedCrossEdge forces a real suspension: iteration 0
// holds stage 1 on a gate, so iteration 1's Wait cannot resolve inline
// and must promote and park on the cross edge. The gate opens only after
// a promotion is observed (bounded wait, so a surprising schedule
// degrades the test's strength rather than deadlocking it); order and
// results must come out as if nothing special happened.
func TestPromotionOnBlockedCrossEdge(t *testing.T) {
	e := newTestEngine(t, 2)
	gate := make(chan struct{})
	go func() {
		settles(5*time.Second, func() bool { return e.Stats().Promotions > 0 })
		close(gate)
	}()
	var order []int64
	i := 0
	e.PipeWhile(func() bool { return i < 8 }, func(it *Iter) {
		i++
		it.Continue(1)
		if it.Index() == 0 {
			<-gate
		}
		it.Wait(2)
		order = append(order, it.Index())
	})
	if len(order) != 8 {
		t.Fatalf("%d outputs, want 8", len(order))
	}
	for k, v := range order {
		if v != int64(k) {
			t.Fatalf("serial stage order violated at %d: %d", k, v)
		}
	}
	if e.Stats().Promotions == 0 {
		t.Error("blocked cross edge produced no promotion")
	}
	checkEngineDrained(t, e)
}

// TestPromotionRacingCancellation drives the satellite edge case: the
// abort word is set while an iteration sits between its failed inline
// cross-edge check and the promoted park. Iteration 0 blocks stage 1 on a
// gate; iteration 1 promotes and parks on the cross edge; the submission
// is then canceled and the gate opened. Iteration 0 unwinds at its next
// stage boundary and publishes stageDone, which wakes iteration 1 into
// its post-park abortCheck — both must retire through the abort path and
// drain back to the pools.
func TestPromotionRacingCancellation(t *testing.T) {
	e := newTestEngine(t, 2)
	gate := make(chan struct{})
	reached := make(chan struct{})
	i := 0
	h := e.Submit(context.Background(), func() bool { i++; return i <= 16 }, func(it *Iter) {
		it.Continue(1)
		if it.Index() == 0 {
			close(reached)
			<-gate
		}
		it.Wait(2)
	})
	<-reached
	// Give iteration 1 a chance to reach its Wait and promote; then cancel
	// while it is parked (or mid-promotion — both orderings are valid and
	// both must drain).
	settles(2*time.Second, func() bool {
		s := e.Stats()
		return s.Promotions > 0 || s.CrossSuspends > 0
	})
	h.Cancel()
	close(gate)
	if err := h.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if s := e.Stats(); s.AbortedIterations == 0 {
		t.Error("no iterations recorded as aborted")
	}
	checkEngineDrained(t, e)
}

// TestPromotionInsideNestedPipeline: an outer iteration promotes when its
// nested pipe_while forces a scope suspension, and the nested pipeline's
// own iterations run inline in turn. The whole composition must produce
// oracle results and drain.
func TestPromotionInsideNestedPipeline(t *testing.T) {
	e := newTestEngine(t, 2)
	const n, m = 12, 5
	var sum atomic.Int64
	i := 0
	e.PipeWhile(func() bool { return i < n }, func(it *Iter) {
		i++
		it.Continue(1)
		j := 0
		it.PipeWhile(func() bool { j++; return j <= m }, func(nit *Iter) {
			jj := int64(j)
			nit.Continue(1)
			sum.Add(it.Index()*100 + jj)
		})
		it.Wait(2)
	})
	var want int64
	for a := int64(0); a < n; a++ {
		for b := int64(1); b <= m; b++ {
			want += a*100 + b
		}
	}
	if got := sum.Load(); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	checkEngineDrained(t, e)
}

// TestPromotionWhileThrottleExhausted: with K=2 and iteration 0 gated,
// the pipeline saturates its throttle window (the control frame parks
// throttled) while a later iteration promotes and parks on a cross edge.
// The promoted frame's retirement must release the throttled control
// frame through the ordinary onIterReturn path and the run must complete
// in order within the window bound.
func TestPromotionWhileThrottleExhausted(t *testing.T) {
	e := newTestEngine(t, 2)
	gate := make(chan struct{})
	go func() {
		settles(5*time.Second, func() bool {
			s := e.Stats()
			return s.ThrottleParks > 0 && s.Promotions > 0
		})
		close(gate)
	}()
	var order []int64
	i := 0
	rep := e.RunPipeline(2, func() bool { return i < 10 }, func(it *Iter) {
		i++
		it.Continue(1)
		if it.Index() == 0 {
			<-gate
		}
		it.Wait(2)
		order = append(order, it.Index())
	})
	if len(order) != 10 {
		t.Fatalf("%d outputs, want 10", len(order))
	}
	for k, v := range order {
		if v != int64(k) {
			t.Fatalf("order violated at %d: %d", k, v)
		}
	}
	if rep.MaxLiveIterations > 2 {
		t.Fatalf("MaxLiveIterations = %d exceeds K=2", rep.MaxLiveIterations)
	}
	checkEngineDrained(t, e)
}

// TestPromotedGoroutineAccounting: promotions hand the worker role to
// takeover goroutines and retire the promoting goroutines when their
// frames finish — across many promotion-heavy pipelines the process
// goroutine count must settle back to baseline after Close.
func TestPromotedGoroutineAccounting(t *testing.T) {
	base := goroutineBaseline()
	opts := DefaultOptions()
	opts.Workers = 4
	e := NewEngine(opts)
	for rep := 0; rep < 20; rep++ {
		pre := e.Stats().Promotions
		gate := make(chan struct{})
		i := 0
		done := make(chan struct{})
		go func() {
			defer close(done)
			e.PipeWhile(func() bool { return i < 30 }, func(it *Iter) {
				i++
				it.Continue(1)
				if it.Index() == 0 {
					<-gate
				}
				it.Wait(2)
			})
		}()
		// Let successors pile up behind the gated iteration, then release.
		settles(2*time.Second, func() bool {
			return e.Stats().Promotions > pre
		})
		close(gate)
		<-done
	}
	if e.Stats().Promotions == 0 {
		t.Error("gated pipelines produced no promotions")
	}
	checkEngineDrained(t, e)
	e.Close()
	checkGoroutinesSettle(t, base, 4)
}
