package core

import (
	"sync/atomic"
	"time"
)

// Work/span instrumentation: the Cilkview analogue of Section 10 ("We
// modified the Cilkview scalability analyzer to measure the work and span
// of our hand-compiled Cilk-P dedup programs, observing a parallelism of
// merely 7.4"). When a pipeline runs instrumented, every node's execution
// time is measured; the work T1 is the sum over nodes and the span T∞ is
// computed online with the dag recurrence
//
//	crit(i, j) = max(crit(i, j-1), crit(i-1, j)) + w(i, j).
//
// The cross-predecessor term crit(i-1, j) must be the predecessor's
// critical path at the completion of *its node j*, not at whatever node
// it has reached by the time the successor looks — so every frame
// publishes an append-only log of (stage, crit) pairs, one entry per
// node, and readers walk it with a monotone cursor. Time spent suspended
// does not count toward any node.
//
// Fork-join work inside a node is attributed to the node by wall clock,
// which undercounts its work and overcounts its span contribution when
// children actually ran elsewhere; the three PARSEC ports use fork-join
// only in x264's B-frame stage.

// nowNs is the monotonic instrumentation clock.
func nowNs() int64 { return int64(time.Since(instrEpoch)) }

var instrEpoch = time.Now()

// critEntry records the critical path through the node that ended when
// the iteration's stage counter advanced to Stage.
type critEntry struct {
	stage int64
	crit  int64
}

// critLog is a single-writer, many-reader append-only log. The writer is
// the frame's runner; readers are the successor iteration. Entries are
// ordered by strictly increasing stage.
type critLog struct {
	buf atomic.Pointer[[]critEntry]
	n   atomic.Int32
}

// reset empties the log for the frame's next pooled incarnation, keeping
// the buffer's capacity. Called only while no reader holds the frame (the
// pool's refcount guarantees the successor has detached).
func (l *critLog) reset() { l.n.Store(0) }

// append publishes one entry. Single writer only.
func (l *critLog) append(stage, crit int64) {
	buf := l.buf.Load()
	n := int(l.n.Load())
	if buf == nil || n == len(*buf) {
		capacity := 16
		if buf != nil {
			capacity = 2 * len(*buf)
		}
		bigger := make([]critEntry, capacity)
		if buf != nil {
			copy(bigger, *buf)
		}
		l.buf.Store(&bigger)
		buf = &bigger
	}
	(*buf)[n] = critEntry{stage: stage, crit: crit}
	l.n.Store(int32(n + 1))
}

// critAfter returns the critical path of the first logged node whose
// post-advance stage exceeds j — i.e. the completion of node j, null
// nodes collapsing onto the last real node before them exactly as in the
// dag semantics. cursor is the reader's monotone position hint.
func (l *critLog) critAfter(j int64, cursor *int) (int64, bool) {
	n := int(l.n.Load())
	buf := l.buf.Load()
	if buf == nil {
		return 0, false
	}
	for k := *cursor; k < n; k++ {
		if e := (*buf)[k]; e.stage > j {
			*cursor = k
			return e.crit, true
		}
	}
	*cursor = n
	return 0, false
}

// instrBeginIteration initializes the iteration's node clock at the start
// of stage 0, inheriting the critical path of the predecessor's stage-0
// node (stage 0s are serialized by the control frame, so the
// predecessor's first log entry exists when we start).
func (f *frame) instrBeginIteration() {
	if !f.instrOn {
		return
	}
	if p := f.prev; p != nil {
		if c, ok := p.critLog.critAfter(0, &f.prevCritCursor); ok {
			f.curCrit = c
		}
	}
	f.nodeStart = nowNs()
}

// instrEndNode closes the current node as the stage counter is about to
// advance to newStage: accumulate the node's duration into the
// iteration's work and publish the end-of-node critical path. Must run
// before the advance so any successor that observes the new counter also
// finds the log entry.
func (f *frame) instrEndNode(newStage int64) {
	if !f.instrOn {
		return
	}
	now := nowNs()
	dur := now - f.nodeStart
	f.workAcc += dur
	f.curCrit += dur
	f.critLog.append(newStage, f.curCrit)
	f.nodeStart = now
}

// instrBeginNode opens node j after a Wait resolved (cross == true) or a
// Continue (cross == false): the node's start clock excludes parked time,
// and a cross edge merges the predecessor's critical path at node j.
func (f *frame) instrBeginNode(cross bool, j int64) {
	if !f.instrOn {
		return
	}
	if cross {
		if p := f.prev; p != nil {
			if c, ok := p.critLog.critAfter(j, &f.prevCritCursor); ok && c > f.curCrit {
				f.curCrit = c
			}
		}
	}
	f.nodeStart = nowNs()
}

// instrFinishIteration closes the final node and folds the iteration's
// totals into the pipeline. It must run before the stage counter is set
// to stageDone.
func (f *frame) instrFinishIteration() {
	if !f.instrOn {
		return
	}
	f.instrEndNode(stageDone)
	pl := f.pl
	pl.workNs.Add(f.workAcc)
	for {
		m := pl.spanNs.Load()
		if f.curCrit <= m || pl.spanNs.CompareAndSwap(m, f.curCrit) {
			return
		}
	}
}
