package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func newTestEngine(t testing.TB, workers int) *Engine {
	opts := DefaultOptions()
	opts.Workers = workers
	e := NewEngine(opts)
	t.Cleanup(e.Close)
	return e
}

// TestEmptyPipeline: cond false immediately.
func TestEmptyPipeline(t *testing.T) {
	e := newTestEngine(t, 2)
	ran := false
	e.PipeWhile(func() bool { return false }, func(it *Iter) { ran = true })
	if ran {
		t.Fatal("body ran despite false condition")
	}
}

// TestSerialSingleStage: a pipeline whose body never leaves stage 0 must
// behave exactly like a serial loop.
func TestSerialSingleStage(t *testing.T) {
	e := newTestEngine(t, 4)
	const n = 500
	i := 0
	var order []int
	e.PipeWhile(func() bool { return i < n }, func(it *Iter) {
		order = append(order, i) // safe: stage 0 is serial
		i++
	})
	if len(order) != n {
		t.Fatalf("ran %d iterations, want %d", len(order), n)
	}
	for k, v := range order {
		if v != k {
			t.Fatalf("order[%d] = %d", k, v)
		}
	}
}

// TestSPSPipelineOrder checks the ferret shape: serial stage 0, parallel
// stage 1, serial stage 2. Stage 2 must observe iterations in order.
func TestSPSPipelineOrder(t *testing.T) {
	e := newTestEngine(t, 4)
	const n = 300
	i := 0
	var outputs []int64
	e.PipeWhile(func() bool { return i < n }, func(it *Iter) {
		i++
		it.Continue(1) // parallel stage
		// some work
		x := it.Index() * it.Index()
		_ = x
		it.Wait(2) // serial stage
		outputs = append(outputs, it.Index())
	})
	if len(outputs) != n {
		t.Fatalf("got %d outputs, want %d", len(outputs), n)
	}
	for k, v := range outputs {
		if v != int64(k) {
			t.Fatalf("stage-2 order violated: outputs[%d] = %d", k, v)
		}
	}
}

// TestCrossEdgeSafety logs node start/end events and verifies node (i,j)
// never starts before node (i-1,j) completes, for a pipeline with several
// serial stages.
func TestCrossEdgeSafety(t *testing.T) {
	e := newTestEngine(t, 4)
	const n, stages = 200, 4
	// completed[j] = highest iteration whose node (i,j) finished.
	var completed [stages]atomic.Int64
	for j := range completed {
		completed[j].Store(-1)
	}
	i := 0
	e.PipeWhile(func() bool { return i < n }, func(it *Iter) {
		idx := it.Index()
		i++
		for j := 1; j < stages; j++ {
			it.Wait(int64(j))
			// Node (idx, j) starts now; (idx-1, j) must have completed.
			if c := completed[j].Load(); c < idx-1 {
				t.Errorf("node (%d,%d) started before (%d,%d) completed (saw %d)",
					idx, j, idx-1, j, c)
			}
			if !completed[j].CompareAndSwap(idx-1, idx) {
				t.Errorf("stage %d completions out of order at iteration %d", j, idx)
			}
		}
	})
}

// TestStageSkipping exercises null nodes: odd iterations skip stages.
func TestStageSkipping(t *testing.T) {
	e := newTestEngine(t, 4)
	const n = 128
	i := 0
	var last atomic.Int64
	last.Store(-1)
	e.PipeWhile(func() bool { return i < n }, func(it *Iter) {
		idx := it.Index()
		i++
		if idx%2 == 0 {
			it.Wait(1)
			it.Wait(2)
			it.Wait(3)
		} else {
			it.Wait(3) // skips 1 and 2: null nodes collapse
		}
		it.Wait(5) // everyone waits on stage 5
		if !last.CompareAndSwap(idx-1, idx) {
			t.Errorf("stage-5 order violated at iteration %d", idx)
		}
	})
	if last.Load() != n-1 {
		t.Fatalf("final iteration %d, want %d", last.Load(), n-1)
	}
}

// TestThrottleInvariant verifies at most K iterations are ever live.
func TestThrottleInvariant(t *testing.T) {
	for _, k := range []int{1, 2, 3, 8} {
		k := k
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			e := newTestEngine(t, 4)
			const n = 200
			var live, peak atomic.Int64
			i := 0
			rep := e.RunPipeline(k, func() bool { return i < n }, func(it *Iter) {
				l := live.Add(1)
				for {
					p := peak.Load()
					if l <= p || peak.CompareAndSwap(p, l) {
						break
					}
				}
				i++
				it.Continue(1)
				runtime.Gosched()
				live.Add(-1)
			})
			if p := peak.Load(); p > int64(k) {
				t.Fatalf("observed %d live iterations, throttle K=%d", p, k)
			}
			if rep.MaxLiveIterations > int64(k) {
				t.Fatalf("reported max live %d > K=%d", rep.MaxLiveIterations, k)
			}
			if rep.Iterations != n {
				t.Fatalf("iterations = %d, want %d", rep.Iterations, n)
			}
		})
	}
}

// TestPipelineResultDeterminism: output identical for P = 1..8.
func TestPipelineResultDeterminism(t *testing.T) {
	run := func(workers int) []int64 {
		e := newTestEngine(t, workers)
		const n = 400
		i := 0
		acc := make([]int64, 0, n)
		e.PipeWhile(func() bool { return i < n }, func(it *Iter) {
			i++
			it.Continue(1)
			v := it.Index() * 7 % 13 // parallel compute
			it.Wait(2)
			acc = append(acc, v)
		})
		return acc
	}
	want := run(1)
	for _, p := range []int{2, 4, 8} {
		got := run(p)
		if len(got) != len(want) {
			t.Fatalf("P=%d: %d outputs, want %d", p, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("P=%d: output[%d] = %d, want %d", p, k, got[k], want[k])
			}
		}
	}
}

// TestStrictStageIncrease: misusing stages panics, and the panic
// propagates out of PipeWhile.
func TestStrictStageIncrease(t *testing.T) {
	e := newTestEngine(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from decreasing stage number")
		}
	}()
	i := 0
	e.PipeWhile(func() bool { return i < 3 }, func(it *Iter) {
		i++
		it.Continue(5)
		it.Wait(2) // decreasing: must panic
	})
}

// TestUserPanicPropagates: a panic in a parallel stage surfaces in the
// caller of PipeWhile.
func TestUserPanicPropagates(t *testing.T) {
	e := newTestEngine(t, 4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected user panic to propagate")
		}
		if s, ok := r.(string); !ok || s != "boom" {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	i := 0
	e.PipeWhile(func() bool { return i < 50 }, func(it *Iter) {
		idx := it.Index()
		i++
		it.Continue(1)
		if idx == 25 {
			panic("boom")
		}
	})
}

// TestForkJoinSum: Go/Sync inside a stage computes a correct sum.
func TestForkJoinSum(t *testing.T) {
	e := newTestEngine(t, 4)
	const n = 50
	i := 0
	var total atomic.Int64
	e.PipeWhile(func() bool { return i < n }, func(it *Iter) {
		i++
		it.Continue(1)
		var parts [4]int64
		for g := 0; g < 4; g++ {
			g := g
			it.Go(func() { parts[g] = int64(g + 1) })
		}
		it.Sync()
		var s int64
		for _, p := range parts {
			s += p
		}
		total.Add(s)
	})
	if got, want := total.Load(), int64(n*10); got != want {
		t.Fatalf("total = %d, want %d", got, want)
	}
}

// TestParallelFor: For covers every index exactly once.
func TestParallelFor(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("P=%d", workers), func(t *testing.T) {
			e := newTestEngine(t, workers)
			const n = 10000
			counts := make([]atomic.Int32, n)
			i := 0
			e.PipeWhile(func() bool { return i < 1 }, func(it *Iter) {
				i++
				it.Continue(1)
				it.For(n, 16, func(j int) { counts[j].Add(1) })
			})
			for j := range counts {
				if c := counts[j].Load(); c != 1 {
					t.Fatalf("index %d visited %d times", j, c)
				}
			}
		})
	}
}

// TestNestedPipeline runs a pipeline inside a pipeline stage.
func TestNestedPipeline(t *testing.T) {
	e := newTestEngine(t, 4)
	const outer, inner = 20, 30
	i := 0
	var total atomic.Int64
	e.PipeWhile(func() bool { return i < outer }, func(it *Iter) {
		i++
		it.Continue(1)
		j := 0
		it.PipeWhile(func() bool { return j < inner }, func(in *Iter) {
			j++
			in.Continue(1)
			total.Add(1)
		})
	})
	if got, want := total.Load(), int64(outer*inner); got != want {
		t.Fatalf("total = %d, want %d", got, want)
	}
}

// TestNestedPipelineInStage0Panics enforces the documented restriction.
func TestNestedPipelineInStage0Panics(t *testing.T) {
	e := newTestEngine(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nested pipeline in stage 0")
		}
	}()
	i := 0
	e.PipeWhile(func() bool { return i < 1 }, func(it *Iter) {
		i++
		it.PipeWhile(func() bool { return false }, func(*Iter) {})
	})
}

// TestConcurrentPipelines: several top-level pipelines share one engine.
func TestConcurrentPipelines(t *testing.T) {
	e := newTestEngine(t, 4)
	const pipes = 6
	done := make(chan int64, pipes)
	for p := 0; p < pipes; p++ {
		go func() {
			var sum int64
			i := 0
			e.PipeWhile(func() bool { return i < 100 }, func(it *Iter) {
				i++
				it.Continue(1)
				v := it.Index()
				it.Wait(2)
				sum += v
			})
			done <- sum
		}()
	}
	for p := 0; p < pipes; p++ {
		if s := <-done; s != 99*100/2 {
			t.Fatalf("pipeline sum = %d, want %d", s, 99*100/2)
		}
	}
}

// TestHybridStages: data-dependent Wait vs Continue, the x264 pattern.
func TestHybridStages(t *testing.T) {
	e := newTestEngine(t, 4)
	const n = 150
	i := 0
	var serialOrder []int64
	e.PipeWhile(func() bool { return i < n }, func(it *Iter) {
		idx := it.Index()
		i++
		if idx%3 == 0 {
			it.Continue(1) // "I-frame": no dependency
		} else {
			it.Wait(1) // "P-frame": cross edge
		}
		it.Wait(2)
		serialOrder = append(serialOrder, idx)
	})
	for k, v := range serialOrder {
		if v != int64(k) {
			t.Fatalf("serial stage order violated at %d: %d", k, v)
		}
	}
}

// TestStatsPlausible: counters move in the expected directions.
func TestStatsPlausible(t *testing.T) {
	e := newTestEngine(t, 4)
	const n = 256
	i := 0
	e.PipeWhile(func() bool { return i < n }, func(it *Iter) {
		i++
		it.Wait(1)
		runtime.Gosched()
		it.Wait(2)
	})
	s := e.Stats()
	if s.Iterations != n {
		t.Fatalf("Iterations = %d, want %d", s.Iterations, n)
	}
	if s.Pipelines != 1 {
		t.Fatalf("Pipelines = %d, want 1", s.Pipelines)
	}
	if s.Segments == 0 {
		t.Fatal("Segments should be nonzero")
	}
	if s.CrossChecks == 0 {
		t.Fatal("CrossChecks should be nonzero for serial stages")
	}
}

// TestDependencyFoldingReducesChecks verifies the folding cache skips
// shared-counter reads for already-satisfied cross edges. This is a
// deterministic unit test on the frame protocol: a predecessor parked far
// ahead at stage 50 satisfies waits on stages 1..49 with a single read.
func TestDependencyFoldingReducesChecks(t *testing.T) {
	run := func(folding bool) (checks, hits int64) {
		opts := DefaultOptions()
		opts.Workers = 1
		opts.DependencyFolding = folding
		e := NewEngine(opts)
		defer e.Close()
		prev := &frame{kind: kindIter, eng: e}
		prev.stage.Store(50)
		f := &frame{kind: kindIter, eng: e, prev: prev}
		for j := int64(1); j < 50; j++ {
			if !f.crossSatisfied(j) {
				t.Fatalf("stage %d should be satisfied (prev at 50)", j)
			}
		}
		return f.nCrossChecks, f.nFoldHits
	}
	checksFolded, hitsFolded := run(true)
	checksPlain, hitsPlain := run(false)
	if checksFolded != 1 {
		t.Fatalf("folded: %d counter reads, want 1", checksFolded)
	}
	if hitsFolded != 48 {
		t.Fatalf("folded: %d cache hits, want 48", hitsFolded)
	}
	if checksPlain != 49 || hitsPlain != 0 {
		t.Fatalf("unfolded: %d reads %d hits, want 49 and 0", checksPlain, hitsPlain)
	}
}

// TestFoldingPipelineSmoke: folding produces cache hits in a real
// fine-grained pipeline and never changes results.
func TestFoldingPipelineSmoke(t *testing.T) {
	for _, folding := range []bool{true, false} {
		opts := DefaultOptions()
		opts.Workers = 4
		opts.DependencyFolding = folding
		e := NewEngine(opts)
		const n, stages = 64, 100
		i := 0
		var order []int64
		e.PipeWhile(func() bool { return i < n }, func(it *Iter) {
			i++
			for j := int64(1); j <= stages; j++ {
				it.Wait(j)
			}
			if it.Stage() != stages {
				t.Errorf("stage = %d, want %d", it.Stage(), stages)
			}
			order = append(order, it.Index())
		})
		for k, v := range order {
			if v != int64(k) {
				t.Fatalf("folding=%v: order violated at %d", folding, k)
			}
		}
		e.Close()
	}
}

// TestEagerEnablingAblation: the eager path wakes suspended successors.
func TestEagerEnablingAblation(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 4
	opts.EagerEnabling = true
	e := NewEngine(opts)
	defer e.Close()
	const n = 200
	i := 0
	e.PipeWhile(func() bool { return i < n }, func(it *Iter) {
		i++
		it.Wait(1)
		runtime.Gosched()
		it.Wait(2)
		it.Wait(3)
	})
	// Correctness alone is the point; the counter just confirms the path ran.
	if e.Stats().EagerEnables == 0 && e.Stats().CrossSuspends > 0 {
		t.Log("note: no eager enables despite suspends (scheduling-dependent)")
	}
}

// TestTailSwapDisabled still computes correctly.
func TestTailSwapDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 4
	opts.TailSwap = false
	opts.Throttle = 4
	e := NewEngine(opts)
	defer e.Close()
	const n = 300
	i := 0
	var order []int64
	e.PipeWhile(func() bool { return i < n }, func(it *Iter) {
		i++
		it.Continue(1)
		it.Wait(2)
		order = append(order, it.Index())
	})
	for k, v := range order {
		if v != int64(k) {
			t.Fatalf("order violated at %d", k)
		}
	}
}

// TestIterationLocalState: Wait provides happens-before with the
// predecessor's completed node, so per-iteration chained state is safe.
func TestIterationLocalState(t *testing.T) {
	e := newTestEngine(t, 4)
	const n = 300
	i := 0
	chain := make([]int64, n+1) // chain[i+1] = chain[i] + 1, written at stage 2
	e.PipeWhile(func() bool { return i < n }, func(it *Iter) {
		idx := it.Index()
		i++
		it.Continue(1)
		it.Wait(2)
		chain[idx+1] = chain[idx] + 1 // needs (idx-1, 2) complete: guaranteed
	})
	if chain[n] != n {
		t.Fatalf("chain[%d] = %d, want %d", n, chain[n], n)
	}
}

// TestWaitNextContinueNext: implicit stage arguments.
func TestWaitNextContinueNext(t *testing.T) {
	e := newTestEngine(t, 2)
	const n = 64
	i := 0
	var order []int64
	e.PipeWhile(func() bool { return i < n }, func(it *Iter) {
		i++
		it.ContinueNext() // stage 1
		if got := it.Stage(); got != 1 {
			t.Errorf("stage = %d, want 1", got)
		}
		it.WaitNext() // stage 2
		order = append(order, it.Index())
	})
	for k, v := range order {
		if v != int64(k) {
			t.Fatalf("order violated at %d", k)
		}
	}
}

// TestEngineReuse: many pipelines sequentially on the same engine.
func TestEngineReuse(t *testing.T) {
	e := newTestEngine(t, 4)
	for rep := 0; rep < 20; rep++ {
		i := 0
		var count int
		e.PipeWhile(func() bool { return i < 50 }, func(it *Iter) {
			i++
			it.Continue(1)
			it.Wait(2)
			count++
		})
		if count != 50 {
			t.Fatalf("rep %d: count = %d", rep, count)
		}
	}
}

// TestClosedEnginePanics.
func TestClosedEnginePanics(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 2
	e := NewEngine(opts)
	e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on closed engine")
		}
	}()
	e.PipeWhile(func() bool { return false }, func(*Iter) {})
}

// TestManyWorkersFewIterations: P much larger than the pipeline width.
func TestManyWorkersFewIterations(t *testing.T) {
	e := newTestEngine(t, 8)
	i := 0
	var count atomic.Int64
	e.PipeWhile(func() bool { return i < 3 }, func(it *Iter) {
		i++
		it.Continue(1)
		count.Add(1)
	})
	if count.Load() != 3 {
		t.Fatalf("count = %d", count.Load())
	}
}

// TestDeepStages: a single iteration with very many stages.
func TestDeepStages(t *testing.T) {
	e := newTestEngine(t, 2)
	i := 0
	e.PipeWhile(func() bool { return i < 4 }, func(it *Iter) {
		i++
		for j := int64(1); j <= 5000; j++ {
			it.Wait(j)
		}
	})
	if s := e.Stats(); s.Iterations != 4 {
		t.Fatalf("iterations = %d", s.Iterations)
	}
}
