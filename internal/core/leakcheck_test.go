package core

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"
)

// Hand-rolled leak checking shared by the cancellation, overflow, and fuzz
// tests. Two invariants together prove that aborted work drains cleanly:
// the engine's live-frame gauges return to zero once every pipeline has
// completed, and the process goroutine count settles back to its
// pre-engine baseline after Close (pooled coroutine runners exit
// asynchronously on the closed channel, so both checks poll).

// settles polls cond until it reports true or the deadline expires.
func settles(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for delay := 100 * time.Microsecond; ; delay *= 2 {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return cond()
		}
		if delay > 50*time.Millisecond {
			delay = 50 * time.Millisecond
		}
		time.Sleep(delay)
	}
}

// checkEngineDrained asserts that e holds no live frames or arena bytes:
// every iteration frame, closure frame, and pipeline acquired has been
// retired, and every payload region checked out of the engine's arena has
// been released. Call with all pipelines completed but the engine still
// open. Gauges may trail a completion signal by one worker step, hence
// the settle loop.
func checkEngineDrained(t testing.TB, e *Engine) {
	t.Helper()
	ok := settles(5*time.Second, func() bool {
		s := e.Stats()
		return s.LiveIterFrames == 0 && s.LiveClosureFrames == 0 && s.LivePipelines == 0 &&
			s.LiveArenaBytes == 0
	})
	if !ok {
		s := e.Stats()
		t.Errorf("engine not drained: %d live iteration frames, %d live closure frames, %d live pipelines, %d live arena bytes",
			s.LiveIterFrames, s.LiveClosureFrames, s.LivePipelines, s.LiveArenaBytes)
	}
}

// TestGaugesDrainAcrossGrainTiers is the gauge sweep over the batched
// execution tiers: a cancel storm against Grain(1), a fixed batch claim,
// and the adaptive default must all drain the live-frame gauges to zero —
// including frames that were mid-claim (recycling in place across batch
// slots) when their submission aborted.
func TestGaugesDrainAcrossGrainTiers(t *testing.T) {
	for _, cfg := range []struct {
		name  string
		grain int
	}{{"grain1", 1}, {"batched-g8", 8}, {"adaptive", 0}} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.Workers = 2
			opts.Grain = cfg.grain
			e := NewEngine(opts)
			defer e.Close()
			var wg sync.WaitGroup
			for q := 0; q < 60; q++ {
				ctx, cancel := context.WithCancel(context.Background())
				i := 0
				h := e.Submit(ctx, func() bool { i++; return i <= 64 }, func(it *Iter) {
					it.Continue(1)
					it.Wait(2)
				})
				wg.Add(1)
				go func(q int) {
					defer wg.Done()
					defer cancel()
					if q%2 == 0 {
						cancel() // half the storm aborts mid-claim
					}
					_ = h.Wait()
				}(q)
			}
			wg.Wait()
			checkEngineDrained(t, e)
		})
	}
}

// goroutineBaseline samples the current goroutine count for a later
// checkGoroutinesSettle. Take it before creating the engine under test.
func goroutineBaseline() int {
	runtime.GC() // flush exiting goroutines from prior tests
	return runtime.NumGoroutine()
}

// checkGoroutinesSettle asserts the goroutine count returns to within
// slack of base. Call after Engine.Close: worker goroutines are joined by
// Close, while pooled runners exit asynchronously via the closed channel.
func checkGoroutinesSettle(t testing.TB, base, slack int) {
	t.Helper()
	ok := settles(10*time.Second, func() bool {
		return runtime.NumGoroutine() <= base+slack
	})
	if !ok {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutines leaked: %d now vs baseline %d (+%d slack)\n%s",
			runtime.NumGoroutine(), base, slack, buf[:n])
	}
}
