//go:build race

package core

// raceEnabled reports that this binary was built with the race detector,
// whose 5–20× slowdown makes wall-clock timing assertions meaningless.
const raceEnabled = true
