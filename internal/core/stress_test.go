package core

import (
	"runtime"
	"sync/atomic"
	"testing"

	"piper/internal/workload"
)

// TestSpuriousWakeRegression stresses the ABA scenario fixed in
// parkOnCross: a thief's check-right that read the waitStage of an older
// park must not let a newer park proceed before its cross edge resolves.
// Iterations park repeatedly at increasing stages while many workers
// steal; the serial chain check fails if any Wait returns early.
func TestSpuriousWakeRegression(t *testing.T) {
	e := newTestEngine(t, 8)
	const n, stages = 400, 24
	// chain[j] = last iteration whose node (i, j) completed; a premature
	// wake lets iteration i run stage j before chain[j] == i-1.
	var chain [stages + 1]atomic.Int64
	for j := range chain {
		chain[j].Store(-1)
	}
	for rep := 0; rep < 3; rep++ {
		for j := range chain {
			chain[j].Store(-1)
		}
		i := 0
		e.PipeWhile(func() bool { return i < n }, func(it *Iter) {
			idx := it.Index()
			i++
			r := workload.NewRNG(uint64(idx) * 977)
			for j := int64(1); j <= stages; j++ {
				it.Wait(j)
				if c := chain[j].Load(); c != idx-1 {
					t.Errorf("iteration %d entered stage %d with chain at %d", idx, j, c)
				}
				if r.Intn(4) == 0 {
					runtime.Gosched()
				}
				chain[j].Store(idx)
			}
		})
	}
}

// TestManySuspendResumeCycles drives frames through thousands of
// park/unpark transitions to shake delivery races.
func TestManySuspendResumeCycles(t *testing.T) {
	e := newTestEngine(t, 4)
	const n = 150
	var total atomic.Int64
	for rep := 0; rep < 5; rep++ {
		i := 0
		e.PipeWhile(func() bool { return i < n }, func(it *Iter) {
			i++
			for j := int64(1); j <= 40; j++ {
				it.Wait(j)
			}
			total.Add(1)
		})
	}
	if total.Load() != 5*n {
		t.Fatalf("total = %d", total.Load())
	}
	if e.Stats().CrossSuspends == 0 {
		t.Log("note: no suspensions observed (schedule-dependent)")
	}
}

// TestThrottleChurn alternates tiny throttle limits with slow iterations
// to stress the control frame's park/claim protocol.
func TestThrottleChurn(t *testing.T) {
	e := newTestEngine(t, 4)
	for _, k := range []int{1, 2, 3} {
		var done atomic.Int64
		i := 0
		e.PipeWhileThrottled(k, func() bool { return i < 120 }, func(it *Iter) {
			i++
			it.Continue(1)
			runtime.Gosched()
			done.Add(1)
		})
		if done.Load() != 120 {
			t.Fatalf("K=%d: done = %d", k, done.Load())
		}
	}
	if e.Stats().ThrottleParks == 0 {
		t.Fatal("expected throttle parks with K=1")
	}
}
