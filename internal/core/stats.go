package core

import "sync/atomic"

// Stats aggregates scheduler event counters. All fields are monotone
// within a single Engine lifetime. They exist so that the runtime
// optimizations the paper describes (lazy enabling, dependency folding,
// tail swapping) are observable and testable, not just asserted.
type Stats struct {
	// Steals counts successful deque steals.
	Steals int64
	// FailedSteals counts steal attempts that found nothing.
	FailedSteals int64
	// LazyEnables counts suspended frames resumed by a check-right or
	// check-parent performed at a segment boundary (lazy enabling).
	LazyEnables int64
	// ThiefEnables counts suspended frames resumed by a thief performing
	// check-right on a victim's assigned frame.
	ThiefEnables int64
	// EagerEnables counts wakeups performed inside Wait/Continue when the
	// EagerEnabling ablation option is set.
	EagerEnables int64
	// TailSwaps counts iteration completions where both the right
	// neighbour and the throttled control frame were enabled and the
	// worker kept the neighbour, pushing the control frame for thieves.
	TailSwaps int64
	// CrossSuspends counts iterations that parked on an unsatisfied
	// cross edge.
	CrossSuspends int64
	// ThrottleParks counts control-frame suspensions due to the
	// throttling limit K.
	ThrottleParks int64
	// ThrottleGrows and ThrottleShrinks count adaptive window
	// adjustments (RunPipelineAdaptive).
	ThrottleGrows, ThrottleShrinks int64
	// ScopeSuspends counts fork-join syncs that had to park because
	// children were stolen.
	ScopeSuspends int64
	// CrossChecks counts reads of a predecessor's shared stage counter.
	CrossChecks int64
	// FoldHits counts cross-edge checks answered from the dependency-
	// folding cache without touching the shared counter.
	FoldHits int64
	// Iterations counts pipeline iterations started.
	Iterations int64
	// InlineIterations counts iterations started on the tier-1 inline
	// fast path: the body begins as a direct call on the worker's
	// goroutine, with no coroutine machinery (see frame.runInlineBatch).
	// Always zero when Options.InlineFastPath is false.
	InlineIterations int64
	// Promotions counts inline iterations that had to block — an
	// unsatisfied cross edge, a fork-join sync on stolen children, a
	// nested pipeline — and were promoted to full coroutine frames
	// mid-body. An unblocked pipeline's steady state has zero.
	Promotions int64
	// BatchedIterations counts iterations executed as deferred-release
	// slots of an inline batch claim: their control-frame release (and
	// frame acquisition, and chain link) was amortized into the batch
	// (see frame.runInlineBatch). Every deferred-release slot counts; a
	// batch that runs its full claim contributes G-1 (the final slot runs
	// the plain per-iteration protocol), while one cut short by loop
	// exhaustion or an abort counts each slot it started. Grain(1)
	// engines always report zero.
	BatchedIterations int64
	// BatchSplits counts inline batches ended early because a claimed
	// slot had to block and promote; the residual claim is abandoned and
	// the adaptive grain backs off.
	BatchSplits int64
	// Segments counts coroutine and control segments driven by workers
	// (inline iterations are counted by InlineIterations instead).
	Segments int64
	// Pipelines counts pipe_while loops executed (including nested).
	Pipelines int64
	// ClosureTasks counts spawned fork-join tasks executed.
	ClosureTasks int64
	// Parks counts workers blocking on their park channel after an
	// unsuccessful scan of every work source.
	Parks int64
	// Wakes counts wake tokens delivered to parked workers by signal.
	// With event-driven parking each token targets a distinct worker, so
	// Wakes ≈ Parks in the steady state (the old single-slot wake channel
	// dropped tokens and relied on polling).
	Wakes int64
	// Injects counts root frames queued through the sharded injection
	// path (one per top-level pipeline launch).
	Injects int64
	// FramePoolHits and FramePoolMisses count acquisitions served from
	// the frame/pipeline pools versus fresh allocations (see pool.go).
	// Always zero when Options.PoolFrames is false.
	FramePoolHits, FramePoolMisses int64
	// InjectOverflows counts root-frame injections that found every
	// per-worker ring full and spilled to the mutex-guarded overflow
	// list. Nonzero only under Submit bursts that outrun the workers.
	InjectOverflows int64
	// Submits counts pipelines launched asynchronously through Submit.
	Submits int64
	// CancelRequests counts cancellations delivered to submissions —
	// context cancellations and Handle.Cancel calls that were first to
	// request an abort (later requests on the same Handle do not count).
	CancelRequests int64
	// AbortedIterations counts live iterations that unwound at a stage
	// boundary because their submission was canceled.
	AbortedIterations int64
	// AbortedPipelines counts submitted pipelines that completed with an
	// error on their Handle — a cancellation or a captured panic.
	AbortedPipelines int64
	// LiveIterFrames, LiveClosureFrames and LivePipelines are gauges of
	// currently checked-out (acquired, not yet retired) iteration frames,
	// fork-join task frames, and pipeline control blocks. On an idle
	// engine all three are zero — the leak invariant the cancellation
	// paths are tested against.
	LiveIterFrames, LiveClosureFrames, LivePipelines int64
	// LiveWorkers is the current size of the elastic worker pool, between
	// Options.MinWorkers and Options.MaxWorkers. Constant (== Workers) on
	// a fixed-P engine.
	LiveWorkers int64
	// WorkerSpawns and WorkerRetires count elastic pool resizes: slots
	// woken because work was published with the idle set empty (or the
	// injection rings overflowed), and surplus workers retired after the
	// idle grace period. Always zero on a fixed-P engine.
	WorkerSpawns, WorkerRetires int64
	// Saturations counts admissions that failed against the
	// Options.MaxPending budget or a tenant class quota: Submit calls
	// rejected with ErrSaturated plus SubmitWait calls whose context,
	// class admission deadline, or engine expired before a slot freed.
	// Per-class breakdowns are in Engine.TenantStats.
	Saturations int64
	// AdmissionWaitNs is the total time SubmitWait callers spent queued
	// for an admission slot, in nanoseconds, summed over all tenant
	// classes.
	AdmissionWaitNs int64
	// PendingAdmitted is the gauge of admission slots currently held —
	// top-level submitted pipelines admitted and not yet completed. Zero
	// when MaxPending is 0 (no budget).
	PendingAdmitted int64
	// LiveArenaBytes is the gauge of payload-buffer bytes currently
	// checked out of the engine's arena (Engine.Arena): charged at Get,
	// discharged at the final Release. Zero once every pipeline has
	// completed and released its regions — the data-plane leak invariant,
	// the arena analogue of the Live*Frames gauges above.
	LiveArenaBytes int64
	// ArenaBytesRecycled accumulates the capacity of every arena region
	// returned to a size-class pool. Always zero with
	// Options.ArenaBuffers disabled (the no-recycling ablation).
	ArenaBytesRecycled int64
	// ArenaGets, ArenaPuts and ArenaMisses count arena region checkouts,
	// returns to the pools, and checkouts that allocated fresh storage
	// because no pooled region of the size class was available. A
	// steady-state pipeline has Misses ≪ Gets.
	ArenaGets, ArenaPuts, ArenaMisses int64
	// PlansCompiled counts pipelines whose recorded iteration 0 sealed a
	// compiled execution plan (see plan.go). Always zero with
	// Options.CompilePlans disabled.
	PlansCompiled int64
	// PlanFusedStages counts stage transitions the plan compiler fused
	// away — interior pipe_continue boundaries between short stages whose
	// per-boundary bookkeeping is elided at dispatch — summed over all
	// compiled plans.
	PlanFusedStages int64
	// PlanDeopts counts compiled plans retracted because an iteration's
	// transitions diverged from the recorded shape; the pipeline falls
	// back to the interpreter mid-flight.
	PlanDeopts int64
}

// statCounters is the atomic backing store inside the engine.
type statCounters struct {
	steals          atomic.Int64
	failedSteals    atomic.Int64
	lazyEnables     atomic.Int64
	thiefEnables    atomic.Int64
	eagerEnables    atomic.Int64
	tailSwaps       atomic.Int64
	crossSuspends   atomic.Int64
	throttleParks   atomic.Int64
	throttleGrows   atomic.Int64
	throttleShrinks atomic.Int64
	scopeSuspends   atomic.Int64
	crossChecks     atomic.Int64
	foldHits        atomic.Int64
	iterations      atomic.Int64
	inlineIters     atomic.Int64
	promotions      atomic.Int64
	batchedIters    atomic.Int64
	batchSplits     atomic.Int64
	segments        atomic.Int64
	pipelines       atomic.Int64
	closureTasks    atomic.Int64
	parks           atomic.Int64
	wakes           atomic.Int64
	injects         atomic.Int64
	injectOverflows atomic.Int64
	submits         atomic.Int64
	cancelRequests  atomic.Int64
	abortedIters    atomic.Int64
	abortedPipes    atomic.Int64
	workerSpawns    atomic.Int64
	workerRetires   atomic.Int64
	saturations     atomic.Int64
	admissionWaitNs atomic.Int64
	plansCompiled   atomic.Int64
	planFusedStages atomic.Int64
	planDeopts      atomic.Int64
}

func (c *statCounters) snapshot() Stats {
	return Stats{
		Steals:            c.steals.Load(),
		FailedSteals:      c.failedSteals.Load(),
		LazyEnables:       c.lazyEnables.Load(),
		ThiefEnables:      c.thiefEnables.Load(),
		EagerEnables:      c.eagerEnables.Load(),
		TailSwaps:         c.tailSwaps.Load(),
		CrossSuspends:     c.crossSuspends.Load(),
		ThrottleParks:     c.throttleParks.Load(),
		ThrottleGrows:     c.throttleGrows.Load(),
		ThrottleShrinks:   c.throttleShrinks.Load(),
		ScopeSuspends:     c.scopeSuspends.Load(),
		CrossChecks:       c.crossChecks.Load(),
		FoldHits:          c.foldHits.Load(),
		Iterations:        c.iterations.Load(),
		InlineIterations:  c.inlineIters.Load(),
		Promotions:        c.promotions.Load(),
		BatchedIterations: c.batchedIters.Load(),
		BatchSplits:       c.batchSplits.Load(),
		Segments:          c.segments.Load(),
		Pipelines:         c.pipelines.Load(),
		ClosureTasks:      c.closureTasks.Load(),
		Parks:             c.parks.Load(),
		Wakes:             c.wakes.Load(),
		Injects:           c.injects.Load(),
		InjectOverflows:   c.injectOverflows.Load(),
		Submits:           c.submits.Load(),
		CancelRequests:    c.cancelRequests.Load(),

		AbortedIterations: c.abortedIters.Load(),
		AbortedPipelines:  c.abortedPipes.Load(),
		WorkerSpawns:      c.workerSpawns.Load(),
		WorkerRetires:     c.workerRetires.Load(),
		Saturations:       c.saturations.Load(),
		AdmissionWaitNs:   c.admissionWaitNs.Load(),
		PlansCompiled:     c.plansCompiled.Load(),
		PlanFusedStages:   c.planFusedStages.Load(),
		PlanDeopts:        c.planDeopts.Load(),
	}
}
