package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"piper/internal/workload"
)

// Elastic worker pool and admission-control tests: the engine scales from
// MinWorkers to MaxWorkers under burst load and back after the idle grace,
// Submit rejects with ErrSaturated against a MaxPending budget while
// SubmitWait blocks (or honors a context deadline), and the whole elastic
// machinery survives Close racing spawn/retire churn.

func elasticOpts(min, max int, grace time.Duration) Options {
	opts := DefaultOptions()
	opts.Workers = min
	opts.MinWorkers = min
	opts.MaxWorkers = max
	opts.RetireAfter = grace
	return opts
}

// burstSubmit launches n spin-work pipelines and returns their handles.
func burstSubmit(e *Engine, n int, spin int64) []*Handle {
	handles := make([]*Handle, 0, n)
	for s := 0; s < n; s++ {
		i := 0
		var sink atomic.Uint64
		h := e.Submit(nil, func() bool { i++; return i <= 6 }, func(it *Iter) {
			sink.Add(workload.Spin(spin))
			it.Continue(1)
			sink.Add(workload.Spin(spin))
			it.Wait(2)
			sink.Add(workload.Spin(spin / 4))
		})
		handles = append(handles, h)
	}
	return handles
}

// TestNormalizeElasticBounds pins the knob-reconciliation rules: an
// explicit MaxWorkers below (possibly defaulted) Workers shrinks the
// pool rather than being silently raised by the MinWorkers default, an
// explicit floor wins over a defaulted ceiling, and the initial count is
// clamped into [Min, Max].
func TestNormalizeElasticBounds(t *testing.T) {
	cases := []struct {
		name            string
		in              Options
		wkr, minW, maxW int
		elastic         bool
	}{
		{"defaults-fixed", Options{Workers: 4}, 4, 4, 4, false},
		{"explicit-ceiling-caps", Options{Workers: 8, MaxWorkers: 2}, 2, 2, 2, false},
		{"elastic-range", Options{Workers: 4, MinWorkers: 1, MaxWorkers: 8}, 4, 1, 8, true},
		{"floor-raises", Options{Workers: 2, MinWorkers: 4}, 4, 4, 4, false},
		{"min-only-elastic", Options{Workers: 8, MinWorkers: 2}, 8, 2, 8, true},
		{"workers-clamped-up", Options{Workers: 1, MinWorkers: 2, MaxWorkers: 4}, 2, 2, 4, true},
	}
	for _, c := range cases {
		o := c.in
		o.normalize()
		if o.Workers != c.wkr || o.MinWorkers != c.minW || o.MaxWorkers != c.maxW || o.elastic() != c.elastic {
			t.Errorf("%s: normalize(%+v) -> Workers=%d Min=%d Max=%d elastic=%v, want %d/%d/%d/%v",
				c.name, c.in, o.Workers, o.MinWorkers, o.MaxWorkers, o.elastic(),
				c.wkr, c.minW, c.maxW, c.elastic)
		}
	}
}

func TestElasticScaleUpAndDown(t *testing.T) {
	base := goroutineBaseline()
	e := NewEngine(elasticOpts(1, 4, 2*time.Millisecond))

	if got := e.Stats().LiveWorkers; got != 1 {
		t.Fatalf("LiveWorkers at start = %d, want 1 (MinWorkers)", got)
	}
	for _, h := range burstSubmit(e, 32, 2000) {
		if err := h.Wait(); err != nil {
			t.Fatalf("burst pipeline failed: %v", err)
		}
	}
	s := e.Stats()
	if s.WorkerSpawns < 1 {
		t.Errorf("WorkerSpawns = %d, want >= 1 after a 32-pipeline burst on a 1-worker engine", s.WorkerSpawns)
	}
	if s.LiveWorkers > 4 {
		t.Errorf("LiveWorkers = %d exceeds MaxWorkers=4", s.LiveWorkers)
	}

	// Idle: surplus workers must retire back to the MinWorkers floor.
	if !settles(5*time.Second, func() bool { return e.Stats().LiveWorkers == 1 }) {
		t.Errorf("LiveWorkers = %d after idle grace, want 1", e.Stats().LiveWorkers)
	}
	s = e.Stats()
	if s.WorkerRetires < 1 {
		t.Errorf("WorkerRetires = %d, want >= 1", s.WorkerRetires)
	}

	// The pool must grow again after a retire cycle (slots are reusable).
	for _, h := range burstSubmit(e, 32, 2000) {
		if err := h.Wait(); err != nil {
			t.Fatalf("second burst pipeline failed: %v", err)
		}
	}
	if got := e.Stats().WorkerSpawns; got <= s.WorkerSpawns {
		t.Errorf("WorkerSpawns did not grow on the second burst: %d -> %d", s.WorkerSpawns, got)
	}

	checkEngineDrained(t, e)
	e.Close()
	checkGoroutinesSettle(t, base, 2)
}

func TestFixedPoolNeverScales(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 2
	e := NewEngine(opts)
	defer e.Close()
	for _, h := range burstSubmit(e, 16, 500) {
		if err := h.Wait(); err != nil {
			t.Fatalf("pipeline failed: %v", err)
		}
	}
	s := e.Stats()
	if s.WorkerSpawns != 0 || s.WorkerRetires != 0 {
		t.Errorf("fixed pool scaled: spawns=%d retires=%d", s.WorkerSpawns, s.WorkerRetires)
	}
	if s.LiveWorkers != 2 {
		t.Errorf("LiveWorkers = %d, want 2", s.LiveWorkers)
	}
}

// gatedSubmit submits a pipeline that blocks until gate closes, pinning
// one admission slot (and one worker) for the duration.
func gatedSubmit(e *Engine, gate <-chan struct{}) *Handle {
	i := 0
	return e.Submit(nil, func() bool { i++; return i == 1 }, func(it *Iter) {
		it.Continue(1)
		<-gate
	})
}

func TestSubmitRejectSaturated(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 2
	opts.MaxPending = 1
	e := NewEngine(opts)
	defer e.Close()

	gate := make(chan struct{})
	h1 := gatedSubmit(e, gate)

	h2 := e.Submit(nil, func() bool { return false }, func(*Iter) {})
	if err := h2.Wait(); !errors.Is(err, ErrSaturated) {
		t.Fatalf("second Submit on a full budget: err = %v, want ErrSaturated", err)
	}
	if s := e.Stats(); s.Saturations != 1 {
		t.Errorf("Saturations = %d, want 1", s.Saturations)
	}
	if s := e.Stats(); s.PendingAdmitted != 1 {
		t.Errorf("PendingAdmitted = %d, want 1 while the gated pipeline runs", s.PendingAdmitted)
	}

	close(gate)
	if err := h1.Wait(); err != nil {
		t.Fatalf("gated pipeline failed: %v", err)
	}
	// The slot is released before the Handle completes, so a new Submit
	// is admitted immediately.
	h3 := e.Submit(nil, func() bool { return false }, func(*Iter) {})
	if err := h3.Wait(); err != nil {
		t.Fatalf("Submit after release: err = %v, want nil", err)
	}
	if s := e.Stats(); s.PendingAdmitted != 0 {
		t.Errorf("PendingAdmitted = %d after completion, want 0", s.PendingAdmitted)
	}
	checkEngineDrained(t, e)
}

func TestSubmitWaitBlocksUntilAdmitted(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 2
	opts.MaxPending = 1
	e := NewEngine(opts)
	defer e.Close()

	gate := make(chan struct{})
	h1 := gatedSubmit(e, gate)

	admitted := make(chan *Handle, 1)
	go func() {
		var n atomic.Int64
		i := 0
		admitted <- e.SubmitWait(nil, func() bool { i++; return i <= 3 }, func(*Iter) { n.Add(1) })
	}()
	select {
	case <-admitted:
		t.Fatal("SubmitWait returned while the budget was exhausted")
	case <-time.After(20 * time.Millisecond):
	}

	close(gate)
	if err := h1.Wait(); err != nil {
		t.Fatalf("gated pipeline failed: %v", err)
	}
	var h2 *Handle
	select {
	case h2 = <-admitted:
	case <-time.After(5 * time.Second):
		t.Fatal("SubmitWait still blocked after the slot freed")
	}
	if err := h2.Wait(); err != nil {
		t.Fatalf("SubmitWait pipeline failed: %v", err)
	}
	if s := e.Stats(); s.AdmissionWaitNs <= 0 {
		t.Errorf("AdmissionWaitNs = %d, want > 0 after a blocked admission", s.AdmissionWaitNs)
	}
	checkEngineDrained(t, e)
}

func TestSubmitWaitContextDeadline(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 2
	opts.MaxPending = 1
	e := NewEngine(opts)
	defer e.Close()

	gate := make(chan struct{})
	h1 := gatedSubmit(e, gate)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	h2 := e.SubmitWait(ctx, func() bool { return true }, func(*Iter) {})
	if err := h2.Wait(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline admission: err = %v, want DeadlineExceeded", err)
	}
	if s := e.Stats(); s.Saturations < 1 {
		t.Errorf("Saturations = %d, want >= 1 after an expired admission", s.Saturations)
	}

	close(gate)
	if err := h1.Wait(); err != nil {
		t.Fatalf("gated pipeline failed: %v", err)
	}
	checkEngineDrained(t, e)
}

// TestSubmitWaitAdmitsAll drives far more pipelines than the budget
// allows through concurrent SubmitWait callers on an elastic engine: every
// handle must resolve successfully — saturation delays work, it never
// loses it.
func TestSubmitWaitAdmitsAll(t *testing.T) {
	opts := elasticOpts(1, 4, 2*time.Millisecond)
	opts.MaxPending = 2
	e := NewEngine(opts)
	defer e.Close()

	const callers, per = 8, 25
	var completed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < per; q++ {
				i := 0
				var sink atomic.Uint64
				h := e.SubmitWait(nil, func() bool { i++; return i <= 3 }, func(it *Iter) {
					sink.Add(workload.Spin(200))
					it.Continue(1)
					sink.Add(workload.Spin(200))
				})
				if err := h.Wait(); err != nil {
					t.Errorf("SubmitWait pipeline failed: %v", err)
					return
				}
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := completed.Load(); got != callers*per {
		t.Errorf("completed %d pipelines, want %d", got, callers*per)
	}
	s := e.Stats()
	if s.PendingAdmitted != 0 {
		t.Errorf("PendingAdmitted = %d after drain, want 0", s.PendingAdmitted)
	}
	checkEngineDrained(t, e)
}

// TestCloseUnderChurn races Engine.Close against elastic spawn/retire
// churn and SubmitWait admission: every handle must resolve (completed or
// ErrEngineClosed) and Close must return — the wake sweep may not strand a
// worker that un-idles, retires, or parks between its claim and its wake
// token (see the audit comment in Close).
func TestCloseUnderChurn(t *testing.T) {
	for round := 0; round < 40; round++ {
		opts := elasticOpts(1, 4, 50*time.Microsecond)
		opts.MaxPending = 2
		e := NewEngine(opts)
		const submitters = 4
		var handles [submitters][3]*Handle
		var wg sync.WaitGroup
		start := make(chan struct{})
		for s := 0; s < submitters; s++ {
			s := s
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for q := 0; q < 3; q++ {
					i := 0
					handles[s][q] = e.SubmitWait(nil, func() bool { i++; return i <= 2 }, func(it *Iter) {
						it.Continue(1)
					})
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			e.Close()
		}()
		close(start)
		wg.Wait()
		done := make(chan struct{})
		go func() {
			for s := range handles {
				for _, h := range handles[s] {
					if err := h.Wait(); err != nil && !errors.Is(err, ErrEngineClosed) {
						t.Errorf("round %d: unexpected handle error: %v", round, err)
					}
				}
			}
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: a handle hung across Close under elastic churn", round)
		}
	}
}

// TestElasticScaleUpShrinksGrain races elastic scale-up against adaptive
// grain growth. Alone on a MinWorkers=1 engine, a pipeline's grain climbs
// to its ceiling — there is nobody to starve. A burst of submissions then
// spawns workers up to MaxWorkers; once the burst drains they sit parked
// in the idle set, and every subsequent batch open must observe them and
// shrink the grain back to 1: spawned workers finding the rings and
// deques empty is precisely the signal that batching is hoarding the
// stealable continuation. The pipeline must also run to completion even
// though the burst was injected while the only live worker sat blocked
// inside a batch (scale-up is what keeps that from deadlocking).
func TestElasticScaleUpShrinksGrain(t *testing.T) {
	e := NewEngine(elasticOpts(1, 4, 5*time.Second))
	defer e.Close()

	const n = 2000
	reached := make(chan struct{})
	gate := make(chan struct{})
	i := 0
	done := make(chan PipelineReport, 1)
	go func() {
		rep := e.RunPipeline(0, func() bool { return i < n }, func(it *Iter) {
			i++
			if it.Index() == 600 {
				close(reached)
				<-gate
			}
		})
		done <- rep
	}()

	<-reached
	if s := e.Stats(); s.BatchedIterations < 300 {
		t.Errorf("BatchedIterations = %d before the burst, want >= 300 (grain never grew while alone)", s.BatchedIterations)
	}
	handles := burstSubmit(e, 20, 1000)
	for _, h := range handles {
		if err := h.Wait(); err != nil {
			t.Fatalf("burst pipeline failed: %v", err)
		}
	}
	if s := e.Stats(); s.WorkerSpawns == 0 {
		t.Fatalf("burst spawned no workers against a batching pipeline")
	}
	// Let the spawned workers finish parking into the idle set, then
	// release the pipeline: from here every batch open sees idle thieves.
	time.Sleep(20 * time.Millisecond)
	close(gate)

	var rep PipelineReport
	select {
	case rep = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("pipeline hung after the burst")
	}
	if rep.Iterations != n {
		t.Fatalf("Iterations = %d, want %d", rep.Iterations, n)
	}
	if rep.FinalGrain != 1 {
		t.Errorf("FinalGrain = %d, want 1 (grain must shrink while spawned workers sit idle)", rep.FinalGrain)
	}
	checkEngineDrained(t, e)
}

// TestIdleSpareDoesNotPinGrain is the regression test for the converse
// failure of TestElasticScaleUpShrinksGrain: a floor worker that idles
// because the offered load is one serial pipeline is NOT a reason to
// shrink the grain. Before the idleThieves hysteresis, any nonzero idle
// count vetoed growth, so a 2-worker engine running one serial-only
// pipeline — the spare parked forever, stealing nothing — pinned the
// grain at 1 and batching never engaged. The qualified signal (surplus
// workers above MinWorkers, or steal activity since the last batch open)
// shows neither here, so the grain must climb exactly as it does alone
// on a single-worker pool. CompilePlans is disabled to isolate the
// hysteresis fix from plan-seeded grain, which would mask a pinned ramp.
func TestIdleSpareDoesNotPinGrain(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"fixed-spare", func() Options {
			o := DefaultOptions()
			o.Workers = 2
			return o
		}()},
		{"elastic-floor", elasticOpts(2, 4, 5*time.Second)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			c.opts.CompilePlans = false
			e := NewEngine(c.opts)
			defer e.Close()

			const n = 2000
			i := 0
			rep := e.RunPipeline(0, func() bool { return i < n }, func(it *Iter) {
				i++
				if it.Index() == 0 {
					// Let the spare worker exhaust its scan and park: the rest
					// of the run then opens every batch against a nonzero idle
					// count, which is the condition the hysteresis must ignore.
					time.Sleep(10 * time.Millisecond)
				}
			})
			if rep.Iterations != n {
				t.Fatalf("Iterations = %d, want %d", rep.Iterations, n)
			}
			if rep.FinalGrain <= 1 {
				t.Errorf("FinalGrain = %d, want > 1 (a parked floor worker must not pin the grain)", rep.FinalGrain)
			}
			if s := e.Stats(); s.BatchedIterations == 0 {
				t.Errorf("BatchedIterations = 0, want > 0 (batching never engaged)")
			}
			checkEngineDrained(t, e)
		})
	}
}

// TestRetireTransfersResiduals forces frames into a retiring worker's
// injection ring and checks none are lost: the retire path drains them to
// the overflow list where the remaining workers find them.
func TestRetireTransfersResiduals(t *testing.T) {
	e := NewEngine(elasticOpts(1, 4, time.Millisecond))
	defer e.Close()

	// Grow the pool, then let it shrink while continuously feeding small
	// pipelines; every pipeline must complete even when its root frame
	// landed in a ring whose owner retired under it.
	var done atomic.Int64
	const total = 300
	for q := 0; q < total; q++ {
		i := 0
		h := e.Submit(nil, func() bool { i++; return i <= 2 }, func(it *Iter) {
			it.Continue(1)
		})
		go func() {
			if h.Wait() == nil {
				done.Add(1)
			}
		}()
		if q%50 == 49 {
			time.Sleep(3 * time.Millisecond) // let retires interleave
		}
	}
	if !settles(10*time.Second, func() bool { return done.Load() == total }) {
		t.Fatalf("completed %d/%d pipelines across retire churn", done.Load(), total)
	}
	checkEngineDrained(t, e)
}
