package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// Worker trace buffers are guarded by a per-worker mutex: a worker whose
// control-frame step lost a park CAS may append its (inert) segment event
// a beat after another worker completed the pipeline, so StopTrace cannot
// assume quiescence of every buffer.

// Execution tracing: records one event per executed segment (iteration
// slice, control step, fork-join task) per worker and exports them in the
// Chrome trace-event format (load chrome://tracing or https://ui.perfetto.dev),
// so pipeline schedules — stage waves, steals unfolding iterations across
// workers, throttling gaps — can be inspected visually.

// traceEvent is one completed segment on a worker's timeline.
type traceEvent struct {
	name  string
	start int64 // ns
	dur   int64 // ns
}

// StartTrace begins capturing segment events. Tracing adds two clock
// reads and one append per segment; events accumulate until StopTrace.
func (e *Engine) StartTrace() {
	for _, w := range e.workers {
		w.eventsMu.Lock()
		w.events = w.events[:0]
		w.eventsMu.Unlock()
	}
	e.tracing.Store(true)
}

// StopTrace ends capture and writes a Chrome trace-event JSON array with
// one thread per worker. It must be called while the engine is idle (no
// pipelines in flight).
func (e *Engine) StopTrace(out io.Writer) error {
	e.tracing.Store(false)
	type chromeEvent struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`  // microseconds
		Dur  float64 `json:"dur"` // microseconds
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
	}
	var evs []chromeEvent
	for _, w := range e.workers {
		w.eventsMu.Lock()
		for _, ev := range w.events {
			evs = append(evs, chromeEvent{
				Name: ev.name,
				Ph:   "X",
				Ts:   float64(ev.start) / 1e3,
				Dur:  float64(ev.dur) / 1e3,
				Pid:  1,
				Tid:  w.id,
			})
		}
		w.eventsMu.Unlock()
	}
	enc := json.NewEncoder(out)
	return enc.Encode(evs)
}

// traceSegment records one finished segment on worker w. The frame's kind
// and index are snapshotted by the caller before the segment runs: after
// a suspend the frame may already belong to a waker (and, with pooling,
// may even have been recycled), so it must not be dereferenced here.
func (w *worker) traceSegment(tracing bool, kind frameKind, index int64, start int64) {
	if !tracing || !w.eng.tracing.Load() {
		return
	}
	var name string
	switch kind {
	case kindControl:
		name = "pipe_while control"
	case kindIter:
		name = fmt.Sprintf("iter %d", index)
	default:
		name = "task"
	}
	w.eventsMu.Lock()
	w.events = append(w.events, traceEvent{name: name, start: start, dur: nowNs() - start})
	w.eventsMu.Unlock()
}
