package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"piper/internal/arena"
	"piper/internal/deque"
	"piper/internal/workload"
)

// Options configures an Engine. The ablation switches correspond to the
// runtime optimizations of Section 9 of the paper.
type Options struct {
	// Workers is the number of scheduling workers P the engine starts
	// with. Defaults to runtime.GOMAXPROCS(0).
	Workers int
	// MinWorkers and MaxWorkers bound the elastic worker pool. The engine
	// spawns extra workers (up to MaxWorkers) when work is published while
	// the idle set is empty or when the injection rings overflow, and
	// retires surplus workers (down to MinWorkers) after they sit parked
	// for RetireAfter. Both default to Workers, which disables elasticity
	// and reproduces the fixed-P scheduler of the paper exactly: no timer
	// arms on the park path and no scale check runs on the signal path.
	MinWorkers int
	MaxWorkers int
	// RetireAfter is the idle grace period before a surplus worker (live
	// count above MinWorkers) retires. 0 means 10ms. Only consulted when
	// MaxWorkers > MinWorkers.
	RetireAfter time.Duration
	// MaxPending bounds the number of top-level pipelines admitted through
	// Submit/SubmitWait and not yet completed — the serving layer's
	// backpressure budget. 0 means unlimited. When the budget is
	// exhausted, Submit rejects immediately (the Handle reports
	// ErrSaturated) while SubmitWait blocks until a slot frees, its
	// context is done, or the engine closes. Blocking PipeWhile launches
	// are not admission-controlled: they already apply backpressure by
	// occupying their caller.
	MaxPending int
	// Tenants configures the engine's admission classes for multi-tenant
	// QoS (see TenantClass): per-class pending quotas, weighted-fair
	// (deficit round-robin) sharing of contended admission capacity, and
	// optional per-class admission deadlines. The default class "" always
	// exists (plain Submit/SubmitWait admit through it); listing a class
	// named "" re-tunes it. Empty means one undifferentiated class, the
	// pre-tenant behavior. Tenant classes without a MaxPending budget are
	// legal: admission then only enforces per-class quotas and keeps
	// per-class accounting.
	Tenants []TenantClass
	// Throttle is the default throttling limit K for pipelines started on
	// this engine; 0 means 4·P, the paper's recommended setting (with P
	// the pool ceiling MaxWorkers on an elastic engine).
	Throttle int
	// DependencyFolding enables the cached-stage-counter optimization
	// (on by default via DefaultOptions).
	DependencyFolding bool
	// EagerEnabling disables lazy enabling: every stage advance performs
	// a check-right immediately. For ablation only.
	EagerEnabling bool
	// TailSwap enables the tail-swap rule at iteration completion
	// (on by default via DefaultOptions).
	TailSwap bool
	// PoolFrames enables recycling of frame structs, their coroutine
	// channels and goroutines, and pipeline control state through
	// sync.Pools (on by default via DefaultOptions; see pool.go). Disable
	// only for ablation: every frame is then allocated fresh, as in the
	// unoptimized runtime.
	PoolFrames bool
	// InlineFastPath enables tier-1 inline execution (on by default via
	// DefaultOptions; see frame.go): a worker drives each iteration as a
	// direct call on its own stack and promotes it to a coroutine frame
	// only when it must actually block. Disable only for ablation: every
	// iteration then runs on a coroutine runner with a channel handshake
	// per segment, as in the previous runtime.
	InlineFastPath bool
	// Grain fixes the batched inline execution run length G: a worker's
	// fast path claims up to G consecutive iterations into one control
	// frame and executes their bodies back-to-back through one pooled
	// iteration frame, paying one frame acquisition and one deque release
	// per batch instead of per iteration (see frame.runInlineBatch). The
	// batch splits at the first iteration that must actually block, so
	// promotion semantics, cancellation, and serial-stage ordering are
	// unchanged. Grain(1) reproduces the unbatched per-iteration protocol
	// exactly. 0 (the default) selects adaptive grain: each pipeline
	// starts at 1 and grows geometrically up to GrainMax while batches
	// complete without promotions and no worker sits idle, shrinking when
	// either signal appears. Only meaningful with InlineFastPath.
	Grain int
	// GrainMax caps adaptive grain growth (0 means 64). Ignored when
	// Grain > 0 fixes the run length.
	GrainMax int
	// CompilePlans enables the pipeline plan compiler (on by default via
	// DefaultOptions; see plan.go): iteration 0 of each pipeline runs
	// under the interpreter with a trace recorder attached, and if it
	// retires cleanly its transition shape is compiled into a specialized
	// plan — fused short serial stages, a precomputed cross-edge wait
	// table, elided per-boundary checks, and a static grain seed — that
	// later iterations dispatch on, deoptimizing back to the interpreter
	// the moment any iteration diverges from the recorded shape. Disable
	// only for ablation: every iteration then re-derives the stage
	// structure per boundary, as in the previous runtime. Plans are only
	// compiled while DependencyFolding is on and EagerEnabling is off
	// (the compiled dispatch subsumes the fold cache and never performs
	// eager check-rights), and never for instrumented pipelines.
	CompilePlans bool
	// ArenaBuffers enables the engine's recycled payload-buffer arena
	// (on by default via DefaultOptions; see Engine.Arena and
	// internal/arena). Disable only for ablation: Engine.Arena then
	// returns a pass-through arena whose Get always allocates fresh
	// storage and whose Release hands it to the GC, with the full Ref
	// ownership API (and the LiveArenaBytes gauge) intact.
	ArenaBuffers bool

	// hooks is the test-only schedule-perturbation injection point (see
	// hooks.go). Always nil on production engines; settable only from
	// within this package, so the perturbation tests can widen the
	// interleaving space without exposing scheduling internals.
	hooks *schedHooks
}

// defaultGrainMax bounds adaptive grain growth when GrainMax is unset. A
// full batch serializes G iterations on one worker between control-frame
// releases, so the ceiling trades amortization against how long the
// pipe_while continuation stays unstealable.
const defaultGrainMax = 64

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{
		Workers:           runtime.GOMAXPROCS(0),
		Throttle:          0,
		DependencyFolding: true,
		EagerEnabling:     false,
		TailSwap:          true,
		PoolFrames:        true,
		InlineFastPath:    true,
		CompilePlans:      true,
		ArenaBuffers:      true,
	}
}

func (o *Options) normalize() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	// Elastic bounds: both default to Workers (a fixed pool). MaxWorkers
	// resolves first and caps the MinWorkers default, so an explicit
	// ceiling below the (possibly defaulted) Workers is honored — it
	// shrinks the pool rather than being silently raised by the Min
	// default. An explicit Min > Max still wins (the floor is a promise),
	// and the initial count is clamped into [MinWorkers, MaxWorkers] so
	// every combination of the three knobs yields a consistent pool.
	if o.MaxWorkers <= 0 {
		o.MaxWorkers = o.Workers
	}
	if o.MinWorkers <= 0 {
		o.MinWorkers = o.Workers
		if o.MinWorkers > o.MaxWorkers {
			o.MinWorkers = o.MaxWorkers
		}
	}
	if o.MaxWorkers < o.MinWorkers {
		o.MaxWorkers = o.MinWorkers
	}
	if o.Workers < o.MinWorkers {
		o.Workers = o.MinWorkers
	}
	if o.Workers > o.MaxWorkers {
		o.Workers = o.MaxWorkers
	}
	if o.RetireAfter <= 0 {
		o.RetireAfter = 10 * time.Millisecond
	}
	if o.Throttle <= 0 {
		// 4·P, the paper's recommended setting — with P the pool ceiling,
		// not the initial count: an elastic engine that scaled to
		// MaxWorkers must not have its pipelines window-bound at 4× the
		// (possibly much smaller) starting size. Fixed pools are
		// unaffected (MaxWorkers == Workers).
		o.Throttle = 4 * o.MaxWorkers
	}
	if o.MaxPending < 0 {
		o.MaxPending = 0
	}
	if o.Grain < 0 {
		o.Grain = 0
	}
	if o.Grain > 0 {
		// A fixed grain is its own ceiling, so reports and the adaptive
		// policy share one invariant: grain never exceeds GrainMax.
		o.GrainMax = o.Grain
	} else if o.GrainMax <= 0 {
		o.GrainMax = defaultGrainMax
	}
}

// elastic reports whether the worker pool can change size at all.
func (o *Options) elastic() bool { return o.MaxWorkers > o.MinWorkers }

// injectRingCap is the per-worker injection ring capacity. Root-frame
// injection is one event per top-level pipeline, so overflow — which
// falls back to a mutex-guarded list — is effectively unreachable outside
// adversarial burst tests.
const injectRingCap = 64

// Engine is a PIPER work-stealing scheduler instance: P workers, each with
// a work-stealing deque and an injection ring, executing pipeline programs
// submitted through PipeWhile.
//
// The pool is elastic between Options.MinWorkers and Options.MaxWorkers:
// workers is a fixed slot array of MaxWorkers entries allocated up front,
// and each slot is either live (its goroutine runs the scheduling loop) or
// dormant. Slots are never added or removed, so thieves sweep the array
// with no synchronization and a shard's injection ring never deregisters:
// producers merely skip dormant shards, and any frame that races into one
// stays reachable through the ordinary steal sweep (see worker.pollWork).
type Engine struct {
	opts    Options
	workers []*worker // MaxWorkers slots; liveN of them are running
	stats   statCounters
	pools   framePools

	// arena is the engine's payload-buffer arena (see Engine.Arena):
	// recycled, cache-aligned, ref-counted regions the data-plane
	// workloads flow through pipeline stages. Immutable after NewEngine.
	arena *arena.Arena

	// canGrow caches opts.elastic(): checked on the signal path when the
	// idle set is empty, a plain immutable bool so the fixed-P fast path
	// pays nothing for elasticity.
	canGrow bool

	// Hot cross-worker words, padded apart from each other and from the
	// mutex-guarded cold state around them: injectRR is bumped by every
	// producer, idle is loaded by every pushWork (via signal) and written
	// on park/unpark, and overflowN is polled by every work scan. Sharing
	// a line among them — or with idleMu, whose lock word churns whenever
	// a worker parks — would make each writer invalidate every reader.
	_         cacheLinePad
	injectRR  atomic.Uint32
	_         cacheLinePad
	idle      atomic.Int64
	_         cacheLinePad
	overflowN atomic.Int32
	_         cacheLinePad
	// liveN is the live-worker gauge. Written only under scaleMu (spawn
	// and retire are rare events); read lock-free on the scale checks.
	liveN atomic.Int32
	_     cacheLinePad

	// scaleMu serializes worker spawn and retire decisions. It is never
	// taken on a scheduling fast path — only when the pool actually
	// changes size, so contention is bounded by the scale event rate.
	scaleMu sync.Mutex

	// Root-frame injection is sharded: each worker owns a lock-free MPMC
	// ring (see deque.Inject) that producers fill round-robin; rings that
	// are full spill into the mutex-guarded overflow list. Any worker may
	// drain any ring, so injected work is never stranded behind a busy
	// shard owner.
	overflowMu sync.Mutex
	overflow   []*frame

	// Parking is event-driven: a worker that finds no work registers in
	// the idle set and blocks on its private park channel; every signal
	// claims exactly one idle worker and hands it a wake token, so a burst
	// of N injections wakes min(N, idle) distinct workers and no wakeup is
	// ever lost (the old single-slot wake channel could drop them, only
	// bounding the damage by polling).
	idleMu      sync.Mutex
	idleWorkers []*worker

	// submitMu orders root-frame injection against Close: injectors hold
	// the read side across the closed check and the inject, Close takes
	// the write side to flip closed, so every frame published to a ring
	// happens-before the closed flag — the final drain scan in findWork
	// is ordered after that flag and therefore misses nothing. Without
	// this, a Submit racing Close could strand a queued pipeline and its
	// Handle.Wait would hang forever.
	submitMu sync.RWMutex
	closed   atomic.Bool
	closedCh chan struct{}
	wg       sync.WaitGroup

	// adm is the admission queue (see admission.go): nil when the engine
	// has neither a MaxPending budget nor tenant classes — submissions
	// then skip admission entirely, as before. Otherwise every
	// Submit/SubmitWait acquires a slot from its tenant class here, and
	// finishTopLevel releases it at pipeline completion, waking queued
	// SubmitWait callers in weighted-fair order.
	adm *admitter

	// tracing enables per-segment event capture (see trace.go).
	tracing atomic.Bool

	// hooks is copied from Options at construction; nil on every
	// production engine (see hooks.go). Immutable, so the hot-path guard
	// is one predictable branch.
	hooks *schedHooks
}

// NewEngine starts an engine with the given options.
func NewEngine(opts Options) *Engine {
	opts.normalize()
	e := &Engine{
		opts:     opts,
		closedCh: make(chan struct{}),
		canGrow:  opts.elastic(),
		hooks:    opts.hooks,
		arena:    arena.New(opts.ArenaBuffers),
	}
	e.adm = newAdmitter(e, &opts)
	e.workers = make([]*worker, opts.MaxWorkers)
	for i := range e.workers {
		e.workers[i] = &worker{
			eng:    e,
			id:     i,
			deque:  deque.New[frame](64),
			inbox:  deque.NewInject[frame](injectRingCap),
			parkCh: make(chan struct{}, 1),
			rng:    workload.NewRNG(uint64(i)*0x9e3779b9 + 1),
		}
	}
	for i := 0; i < opts.Workers; i++ {
		e.workers[i].state.Store(workerLive)
	}
	e.liveN.Store(int32(opts.Workers))
	for i := 0; i < opts.Workers; i++ {
		e.wg.Add(1)
		//piper:allow-go accounted: the wg.Add above pairs with loop's deferred wg.Done, drained by Close
		go e.workers[i].loop()
	}
	return e
}

// maybeSpawn wakes a dormant worker slot if the pool may still grow. The
// lock-free gate makes the call free once the pool is at MaxWorkers (and
// the caller already gated on canGrow, so fixed-P engines never get here).
func (e *Engine) maybeSpawn() {
	if int(e.liveN.Load()) >= e.opts.MaxWorkers || e.closed.Load() {
		return
	}
	e.scaleMu.Lock()
	defer e.scaleMu.Unlock()
	// Re-check under the lock; Close may have flipped in between. A spawn
	// is safe against Close's wg.Wait: either the caller holds the read
	// side of submitMu with closed still false (injection paths), so the
	// whole spawn happens-before the flag flips, or the caller is a live
	// worker whose own WaitGroup slot keeps the counter positive.
	if e.closed.Load() || int(e.liveN.Load()) >= e.opts.MaxWorkers {
		return
	}
	for _, w := range e.workers {
		if w.state.Load() == workerDormant {
			w.state.Store(workerLive)
			e.liveN.Add(1)
			e.stats.workerSpawns.Add(1)
			e.wg.Add(1)
			//piper:allow-go accounted: the wg.Add above pairs with loop's deferred wg.Done, drained by Close
			go w.loop()
			return
		}
	}
}

// retire commits worker w's retirement after its idle grace expired: it
// reports false (and the worker keeps running) if the pool is already at
// MinWorkers or the engine is closing. On success the slot flips dormant —
// producers stop choosing its injection ring — and any residual frames in
// its deque or ring transfer to the overflow list, where every live
// worker's scan finds them. Frames a stale-live producer races into the
// dormant ring afterwards stay reachable too: the steal sweep covers
// dormant slots, and the producer's own signal wakes a worker to run it.
func (e *Engine) retire(w *worker) bool {
	e.scaleMu.Lock()
	if e.closed.Load() || int(e.liveN.Load()) <= e.opts.MinWorkers {
		e.scaleMu.Unlock()
		return false
	}
	w.state.Store(workerDormant)
	e.liveN.Add(-1)
	e.stats.workerRetires.Add(1)
	// Drain before releasing scaleMu: maybeSpawn can reactivate this slot
	// the instant the lock drops, and the respawned goroutine would then
	// Pop the deque concurrently with this drain — deque.Pop is
	// owner-only. Under the lock the slot cannot gain a new owner. The
	// drain is short: the deque is empty in practice (this worker parked
	// only after a full scan found nothing) and the ring holds at most
	// injectRingCap racy leftovers.
	var moved []*frame
	for {
		f := w.deque.Pop()
		if f == nil {
			break
		}
		moved = append(moved, f)
	}
	w.inbox.Drain(func(f *frame) { moved = append(moved, f) })
	if len(moved) > 0 {
		e.overflowMu.Lock()
		e.overflow = append(e.overflow, moved...)
		e.overflowN.Add(int32(len(moved)))
		e.overflowMu.Unlock()
	}
	e.scaleMu.Unlock()
	if len(moved) > 0 {
		e.signal()
	}
	return true
}

// Options reports the engine's (normalized) configuration.
func (e *Engine) Options() Options { return e.opts }

// Workers reports the initial worker count P. An elastic engine's current
// pool size is Stats().LiveWorkers.
func (e *Engine) Workers() int { return e.opts.Workers }

// Arena returns the engine's payload-buffer arena: recycled, cache-line-
// aligned, ref-counted byte regions that pipeline stages pass by hand-off
// instead of copying (see internal/arena for the ownership contract).
// With Options.ArenaBuffers disabled the arena is a pass-through whose
// ownership API still works but which never recycles — the ablation
// configuration. The arena's gauges surface in Stats as LiveArenaBytes,
// ArenaBytesRecycled, and the ArenaGets/Puts/Misses counters.
func (e *Engine) Arena() *arena.Arena { return e.arena }

// statGauges is the vector of point-in-time gauges Stats reads alongside
// the monotone counters, comparable so the stability loop below can
// detect a torn read pass.
type statGauges struct {
	poolHits, poolMisses              int64
	liveIter, liveClosure, livePipes  int64
	liveWorkers, pendingAdmitted      int64
	arenaLive, arenaRecycled          int64
	arenaGets, arenaPuts, arenaMisses int64
}

func (e *Engine) readGauges() statGauges {
	g := statGauges{
		poolHits:    e.pools.hits.Load(),
		poolMisses:  e.pools.misses.Load(),
		liveIter:    e.pools.liveIter.Load(),
		liveClosure: e.pools.liveClosure.Load(),
		livePipes:   e.pools.livePipeline.Load(),
		liveWorkers: int64(e.liveN.Load()),
	}
	if e.adm != nil {
		g.pendingAdmitted = e.adm.totalGauge.Load()
	}
	ac := e.arena.Stats()
	g.arenaLive = ac.LiveBytes
	g.arenaRecycled = ac.RecycledBytes
	g.arenaGets = ac.Gets
	g.arenaPuts = ac.Puts
	g.arenaMisses = ac.Misses
	return g
}

// Stats returns a snapshot of the scheduler counters and gauges.
//
// Consistency contract: the monotone event counters are each exact at
// their own read instant (they only ever grow within an engine lifetime).
// The gauges — Live*Frames, LiveWorkers, PendingAdmitted, and the arena
// fields — describe a single instant only when that instant is stable:
// they are read through a bounded double-read loop that retries until two
// consecutive passes over the whole gauge vector agree, so a snapshot
// taken concurrently with scheduling activity can no longer pair, say, a
// pre-cancellation LiveIterFrames with a post-cancellation
// LiveArenaBytes merely because the fields were read microseconds apart.
// Under sustained churn the loop gives up after a few attempts and
// returns the last full pass — individually atomic, collectively
// best-effort. On a quiescent engine (every pipeline completed or every
// Handle waited) one pass is stable by construction and the gauges are
// exact; the leak-check invariants (live gauges all zero) are asserted
// only in that state.
func (e *Engine) Stats() Stats {
	g := e.readGauges()
	for range 4 {
		h := e.readGauges()
		if h == g {
			break
		}
		g = h
	}
	s := e.stats.snapshot()
	s.FramePoolHits = g.poolHits
	s.FramePoolMisses = g.poolMisses
	s.LiveIterFrames = g.liveIter
	s.LiveClosureFrames = g.liveClosure
	s.LivePipelines = g.livePipes
	s.LiveWorkers = g.liveWorkers
	s.PendingAdmitted = g.pendingAdmitted
	s.LiveArenaBytes = g.arenaLive
	s.ArenaBytesRecycled = g.arenaRecycled
	s.ArenaGets = g.arenaGets
	s.ArenaPuts = g.arenaPuts
	s.ArenaMisses = g.arenaMisses
	return s
}

// Close shuts the engine down. It must not be called while pipelines are
// still running (Wait every outstanding Handle first). Closing also
// releases every pooled coroutine runner parked for reuse. A Submit or
// PipeWhile launch racing Close either completes normally (the last
// exiting worker drains it) or observes the closed engine; its work is
// never silently stranded.
func (e *Engine) Close() {
	e.submitMu.Lock()
	closing := e.closed.CompareAndSwap(false, true)
	e.submitMu.Unlock()
	if !closing {
		return
	}
	// Release SubmitWait callers queued for admission before waking the
	// workers: a waiter admitted after this point would inject into a
	// closing engine, and one left queued would never return. The
	// admitter fails each with ErrEngineClosed and refuses later
	// enqueues under the same mutex, so no waiter can slip in between.
	if e.adm != nil {
		e.adm.close()
	}
	// Wake every parked worker: each observes the closed flag, runs a
	// final drain scan (ordered after the flag, hence after every
	// successful inject), and exits once no work remains. Workers that
	// race past the sweep re-check the flag before parking.
	//
	// Wake-loop robustness audit (close-under-churn): the send below can
	// never block and no token is ever lost, because claim and delivery
	// pair one-to-one. parkCh has capacity 1 and a worker is claimable
	// only while registered in the idle set; a worker that un-idles
	// between our claimIdle and this send has left through cancelIdle,
	// which (not finding itself registered) blocks absorbing exactly this
	// token. A worker that registers after the sweep drained the set
	// re-checks the closed flag — ordered after its registration, and the
	// flag flipped before the sweep began — and self-cancels, so it can
	// neither park forever nor leave a claimed-but-untokened slot behind.
	// Elastic pools add one more un-idle transition, the retire timer:
	// its cancelIdle likewise absorbs an in-flight token and treats the
	// timeout as an ordinary wake, and retire() itself refuses once the
	// closed flag is up, so a retiring worker always reaches the ordinary
	// drain-and-exit path. TestCloseUnderChurn exercises all three races.
	for {
		w := e.claimIdle()
		if w == nil {
			break
		}
		w.parkCh <- struct{}{}
	}
	e.wg.Wait()
	// Release the pooled coroutine runners only after the workers are
	// gone: frames acquired from the pools during the drain must still
	// have live runners, and the resume handshake must never race a
	// runner's shutdown (corun's select would drop the resume).
	close(e.closedCh)
}

// PipeWhile executes an on-the-fly pipeline: while cond() reports true, an
// iteration running body is started. cond and the stage-0 prefix of body
// (everything before the iteration's first Wait or Continue) execute
// serially in iteration order; later stages run in parallel subject to the
// cross edges declared by Wait. PipeWhile blocks until the pipeline
// completes, and re-panics in the caller if any iteration panicked.
func (e *Engine) PipeWhile(cond func() bool, body func(*Iter)) {
	e.PipeWhileThrottled(e.opts.Throttle, cond, body)
}

// PipeWhileThrottled is PipeWhile with an explicit throttling limit K,
// overriding the engine default (the paper uses K=10P for ferret and K=4P
// elsewhere).
func (e *Engine) PipeWhileThrottled(k int, cond func() bool, body func(*Iter)) {
	e.RunPipeline(k, cond, body)
}

// PipelineReport summarizes one completed pipe_while execution.
type PipelineReport struct {
	// Iterations is the number of iterations the pipeline ran.
	Iterations int64
	// MaxLiveIterations is the peak count of simultaneously live
	// iteration frames — the space quantity the throttling limit bounds
	// (Theorems 11 and 13).
	MaxLiveIterations int64
	// FinalThrottle is the throttling limit at completion (interesting
	// only for RunPipelineAdaptive).
	FinalThrottle int64
	// FinalGrain is the batched-execution run length G at completion: the
	// fixed Options.Grain, or where the adaptive policy settled (see
	// frame.runInlineBatch). 1 for serial and coroutine-tier runs.
	FinalGrain int64
	// WorkNs and SpanNs are the measured work T1 and span T∞ of the
	// pipeline dag in nanoseconds, populated only by ProfilePipeline
	// (the Cilkview analogue; see instrument.go for the measurement
	// semantics: span is an upper bound, so Parallelism is a lower
	// bound).
	WorkNs, SpanNs int64
	// PlanCompiled reports whether iteration 0's recorded shape sealed a
	// compiled execution plan (see plan.go). False when
	// Options.CompilePlans is off, for instrumented runs, and when the
	// recording was cut short by a panic, an abort, or a transition-count
	// overflow.
	PlanCompiled bool
	// PlanStages is the compiled plan's node count (the recorded stage-0
	// prefix plus one node per transition); 0 when no plan was sealed.
	PlanStages int64
	// PlanFusedStages counts the plan's fused transitions — interior
	// pipe_continue boundaries between short stages elided at dispatch.
	PlanFusedStages int64
	// PlanDeopts counts retractions of this pipeline's plan: an
	// iteration's transitions diverged from the recorded shape and the
	// pipeline fell back to the interpreter (at most 1 per run; the
	// field is a count for symmetry with Stats.PlanDeopts).
	PlanDeopts int64
}

// Parallelism returns the measured T1/T∞, or 0 for uninstrumented runs.
func (r PipelineReport) Parallelism() float64 {
	if r.SpanNs <= 0 {
		return 0
	}
	return float64(r.WorkNs) / float64(r.SpanNs)
}

// RunPipeline is PipeWhileThrottled returning a space/shape report.
func (e *Engine) RunPipeline(k int, cond func() bool, body func(*Iter)) PipelineReport {
	return e.runPipeline(k, false, cond, body)
}

// ProfilePipeline runs the pipeline with work/span instrumentation
// enabled, measuring the dag's T1 and T∞ like the modified Cilkview
// analyzer of Section 10. Instrumentation costs two clock reads per
// pipeline node.
func (e *Engine) ProfilePipeline(k int, cond func() bool, body func(*Iter)) PipelineReport {
	return e.runPipeline(k, true, cond, body)
}

func (e *Engine) runPipeline(k int, instrument bool, cond func() bool, body func(*Iter)) PipelineReport {
	pl := e.newPipeline(k, cond, body, 1)
	pl.instrument = instrument
	return e.launch(pl)
}

// RunPipelineAdaptive runs a pipeline whose throttling window adapts
// within [kMin, kMax]: it grows (doubling) whenever the pipeline is
// window-bound while workers sit idle, and shrinks when the window is
// mostly unused. This explores the throughput/space trade-off of
// Section 11: on uniform pipelines it behaves like K = kMin, and on the
// Figure 10 pathology it buys the speedup that a fixed Θ(P) window
// provably cannot, at a space cost the report makes visible.
func (e *Engine) RunPipelineAdaptive(kMin, kMax int, cond func() bool, body func(*Iter)) PipelineReport {
	if kMin < 1 {
		kMin = 1
	}
	if kMax < kMin {
		kMax = kMin
	}
	pl := e.newPipeline(kMin, cond, body, 1)
	pl.kMax = int64(kMax)
	return e.launch(pl)
}

func (e *Engine) launch(pl *pipeline) PipelineReport {
	pl.done = make(chan struct{})
	e.submitMu.RLock()
	if e.closed.Load() {
		e.submitMu.RUnlock()
		panic("piper: PipeWhile on closed engine")
	}
	e.inject(pl.control)
	e.submitMu.RUnlock()
	<-pl.done
	rep := pl.report()
	pb := pl.panicVal.Load()
	e.releasePipeline(pl)
	if pb != nil {
		panic(pb.v)
	}
	return rep
}

// PipeWhile starts a pipeline nested inside the current iteration; the
// iteration suspends until the nested pipeline completes. Nested pipelines
// may not be started from stage 0 (the serial prologue).
func (it *Iter) PipeWhile(cond func() bool, body func(*Iter)) {
	if it.f.serial {
		RunSerial(cond, body)
		return
	}
	it.PipeWhileThrottled(it.f.eng.opts.Throttle, cond, body)
}

// PipeWhileThrottled is the nested PipeWhile with an explicit throttle.
func (it *Iter) PipeWhileThrottled(k int, cond func() bool, body func(*Iter)) {
	f := it.f
	if f.serial {
		RunSerial(cond, body) // serial elision applies recursively
		return
	}
	if f.inStage0 {
		panic("piper: nested pipelines may not be started from stage 0")
	}
	pl := f.eng.newPipeline(k, cond, body, f.pl.depth+1)
	// A nested pipeline inherits the root submission's cancellation word,
	// so canceling a Submit tears down the whole pipeline tree.
	pl.abort = f.pl.abort
	sc := &scope{owner: f}
	sc.join.Store(1)
	pl.parent = sc
	f.w.pushWork(pl.control)
	f.syncScope(sc)
	pb := pl.panicVal.Load()
	f.eng.releasePipeline(pl)
	if pb != nil {
		// Record under the nested pipeline's original stack before
		// rethrowing, so a Handle's *PanicError names the true panic
		// site, not this propagation point.
		f.pl.recordPanicStack(pb.v, pb.stack)
		panic(pb.v)
	}
	// The nested pipeline observed the abort and drained; unwind the
	// enclosing iteration too rather than resuming its body.
	f.abortCheck()
}

func (e *Engine) newPipeline(k int, cond func() bool, body func(*Iter), depth int) *pipeline {
	if k <= 0 {
		k = e.opts.Throttle
	}
	// The control frame is a plain state-machine frame: workers execute
	// pl.step directly, with no coroutine behind it. It recycles together
	// with its pipeline (see pool.go).
	pl := e.acquirePipeline()
	pl.cond, pl.body, pl.depth = cond, body, depth
	pl.K.Store(int64(k))
	pl.kMin, pl.kMax = int64(k), int64(k)
	e.stats.pipelines.Add(1)
	return pl
}

// inject queues a root frame for any worker to pick up: round-robin over
// the live per-worker injection rings, spilling to the overflow list only
// when every live ring is full. A spill is a scale-up trigger: the live
// workers are not draining their rings fast enough, so an elastic engine
// wakes another slot.
func (e *Engine) inject(f *frame) {
	if h := e.hooks; h != nil && h.forceOverflow != nil && h.forceOverflow() {
		// Perturbation: skip the rings and take the overflow spill path, as
		// if every live ring were full.
		e.spillOverflow(f)
		return
	}
	n := uint32(len(e.workers))
	start := e.injectRR.Add(1)
	for i := uint32(0); i < n; i++ {
		w := e.workers[(start+i)%n]
		if e.canGrow && w.state.Load() != workerLive {
			continue
		}
		if w.inbox.Offer(f) {
			e.stats.injects.Add(1)
			e.signal()
			return
		}
	}
	e.spillOverflow(f)
}

// spillOverflow publishes an injected root frame through the mutex-guarded
// overflow list — the every-ring-full fallback, also a scale-up trigger
// (the live workers are not draining their rings fast enough). Shared by
// the real full-ring path and the forceOverflow perturbation hook so the
// two can never drift apart.
func (e *Engine) spillOverflow(f *frame) {
	e.overflowMu.Lock()
	e.overflow = append(e.overflow, f)
	e.overflowN.Add(1)
	e.overflowMu.Unlock()
	e.stats.injects.Add(1)
	e.stats.injectOverflows.Add(1)
	if e.canGrow {
		e.maybeSpawn()
	}
	e.signal()
}

// popOverflow drains one frame from the injection overflow list. The
// atomic emptiness hint keeps the mutex off the common path.
func (e *Engine) popOverflow() *frame {
	if e.overflowN.Load() == 0 {
		return nil
	}
	e.overflowMu.Lock()
	defer e.overflowMu.Unlock()
	if len(e.overflow) == 0 {
		return nil
	}
	f := e.overflow[0]
	copy(e.overflow, e.overflow[1:])
	e.overflow[len(e.overflow)-1] = nil
	e.overflow = e.overflow[:len(e.overflow)-1]
	e.overflowN.Add(-1)
	return f
}

// signal wakes exactly one parked worker, if any. Pairs with the
// register-then-rescan protocol in findWork: the caller has already made
// its work visible (ring/deque/overflow publication happens-before the
// idle load), so either this load observes the parked worker, or the
// worker's rescan observes the work.
func (e *Engine) signal() {
	if e.idle.Load() == 0 {
		// Work is queued but no worker is parked to take it — the other
		// scale-up trigger. canGrow is an immutable bool, so fixed-P
		// engines pay one predictable branch here and nothing more.
		if e.canGrow {
			e.maybeSpawn()
		}
		return
	}
	if w := e.claimIdle(); w != nil {
		e.stats.wakes.Add(1)
		w.parkCh <- struct{}{}
	}
}

// claimIdle pops one worker from the idle set. The caller must send the
// claimed worker its wake token.
func (e *Engine) claimIdle() *worker {
	e.idleMu.Lock()
	defer e.idleMu.Unlock()
	n := len(e.idleWorkers)
	if n == 0 {
		return nil
	}
	w := e.idleWorkers[n-1]
	e.idleWorkers[n-1] = nil
	e.idleWorkers = e.idleWorkers[:n-1]
	e.idle.Add(-1)
	return w
}

// registerIdle publishes w as parked. Must precede the caller's final
// work rescan.
func (e *Engine) registerIdle(w *worker) {
	e.idleMu.Lock()
	e.idleWorkers = append(e.idleWorkers, w)
	e.idle.Add(1)
	e.idleMu.Unlock()
}

// cancelIdle withdraws w after its pre-park rescan found work (or its
// retire timer fired). If a waker already claimed w, its wake token is in
// flight; absorb it so the next park does not wake spuriously. The return
// value reports that absorption: true means a wake was racing in, which
// the retire path must treat as an ordinary wake rather than proceed to
// retire a worker somebody just handed work to.
func (e *Engine) cancelIdle(w *worker) bool {
	e.idleMu.Lock()
	found := false
	for i, x := range e.idleWorkers {
		if x == w {
			last := len(e.idleWorkers) - 1
			e.idleWorkers[i] = e.idleWorkers[last]
			e.idleWorkers[last] = nil
			e.idleWorkers = e.idleWorkers[:last]
			e.idle.Add(-1)
			found = true
			break
		}
	}
	e.idleMu.Unlock()
	if !found {
		<-w.parkCh
		return true
	}
	return false
}

// tryWakeRight performs PIPER's check-right on behalf of iteration f: if
// iteration f.index+1 is parked on a cross edge that f's progress has
// satisfied, claim it. The caller must deliver the returned frame.
func (e *Engine) tryWakeRight(f *frame) *frame {
	nxt := f.next.Load()
	if nxt == nil || nxt.status.Load() != statusWaitCross {
		return nil
	}
	j := nxt.waitStage.Load()
	if f.stage.Load() > j && nxt.status.CompareAndSwap(statusWaitCross, statusRunning) {
		return nxt
	}
	return nil
}

// --- worker ---------------------------------------------------------------

// Worker slot states. A dormant slot has no goroutine: its deque is empty
// (drained at retirement; only the owner pushes) and its injection ring is
// skipped by producers but still polled by every thief's sweep, so a frame
// that races into it is never stranded.
const (
	workerDormant int32 = iota
	workerLive
)

type worker struct {
	eng    *Engine
	id     int
	deque  *deque.Deque[frame]
	inbox  *deque.Inject[frame]
	parkCh chan struct{}
	rng    *workload.RNG
	// state is the slot's live/dormant word, written only under the
	// engine's scaleMu and read lock-free by producers choosing a ring.
	state atomic.Int32
	// retireTimer is the reusable idle-grace timer armed by parkAwait for
	// surplus workers. Touched only by the goroutine holding the worker
	// role, and only on the park path, so reuse needs no synchronization;
	// lazily allocated so fixed-P engines (and floor workers) never carry
	// one.
	retireTimer *time.Timer

	// assigned is loaded by every thief's sweep (the check-right on a
	// victim's running iteration) and stored twice per executed segment by
	// the owner; padding keeps those stores off the lines holding the
	// read-mostly fields above and the trace state below.
	_        cacheLinePad
	assigned atomic.Pointer[frame]
	_        cacheLinePad

	// events is the worker's trace buffer (see trace.go).
	eventsMu sync.Mutex
	events   []traceEvent
}

// The worker role is not pinned to a goroutine: when an inline iteration
// promotes (see frame.promote), the goroutine holding the role becomes
// that frame's coroutine runner and a takeover goroutine inherits the
// role — together with the WaitGroup slot, which is released exactly once,
// by whichever goroutine holds the role when the engine closes.

func (w *worker) loop() {
	w.run(nil)
}

// run drives worker w's scheduling loop on the calling goroutine, seeded
// with an optional first frame, until the engine closes or the goroutine
// promotes away (execute returns false; the takeover goroutine now owns
// the role, so this one must unwind without touching w again).
func (w *worker) run(f *frame) {
	for {
		if f == nil {
			f = w.findWork()
			if f == nil {
				w.eng.wg.Done()
				return // engine closed, or this worker retired
			}
		}
		if !w.execute(f) {
			return // promoted away
		}
		f = nil
	}
}

// takeover assumes worker w's scheduling role after the goroutine that
// held it promoted itself into iteration frame f's coroutine runner. It
// starts exactly where execute stood mid-driveSegment: as f's driver,
// blocked on the yield channel. If the promoted iteration's blocking
// condition resolved during the park protocol's recheck, that receive
// simply blocks until the body's next suspension or completion — the
// ordinary driver contract — and w.assigned keeps pointing at f so
// thieves can check-right it meanwhile.
func (w *worker) takeover(f *frame) {
	msg := <-f.co.yield
	w.assigned.Store(nil)
	var nf *frame
	switch msg.kind {
	case ySuspend:
		nf = w.afterSuspend(f)
	case yDone:
		nf = w.afterDone(f)
	default:
		panic("piper: unexpected yield during takeover")
	}
	w.run(nf)
}

// pushWork makes f stealable on w's deque. Safe to call from the worker's
// goroutine or from the coroutine segment it is currently driving.
func (w *worker) pushWork(f *frame) {
	w.deque.Push(f)
	w.eng.signal()
}

// execute drives frames until the worker runs out of local work, following
// PIPER's assigned-vertex rules at frame granularity. It reports whether
// the calling goroutine still holds the worker role: false means an
// iteration promoted underneath a control step and this goroutine already
// finished serving as its coroutine runner — the takeover goroutine owns
// w now, so the caller must unwind without touching it.
func (w *worker) execute(f *frame) bool {
	for f != nil {
		traceStart := int64(0)
		tracing := w.eng.tracing.Load()
		var traceKind frameKind
		var traceIndex int64
		if tracing {
			// Snapshot before driving: after a suspend the frame may
			// belong to a waker (and, pooled, even be recycled), so it
			// must not be dereferenced afterwards.
			traceStart, traceKind, traceIndex = nowNs(), f.kind, f.index
		}
		switch f.kind {
		case kindClosure:
			w.eng.stats.closureTasks.Add(1)
			runClosureTask(f, w)
			w.traceSegment(tracing, traceKind, traceIndex, traceStart)
			f = w.afterClosure(f)

		case kindControl:
			w.assigned.Store(f)
			msg := f.pl.step(f, w)
			if msg.kind == yPromoted {
				return false
			}
			w.assigned.Store(nil)
			w.traceSegment(tracing, traceKind, traceIndex, traceStart)
			switch msg.kind {
			case ySpawn:
				// The control frame is the continuation: push it for
				// thieves (they will run iteration i+1's stage 0) and
				// adopt the freshly spawned iteration, child-first.
				w.pushWork(f)
				f = msg.child
			case yInlineDone:
				// An iteration ran to completion inline after releasing
				// the control frame mid-body; retire it here. The control
				// frame is on a deque (or already stepping elsewhere), so
				// f itself must not be touched again.
				f = w.afterDone(msg.child)
			case ySuspend:
				// Parked (throttled or syncing): the frame may already
				// belong to a waker; do not touch it again.
				f = w.deque.Pop()
			case yDone:
				f = w.afterDone(f)
			}

		default: // kindIter
			w.assigned.Store(f)
			msg := f.driveSegment(w)
			w.assigned.Store(nil)
			w.traceSegment(tracing, traceKind, traceIndex, traceStart)
			switch msg.kind {
			case ySuspend:
				f = w.afterSuspend(f)
			case yDone:
				f = w.afterDone(f)
			default:
				panic("piper: unexpected yield at worker level")
			}
		}
	}
	return true
}

// afterSuspend applies lazy enabling when a segment parks: check right on
// the suspended iteration, then fall back to the local deque.
func (w *worker) afterSuspend(f *frame) *frame {
	if f.kind == kindIter {
		if nxt := w.eng.tryWakeRight(f); nxt != nil {
			w.eng.stats.lazyEnables.Add(1)
			return nxt
		}
	}
	return w.deque.Pop()
}

// afterDone retires a finished frame and selects the next assigned frame:
// check right, check parent (throttle release / final sync), tail swap.
func (w *worker) afterDone(f *frame) *frame {
	switch f.kind {
	case kindIter:
		right := w.eng.tryWakeRight(f)
		if right != nil {
			w.eng.stats.lazyEnables.Add(1)
		}
		ctrl := f.pl.onIterReturn()
		f.next.Store(nil)
		f.unref() // drop the scheduler's reference; f may now recycle
		switch {
		case right != nil && ctrl != nil:
			if w.eng.opts.TailSwap {
				// Tail swap: stay on the consecutive iteration for
				// locality; the enabled control frame goes to the deque
				// where it is immediately stealable (Lemma 4).
				w.eng.stats.tailSwaps.Add(1)
				w.pushWork(ctrl)
				return right
			}
			w.pushWork(right)
			return ctrl
		case right != nil:
			return right
		case ctrl != nil:
			return ctrl
		}
		return w.deque.Pop()
	case kindControl:
		pl := f.pl
		if pl.parent != nil {
			if owner := scopeUnitDone(pl.parent); owner != nil {
				return owner
			}
			return w.deque.Pop()
		}
		w.eng.finishTopLevel(pl)
		return w.deque.Pop()
	}
	return w.deque.Pop()
}

// afterClosure retires a fork-join task.
func (w *worker) afterClosure(f *frame) *frame {
	sc := f.scope
	w.eng.releaseClosureFrame(f)
	if owner := scopeUnitDone(sc); owner != nil {
		return owner
	}
	return w.deque.Pop()
}

// stealFrom raids one victim: first the lazy-enabling check-right on the
// victim's assigned iteration (resuming implicitly enabled work "on the
// victim's deque"), then the deque proper, then the victim's injection
// ring so sharded roots are never stranded behind a busy shard owner.
func (w *worker) stealFrom(v *worker) *frame {
	if a := v.assigned.Load(); a != nil && a.kind == kindIter {
		if nxt := w.eng.tryWakeRight(a); nxt != nil {
			w.eng.stats.thiefEnables.Add(1)
			return nxt
		}
	}
	if f := v.deque.Steal(); f != nil {
		w.eng.stats.steals.Add(1)
		return f
	}
	if f := v.inbox.Poll(); f != nil {
		return f
	}
	return nil
}

// pollWork scans every work source once: the local deque, the worker's
// own injection ring, the overflow list, then a steal sweep visiting
// every victim exactly once from a random starting offset. Full coverage
// (rather than the classic random probing) is what lets parking be
// event-driven: the pre-park rescan in findWork must be deterministic,
// because no polling timer will paper over a missed victim.
func (w *worker) pollWork() *frame {
	e := w.eng
	if h := e.hooks; h != nil {
		if h.point != nil {
			h.point(hookPollWork)
		}
		if h.stealFirst != nil && h.stealFirst() {
			// Perturbation: raid the other shards before the local deque,
			// scrambling the LIFO owner order the scheduler prefers.
			if f := w.stealSweep(); f != nil {
				return f
			}
		}
	}
	if f := w.deque.Pop(); f != nil {
		return f
	}
	if f := w.inbox.Poll(); f != nil {
		return f
	}
	if f := e.popOverflow(); f != nil {
		return f
	}
	return w.stealSweep()
}

// stealSweep visits every victim exactly once from a random starting
// offset, returning the first frame raided.
func (w *worker) stealSweep() *frame {
	e := w.eng
	if n := len(e.workers); n > 1 {
		start := int(w.rng.Intn(n))
		for round := 0; round < n; round++ {
			v := e.workers[(start+round)%n]
			if v == w {
				continue
			}
			if f := w.stealFrom(v); f != nil {
				return f
			}
			e.stats.failedSteals.Add(1)
		}
	}
	return nil
}

// findWork implements the thief loop: scan all work sources, then park
// until a signal delivers a wake token. Parking is precise — a worker
// registers in the idle set and re-scans before blocking, pairing with
// signal's publish-work-then-claim order, so no wakeup is lost and no
// polling timer is needed.
func (w *worker) findWork() *frame {
	e := w.eng
	for {
		if f := w.pollWork(); f != nil {
			return f
		}
		if e.closed.Load() {
			// Drain before exiting: a launch that won the submitMu race
			// against Close may have published work this iteration's scan
			// predated. This scan is ordered after the closed flag, and
			// the flag after every successful inject, so nothing queued
			// is ever stranded.
			if f := w.pollWork(); f != nil {
				return f
			}
			return nil
		}
		e.registerIdle(w)
		if f := w.pollWork(); f != nil {
			e.cancelIdle(w)
			return f
		}
		// Pair with Close's wake sweep: if registration raced past the
		// sweep, this load (ordered after registerIdle) sees the flag and
		// self-cancels; if it ran before the flag flipped, the sweep sees
		// the registration and delivers a wake token. Either way no
		// worker stays parked across Close.
		if e.closed.Load() {
			e.cancelIdle(w)
			continue // final drain scan at the loop top, then exit
		}
		e.stats.parks.Add(1)
		// No closedCh case: Close only closes that channel after wg.Wait,
		// by which point no worker is parked — a parked worker is always
		// released by a wake token, from signal or from Close's sweep.
		if !w.parkAwait() {
			return nil // retired: the worker role ends here
		}
	}
}

// parkAwait blocks the registered-idle worker until a wake token arrives.
// On an elastic engine a surplus worker instead gives up after the idle
// grace period and retires; parkAwait then reports false and the caller
// must exit the worker role (the slot stays allocated and can respawn).
// Fixed-P engines take the bare channel receive — no timer ever arms.
func (w *worker) parkAwait() bool {
	e := w.eng
	if !e.canGrow || int(e.liveN.Load()) <= e.opts.MinWorkers {
		<-w.parkCh
		return true
	}
	// Reuse one timer per worker across parks (surplus workers park often
	// under bursty load); go.mod requires 1.24, whose timer semantics make
	// Stop/Reset safe without draining the channel.
	if w.retireTimer == nil {
		w.retireTimer = time.NewTimer(e.opts.RetireAfter)
	} else {
		w.retireTimer.Reset(e.opts.RetireAfter)
	}
	select {
	case <-w.parkCh:
		w.retireTimer.Stop()
		return true
	case <-w.retireTimer.C:
	}
	// Idle grace expired. Leave the idle set first: if a waker (or Close's
	// sweep) already claimed this worker, cancelIdle absorbs the in-flight
	// token and the timeout counts as an ordinary wake — work (or the
	// closed flag) is waiting for us.
	if e.cancelIdle(w) {
		return true
	}
	// retire refuses when the pool is at MinWorkers or the engine is
	// closing; re-enter the scan loop as if woken (the loop re-registers,
	// or drains and exits on the closed path).
	return !e.retire(w)
}
