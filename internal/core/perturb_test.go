package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"piper/internal/workload"
)

// Schedule-perturbation tests: seeded random delays and forced scheduling
// decisions injected at the schedHooks points (see hooks.go) widen the
// interleaving space the differential comparison explores. Batching
// changes *which* interleavings occur — deferred control releases remove
// steal opportunities, splits reintroduce them at new places — so the
// perturbed matrix runs the same oracle programs over Grain(1), adaptive
// grain, and the coroutine tier (InlineFastPath off), plus a forced
// injection-overflow storm, and requires bit-identical results, intact
// serial-stage ordering, and a fully drained engine every time.

// newPerturber builds a seeded hook set. The hook functions are called
// concurrently from every worker goroutine, so the RNG is mutex-guarded —
// the lock itself is one more (harmless) perturbation source.
func newPerturber(seed uint64) *schedHooks {
	var mu sync.Mutex
	rng := workload.NewRNG(seed)
	roll := func(n int) int {
		mu.Lock()
		v := rng.Intn(n)
		mu.Unlock()
		return v
	}
	return &schedHooks{
		point: func(p hookPoint) {
			switch roll(16) {
			case 0:
				// Stretch the window: long enough to let a racing worker
				// run, short enough to keep the matrix fast.
				time.Sleep(time.Duration(1+roll(20)) * time.Microsecond)
			case 1, 2:
				runtime.Gosched()
			}
			if p == hookParkPublish && roll(4) == 0 {
				// The publish-then-recheck window is where wakers race the
				// parking frame; hit it harder than the other points.
				runtime.Gosched()
			}
		},
		forceOverflow: func() bool { return roll(8) == 0 },
		stealFirst:    func() bool { return roll(4) == 0 },
	}
}

// perturbPrograms are fixed oracle programs (decoded through the fuzz
// harness's decoder) covering cross edges, skipped stages, fork-join,
// nesting, and the degenerate empty pipeline.
func perturbPrograms() []fuzzProgram {
	inputs := [][]byte{
		{},
		{2, 3, 24, 3, fopWait, 1, fopFork, 2, fopContinue, 0},
		{1, 0, 20, 3, fopWait, 2, fopCompute, 7, fopWait, 0},
		{3, 7, 24, 4, fopContinue, 0, fopNested, 2, fopWait, 1, fopFork, 0},
		{0, 1, 24, 5, fopWait, 2, fopContinue, 2, fopWait, 0, fopWait, 1, fopCompute, 3},
		{3, 2, 24, 2, fopFork, 2, fopWait, 1, fopNested, 1, fopWait, 2},
	}
	ps := make([]fuzzProgram, 0, len(inputs))
	for _, in := range inputs {
		ps = append(ps, decodeProgram(in))
	}
	return ps
}

// TestSchedulePerturbationMatrix is the perturbed differential matrix:
// every program must reproduce its sequential oracle bit for bit under
// every configuration and seed, with the serial-stage ordering invariant
// checked on the fly by runFuzzProgram.
func TestSchedulePerturbationMatrix(t *testing.T) {
	grain1 := DefaultOptions()
	grain1.Grain = 1
	adaptive := DefaultOptions()
	adaptive.GrainMax = 8
	coroutine := DefaultOptions()
	coroutine.InlineFastPath = false
	// CompilePlans defaults on, so the three base configs exercise compiled
	// dispatch (the oracle programs are shape-stable, so their plans seal on
	// iteration 0); the -interp twins ablate the compiler so every program
	// also runs under the pure interpreter with identical perturbation
	// seeds. Bit-identical output across the pairing is the differential
	// guarantee the plan compiler is held to.
	interp := func(o Options) Options {
		o.CompilePlans = false
		return o
	}
	configs := []struct {
		name string
		opts Options
	}{
		{"grain1", grain1},
		{"adaptive", adaptive},
		{"coroutine", coroutine},
		{"grain1-interp", interp(grain1)},
		{"adaptive-interp", interp(adaptive)},
		{"coroutine-interp", interp(coroutine)},
	}
	programs := perturbPrograms()
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				for pi, p := range programs {
					want := make([]uint64, len(p.iters))
					for i := range want {
						want[i] = oracleIteration(p, i)
					}
					opts := cfg.opts
					opts.hooks = newPerturber(seed*0x9e37 + uint64(pi))
					got := runFuzzProgram(t, p, opts)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("program %d seed %d iteration %d: engine produced %#x, oracle %#x",
								pi, seed, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestPerturbedOverflowStorm forces every root injection onto the
// overflow spill path while submissions race worker wakeups: no pipeline
// may be lost or double-run, and the engine must drain.
func TestPerturbedOverflowStorm(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 3
	opts.hooks = &schedHooks{forceOverflow: func() bool { return true }}
	e := NewEngine(opts)
	defer e.Close()

	const pipes = 80
	var total atomic.Int64
	handles := make([]*Handle, 0, pipes)
	for q := 0; q < pipes; q++ {
		i := 0
		h := e.Submit(nil, func() bool { i++; return i <= 4 }, func(it *Iter) {
			it.Continue(1)
			total.Add(1)
		})
		handles = append(handles, h)
	}
	for _, h := range handles {
		if err := h.Wait(); err != nil {
			t.Fatalf("overflow-path pipeline failed: %v", err)
		}
	}
	if got := total.Load(); got != pipes*4 {
		t.Fatalf("ran %d iterations, want %d (lost or duplicated root frames)", got, pipes*4)
	}
	s := e.Stats()
	if s.InjectOverflows != pipes {
		t.Errorf("InjectOverflows = %d, want %d (every inject forced to spill)", s.InjectOverflows, pipes)
	}
	checkEngineDrained(t, e)
}

// TestPerturbedCancelChurn mixes the perturbation hooks with submission
// cancellation across the batched and unbatched tiers: aborted batches
// must drain to the pools like everything else.
func TestPerturbedCancelChurn(t *testing.T) {
	for _, cfg := range []struct {
		name  string
		grain int
	}{{"grain1", 1}, {"adaptive", 0}} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.Workers = 2
			opts.Grain = cfg.grain
			opts.hooks = newPerturber(0xabcdef)
			e := NewEngine(opts)
			defer e.Close()
			var wg sync.WaitGroup
			for q := 0; q < 40; q++ {
				i := 0
				h := e.Submit(nil, func() bool { i++; return i <= 50 }, func(it *Iter) {
					it.Continue(1)
					it.Wait(2)
				})
				wg.Add(1)
				go func(q int) {
					defer wg.Done()
					if q%3 == 0 {
						h.Cancel()
					}
					_ = h.Wait()
				}(q)
			}
			wg.Wait()
			checkEngineDrained(t, e)
		})
	}
}

// TestStatsDuringCancelStorm hammers Engine.Stats from concurrent readers
// while a perturbed cancel storm churns frames, pipelines, and admission
// slots underneath. It is the regression test for Stats read tearing: the
// old snapshot loaded each gauge independently with no stability pass, so
// a mid-churn reader could observe, e.g., a live pipeline count from
// before a retirement paired with a frame count from after it. The
// stable-read loop cannot make concurrent gauges exact (they are
// documented best-effort under churn), but every value must be one some
// single atomic held — in particular never negative — and once the storm
// drains the quiescent snapshot must be exact: all live gauges zero.
// Under -race this additionally proves Stats is safe against every
// counter writer in the scheduler.
func TestStatsDuringCancelStorm(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 2
	opts.MaxPending = 8
	opts.hooks = newPerturber(0x57a75)
	e := NewEngine(opts)
	defer e.Close()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := e.Stats()
				if s.LiveIterFrames < 0 || s.LiveClosureFrames < 0 || s.LivePipelines < 0 ||
					s.PendingAdmitted < 0 || s.LiveArenaBytes < 0 {
					t.Errorf("torn gauge snapshot: %+v", s)
					return
				}
				if s.LiveWorkers <= 0 {
					t.Errorf("LiveWorkers = %d while the engine is open", s.LiveWorkers)
					return
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for q := 0; q < 30; q++ {
		i := 0
		h := e.SubmitWait(nil, func() bool { i++; return i <= 30 }, func(it *Iter) {
			it.Continue(1)
			it.Wait(2)
		})
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			if q%3 == 0 {
				h.Cancel()
			}
			_ = h.Wait()
		}(q)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	s := e.Stats()
	if s.LiveIterFrames != 0 || s.LiveClosureFrames != 0 || s.LivePipelines != 0 ||
		s.PendingAdmitted != 0 || s.LiveArenaBytes != 0 {
		t.Errorf("quiescent gauges not exact: iter=%d closure=%d pipes=%d pending=%d arena=%d",
			s.LiveIterFrames, s.LiveClosureFrames, s.LivePipelines, s.PendingAdmitted, s.LiveArenaBytes)
	}
	checkEngineDrained(t, e)
}
