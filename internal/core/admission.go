package core

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Multi-tenant admission: the QoS layer in front of the scheduler.
//
// The MaxPending budget used to be a bare token channel, which had two
// problems for a multi-tenant server. First, every caller shared one
// anonymous budget, so a hot tenant flooding SubmitWait could starve
// everyone else's admissions indefinitely. Second, a channel send with
// many blocked senders wakes them in *random* order, so even two equally
// behaved callers had no FIFO guarantee — a fairness bug in its own
// right. The admitter below replaces the channel with an explicit
// weighted-fair queue:
//
//   - every engine has a registry of tenant classes (Options.Tenants plus
//     the always-present default class ""), each with a weight, an
//     optional per-class pending quota, and an optional admission
//     deadline;
//   - a submission that cannot be admitted immediately parks in its
//     class's FIFO queue; freed capacity is handed to queued waiters by
//     deficit round-robin across classes (each backlogged class earns
//     `weight` admissions per round, so every class is served every round
//     and no class can be starved), FIFO within a class;
//   - among classes eligible in a round, the one whose head waiter has
//     the earliest admission deadline is served first (EDF tie-break), so
//     deadline-bearing traffic is ordered ahead of patient bulk traffic
//     at the injection boundary;
//   - a waiter whose class deadline expires before a slot frees is
//     rejected with ErrAdmissionExpired instead of waiting forever.
//
// All admitter state is guarded by one mutex. Admission is a per-pipeline
// event (not per-iteration), so this is far off the scheduler's hot path;
// the mutex also gives the per-class counters exact cross-field
// consistency, which the accounting invariant below relies on.
//
// Accounting invariant (per class, once no waiter is queued):
//
//	Submitted == Admitted + Rejected + Canceled
//
// with Pending and Waiting gauges both zero on a quiescent engine —
// pipeserve and the admission tests assert exactly this.

// DefaultTenant is the name of the implicit tenant class every engine
// has: Submit/SubmitWait without a tenant name admit through it.
const DefaultTenant = ""

// TenantClass configures one admission class of a multi-tenant engine
// (Options.Tenants). The zero value of every field is usable: weight
// defaults to 1, no per-class quota, no admission deadline.
type TenantClass struct {
	// Name identifies the class to SubmitTenant/SubmitWaitTenant. The
	// empty name configures the default class used by plain Submit.
	Name string
	// Weight is the class's deficit-round-robin quantum: a backlogged
	// class is granted Weight admissions per round across the backlogged
	// set, so two classes with weights 3 and 1 split contended admission
	// capacity 3:1. Values below 1 are treated as 1.
	Weight int
	// MaxPending is the per-class pending quota: at most this many
	// admitted-but-unfinished pipelines, independent of the engine-wide
	// Options.MaxPending. 0 means bounded only by the global budget.
	MaxPending int
	// Deadline bounds how long a SubmitWait submission of this class may
	// wait for admission: a waiter still queued when it expires fails
	// with ErrAdmissionExpired. It also orders the backlog — among
	// classes eligible in a DRR round, the earliest head-waiter deadline
	// is admitted first. 0 means no deadline.
	Deadline time.Duration
}

// TenantStats is the per-class admission counter snapshot
// (Engine.TenantStats). Counters are monotone within an engine lifetime;
// Pending and Waiting are gauges. Once a class has no queued waiter,
// Submitted == Admitted + Rejected + Canceled exactly.
type TenantStats struct {
	// Name, Weight, MaxPending, and Deadline echo the class configuration
	// (normalized).
	Name       string
	Weight     int
	MaxPending int
	Deadline   time.Duration
	// Submitted counts admission attempts: every Submit/SubmitWait routed
	// to this class, whatever the outcome.
	Submitted int64
	// Admitted counts submissions granted an admission slot.
	Admitted int64
	// Rejected counts submissions refused by the admitter: Submit calls
	// that found the budget full (ErrSaturated), waiters whose class
	// admission deadline expired (ErrAdmissionExpired), and waiters
	// released by engine close (ErrEngineClosed).
	Rejected int64
	// Canceled counts SubmitWait submissions whose own context was
	// canceled or expired while they were queued for admission.
	Canceled int64
	// AdmissionWaitNs is the total time this class's submissions spent
	// queued for admission, in nanoseconds (the per-class share of
	// Stats.AdmissionWaitNs).
	AdmissionWaitNs int64
	// Pending is the gauge of admission slots currently held by this
	// class: pipelines admitted and not yet completed.
	Pending int64
	// Waiting is the gauge of SubmitWait callers currently queued for
	// admission.
	Waiting int64
}

// admitWaiter is one SubmitWait caller parked in its class queue. The
// result channel is buffered so the admitter can resolve a waiter without
// blocking while it holds the admission mutex: nil means admitted (the
// slot is charged to the waiter's class), non-nil is the rejection.
type admitWaiter struct {
	ch chan error
	// enq and deadline are absolute nowNs timestamps; deadline 0 means
	// none.
	enq      int64
	deadline int64
}

// tenantState is one class's admission state. Everything here is guarded
// by the admitter mutex.
type tenantState struct {
	cfg     TenantClass
	deficit int
	q       []*admitWaiter

	pending, waiting                       int64
	submitted, admitted, rejected, cancels int64
	waitNs                                 int64
}

// room reports whether the class quota admits one more pipeline.
func (c *tenantState) room() bool {
	return c.cfg.MaxPending == 0 || c.pending < int64(c.cfg.MaxPending)
}

// remove unlinks w from the class queue, preserving FIFO order, and
// reports whether it was still queued.
func (c *tenantState) remove(w *admitWaiter) bool {
	for i, qw := range c.q {
		if qw == w {
			c.q = append(c.q[:i], c.q[i+1:]...)
			return true
		}
	}
	return false
}

// admitter is the engine's admission queue. nil on engines with neither
// a MaxPending budget nor tenant classes — those admit everything
// unconditionally with zero overhead, as before.
type admitter struct {
	eng *Engine
	// limit is the engine-wide pending budget (Options.MaxPending);
	// 0 means bounded per class only.
	limit int

	mu      sync.Mutex
	closed  bool
	total   int // admitted and not yet completed, all classes
	classes []*tenantState
	byName  map[string]int
	// rr is the deficit-round-robin cursor: the class index the next
	// eligibility scan starts from. It advances past a class when that
	// class exhausts its deficit.
	rr int

	// totalGauge mirrors total for the lock-free Stats gauge read.
	totalGauge atomic.Int64
}

// newAdmitter builds the admission queue for the given options, or nil
// when no budget and no tenant classes are configured. Class
// configuration is normalized here: weights clamp to >= 1, negative
// quotas and deadlines to 0, and a duplicate name overrides the earlier
// entry (so callers can re-tune the default class by configuring "").
func newAdmitter(e *Engine, opts *Options) *admitter {
	if opts.MaxPending <= 0 && len(opts.Tenants) == 0 {
		return nil
	}
	a := &admitter{eng: e, limit: opts.MaxPending, byName: make(map[string]int)}
	add := func(tc TenantClass) {
		if tc.Weight < 1 {
			tc.Weight = 1
		}
		if tc.MaxPending < 0 {
			tc.MaxPending = 0
		}
		if tc.Deadline < 0 {
			tc.Deadline = 0
		}
		if i, ok := a.byName[tc.Name]; ok {
			a.classes[i].cfg = tc
			return
		}
		a.byName[tc.Name] = len(a.classes)
		a.classes = append(a.classes, &tenantState{cfg: tc})
	}
	add(TenantClass{Name: DefaultTenant})
	for _, tc := range opts.Tenants {
		add(tc)
	}
	return a
}

// lookup resolves a tenant name to its class index.
func (a *admitter) lookup(name string) (int, bool) {
	ci, ok := a.byName[name] // byName is immutable after construction
	return ci, ok
}

// roomLocked reports whether class c can be admitted right now under
// both the global budget and its own quota.
func (a *admitter) roomLocked(c *tenantState) bool {
	return (a.limit == 0 || a.total < a.limit) && c.room()
}

// admitLocked charges one admission to class c.
func (a *admitter) admitLocked(c *tenantState) {
	a.total++
	a.totalGauge.Store(int64(a.total))
	c.pending++
	c.admitted++
}

// tryAdmit is the non-blocking admission policy (Submit): it admits
// immediately or fails with ErrSaturated (ErrEngineClosed on a closed
// engine) without queueing anything.
func (a *admitter) tryAdmit(ci int) error {
	c := a.classes[ci]
	a.mu.Lock()
	c.submitted++
	switch {
	case a.closed:
		c.rejected++
		a.mu.Unlock()
		a.eng.stats.saturations.Add(1)
		return ErrEngineClosed
	case !a.roomLocked(c):
		c.rejected++
		a.mu.Unlock()
		a.eng.stats.saturations.Add(1)
		return ErrSaturated
	}
	a.admitLocked(c)
	a.mu.Unlock()
	return nil
}

// waitAdmit is the blocking admission policy (SubmitWait): it admits
// immediately when there is room, otherwise parks in the class's FIFO
// queue until the fair-queue scheduler hands it a freed slot, the
// caller's context is done, the class admission deadline expires, or the
// engine closes. A nil return means admitted — the caller holds a slot
// it must release through finishTopLevel (or release it itself on the
// engine-closed launch path).
func (a *admitter) waitAdmit(ctx context.Context, ci int) error {
	c := a.classes[ci]
	a.mu.Lock()
	c.submitted++
	if a.closed {
		c.rejected++
		a.mu.Unlock()
		a.eng.stats.saturations.Add(1)
		return ErrEngineClosed
	}
	if a.roomLocked(c) {
		a.admitLocked(c)
		a.mu.Unlock()
		return nil
	}
	w := &admitWaiter{ch: make(chan error, 1), enq: nowNs()}
	var timerC <-chan time.Time
	var timer *time.Timer
	if d := c.cfg.Deadline; d > 0 {
		w.deadline = w.enq + int64(d)
		timer = time.NewTimer(d)
		timerC = timer.C
	}
	c.q = append(c.q, w)
	c.waiting++
	a.mu.Unlock()
	if timer != nil {
		defer timer.Stop()
	}
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	select {
	case err := <-w.ch:
		// Resolved by the admitter: admitted (nil), rejected by the class
		// deadline sweep, or released by Close.
		return err
	case <-ctxDone:
		return a.cancelWait(c, w, context.Cause(ctx), true)
	case <-timerC:
		return a.cancelWait(c, w, ErrAdmissionExpired, false)
	}
}

// cancelWait resolves the race between a caller-side wakeup (context
// done, deadline fired) and the admitter resolving the same waiter. If
// the waiter is still queued it is withdrawn and cause wins; if the
// admitter got there first, its buffered verdict stands — an admission
// in particular is kept (the caller proceeds to launch, and a dead
// context then aborts the pipeline through the ordinary cancellation
// path), so a slot is never released twice and never leaked.
func (a *admitter) cancelWait(c *tenantState, w *admitWaiter, cause error, byCtx bool) error {
	a.mu.Lock()
	if !c.remove(w) {
		a.mu.Unlock()
		return <-w.ch // buffered: the admitter already resolved us
	}
	c.waiting--
	wait := nowNs() - w.enq
	c.waitNs += wait
	if byCtx {
		c.cancels++
	} else {
		c.rejected++
	}
	a.mu.Unlock()
	a.eng.stats.admissionWaitNs.Add(wait)
	a.eng.stats.saturations.Add(1)
	if cause == nil {
		cause = context.Canceled
	}
	return cause
}

// release returns class ci's admission slot at pipeline completion and
// hands the freed capacity to queued waiters under the fair policy.
func (a *admitter) release(ci int) {
	a.mu.Lock()
	a.total--
	a.totalGauge.Store(int64(a.total))
	a.classes[ci].pending--
	a.admitNextLocked()
	a.mu.Unlock()
}

// admitNextLocked drains freed capacity into the class queues: while the
// global budget has room, pick the next class under DRR+EDF and admit
// its head waiter. Called with the mutex held whenever capacity may have
// appeared (a release, including a quota-bound release that frees only
// class-local room).
func (a *admitter) admitNextLocked() {
	for a.limit == 0 || a.total < a.limit {
		c := a.pickLocked()
		if c == nil {
			return
		}
		w := c.q[0]
		c.q = c.q[1:]
		c.waiting--
		wait := nowNs() - w.enq
		c.waitNs += wait
		a.eng.stats.admissionWaitNs.Add(wait)
		a.admitLocked(c)
		w.ch <- nil
	}
}

// pickLocked selects the class whose head waiter is admitted next:
// deficit round-robin across backlogged classes with per-class quota
// room, earliest-deadline-first among the classes eligible this round,
// ring order from the cursor as the final tie-break. Expired waiters are
// rejected during the scan so they can never consume capacity. Returns
// nil when no queued waiter is admissible (all queues empty, or every
// backlogged class is at its own quota).
func (a *admitter) pickLocked() *tenantState {
	n := len(a.classes)
	for pass := 0; pass < 2; pass++ {
		var best *tenantState
		bestIdx := -1
		bestDl := int64(math.MaxInt64)
		for k := 0; k < n; k++ {
			i := (a.rr + k) % n
			c := a.classes[i]
			a.rejectExpiredLocked(c)
			if len(c.q) == 0 || !c.room() || c.deficit <= 0 {
				continue
			}
			dl := int64(math.MaxInt64)
			if d := c.q[0].deadline; d != 0 {
				dl = d
			}
			// best == nil must be checked explicitly: a deadline-free head
			// has dl == MaxInt64, which never beats the MaxInt64 sentinel
			// on strict inequality alone.
			if best == nil || dl < bestDl {
				best, bestIdx, bestDl = c, i, dl
			}
		}
		if best != nil {
			best.deficit--
			if best.deficit == 0 {
				a.rr = (bestIdx + 1) % n
			}
			return best
		}
		// Every eligible class has spent this round's deficit: replenish
		// each backlogged class by its weight and rescan. No eligible
		// class at all means nothing is admissible.
		any := false
		for _, c := range a.classes {
			if len(c.q) > 0 && c.room() {
				c.deficit = c.cfg.Weight
				any = true
			}
		}
		if !any {
			return nil
		}
	}
	return nil
}

// rejectExpiredLocked fails queued waiters of class c whose admission
// deadline has passed. Run during every eligibility scan so an expired
// waiter at the head of a queue cannot shadow a live one behind it.
func (a *admitter) rejectExpiredLocked(c *tenantState) {
	now := nowNs()
	for len(c.q) > 0 {
		w := c.q[0]
		if w.deadline == 0 || now <= w.deadline {
			return
		}
		c.q = c.q[1:]
		c.waiting--
		wait := now - w.enq
		c.waitNs += wait
		c.rejected++
		a.eng.stats.admissionWaitNs.Add(wait)
		a.eng.stats.saturations.Add(1)
		w.ch <- ErrAdmissionExpired
	}
}

// close fails every queued waiter with ErrEngineClosed. Called by
// Engine.Close right after the closed flag flips, so no SubmitWait
// caller can block Close (waiters enqueued later observe the closed flag
// under the same mutex and never park).
func (a *admitter) close() {
	a.mu.Lock()
	a.closed = true
	now := nowNs()
	for _, c := range a.classes {
		for _, w := range c.q {
			c.waiting--
			wait := now - w.enq
			c.waitNs += wait
			c.rejected++
			a.eng.stats.admissionWaitNs.Add(wait)
			a.eng.stats.saturations.Add(1)
			w.ch <- ErrEngineClosed
		}
		c.q = nil
	}
	a.mu.Unlock()
}

// tenantStats snapshots every class under the mutex, so the counters of
// one snapshot are mutually consistent (Submitted == Admitted + Rejected
// + Canceled + Waiting holds within a single snapshot even mid-storm).
func (a *admitter) tenantStats() []TenantStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]TenantStats, len(a.classes))
	for i, c := range a.classes {
		out[i] = TenantStats{
			Name:            c.cfg.Name,
			Weight:          c.cfg.Weight,
			MaxPending:      c.cfg.MaxPending,
			Deadline:        c.cfg.Deadline,
			Submitted:       c.submitted,
			Admitted:        c.admitted,
			Rejected:        c.rejected,
			Canceled:        c.cancels,
			AdmissionWaitNs: c.waitNs,
			Pending:         c.pending,
			Waiting:         c.waiting,
		}
	}
	return out
}

// TenantStats returns the per-class admission snapshot, one entry per
// configured tenant class (the default class "" first, then
// Options.Tenants in registration order). It returns nil on an engine
// with no admission control (no MaxPending budget and no tenant
// classes). See TenantStats (the type) for the accounting invariant.
func (e *Engine) TenantStats() []TenantStats {
	if e.adm == nil {
		return nil
	}
	return e.adm.tenantStats()
}
