package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// Tests for batched inline execution with grain control: claim/release
// accounting, the adaptive policy's growth and backoff, split semantics
// under real suspensions, and the Grain(1) equivalence contract.

func TestGrainNormalization(t *testing.T) {
	cases := []struct {
		name       string
		in         Options
		grain, max int
	}{
		{"defaults-adaptive", Options{Workers: 1}, 0, defaultGrainMax},
		{"fixed", Options{Workers: 1, Grain: 4}, 4, 4},
		{"fixed-overrides-max", Options{Workers: 1, Grain: 4, GrainMax: 99}, 4, 4},
		{"adaptive-capped", Options{Workers: 1, GrainMax: 8}, 0, 8},
		{"negative-grain", Options{Workers: 1, Grain: -3}, 0, defaultGrainMax},
	}
	for _, c := range cases {
		o := c.in
		o.normalize()
		if o.Grain != c.grain || o.GrainMax != c.max {
			t.Errorf("%s: normalize(%+v) -> Grain=%d GrainMax=%d, want %d/%d",
				c.name, c.in, o.Grain, o.GrainMax, c.grain, c.max)
		}
	}
}

// TestAdaptiveGrainGrowsWhenAlone: a single worker running an unblocked
// pipeline has no idle thieves to feed, so the adaptive grain must climb
// to its ceiling and the bulk of the iterations must execute as
// deferred-release batch slots.
func TestAdaptiveGrainGrowsWhenAlone(t *testing.T) {
	e := newEngineOpts(t, func(o *Options) { o.Workers = 1; o.GrainMax = 16 })
	const n = 2000
	i := 0
	rep := e.RunPipeline(0, func() bool { return i < n }, func(it *Iter) { i++ })
	if rep.Iterations != n {
		t.Fatalf("Iterations = %d, want %d", rep.Iterations, n)
	}
	if rep.FinalGrain != 16 {
		t.Errorf("FinalGrain = %d, want the GrainMax ceiling 16", rep.FinalGrain)
	}
	s := e.Stats()
	if s.InlineIterations != n {
		t.Errorf("InlineIterations = %d, want %d", s.InlineIterations, n)
	}
	if s.Promotions != 0 || s.BatchSplits != 0 {
		t.Errorf("Promotions = %d, BatchSplits = %d, want 0/0 for an unblocked pipeline", s.Promotions, s.BatchSplits)
	}
	// With the grain at the ceiling, each 16-slot batch defers 15
	// releases; allowing for the geometric ramp-up, well over half the
	// iterations must have been deferred slots.
	if s.BatchedIterations < n/2 {
		t.Errorf("BatchedIterations = %d, want >= %d (most iterations batched)", s.BatchedIterations, n/2)
	}
	checkEngineDrained(t, e)
}

// TestGrainOneMatchesUnbatched: Grain(1) must reproduce the unbatched
// protocol exactly — zero deferred slots, zero splits, and identical
// output ordering.
func TestGrainOneMatchesUnbatched(t *testing.T) {
	e := newEngineOpts(t, func(o *Options) { o.Workers = 2; o.Grain = 1 })
	var order []int64
	i := 0
	rep := e.RunPipeline(0, func() bool { return i < 500 }, func(it *Iter) {
		i++
		it.Continue(1)
		v := it.Index()
		it.Wait(2)
		order = append(order, v)
	})
	if rep.FinalGrain != 1 {
		t.Errorf("FinalGrain = %d, want 1", rep.FinalGrain)
	}
	s := e.Stats()
	if s.BatchedIterations != 0 || s.BatchSplits != 0 {
		t.Errorf("Grain(1) batched: BatchedIterations=%d BatchSplits=%d, want 0/0",
			s.BatchedIterations, s.BatchSplits)
	}
	for k, v := range order {
		if v != int64(k) {
			t.Fatalf("order violated at %d: %d", k, v)
		}
	}
	checkEngineDrained(t, e)
}

// TestFixedGrainBatchesAndOrders: a fixed Grain(8) pipeline with a serial
// tail stage must batch (most iterations deferred) while preserving the
// serial-stage ordering invariant bit for bit.
func TestFixedGrainBatchesAndOrders(t *testing.T) {
	e := newEngineOpts(t, func(o *Options) { o.Workers = 2; o.Grain = 8 })
	var order []int64
	i := 0
	const n = 800
	rep := e.RunPipeline(0, func() bool { return i < n }, func(it *Iter) {
		i++
		it.Continue(1)
		v := it.Index()
		it.Wait(2)
		order = append(order, v)
	})
	if rep.Iterations != n {
		t.Fatalf("Iterations = %d, want %d", rep.Iterations, n)
	}
	if len(order) != n {
		t.Fatalf("%d outputs, want %d", len(order), n)
	}
	for k, v := range order {
		if v != int64(k) {
			t.Fatalf("serial stage order violated at %d: %d", k, v)
		}
	}
	if s := e.Stats(); s.BatchedIterations == 0 {
		t.Error("fixed Grain(8) produced no deferred batch slots")
	}
	checkEngineDrained(t, e)
}

// TestBatchSplitsOnBlockedEdge: iteration 0, claimed as the first slot of
// a fixed-grain batch, promotes deterministically through a nested
// pipeline — splitting its batch and performing the deferred control
// release — and then stalls its promoted stage 1 on a gate. The next
// batch's first slot therefore finds its cross edge into the still-live
// iteration 0 unsatisfied and must promote too, splitting a second batch
// at the cross-edge path; the run must still complete in order. (A slot
// may not block the claim on raw channels itself: a deferred slot holds
// the pipe_while continuation, so only piper's own blocking primitives —
// which promote and split — are batch-safe, mirroring the paper's rule
// that inter-iteration dependencies go through pipe_wait.)
func TestBatchSplitsOnBlockedEdge(t *testing.T) {
	e := newEngineOpts(t, func(o *Options) { o.Workers = 2; o.Grain = 8 })
	gate := make(chan struct{})
	go func() {
		// Open the gate once the cross-edge promotion is observed (bounded
		// wait: a surprising schedule weakens the test, never hangs it).
		settles(5*time.Second, func() bool { return e.Stats().Promotions >= 2 })
		close(gate)
	}()
	var order []int64
	i := 0
	e.PipeWhile(func() bool { return i < 64 }, func(it *Iter) {
		i++
		it.Continue(1)
		if it.Index() == 0 {
			j := 0
			it.PipeWhile(func() bool { j++; return j <= 1 }, func(nit *Iter) { nit.Continue(1) })
			<-gate // promoted by the nested pipe: blocks only this coroutine
		}
		it.Wait(2)
		order = append(order, it.Index())
	})
	for k, v := range order {
		if v != int64(k) {
			t.Fatalf("order violated at %d: %d", k, v)
		}
	}
	s := e.Stats()
	if s.BatchSplits == 0 {
		t.Error("blocked slots inside batch claims produced no split")
	}
	checkEngineDrained(t, e)
}

// TestBatchAbortMidClaim: a cancellation visible at a batch's claim gate
// must stop the claim — no further slot starts once the abort flag is
// published — and every frame must drain back to the pools. Handle.Cancel
// sets the flag synchronously (unlike a context cancellation, whose
// AfterFunc delivery the batch may legitimately outrun), so the gated
// iteration resumes with the abort already observable.
func TestBatchAbortMidClaim(t *testing.T) {
	e := newEngineOpts(t, func(o *Options) { o.Workers = 1; o.Grain = 16 })
	started := make(chan struct{})
	gate := make(chan struct{})
	i := 0
	h := e.Submit(context.Background(), func() bool { i++; return i <= 1<<20 }, func(it *Iter) {
		if it.Index() == 100 {
			close(started)
			<-gate
		}
	})
	<-started
	h.Cancel()
	close(gate)
	if err := h.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	rep, _ := h.Report()
	// Iteration 100 resumes with the abort flag set; the claim gate runs
	// before any further slot, so nothing past it may start.
	if rep.Iterations > 101 {
		t.Errorf("batch kept claiming after abort: %d iterations started", rep.Iterations)
	}
	checkEngineDrained(t, e)
}

// TestBatchPanicPropagates: a panic inside a deferred batch slot must
// stop the claim, surface through PipeWhile, and drain.
func TestBatchPanicPropagates(t *testing.T) {
	e := newEngineOpts(t, func(o *Options) { o.Workers = 1; o.Grain = 16 })
	var rec any
	func() {
		defer func() { rec = recover() }()
		i := 0
		e.PipeWhile(func() bool { i++; return i <= 1000 }, func(it *Iter) {
			if it.Index() == 57 {
				panic("boom at 57")
			}
		})
	}()
	if rec != "boom at 57" {
		t.Fatalf("recovered %v, want the iteration panic", rec)
	}
	checkEngineDrained(t, e)
}

// TestBatchRespectsThrottle: batching holds one live frame per claim, so
// even a large fixed grain must never push the live-iteration peak past
// the throttling window.
func TestBatchRespectsThrottle(t *testing.T) {
	e := newEngineOpts(t, func(o *Options) { o.Workers = 2; o.Grain = 32 })
	i := 0
	rep := e.RunPipeline(3, func() bool { return i < 400 }, func(it *Iter) {
		i++
		it.Continue(1)
		it.Wait(2)
	})
	if rep.MaxLiveIterations > 3 {
		t.Fatalf("MaxLiveIterations = %d exceeds K=3 under Grain(32)", rep.MaxLiveIterations)
	}
	checkEngineDrained(t, e)
}

// TestBatchIndexAndStageView: the per-iteration view through the Iter
// handle (Index, Stage) must be indistinguishable from unbatched
// execution while the frame is recycled in place across a claim.
func TestBatchIndexAndStageView(t *testing.T) {
	e := newEngineOpts(t, func(o *Options) { o.Workers = 1; o.Grain = 8 })
	i := 0
	const n = 100
	var idxErrs, stageErrs int
	e.PipeWhile(func() bool { return i < n }, func(it *Iter) {
		want := int64(i)
		i++
		if it.Index() != want {
			idxErrs++
		}
		if it.Stage() != 0 {
			stageErrs++
		}
		it.Continue(2)
		if it.Stage() != 2 {
			stageErrs++
		}
		it.Wait(5)
		if it.Stage() != 5 {
			stageErrs++
		}
	})
	if idxErrs != 0 || stageErrs != 0 {
		t.Fatalf("%d index and %d stage mismatches across batched iterations", idxErrs, stageErrs)
	}
	checkEngineDrained(t, e)
}

// TestInstrumentedPinsGrain: profiled pipelines must run with claim 1 so
// the work/span accounting chains through real predecessor frames.
func TestInstrumentedPinsGrain(t *testing.T) {
	e := newEngineOpts(t, func(o *Options) { o.Workers = 1; o.GrainMax = 32 })
	i := 0
	rep := e.ProfilePipeline(0, func() bool { return i < 300 }, func(it *Iter) {
		i++
		it.Continue(1)
		it.Wait(2)
	})
	if rep.WorkNs <= 0 || rep.SpanNs <= 0 {
		t.Fatalf("instrumentation lost under batching: work=%d span=%d", rep.WorkNs, rep.SpanNs)
	}
	if s := e.Stats(); s.BatchedIterations != 0 {
		t.Errorf("BatchedIterations = %d during an instrumented run, want 0", s.BatchedIterations)
	}
	checkEngineDrained(t, e)
}
