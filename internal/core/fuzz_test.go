package core

import (
	"math"
	"sync/atomic"
	"testing"
)

// FuzzPipelineSchedule is the differential fuzzer for the scheduler:
// random per-iteration stage/op programs — Wait, Continue, skipped
// stages, fork-join, nested pipelines — execute on the real engine under
// two scheduler configurations, and the results are checked against a
// sequential oracle interpreter plus the paper's serial-stage ordering
// invariant (node (i, j) entered via pipe_wait must not begin before
// iteration i-1 has finished all work in stages ≤ j).

// Fuzz op kinds. Stage deltas and widths are decoded from the op's
// argument byte, always into small strictly-increasing stages.
const (
	fopWait byte = iota
	fopContinue
	fopFork
	fopNested
	fopCompute
	fopKinds
)

type fuzzOp struct {
	kind byte
	arg  byte
}

type fuzzProgram struct {
	workers  int
	throttle int
	iters    [][]fuzzOp
}

// byteFeed deterministically serves fuzz bytes, yielding zeros once the
// input is exhausted so every prefix decodes to a valid program.
type byteFeed struct {
	data []byte
	pos  int
}

func (b *byteFeed) next() byte {
	if b.pos >= len(b.data) {
		return 0
	}
	v := b.data[b.pos]
	b.pos++
	return v
}

// decodeProgram maps arbitrary bytes onto a well-formed pipeline program:
// stage arguments strictly increase by construction, and nested pipelines
// are never started from stage 0 (decoded as compute instead, mirroring
// the runtime's prohibition).
func decodeProgram(data []byte) fuzzProgram {
	b := &byteFeed{data: data}
	p := fuzzProgram{
		workers:  1 + int(b.next()%4),
		throttle: 1 + int(b.next()%8),
	}
	n := int(b.next() % 25)
	p.iters = make([][]fuzzOp, n)
	for i := range p.iters {
		nOps := int(b.next() % 6)
		ops := make([]fuzzOp, 0, nOps)
		inStage0 := true
		for o := 0; o < nOps; o++ {
			kind := b.next() % fopKinds
			arg := b.next()
			if kind == fopNested && inStage0 {
				kind = fopCompute
			}
			if kind == fopWait || kind == fopContinue {
				inStage0 = false
			}
			ops = append(ops, fuzzOp{kind: kind, arg: arg})
		}
		p.iters[i] = ops
	}
	return p
}

// fuzzChild is the deterministic contribution of fork-join child (or
// nested iteration) k of op o in iteration i. Commutative accumulation
// (addition) makes the value independent of execution order, so any
// lost, duplicated, or cross-wired task shows up as a value mismatch.
func fuzzChild(i, o, k int) uint64 {
	z := uint64(i+1)*0x9e3779b97f4a7c15 + uint64(o+1)*0xbf58476d1ce4e5b9 + uint64(k+1)
	z = (z ^ (z >> 30)) * 0x94d049bb133111eb
	return z ^ (z >> 27)
}

// oracleIteration interprets iteration i of the program sequentially,
// producing the value the parallel execution must reproduce bit-for-bit.
func oracleIteration(p fuzzProgram, i int) uint64 {
	acc := uint64(i)*0x9e3779b97f4a7c15 + 1
	stage := int64(0)
	for o, op := range p.iters[i] {
		switch op.kind {
		case fopWait, fopContinue:
			stage += 1 + int64(op.arg%3)
			acc = acc*31 + uint64(stage)
		case fopFork:
			width := 1 + int(op.arg%3)
			for k := 0; k < width; k++ {
				acc += fuzzChild(i, o, k)
			}
		case fopNested:
			m := 1 + int(op.arg%3)
			for r := 0; r < m; r++ {
				acc += fuzzChild(i, o, 100+r)
			}
		case fopCompute:
			acc = acc*1099511628211 + uint64(op.arg)
		}
	}
	return acc
}

// runFuzzProgram executes the program on a real engine and checks the
// serial-stage ordering invariant on the fly. It returns the
// per-iteration values for the differential comparison.
func runFuzzProgram(t *testing.T, p fuzzProgram, opts Options) []uint64 {
	t.Helper()
	opts.Workers = p.workers
	e := NewEngine(opts)
	defer e.Close()

	n := len(p.iters)
	out := make([]uint64, n)
	// progress[i] is iteration i's declared progress: stage j is stored
	// just before the Wait/Continue that leaves the work of stages < j
	// behind, and MaxInt64 when the body finishes. Published before the
	// runtime's own stage counter advances, so when the scheduler releases
	// a cross edge into (i, j), progress[i-1] > j must already hold.
	progress := make([]atomic.Int64, n+1)
	var orderViolations atomic.Int64

	i := 0
	rep := e.RunPipeline(p.throttle, func() bool { i++; return i <= n }, func(it *Iter) {
		idx := int(it.Index())
		ops := p.iters[idx]
		acc := uint64(idx)*0x9e3779b97f4a7c15 + 1
		stage := int64(0)
		for o, op := range ops {
			switch op.kind {
			case fopWait, fopContinue:
				j := stage + 1 + int64(op.arg%3)
				progress[idx].Store(j)
				if op.kind == fopWait {
					it.Wait(j)
					// The cross edge just resolved: iteration idx-1 must
					// have declared progress beyond j.
					if idx > 0 && progress[idx-1].Load() <= j {
						orderViolations.Add(1)
					}
				} else {
					it.Continue(j)
				}
				stage = j
				acc = acc*31 + uint64(stage)
			case fopFork:
				width := 1 + int(op.arg%3)
				var sum atomic.Uint64
				for k := 0; k < width; k++ {
					k := k
					it.Go(func() { sum.Add(fuzzChild(idx, o, k)) })
				}
				it.Sync()
				acc += sum.Load()
			case fopNested:
				m := 1 + int(op.arg%3)
				var sum atomic.Uint64
				r := 0
				it.PipeWhile(func() bool { r++; return r <= m }, func(nit *Iter) {
					rr := r - 1 // stage 0: capture before the next cond
					nit.Continue(1)
					sum.Add(fuzzChild(idx, o, 100+rr))
				})
				acc += sum.Load()
			case fopCompute:
				acc = acc*1099511628211 + uint64(op.arg)
			}
		}
		out[idx] = acc
		progress[idx].Store(math.MaxInt64)
	})

	if v := orderViolations.Load(); v != 0 {
		t.Errorf("%d serial-stage ordering violations (a pipe_wait resolved before the predecessor's work was done)", v)
	}
	if rep.Iterations != int64(n) {
		t.Errorf("Iterations = %d, want %d", rep.Iterations, n)
	}
	if rep.MaxLiveIterations > int64(p.throttle) {
		t.Errorf("MaxLiveIterations = %d exceeds throttle K=%d", rep.MaxLiveIterations, p.throttle)
	}
	checkEngineDrained(t, e)
	return out
}

func FuzzPipelineSchedule(f *testing.F) {
	// Seeds covering each op kind, skipped stages, nesting, and the
	// degenerate empty pipeline.
	f.Add([]byte{})
	f.Add([]byte{2, 3, 4, 2, fopWait, 1, fopFork, 2, 1, fopContinue, 0})
	f.Add([]byte{1, 0, 8, 3, fopWait, 2, fopCompute, 7, fopWait, 0})
	f.Add([]byte{3, 7, 12, 2, fopContinue, 0, fopNested, 2, 4, fopWait, 1, fopFork, 0, fopWait, 2, fopCompute, 9})
	f.Add([]byte{0, 1, 24, 1, fopWait, 2, 1, fopContinue, 2, 2, fopWait, 0, fopWait, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		p := decodeProgram(data)

		want := make([]uint64, len(p.iters))
		for i := range want {
			want[i] = oracleIteration(p, i)
		}

		// Differential runs across the scheduler configuration matrix: the
		// paper-faithful default (inline fast path + pooling + adaptive
		// grain), the fully ablated runtime (eager enabling, no tail swap,
		// no dependency folding, allocate-per-use frames, always-coroutine
		// execution), both execution tiers crossed with PoolFrames=false,
		// and the batching extremes — unbatched Grain(1), a fixed G=4
		// claim, and a tight adaptive ceiling that forces the grow/shrink
		// policy to act within small programs. The promotion, recycling,
		// and batch split/defer paths must agree with the oracle under
		// every combination.
		ablated := DefaultOptions()
		ablated.EagerEnabling = true
		ablated.TailSwap = false
		ablated.DependencyFolding = false
		ablated.PoolFrames = false
		ablated.InlineFastPath = false
		inlineNoPool := DefaultOptions()
		inlineNoPool.PoolFrames = false
		coroutinePooled := DefaultOptions()
		coroutinePooled.InlineFastPath = false
		grain1 := DefaultOptions()
		grain1.Grain = 1
		grain4 := DefaultOptions()
		grain4.Grain = 4
		adaptiveTight := DefaultOptions()
		adaptiveTight.GrainMax = 4
		// CompilePlans defaults on, so every config above except "ablated"
		// (which disables dependency folding, a plan prerequisite) runs
		// compiled dispatch; the interp twins ablate the compiler so the same
		// programs also execute under the pure interpreter. Shape-unstable
		// programs (per-iteration op lists differ) additionally exercise the
		// deopt path inside the compiled configs themselves.
		interpDefault := DefaultOptions()
		interpDefault.CompilePlans = false
		interpGrain1 := grain1
		interpGrain1.CompilePlans = false
		interpCoroutine := coroutinePooled
		interpCoroutine.CompilePlans = false
		for _, cfg := range []struct {
			name string
			opts Options
		}{
			{"default", DefaultOptions()},
			{"ablated", ablated},
			{"inline-nopool", inlineNoPool},
			{"coroutine-pooled", coroutinePooled},
			{"grain1", grain1},
			{"grain4", grain4},
			{"adaptive-g4", adaptiveTight},
			{"interp-default", interpDefault},
			{"interp-grain1", interpGrain1},
			{"interp-coroutine", interpCoroutine},
		} {
			got := runFuzzProgram(t, p, cfg.opts)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("iteration %d (%s): engine produced %#x, oracle %#x (program %+v)",
						i, cfg.name, got[i], want[i], p.iters[i])
				}
			}
		}
	})
}
