package core

import (
	"runtime"
	"testing"

	"piper/internal/workload"
)

// Instrumentation measures wall-clock node durations, so these tests use
// nodes big enough (tens of µs) to amortize scheduler and GC noise, run
// a collection first, assert loose bounds, and retry a few times: on a
// small shared host a single background hiccup can distort one run.

// retryTiming runs attempt up to 3 times and fails only if every attempt
// returns a non-empty problem description.
func retryTiming(t *testing.T, attempt func() string) {
	t.Helper()
	var last string
	for try := 0; try < 3; try++ {
		runtime.GC()
		if last = attempt(); last == "" {
			return
		}
	}
	t.Fatal(last)
}

func TestProfileSerialChain(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock assertions are meaningless under the race detector")
	}
	e := newTestEngine(t, 2)
	retryTiming(t, func() string {
		i := 0
		rep := e.ProfilePipeline(8, func() bool { return i < 40 }, func(it *Iter) {
			i++
			workload.SpinMicros(100)
			it.Wait(1)
			workload.SpinMicros(100)
		})
		if rep.WorkNs <= 0 || rep.SpanNs <= 0 {
			return "instrumentation produced no data"
		}
		// Work ≈ 40 iterations × 200µs; spin calibration drift and host
		// noise allow a generous band.
		if rep.WorkNs < 2_000_000 {
			return "work implausibly small"
		}
		if par := rep.Parallelism(); par < 0.5 || par > 3 {
			return "serial-ish SS pipeline parallelism out of band"
		}
		return ""
	})
}

// TestProfileSPSParallelism: with a heavy parallel middle stage of weight
// r and unit serial stages, parallelism should be well above 1 and grow
// with r (Section 1's analysis gives ≈ r/2 + 1). Profiled on one worker:
// wall-clock node timing is only faithful without CPU contention (the
// paper's Cilkview also measures a serial execution).
func TestProfileSPSParallelism(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock assertions are meaningless under the race detector")
	}
	e := newTestEngine(t, 1)
	run := func(r int64) float64 {
		runtime.GC()
		i := 0
		rep := e.ProfilePipeline(64, func() bool { return i < 60 }, func(it *Iter) {
			i++
			workload.SpinMicros(25)
			it.Continue(1)
			workload.SpinMicros(25 * r)
			it.Wait(2)
			workload.SpinMicros(25)
		})
		return rep.Parallelism()
	}
	retryTiming(t, func() string {
		p4 := run(4)
		p32 := run(32)
		if p4 < 1.3 {
			return "SPS r=4 parallelism too low"
		}
		if p32 < p4+2 || p32 < 5 {
			return "parallelism did not grow with r"
		}
		if p32 > 40 {
			return "r=32 parallelism exceeds any plausible bound"
		}
		return ""
	})
}

// TestProfileWorkMatchesSerialTime: the measured work must be in the
// ballpark of the nominal spin time.
func TestProfileWorkMatchesSerialTime(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock assertions are meaningless under the race detector")
	}
	opts := DefaultOptions()
	opts.Workers = 1
	e := NewEngine(opts)
	defer e.Close()
	retryTiming(t, func() string {
		const n = 30
		// Reference: the same spins, run directly. Comparing measured
		// work against a co-measured baseline (instead of nominal µs)
		// keeps the test valid under host load, when every spin slows
		// down equally.
		direct := nowNs()
		for k := 0; k < n; k++ {
			workload.SpinMicros(100)
			workload.SpinMicros(100)
		}
		directNs := nowNs() - direct
		i := 0
		rep := e.ProfilePipeline(4, func() bool { return i < n }, func(it *Iter) {
			i++
			workload.SpinMicros(100)
			it.Wait(1)
			workload.SpinMicros(100)
		})
		if rep.WorkNs < directNs/3 || rep.WorkNs > directNs*3 {
			return "measured work far from directly measured spin time"
		}
		if rep.SpanNs > rep.WorkNs {
			return "span exceeds work"
		}
		return ""
	})
}

// TestUninstrumentedReportsZero: RunPipeline must not pay for or report
// instrumentation.
func TestUninstrumentedReportsZero(t *testing.T) {
	e := newTestEngine(t, 2)
	i := 0
	rep := e.RunPipeline(4, func() bool { return i < 10 }, func(it *Iter) {
		i++
		it.Wait(1)
	})
	if rep.WorkNs != 0 || rep.SpanNs != 0 {
		t.Fatalf("uninstrumented run reported work/span: %+v", rep)
	}
	if rep.Parallelism() != 0 {
		t.Fatal("parallelism should be 0 without instrumentation")
	}
}

// TestProfileCritLog exercises the single-writer log directly.
func TestProfileCritLog(t *testing.T) {
	var l critLog
	for j := int64(1); j <= 100; j++ {
		l.append(j*3, j*10)
	}
	cursor := 0
	// First node with stage > 5 is stage 6 (entry j=2, crit 20).
	if c, ok := l.critAfter(5, &cursor); !ok || c != 20 {
		t.Fatalf("critAfter(5) = %d,%v", c, ok)
	}
	// Monotone queries reuse the cursor.
	if c, ok := l.critAfter(150, &cursor); !ok || c != 510 {
		t.Fatalf("critAfter(150) = %d,%v", c, ok)
	}
	if _, ok := l.critAfter(400, &cursor); ok {
		t.Fatal("critAfter past the end should miss")
	}
	// Empty log.
	var empty critLog
	cursor = 0
	if _, ok := empty.critAfter(0, &cursor); ok {
		t.Fatal("empty log should miss")
	}
}
