// Package core implements PIPER, the provably efficient work-stealing
// scheduler for on-the-fly pipeline programs from Lee et al., "On-the-Fly
// Pipeline Parallelism" (SPAA 2013), adapted to Go.
//
// The scheduler executes "frames": control frames (one per pipe_while
// loop), iteration frames (one per loop iteration), and closure frames
// (fork-join tasks). Execution is two-tier:
//
// Tier 1 — inline. A worker first drives an iteration as a direct
// function call on its own stack (runInlineBatch): stage bodies run in a
// loop, each Wait checking its cross edge with a plain atomic load, with
// no runner goroutine and no channel handshake anywhere. This mirrors the
// paper's core property — iterations execute greedily and stall only when
// a cross-edge dependency is actually unsatisfied — so the common case
// (the edge is satisfied, which throttling and the serial stage-0
// discipline make overwhelmingly likely) pays only function-call cost.
// The fast path additionally claims runs of up to G consecutive
// iterations into one control frame (grain control, Options.Grain): the
// batch executes their bodies back-to-back through one recycled frame
// with one deque release for the whole run, amortizing the fixed
// per-iteration scheduling cost, and splits at the first iteration that
// must actually block so every blocking path below is unchanged.
//
// Tier 2 — promoted. Only when an iteration must actually block — an
// unsatisfied cross edge, a fork-join sync on stolen children, a nested
// pipeline — does it promote to a full coroutine frame: the worker
// goroutine itself becomes the frame's coroutine runner (the body's
// locals are already on its stack, so nothing is replayed; promotion
// happens at a stage boundary and the suspended state is just the frame's
// stage index and scheduling words), and a replacement goroutine takes
// over the worker role, starting out as the frame's driver blocked on the
// yield channel exactly where execute would be. From then on the frame
// runs under the ordinary suspend/resume protocol: a worker "executes" it
// by resuming the runner over the channel pair and blocking until it
// yields, preserving PIPER's bind-to-element structure, throttling, and
// deque discipline.
//
// The Options.InlineFastPath ablation switch restores the always-coroutine
// model: every iteration then runs on a (pooled) runner goroutine with a
// resume/yield handshake per segment, as in the previous runtime.
package core

import (
	"math"
	"runtime/debug"
	"sync/atomic"
)

type frameKind int8

const (
	kindControl frameKind = iota
	kindIter
	kindClosure
)

// Frame status values. Parked frames are owned by nobody; a waker claims a
// parked frame with a CAS from its parked status to statusRunnable and is
// then solely responsible for delivering it to a worker.
const (
	statusRunning   int32 = iota // executing, assigned, or queued on a deque
	statusWaitCross              // iteration parked on an unsatisfied cross edge
	statusWaitScope              // coroutine parked in a fork-join sync or nested pipe
	statusThrottled              // control parked: live iterations == K
	statusSyncing                // control parked: waiting for iterations to return
	statusDone
)

// yieldKind enumerates the messages a frame's coroutine sends its driver,
// plus the step-local results that never cross a channel.
type yieldKind int8

const (
	yDone       yieldKind = iota // frame finished
	ySpawn                       // control: a runnable iteration left stage 0
	ySuspend                     // frame parked (status says why)
	yLeftStage0                  // iteration: left the serial stage-0 prefix, still runnable
	yInlineDone                  // control: an inline iteration completed after releasing the control frame
	yPromoted                    // control: the goroutine promoted away; the worker role moved on
)

type yieldMsg struct {
	kind  yieldKind
	child *frame // for ySpawn and yInlineDone
}

const stageDone = math.MaxInt64

// cacheLinePad separates hot cross-thread atomics from unrelated state so
// a writer on one word does not invalidate readers of its neighbours
// (64 bytes covers every GOARCH this targets; on the few 128-byte-line
// parts the pair of pads around each group still isolates it).
type cacheLinePad = [64]byte

// coTail is the coroutine half of an iteration frame: the unbuffered
// channel pair over which a runner goroutine and its driver hand control
// back and forth. With the inline fast path enabled the tail is attached
// only on promotion (from its own pool — see pool.go) and detached again
// at retirement, so unblocked iterations never carry one; with the fast
// path ablated every iteration frame owns a tail for its whole pooled
// lifetime, together with a runner goroutine that parks for reuse.
type coTail struct {
	resume chan struct{}
	yield  chan yieldMsg
}

// frame is the unit of scheduling. One struct type covers all three kinds
// so the work-stealing deque stays monomorphic. kind is immutable for the
// frame's whole pooled lifetime (each pool serves one kind), so stale
// racy readers — a thief inspecting a victim's assigned pointer — may
// read it and the atomic fields, but nothing else.
type frame struct {
	kind frameKind
	eng  *Engine

	// co is the coroutine machinery (iteration frames); see coTail for
	// when it is attached. With pooling (and the inline fast path off) the
	// tail and the runner goroutine outlive individual incarnations.
	co *coTail
	// started is true while a runner goroutine serves this frame: the
	// driver must resume it rather than spawn one. Promotion sets it (the
	// promoting goroutine is the runner); retirement of a promoted frame
	// clears it as the tail detaches.
	started bool
	// reusable is immutable: true iff the frame recycles through a pool,
	// which also makes a corun runner loop instead of exiting.
	reusable bool
	// inline is true while the iteration body runs as a direct call on the
	// worker's goroutine (tier 1). Runner-local; cleared by promotion or at
	// inline completion.
	inline bool
	// batched is true while the iteration runs as a deferred-release slot
	// of an inline batch claim: the control frame's release at the stage-0
	// exit is postponed to the batch's final slot, so the batch pays one
	// deque release instead of one per iteration (see runInlineBatch).
	// Runner-local; cleared at slot completion or by promotion, which
	// performs the deferred release itself.
	batched bool
	// refs counts reasons the frame cannot yet be recycled: the
	// scheduler's ownership plus the successor chain's prev reference
	// (see pool.go for the full discipline).
	refs atomic.Int32

	// w is the worker currently driving this frame's segment. For a
	// coroutine segment it is set by driveSegment before the runner
	// resumes; for an inline run it is the executing worker itself. Stable
	// for the duration of the segment; user code pushes spawned tasks onto
	// w's deque through it.
	w *worker

	// Iteration state.
	pl       *pipeline
	it       Iter // the handle passed to the body; self-referential, reused
	index    int64
	prev     *frame // iteration index-1; runner-local, nil once satisfied-done
	inStage0 bool   // runner-local: still in the serial stage-0 prefix

	// Dependency folding: the most recently observed value of prev's stage
	// counter. Runner-local, so reads cost nothing. Never written when the
	// DependencyFolding ablation is off, which keeps the crossSatisfied
	// fast path honest (a zero cache can never satisfy a stage j >= 1).
	foldCache int64
	// Compiled-plan dispatch state (see plan.go), all runner-local: plan
	// is the immutable shape this incarnation dispatches on (nil:
	// interpret), planCur the cursor into its transition list, crossDone
	// the sticky wait-table bit (the predecessor can never block this
	// iteration again), and rec the iteration-0 trace recorder.
	plan      *plan
	planCur   int
	crossDone bool
	rec       *planRecorder
	// Runner-local stat shadows, flushed to the engine at finish.
	nFoldHits, nCrossChecks int64

	// Work/span instrumentation (see instrument.go). nodeStart, curCrit,
	// workAcc and prevCritCursor are runner-local; critLog is the
	// published per-node critical-path log read by the successor.
	instrOn        bool
	nodeStart      int64
	curCrit        int64
	workAcc        int64
	prevCritCursor int
	critLog        critLog

	// serial marks a frame driven by RunSerial: no coroutine, no
	// scheduler, stage calls only advance the counter.
	serial bool

	// Closure state.
	fn    func(w *worker)
	scope *scope

	// curScope accumulates children spawned with Go until the next Sync.
	// Runner-local.
	curScope *scope

	// Scope this coroutine is parked on (valid while status==statusWaitScope).
	waitingScope atomic.Pointer[scope]

	// panicked carries a user panic out of the coroutine.
	panicked any

	// --- hot cross-thread words -----------------------------------------
	// The successor polls stage on every cross-edge check and wakers CAS
	// status, while the owner rewrites the runner-local scratch above many
	// times per stage; padding on both sides keeps that scratch traffic
	// from invalidating the line the neighbours' loads have cached.
	_         cacheLinePad
	stage     atomic.Int64 // all nodes with stage < this value are complete
	status    atomic.Int32
	waitStage atomic.Int64          // valid while status == statusWaitCross
	next      atomic.Pointer[frame] // iteration index+1, set by the control frame
	_         cacheLinePad
}

// driveSegment resumes the frame's coroutine and blocks until it yields.
// It may be called from a worker's goroutine or, for an iteration's
// stage-0 segment under the InlineFastPath ablation, from the control
// frame's step. With the fast path on it is only ever called on promoted
// frames, whose runner (the goroutine that promoted) is already live.
func (f *frame) driveSegment(w *worker) yieldMsg {
	f.w = w
	w.eng.stats.segments.Add(1)
	if !f.started {
		f.started = true
		//piper:allow-go bounded by the frame: corun exits when the body returns, and the driver holds the yield handshake until then
		go f.corun()
	}
	f.co.resume <- struct{}{}
	return <-f.co.yield
}

// corun is the body of a frame's spawned runner goroutine (InlineFastPath
// off). A reusable runner loops: after yielding yDone it parks on the
// resume channel and serves the frame's next incarnation, whose reset
// state it observes through the channel handshake. The engine's close
// channel releases runners whose frame sits idle in the pool (or was
// dropped from it by the GC) when the engine shuts down.
func (f *frame) corun() {
	for {
		select {
		case <-f.co.resume:
		case <-f.eng.closedCh:
			return
		}
		f.runOnce()
		f.co.yield <- yieldMsg{kind: yDone}
		if !f.reusable {
			return
		}
	}
}

// runOnce executes one incarnation of the iteration body on a spawned
// runner goroutine.
func (f *frame) runOnce() {
	f.runBody()
	f.finishIter()
}

// runBody executes the iteration body, converting a user panic into
// pipeline panic state. An abortUnwind sentinel (a cancel observed at a
// stage boundary) exits through the same path without recording a panic.
// Shared by the coroutine runner (runOnce) and the inline fast path
// (runInlineBatch), so cancellation and panic capture behave identically
// in both execution tiers.
func (f *frame) runBody() {
	defer func() {
		if r := recover(); r != nil {
			if _, isAbort := r.(abortUnwind); isAbort {
				f.eng.stats.abortedIters.Add(1)
			} else {
				f.panicked = r
				if f.pl != nil {
					f.pl.recordPanicStack(r, debug.Stack())
				}
			}
			// Join children spawned before the unwind: no fork-join task of
			// this iteration may outlive its frame's retirement, or a
			// canceled Submit would complete while user closures still run
			// (and the frame would recycle under a live scope owner).
			if sc := f.curScope; sc != nil {
				f.curScope = nil
				f.drainScope(sc)
			}
		}
	}()
	f.instrBeginIteration()
	f.pl.body(&f.it)
	// Implicit cilk_sync: every Cilk function syncs before returning, so
	// children spawned with Go but never Synced join here.
	if sc := f.curScope; sc != nil {
		f.curScope = nil
		f.syncScope(sc)
	}
}

// inlineResult reports how an inline iteration run ended.
type inlineResult int8

const (
	// inlineDoneOwned: the body completed without leaving stage 0; the
	// caller (the control frame's step) still owns the control frame and
	// retires the iteration itself.
	inlineDoneOwned inlineResult = iota
	// inlineDoneReleased: the body completed inline after releasing the
	// control frame at its stage-0 exit. The caller no longer owns the
	// control frame (a thief may be stepping it right now) and must unwind
	// to the worker loop, which retires the iteration through afterDone.
	inlineDoneReleased
	// inlinePromoted: the iteration promoted mid-body and this goroutine
	// served as its coroutine runner to completion; the worker role
	// belongs to a takeover goroutine. The caller must unwind without
	// touching the worker or the pipeline.
	inlinePromoted
)

// runInlineBatch executes a claimed run of up to claim consecutive
// iterations of f's pipeline back-to-back on f — the tier-1 fast path at
// batch granularity: no runner goroutine, no channel handshake, just
// stage bodies separated by cross-edge checks. The first iteration is
// already materialized in f by the control frame's step; each later claim
// slot re-evaluates the loop condition and recycles f in place
// (resetBatchIter), so the whole run pays one frame acquisition, one
// successor-chain link, one throttle token, and at most one deque release
// of the control frame. Only the final slot runs the plain release
// protocol; earlier slots defer it (f.batched), keeping the pipe_while
// continuation on this worker so the next body starts with no scheduler
// traffic at all. Wait and Continue detect the inline mode through
// f.inline and promote (see promote) only if an iteration must actually
// block — promotion performs the deferred release and abandons the
// residual claim, splitting the batch, so promotion semantics,
// cancellation unwinding, and serial-stage ordering are exactly those of
// the unbatched protocol, which claim == 1 reproduces bit for bit.
func (f *frame) runInlineBatch(w *worker, claim int64) inlineResult {
	e := f.eng
	pl := f.pl
	f.w = w
	var started, deferred int64
	flush := func() {
		e.stats.inlineIters.Add(started)
		if started > 1 {
			// The first slot was counted by newIter; the in-batch ones
			// bypassed it.
			e.stats.iterations.Add(started - 1)
		}
		if deferred > 0 {
			e.stats.batchedIters.Add(deferred)
		}
	}
	for {
		claim--
		f.batched = claim > 0
		f.inline = true
		started++
		f.runBody()
		f.finishIter()
		if !f.inline {
			// Promoted mid-body: this goroutine is the frame's runner now,
			// and a driver (the takeover goroutine or whichever worker
			// resumed us last) is blocked on the yield channel. Hand it the
			// retired frame and unwind; unlike a pooled corun runner we do
			// not park for reuse — the tail detaches at the frame's last
			// unref and the next incarnation starts inline again.
			flush()
			f.co.yield <- yieldMsg{kind: yDone}
			return inlinePromoted
		}
		f.inline = false
		if f.batched {
			f.batched = false
			deferred++
		} else if !f.inStage0 {
			// Final slot, and it released the control frame at its stage-0
			// exit: a thief may be stepping the pipeline right now, so the
			// caller must unwind to the worker loop.
			flush()
			return inlineDoneReleased
		}
		// The control frame is still ours — a deferred-release slot
		// completed, or the body never left stage 0. Take the next slot,
		// applying the same gates the step loop would: nothing starts
		// after an abort or panic, and the loop condition (part of the
		// next iteration's serial stage 0) runs exactly once per started
		// iteration.
		if claim <= 0 || pl.panicked() || pl.abortRequested() {
			flush()
			return inlineDoneOwned
		}
		e.hookAt(hookBatchSlot)
		if !pl.safeCond() {
			// Record the exhausted loop so step does not evaluate the
			// condition again (it may consume input).
			pl.phase = phaseDrain
			flush()
			return inlineDoneOwned
		}
		f.resetBatchIter()
	}
}

// runInlineBatchSerial is the compiled serial-only variant of
// runInlineBatch, entered by step when the pipeline's sealed plan proved
// iteration 0 never left stage 0 (plan.serialOnly) and this frame is
// bound to that plan. While each slot's body indeed retires wholly inside
// stage 0 with the plan intact, the per-slot publication protocol is
// elided: no stageDone/statusDone stores, no statusRunning/waitStage
// resets, no stat-shadow flushes — completion is published once, at batch
// exit. That is sound because the batch holds the control frame for its
// whole run: no successor frame exists to read the stage counter, and
// nothing outside this goroutine observes the recycled slots. Any slot
// that deviates — the plan was retracted, the body left stage 0 after
// all, it panicked, or a fork-join promotion took the goroutine — falls
// into a slow tail that replays the exact generic per-iteration sequence
// and ends the batch, so divergence costs one shortened batch, never a
// protocol difference.
func (f *frame) runInlineBatchSerial(w *worker, claim int64) inlineResult {
	e := f.eng
	pl := f.pl
	f.w = w
	var started, deferred int64
	flush := func() {
		e.stats.inlineIters.Add(started)
		if started > 1 {
			e.stats.iterations.Add(started - 1)
		}
		if deferred > 0 {
			e.stats.batchedIters.Add(deferred)
		}
	}
	for {
		claim--
		f.batched = claim > 0
		f.inline = true
		started++
		f.runBody()
		if f.plan == nil || !f.inStage0 || f.panicked != nil || !f.inline {
			// Slow tail: this slot diverged from the serial shape (or the
			// plan was dropped mid-body). Replay the generic sequence for it
			// and end the batch; the next batch re-reads the plan pointer
			// and dispatches accordingly.
			f.finishIter()
			if !f.inline {
				flush()
				f.co.yield <- yieldMsg{kind: yDone}
				return inlinePromoted
			}
			f.inline = false
			if f.batched {
				f.batched = false
				deferred++
				flush()
				return inlineDoneOwned
			}
			if !f.inStage0 {
				flush()
				return inlineDoneReleased
			}
			flush()
			return inlineDoneOwned
		}
		// Fast retire: the body ran wholly inside stage 0 with the plan
		// intact, so the slot never parked, never published, and never
		// touched its stat shadows (f.rec is nil past iteration 0; the
		// cross-check counters stay zero with no transitions taken).
		f.inline = false
		if f.batched {
			f.batched = false
			deferred++
		}
		if claim <= 0 || pl.panicked() || pl.abortRequested() {
			f.stage.Store(stageDone)
			f.status.Store(statusDone)
			f.dropPrev()
			flush()
			return inlineDoneOwned
		}
		e.hookAt(hookBatchSlot)
		if !pl.safeCond() {
			pl.phase = phaseDrain
			f.stage.Store(stageDone)
			f.status.Store(statusDone)
			f.dropPrev()
			flush()
			return inlineDoneOwned
		}
		// Minimal in-place recycle: only index advances. stage stayed 0,
		// status stayed statusRunning, inStage0 stayed true, the cursor
		// never moved (no transitions in a serial plan), and prev was
		// dropped by the first slot's entry path or is already nil.
		f.index = pl.nextIndex
		pl.nextIndex++
	}
}

// resetBatchIter recycles f in place for the next claimed slot of an
// inline batch. The batch still holds the control frame, so no successor
// frame exists and nothing outside this goroutine can observe the
// non-atomic resets; the predecessor reference was already dropped by the
// previous slot's finishIter, which is also why the new slot's cross
// edges are all vacuously satisfied (prev == nil). Mirrors
// acquireIterFrame's per-incarnation reset minus the pool, refcount, and
// chain traffic the batch amortizes away; the instrumentation fields are
// untouched because openBatch pins instrumented (and traced) pipelines to
// claim == 1.
func (f *frame) resetBatchIter() {
	pl := f.pl
	f.index = pl.nextIndex
	pl.nextIndex++
	f.stage.Store(0)
	f.status.Store(statusRunning)
	f.waitStage.Store(0)
	f.inStage0 = true
	f.foldCache = 0
	f.nFoldHits, f.nCrossChecks = 0, 0
	f.planCur = 0
	f.crossDone = false
	if f.plan != nil {
		// A deopt retracts the published plan; later slots of the batch
		// must observe it (a nil reload) rather than keep dispatching on
		// the stale shape.
		f.plan = pl.plan.Load()
	}
	f.curScope = nil
	f.panicked = nil
}

// leaveStage0Inline ends the serial stage-0 prefix of an inline
// iteration. A deferred-release batch slot only marks the exit — the
// control frame stays with the batch, which itself runs the next
// iteration's stage 0, in order — while an unbatched iteration (or a
// batch's final slot) makes the pipe_while continuation stealable
// immediately through releaseControl.
func (f *frame) leaveStage0Inline() {
	if f.batched {
		f.inStage0 = false
		return
	}
	f.releaseControl()
}

// promote converts a running inline iteration into a full coroutine frame
// because it is about to block (unsatisfied cross edge, fork-join sync on
// stolen children, nested pipeline). Promotion happens at a stage
// boundary, so nothing is replayed: the scheduling state is already in
// the frame, and the body's locals stay on this goroutine's stack — the
// goroutine simply changes roles, from worker w's scheduling loop to the
// frame's coroutine runner. A freshly spawned takeover goroutine assumes
// the worker role; it starts out as this frame's driver, blocked on the
// yield channel exactly where execute would be mid-driveSegment, so the
// standard park protocols (parkOnCross, syncScope) and the retirement
// handshake run unchanged from here on. If the blocking condition
// resolves before the park publishes (the publish-then-recheck in those
// protocols), the body continues on this goroutine with the takeover
// goroutine as its patient driver — exactly the normal coroutine
// relationship, just with the roles acquired in the opposite order.
func (f *frame) promote() {
	w := f.w
	e := f.eng
	e.stats.promotions.Add(1)
	if f.batched || f.inStage0 {
		// The control frame is still frozen below us — an unreleased
		// stage-0 prefix, or a batch slot that deferred its release — so
		// hand it to the deque first and the pipeline keeps unfolding
		// while we park. A blocked slot also ends its batch (the residual
		// claim is abandoned by runInlineBatch) and backs the adaptive
		// grain off, both while the control frame is still exclusively
		// ours.
		if f.batched {
			f.batched = false
			e.stats.batchSplits.Add(1)
		}
		f.pl.grainOnSplit()
		f.releaseControl()
	}
	f.inline = false
	if f.co == nil {
		f.co = e.acquireCoTail()
	}
	f.started = true
	//piper:allow-go bounded by the pipeline: takeover drives this frame to stageDone, which the pipe_while drain awaits
	go w.takeover(f)
}

// releaseControl ends the iteration's serial stage-0 prefix on the inline
// path: the control frame — whose step call sits frozen below us on this
// goroutine's stack — is pushed to the deque, where a thief (or this
// worker, once the inline body completes) picks it up to run iteration
// i+1's stage 0. This is the inline analogue of the yLeftStage0/ySpawn
// handoff: the continuation becomes stealable and the worker keeps the
// child, preserving the spawned-child-first discipline. The frozen step
// invocation learns of the release through runInlineBatch's result and
// unwinds without touching the pipeline again.
func (f *frame) releaseControl() {
	f.inStage0 = false
	w := f.w
	w.assigned.Store(f)
	w.pushWork(f.pl.control)
	f.eng.hookAt(hookReleaseControl)
}

// abortCheck unwinds the iteration if its submission has been canceled.
// Called at stage boundaries — the cooperative preemption points — in
// both execution tiers.
func (f *frame) abortCheck() {
	if f.pl.abortRequested() {
		panic(abortUnwind{})
	}
}

// drainScope joins sc while already unwinding, recording (rather than
// rethrowing) any child panic.
func (f *frame) drainScope(sc *scope) {
	defer func() {
		if r := recover(); r != nil {
			if _, isAbort := r.(abortUnwind); !isAbort && f.pl != nil {
				f.pl.recordPanicStack(r, debug.Stack())
			}
		}
	}()
	f.syncScope(sc)
}

// finishIter publishes iteration completion: every cross edge out of this
// iteration is now satisfied.
func (f *frame) finishIter() {
	if f.kind == kindIter {
		if f.rec != nil {
			// The recording iteration retired: compile and publish the
			// pipeline's plan before completion is announced.
			f.pl.sealPlan(f)
		}
		f.instrFinishIteration()
		f.stage.Store(stageDone)
		f.dropPrev()
		f.eng.stats.crossChecks.Add(f.nCrossChecks)
		f.eng.stats.foldHits.Add(f.nFoldHits)
	}
	f.status.Store(statusDone)
}

// park yields the given suspend message and blocks until a worker resumes
// the frame. The caller must already have published the parked status and
// re-checked its condition (or lost a claiming CAS to a waker).
func (f *frame) park(msg yieldMsg) {
	f.co.yield <- msg
	<-f.co.resume
}

// --- Cross-edge protocol -------------------------------------------------

// advance moves the iteration's stage counter to j, completing all nodes
// with stage < j. Under the EagerEnabling ablation it also performs the
// check-right that PIPER's lazy enabling would defer.
func (f *frame) advance(j int64) {
	f.stage.Store(j)
	if f.eng.opts.EagerEnabling {
		if nxt := f.eng.tryWakeRight(f); nxt != nil {
			f.eng.stats.eagerEnables.Add(1)
			f.w.pushWork(nxt)
		}
	}
}

// crossSatisfied reports whether node (index-1, j) has completed, i.e.
// whether the cross edge into node (index, j) is resolved. The fast path
// is a single runner-local comparison: the folding cache answers without
// touching shared memory whenever a previous load already proved the
// predecessor past j — including the stageDone sentinel, which dominates
// every stage argument, so a retired predecessor is satisfied forever
// after one read. Everything that must touch the shared counter (or the
// DependencyFolding ablation, which never populates the cache) lives in
// crossSatisfiedShared.
func (f *frame) crossSatisfied(j int64) bool {
	if f.foldCache > j {
		f.nFoldHits++
		return true
	}
	return f.crossSatisfiedShared(j)
}

// crossSatisfiedShared is the cache-miss half of crossSatisfied: load the
// predecessor's published stage counter once, refresh the folding cache,
// and handle the stageDone sentinel (releasing the chain for the garbage
// collector and the frame pool's recycling refcount — except under
// instrumentation, which still needs the predecessor's crit log).
func (f *frame) crossSatisfiedShared(j int64) bool {
	p := f.prev
	if p == nil {
		return true
	}
	f.nCrossChecks++
	c := p.stage.Load()
	if f.eng.opts.DependencyFolding {
		f.foldCache = c
	}
	if c == stageDone {
		if !f.instrOn {
			f.dropPrev()
		}
		return true
	}
	return c > j
}

// crossSatisfiedSlow re-reads the shared counter, bypassing the folding
// cache (required for the recheck in the parking protocol).
func (f *frame) crossSatisfiedSlow(j int64) bool {
	p := f.prev
	if p == nil {
		return true
	}
	f.nCrossChecks++
	c := p.stage.Load()
	if f.eng.opts.DependencyFolding {
		f.foldCache = c
	}
	return c > j
}
