// Package core implements PIPER, the provably efficient work-stealing
// scheduler for on-the-fly pipeline programs from Lee et al., "On-the-Fly
// Pipeline Parallelism" (SPAA 2013), adapted to Go.
//
// The scheduler executes "frames": control frames (one per pipe_while
// loop), iteration frames (one per loop iteration), and closure frames
// (fork-join tasks). Iteration frames own a coroutine — a goroutine that
// runs user code and yields to the scheduler over a pair of unbuffered
// channels at suspension points. A worker "executes" a frame by resuming
// its coroutine and blocking until it yields; because the worker
// goroutine is blocked on a channel while the frame runs, exactly the
// runnable segments occupy CPUs and the scheduler retains PIPER's
// bind-to-element structure, throttling, and deque discipline.
//
// With frame pooling enabled (the default; see pool.go) a retired
// iteration frame hands its goroutine and channel pair back for reuse:
// the runner parks on its resume channel after the final yield and serves
// the frame's next incarnation, so the steady state of a throttled
// pipeline allocates nothing per iteration.
package core

import (
	"math"
	"runtime/debug"
	"sync/atomic"
)

type frameKind int8

const (
	kindControl frameKind = iota
	kindIter
	kindClosure
)

// Frame status values. Parked frames are owned by nobody; a waker claims a
// parked frame with a CAS from its parked status to statusRunnable and is
// then solely responsible for delivering it to a worker.
const (
	statusRunning   int32 = iota // executing, assigned, or queued on a deque
	statusWaitCross              // iteration parked on an unsatisfied cross edge
	statusWaitScope              // coroutine parked in a fork-join sync or nested pipe
	statusThrottled              // control parked: live iterations == K
	statusSyncing                // control parked: waiting for iterations to return
	statusDone
)

// yieldKind enumerates the messages a frame's coroutine sends its driver.
type yieldKind int8

const (
	yDone       yieldKind = iota // frame finished
	ySpawn                       // control: a runnable iteration left stage 0
	ySuspend                     // frame parked (status says why)
	yLeftStage0                  // iteration: left the serial stage-0 prefix, still runnable
)

type yieldMsg struct {
	kind  yieldKind
	child *frame // for ySpawn
}

const stageDone = math.MaxInt64

// frame is the unit of scheduling. One struct type covers all three kinds
// so the work-stealing deque stays monomorphic. kind is immutable for the
// frame's whole pooled lifetime (each pool serves one kind), so stale
// racy readers — a thief inspecting a victim's assigned pointer — may
// read it and the atomic fields, but nothing else.
type frame struct {
	kind frameKind
	eng  *Engine

	// Coroutine machinery (iteration frames). With pooling the channels
	// and the runner goroutine outlive individual incarnations.
	resume  chan struct{}
	yield   chan yieldMsg
	started bool
	// reusable is immutable: true iff the frame recycles through a pool,
	// which also makes its runner loop instead of exiting (see corun).
	reusable bool
	// refs counts reasons the frame cannot yet be recycled: the
	// scheduler's ownership plus the successor chain's prev reference
	// (see pool.go for the full discipline).
	refs atomic.Int32

	// w is the worker currently driving this frame's segment. It is set by
	// driveSegment before the coroutine resumes and is stable for the
	// duration of the segment; user code pushes spawned tasks onto w's
	// deque through it.
	w *worker

	// Iteration state.
	pl        *pipeline
	it        Iter // the handle passed to the body; self-referential, reused
	index     int64
	stage     atomic.Int64 // all nodes with stage < this value are complete
	status    atomic.Int32
	waitStage atomic.Int64          // valid while status == statusWaitCross
	next      atomic.Pointer[frame] // iteration index+1, set by the control frame
	prev      *frame                // iteration index-1; runner-local, nil once satisfied-done
	inStage0  bool                  // runner-local: still in the serial stage-0 prefix

	// Dependency folding: the most recently observed value of prev's stage
	// counter. Runner-local, so reads cost nothing.
	foldCache int64
	// Runner-local stat shadows, flushed to the engine at finish.
	nFoldHits, nCrossChecks int64

	// Work/span instrumentation (see instrument.go). nodeStart, curCrit,
	// workAcc and prevCritCursor are runner-local; critLog is the
	// published per-node critical-path log read by the successor.
	instrOn        bool
	nodeStart      int64
	curCrit        int64
	workAcc        int64
	prevCritCursor int
	critLog        critLog

	// serial marks a frame driven by RunSerial: no coroutine, no
	// scheduler, stage calls only advance the counter.
	serial bool

	// Closure state.
	fn    func(w *worker)
	scope *scope

	// curScope accumulates children spawned with Go until the next Sync.
	// Runner-local.
	curScope *scope

	// Scope this coroutine is parked on (valid while status==statusWaitScope).
	waitingScope atomic.Pointer[scope]

	// panicked carries a user panic out of the coroutine.
	panicked any
}

// driveSegment resumes the frame's coroutine and blocks until it yields.
// It may be called from a worker's goroutine or, for an iteration's
// stage-0 segment, from the control frame's coroutine.
func (f *frame) driveSegment(w *worker) yieldMsg {
	f.w = w
	w.eng.stats.segments.Add(1)
	if !f.started {
		f.started = true
		go f.corun()
	}
	f.resume <- struct{}{}
	return <-f.yield
}

// corun is the body of the frame's runner goroutine. A reusable runner
// loops: after yielding yDone it parks on the resume channel and serves
// the frame's next incarnation, whose reset state it observes through the
// channel handshake. The engine's close channel releases runners whose
// frame sits idle in the pool (or was dropped from it by the GC) when the
// engine shuts down.
func (f *frame) corun() {
	for {
		select {
		case <-f.resume:
		case <-f.eng.closedCh:
			return
		}
		f.runOnce()
		f.yield <- yieldMsg{kind: yDone}
		if !f.reusable {
			return
		}
	}
}

// runOnce executes one incarnation of the iteration body, converting a
// user panic into pipeline panic state. An abortUnwind sentinel (a cancel
// observed at a stage boundary) retires the frame through the same path
// without recording a panic.
func (f *frame) runOnce() {
	f.instrBeginIteration()
	defer func() {
		if r := recover(); r != nil {
			if _, isAbort := r.(abortUnwind); isAbort {
				f.eng.stats.abortedIters.Add(1)
			} else {
				f.panicked = r
				if f.pl != nil {
					f.pl.recordPanicStack(r, debug.Stack())
				}
			}
			// Join children spawned before the unwind: no fork-join task of
			// this iteration may outlive its frame's retirement, or a
			// canceled Submit would complete while user closures still run
			// (and the frame would recycle under a live scope owner).
			if sc := f.curScope; sc != nil {
				f.curScope = nil
				f.drainScope(sc)
			}
			f.finishIter()
		}
	}()
	f.pl.body(&f.it)
	// Implicit cilk_sync: every Cilk function syncs before returning, so
	// children spawned with Go but never Synced join here.
	if sc := f.curScope; sc != nil {
		f.curScope = nil
		f.syncScope(sc)
	}
	f.finishIter()
}

// abortCheck unwinds the iteration if its submission has been canceled.
// Called at stage boundaries — the cooperative preemption points.
func (f *frame) abortCheck() {
	if f.pl.abortRequested() {
		panic(abortUnwind{})
	}
}

// drainScope joins sc while already unwinding, recording (rather than
// rethrowing) any child panic.
func (f *frame) drainScope(sc *scope) {
	defer func() {
		if r := recover(); r != nil {
			if _, isAbort := r.(abortUnwind); !isAbort && f.pl != nil {
				f.pl.recordPanicStack(r, debug.Stack())
			}
		}
	}()
	f.syncScope(sc)
}

// finishIter publishes iteration completion: every cross edge out of this
// iteration is now satisfied.
func (f *frame) finishIter() {
	if f.kind == kindIter {
		f.instrFinishIteration()
		f.stage.Store(stageDone)
		f.dropPrev()
		f.eng.stats.crossChecks.Add(f.nCrossChecks)
		f.eng.stats.foldHits.Add(f.nFoldHits)
	}
	f.status.Store(statusDone)
}

// park yields the given suspend message and blocks until a worker resumes
// the frame. The caller must already have published the parked status and
// re-checked its condition (or lost a claiming CAS to a waker).
func (f *frame) park(msg yieldMsg) {
	f.yield <- msg
	<-f.resume
}

// --- Cross-edge protocol -------------------------------------------------

// advance moves the iteration's stage counter to j, completing all nodes
// with stage < j. Under the EagerEnabling ablation it also performs the
// check-right that PIPER's lazy enabling would defer.
func (f *frame) advance(j int64) {
	f.stage.Store(j)
	if f.eng.opts.EagerEnabling {
		if nxt := f.eng.tryWakeRight(f); nxt != nil {
			f.eng.stats.eagerEnables.Add(1)
			f.w.pushWork(nxt)
		}
	}
}

// crossSatisfied reports whether node (index-1, j) has completed, i.e.
// whether the cross edge into node (index, j) is resolved. It consults the
// dependency-folding cache first when the optimization is enabled.
func (f *frame) crossSatisfied(j int64) bool {
	p := f.prev
	if p == nil {
		return true
	}
	if f.eng.opts.DependencyFolding && f.foldCache > j {
		f.nFoldHits++
		return true
	}
	f.nCrossChecks++
	c := p.stage.Load()
	f.foldCache = c
	if c == stageDone {
		// Release the chain (for the garbage collector, and for the frame
		// pool's recycling refcount) — except under instrumentation,
		// which still needs the predecessor's crit log.
		if !f.instrOn {
			f.dropPrev()
		}
		return true
	}
	return c > j
}

// crossSatisfiedSlow re-reads the shared counter, bypassing the folding
// cache (required for the recheck in the parking protocol).
func (f *frame) crossSatisfiedSlow(j int64) bool {
	p := f.prev
	if p == nil {
		return true
	}
	f.nCrossChecks++
	c := p.stage.Load()
	f.foldCache = c
	return c > j
}
