package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"piper/internal/workload"
)

// TestCancelStressRandomized is the serving-scenario soak: hundreds of
// concurrent Submits, each canceled at a random point in its life —
// before launch, mid-flight, near completion, or never. Every Wait must
// return the context error or nil, no goroutine may leak, and every frame
// must drain back to the pools.
func TestCancelStressRandomized(t *testing.T) {
	// Both execution tiers, and the batched inline tier at both grain
	// extremes: cancellation must behave identically whether iterations
	// run inline (promoting only on a real suspension), on coroutine
	// runners throughout, one per frame acquisition (Grain 1), or many
	// per recycled batch frame (fixed Grain 8) — and in every case the
	// gauge sweep must show the batch-frame state draining back to the
	// pools after the storm.
	t.Run("inline", func(t *testing.T) {
		cancelStressRandomized(t, func(o *Options) {})
	})
	t.Run("coroutine", func(t *testing.T) {
		cancelStressRandomized(t, func(o *Options) { o.InlineFastPath = false })
	})
	t.Run("grain1", func(t *testing.T) {
		cancelStressRandomized(t, func(o *Options) { o.Grain = 1 })
	})
	t.Run("batched-g8", func(t *testing.T) {
		cancelStressRandomized(t, func(o *Options) { o.Grain = 8 })
	})
}

func cancelStressRandomized(t *testing.T, mutate func(*Options)) {
	base := goroutineBaseline()
	opts := DefaultOptions()
	opts.Workers = 4
	mutate(&opts)
	e := NewEngine(opts)

	const pipelines = 300
	rng := workload.NewRNG(0xc0ffee)
	var (
		wg        sync.WaitGroup
		completed atomic.Int64
		canceled  atomic.Int64
		badErrs   atomic.Int64
	)
	for p := 0; p < pipelines; p++ {
		iters := 1 + int(rng.Intn(40))
		spin := int64(rng.Intn(2000))
		// mode 0: never cancel; 1: pre-canceled; 2: cancel after a random
		// delay; 3: cancel via Handle.Cancel from the waiter.
		mode := int(rng.Intn(4))
		delay := time.Duration(rng.Intn(300)) * time.Microsecond

		ctx, cancel := context.WithCancel(context.Background())
		if mode == 1 {
			cancel()
		}
		i := 0
		var sink atomic.Uint64
		h := e.Submit(ctx, func() bool { i++; return i <= iters }, func(it *Iter) {
			it.Continue(1)
			sink.Add(workload.Spin(spin))
			it.Wait(2)
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cancel()
			switch mode {
			case 2:
				time.Sleep(delay)
				cancel()
			case 3:
				time.Sleep(delay)
				h.Cancel()
			}
			switch err := h.Wait(); {
			case err == nil:
				completed.Add(1)
			case errors.Is(err, context.Canceled):
				canceled.Add(1)
			default:
				badErrs.Add(1)
				t.Errorf("Wait = %v, want nil or context.Canceled", err)
			}
		}()
	}
	wg.Wait()

	if completed.Load()+canceled.Load() != pipelines {
		t.Fatalf("accounting: %d completed + %d canceled + %d bad != %d",
			completed.Load(), canceled.Load(), badErrs.Load(), pipelines)
	}
	s := e.Stats()
	if s.Submits != pipelines {
		t.Fatalf("Submits = %d, want %d", s.Submits, pipelines)
	}
	if s.AbortedPipelines != canceled.Load() {
		t.Errorf("AbortedPipelines = %d, but %d Waits returned the context error",
			s.AbortedPipelines, canceled.Load())
	}
	t.Logf("completed=%d canceled=%d abortedIters=%d cancelRequests=%d",
		completed.Load(), canceled.Load(), s.AbortedIterations, s.CancelRequests)

	// Leak invariants: pool gauges back to baseline with the engine still
	// open, then goroutine count back to baseline after Close.
	checkEngineDrained(t, e)
	e.Close()
	checkGoroutinesSettle(t, base, 4)
}

// TestCancelStressNestedForkJoin drives the abort paths through the
// composition the runtime optimizes hardest: nested pipelines and
// fork-join stages under random cancellation.
func TestCancelStressNestedForkJoin(t *testing.T) {
	t.Run("inline", func(t *testing.T) {
		cancelStressNestedForkJoin(t, func(o *Options) {})
	})
	t.Run("coroutine", func(t *testing.T) {
		cancelStressNestedForkJoin(t, func(o *Options) { o.InlineFastPath = false })
	})
	// The nested pipelines force a split in every claimed batch, driving
	// the abort paths through the split/release machinery.
	t.Run("batched-g8", func(t *testing.T) {
		cancelStressNestedForkJoin(t, func(o *Options) { o.Grain = 8 })
	})
}

func cancelStressNestedForkJoin(t *testing.T, mutate func(*Options)) {
	base := goroutineBaseline()
	opts := DefaultOptions()
	opts.Workers = 4
	mutate(&opts)
	e := NewEngine(opts)

	const pipelines = 60
	rng := workload.NewRNG(0xdecaf)
	var wg sync.WaitGroup
	for p := 0; p < pipelines; p++ {
		delay := time.Duration(rng.Intn(500)) * time.Microsecond
		ctx, cancel := context.WithCancel(context.Background())
		i := 0
		var sink atomic.Uint64
		h := e.Submit(ctx, func() bool { i++; return i <= 30 }, func(it *Iter) {
			it.Continue(1)
			it.Go(func() { sink.Add(workload.Spin(200)) })
			it.Go(func() { sink.Add(workload.Spin(200)) })
			it.Sync()
			it.Wait(2)
			j := 0
			it.PipeWhile(func() bool { j++; return j <= 4 }, func(nit *Iter) {
				nit.Continue(1)
				sink.Add(workload.Spin(100))
			})
			it.Wait(3)
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(delay)
			cancel()
			if err := h.Wait(); err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("Wait = %v", err)
			}
		}()
	}
	wg.Wait()
	checkEngineDrained(t, e)
	e.Close()
	checkGoroutinesSettle(t, base, 4)
}

// TestCancelStressSubmitWaitAdmissionRace storms the race between a
// SubmitWaitThrottled caller's context cancellation and a freed
// admission slot resolving simultaneously. The contract under test: the
// Handle must report either a successful admission (launching the
// pipeline, which a dead context then aborts through the ordinary
// cancellation path) or the context's cause — never hang, and never
// release a slot twice. The trailing capacity probe is the
// double-release/leak detector: after the storm the budget must hold
// exactly MaxPending slots, no more and no fewer.
func TestCancelStressSubmitWaitAdmissionRace(t *testing.T) {
	base := goroutineBaseline()
	opts := DefaultOptions()
	opts.Workers = 4
	opts.MaxPending = 2
	e := NewEngine(opts)

	const callers = 240
	rng := workload.NewRNG(0xad317)
	var (
		wg        sync.WaitGroup
		completed atomic.Int64
		canceled  atomic.Int64
	)
	for c := 0; c < callers; c++ {
		// Cancellation delays are drawn across the whole admission-latency
		// band (the short pipelines below run in tens to hundreds of
		// microseconds), so many cancels land exactly while a freed slot
		// is being handed to the waiter.
		delay := time.Duration(rng.Intn(300)) * time.Microsecond
		spin := int64(rng.Intn(1500))
		ctx, cancel := context.WithCancel(context.Background())
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(delay)
			cancel()
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			var sink atomic.Uint64
			h := e.SubmitWaitThrottled(ctx, 2, func() bool { i++; return i <= 3 }, func(it *Iter) {
				it.Continue(1)
				sink.Add(workload.Spin(spin))
				it.Wait(2)
			})
			select {
			case <-h.Done():
			case <-time.After(30 * time.Second):
				t.Error("admission race hang: Handle never resolved")
				return
			}
			switch err := h.Wait(); {
			case err == nil:
				completed.Add(1)
			case errors.Is(err, context.Canceled):
				canceled.Add(1)
			default:
				t.Errorf("Wait = %v, want nil or context.Canceled", err)
			}
		}()
	}
	wg.Wait()

	if total := completed.Load() + canceled.Load(); total != callers {
		t.Fatalf("accounting: %d completed + %d canceled != %d", completed.Load(), canceled.Load(), callers)
	}
	// Per-class admission accounting: every submission resolved exactly
	// one way, and an admission canceled at launch still counts admitted
	// (its slot traveled the full admit→release lifecycle).
	ts := e.TenantStats()[0]
	if ts.Submitted != callers {
		t.Errorf("Submitted = %d, want %d", ts.Submitted, callers)
	}
	if ts.Admitted+ts.Rejected+ts.Canceled != ts.Submitted {
		t.Errorf("sum: %+v, want Submitted == Admitted+Rejected+Canceled", ts)
	}
	if ts.Rejected != 0 {
		t.Errorf("Rejected = %d on an open engine with no class deadline, want 0", ts.Rejected)
	}
	if ts.Admitted < completed.Load() {
		t.Errorf("Admitted = %d < %d completions", ts.Admitted, completed.Load())
	}
	if ts.Waiting != 0 || ts.Pending != 0 {
		t.Errorf("gauges after storm: %+v, want zero Waiting/Pending", ts)
	}

	// Capacity probe: a leaked slot would reject one of the two gated
	// submissions; a double-released slot would admit the third.
	gate := make(chan struct{})
	g1, g2 := gatedSubmit(e, gate), gatedSubmit(e, gate)
	waitTenant(t, e, DefaultTenant, 5*time.Second, func(s TenantStats) bool { return s.Pending == 2 })
	if err := e.Submit(nil, func() bool { return false }, func(*Iter) {}).Wait(); !errors.Is(err, ErrSaturated) {
		t.Errorf("budget after storm: third submit err = %v, want ErrSaturated (slot double-release?)", err)
	}
	close(gate)
	if err := g1.Wait(); err != nil {
		t.Errorf("capacity probe 1: %v (slot leaked during the storm?)", err)
	}
	if err := g2.Wait(); err != nil {
		t.Errorf("capacity probe 2: %v (slot leaked during the storm?)", err)
	}

	checkEngineDrained(t, e)
	e.Close()
	checkGoroutinesSettle(t, base, 4)
}

// TestCancelStressCancelRacesClose storms Handle.Cancel against
// Engine.Close with the scheduler perturbation hooks active: submissions
// keep arriving while Close fires mid-storm, and every handle is canceled
// from a racing waiter. Each Wait must resolve to nil (completed before
// the drain), context.Canceled (the cancel won), or ErrEngineClosed (the
// submission lost the race to Close) — never anything else, never a hang
// — and the goroutine count must settle back to baseline: the abort
// unwinding and the close drain may not strand each other's frames.
func TestCancelStressCancelRacesClose(t *testing.T) {
	for _, seed := range []uint64{0x5eed1, 0xbead2, 0xfeed3} {
		t.Run(fmt.Sprintf("seed%x", seed), func(t *testing.T) {
			base := goroutineBaseline()
			opts := DefaultOptions()
			opts.Workers = 4
			opts.hooks = newPerturber(seed)
			e := NewEngine(opts)

			const pipelines = 120
			rng := workload.NewRNG(seed)
			closeAt := 40 + int(rng.Intn(40))
			var (
				wg        sync.WaitGroup
				completed atomic.Int64
				canceled  atomic.Int64
				closed    atomic.Int64
			)
			for p := 0; p < pipelines; p++ {
				delay := time.Duration(rng.Intn(200)) * time.Microsecond
				if p > closeAt {
					// Spread the tail of the storm across the close drain so
					// some submissions genuinely lose the race and resolve
					// with ErrEngineClosed instead of all sneaking in first.
					time.Sleep(time.Duration(rng.Intn(60)) * time.Microsecond)
				}
				i := 0
				var sink atomic.Uint64
				h := e.Submit(nil, func() bool { i++; return i <= 20 }, func(it *Iter) {
					it.Continue(1)
					sink.Add(workload.Spin(300))
					it.Wait(2)
				})
				if p == closeAt {
					wg.Add(1)
					go func() {
						defer wg.Done()
						e.Close()
					}()
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					time.Sleep(delay)
					h.Cancel()
					switch err := h.Wait(); {
					case err == nil:
						completed.Add(1)
					case errors.Is(err, context.Canceled):
						canceled.Add(1)
					case errors.Is(err, ErrEngineClosed):
						closed.Add(1)
					default:
						t.Errorf("Wait = %v, want nil, context.Canceled, or ErrEngineClosed", err)
					}
				}()
			}
			wg.Wait()
			e.Close() // idempotent: the racing Close already won
			if total := completed.Load() + canceled.Load() + closed.Load(); total != pipelines {
				t.Errorf("accounting: %d completed + %d canceled + %d closed != %d",
					completed.Load(), canceled.Load(), closed.Load(), pipelines)
			}
			t.Logf("completed=%d canceled=%d closed=%d (close at submission %d)",
				completed.Load(), canceled.Load(), closed.Load(), closeAt)
			checkGoroutinesSettle(t, base, 4)
		})
	}
}
