package core

import (
	"context"
	"sync"
	"testing"

	"piper/internal/arena"
)

// Arena leak checks: the data-plane analogue of the frame-gauge drain
// tests. Pipeline bodies check regions out of the engine's arena, hand
// them across stages and fork-join tasks by retain/release, and every
// path out of a body — normal completion, cancellation at a stage
// boundary, panic unwinding — must leave LiveArenaBytes at zero
// (checkEngineDrained asserts it alongside the frame gauges).

// TestArenaDrainsAfterCompletion runs the canonical ownership hand-off —
// a producer/consumer chain through serial stage 0, exactly the vidsim
// reference-frame pattern — to completion on enabled and disabled
// arenas, and requires balanced counters and a drained engine.
func TestArenaDrainsAfterCompletion(t *testing.T) {
	for _, enabled := range []bool{true, false} {
		name := "enabled"
		if !enabled {
			name = "disabled"
		}
		t.Run(name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.Workers = 2
			opts.ArenaBuffers = enabled
			e := NewEngine(opts)
			defer e.Close()
			a := e.Arena()

			var prev *arena.Ref
			i := 0
			e.PipeWhile(func() bool { i++; return i <= 200 }, func(it *Iter) {
				// Stage 0 (serial): take out this iteration's region plus a
				// chain reference for the successor; adopt the predecessor's
				// chain reference.
				mine := a.Get(1024)
				mine.Retain() // the chain slot's reference
				from := prev
				prev = mine
				defer mine.Release()
				defer func() {
					if from != nil {
						from.Release()
					}
				}()
				mine.B = append(mine.B, byte(i))

				it.Wait(1)
				if from != nil && len(from.B) == 0 {
					t.Error("predecessor region lost its payload")
				}

				it.Continue(2)
				// Hand one reference to each fork-join task.
				mine.Retain()
				mine.Retain()
				it.For(2, 1, func(int) {
					_ = mine.Bytes()
					mine.Release()
				})

				it.Wait(3)
			})
			if prev != nil {
				prev.Release() // the last iteration's chain reference
			}
			checkEngineDrained(t, e)

			s := e.Stats()
			if s.ArenaGets != 200 {
				t.Errorf("ArenaGets = %d, want 200", s.ArenaGets)
			}
			if enabled {
				if s.ArenaPuts != s.ArenaGets {
					t.Errorf("ArenaPuts = %d, want %d (every final release must recycle)", s.ArenaPuts, s.ArenaGets)
				}
				if s.ArenaBytesRecycled == 0 {
					t.Error("ArenaBytesRecycled = 0 on an enabled arena")
				}
			} else {
				if s.ArenaPuts != 0 || s.ArenaBytesRecycled != 0 {
					t.Errorf("disabled arena recycled: puts %d, bytes %d", s.ArenaPuts, s.ArenaBytesRecycled)
				}
			}
		})
	}
}

// TestArenaDrainsUnderCancelStorm is the seeded, schedule-perturbed
// cancellation storm over arena-carrying pipelines: submissions are
// canceled at random points (half immediately, mid-claim), the
// perturbation hooks widen the interleavings, and LiveArenaBytes must
// still drain to zero under every grain tier and seed.
func TestArenaDrainsUnderCancelStorm(t *testing.T) {
	for _, cfg := range []struct {
		name  string
		grain int
	}{{"grain1", 1}, {"adaptive", 0}} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				opts := DefaultOptions()
				opts.Workers = 2
				opts.Grain = cfg.grain
				opts.hooks = newPerturber(seed * 0x9e3779b9)
				e := NewEngine(opts)
				a := e.Arena()
				var wg sync.WaitGroup
				for q := 0; q < 40; q++ {
					ctx, cancel := context.WithCancel(context.Background())
					i := 0
					sz := 256 << (q % 4)
					h := e.Submit(ctx, func() bool { i++; return i <= 48 }, func(it *Iter) {
						r := a.Get(sz)
						defer r.Release()
						r.B = append(r.B, byte(i))
						it.Wait(1)
						it.Continue(2)
						r.Retain()
						func() {
							defer r.Release()
							_ = r.Bytes()
						}()
						it.Wait(3)
					})
					wg.Add(1)
					go func(q int) {
						defer wg.Done()
						defer cancel()
						if q%2 == 0 {
							cancel() // half the storm aborts mid-flight
						}
						_ = h.Wait()
					}(q)
				}
				wg.Wait()
				checkEngineDrained(t, e)
				e.Close()
			}
		})
	}
}

// TestArenaDrainsAfterBodyPanic panics out of a body holding a live
// region: unwinding must run the deferred release, the panic must surface
// as a *PanicError on the handle, and the arena must drain.
func TestArenaDrainsAfterBodyPanic(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 2
	e := NewEngine(opts)
	defer e.Close()
	a := e.Arena()

	i := 0
	h := e.Submit(nil, func() bool { i++; return i <= 64 }, func(it *Iter) {
		r := a.Get(4096)
		defer r.Release()
		it.Continue(1)
		if i == 5 {
			panic("mid-pipeline failure with a live region")
		}
		it.Wait(2)
	})
	err := h.Wait()
	if err == nil {
		t.Fatal("panicking pipeline reported success")
	}
	if _, ok := err.(*PanicError); !ok {
		t.Fatalf("Wait returned %T (%v), want *PanicError", err, err)
	}
	checkEngineDrained(t, e)
}
