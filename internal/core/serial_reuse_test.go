package core

import "testing"

// TestRunSerialFrameReuseContract is the regression test for the serial
// frame's per-iteration reset: the one frame RunSerial reuses must present
// each iteration with acquired-state scheduling fields even when the
// previous iteration advanced deep into the stage ladder, ran fork-join
// scope, and started nested pipelines.
func TestRunSerialFrameReuseContract(t *testing.T) {
	var order []int64
	n := int64(0)
	rep := RunSerial(func() bool { return n < 8 }, func(it *Iter) {
		n++
		if got := it.Index(); got != n-1 {
			t.Fatalf("iteration %d: Index() = %d", n-1, got)
		}
		// Stage must reset to 0 despite the previous iteration ending at
		// stage 7; a stale counter would make checkStageArg reject every
		// stage the body declares.
		if got := it.Stage(); got != 0 {
			t.Fatalf("iteration %d starts at stage %d, want 0", n-1, got)
		}
		it.Continue(2)

		// Fork-join scope: serially elided, but it must not leak state
		// into the next iteration either.
		ran := 0
		it.Go(func() { ran++ })
		it.For(3, 1, func(int) { ran++ })
		it.Sync()
		if ran != 4 {
			t.Fatalf("iteration %d: fork-join elision ran %d children, want 4", n-1, ran)
		}

		// A nested pipeline in serial mode recurses into RunSerial on a
		// fresh frame; the outer frame's stage must be untouched after it.
		before := it.Stage()
		m := 0
		it.PipeWhile(func() bool { m++; return m <= 2 }, func(inner *Iter) {
			if inner.Stage() != 0 {
				t.Fatalf("nested serial iteration starts at stage %d", inner.Stage())
			}
			inner.Wait(1)
		})
		if got := it.Stage(); got != before {
			t.Fatalf("iteration %d: nested pipeline moved outer stage %d -> %d", n-1, before, got)
		}

		it.Wait(7)
		order = append(order, it.Index())
	})
	if rep.Iterations != 8 || rep.MaxLiveIterations != 1 {
		t.Fatalf("report = %+v", rep)
	}
	for i, idx := range order {
		if idx != int64(i) {
			t.Fatalf("iteration order %v", order)
		}
	}
}

// TestRunSerialPanicStateNotSticky: a recovered panic from one RunSerial
// call must not poison a later call's frame (each call allocates fresh),
// and a panic mid-iteration surfaces to the caller unchanged.
func TestRunSerialPanicStateNotSticky(t *testing.T) {
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want boom", r)
			}
		}()
		i := 0
		RunSerial(func() bool { i++; return i <= 3 }, func(it *Iter) {
			if i == 2 {
				panic("boom")
			}
		})
	}()
	// The engine-free serial path still works afterwards.
	i := 0
	rep := RunSerial(func() bool { i++; return i <= 3 }, func(it *Iter) { it.Continue(1) })
	if rep.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3", rep.Iterations)
	}
}
