package core

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// pipeline is the runtime state of one pipe_while loop.
type pipeline struct {
	eng  *Engine
	cond func() bool
	body func(it *Iter)

	// K is the throttling limit: at most K iteration frames are live.
	// It is atomic because the adaptive-throttling policy (an extension
	// prompted by the paper's Section 11 discussion) lets the control
	// frame adjust it while other workers read it at iteration return.
	K atomic.Int64
	// kMin/kMax bound the adaptive window; kMin == kMax disables
	// adaptation.
	kMin, kMax int64
	// join counts live (started, unreturned) iteration frames, plus the
	// paper's control-frame join-counter role.
	join atomic.Int64

	control *frame

	// parent is the scope a nested pipe_while completes into; nil for a
	// top-level pipeline, which signals done instead.
	parent *scope
	done   chan struct{}

	// sub is the Handle of an asynchronous submission (nil for blocking
	// PipeWhile); completion is harvested into it by finishTopLevel.
	sub *Handle
	// admitted marks a submission holding an admission slot, released by
	// finishTopLevel when the pipeline completes; tenant is the admission
	// class index the slot is charged to (see admission.go).
	admitted bool
	tenant   int
	// abort points at the submission's cancellation word, shared by every
	// pipeline nested under the same Submit; nil when the pipeline cannot
	// be canceled. The abortState is owned by the Handle and outlives this
	// (pooled) pipeline.
	abort *abortState

	// depth is the pipe-nesting depth D of this loop (1 = top level).
	depth int

	nextIndex int64

	// Control-frame state machine (executed directly on worker
	// goroutines; serialized by frame ownership).
	phase    int8
	prevIter *frame

	// Batched inline execution (see frame.runInlineBatch). All four words
	// are control-frame state like phase: serialized by frame ownership,
	// so the adaptive policy needs no atomics. grain is the current run
	// length G a batch claims; grainHold suppresses the next growth step
	// (set at acquisition, so a fresh pipeline probes at its starting
	// grain, and by grainOnSplit after a promotion ended a batch early).
	grain      int64
	grainMax   int64
	grainFixed bool
	grainHold  bool

	// Compiled-plan state (see plan.go). plan is the published compiled
	// shape: stored once by the recording iteration's seal, swapped to nil
	// by deopt, loaded by the control frame when binding new iterations.
	// planEligible caches the option gate; rec is the embedded iteration-0
	// recorder (touched only by that iteration's runner). planSeeded,
	// serialPlan, and lastStealStamp are control-frame state like grain;
	// planCompiled/planStages/planFused are written once at seal and read
	// by report after completion (ordered by the pipeline's join/done
	// handshake, like grain).
	plan           atomic.Pointer[plan]
	planEligible   bool
	planSeeded     bool
	serialPlan     *plan
	lastStealStamp int64
	sawSteals      bool
	rec            planRecorder
	planCompiled   bool
	planStages     int64
	planFused      int64
	planDeopts     atomic.Int64

	// Work/span instrumentation (see instrument.go).
	instrument bool
	workNs     atomic.Int64
	spanNs     atomic.Int64

	panicVal atomic.Pointer[panicBox]

	// maxLive tracks the observed maximum of join for the space
	// experiments (Theorem 13): live iteration frames ≈ iteration stack
	// space.
	maxLive atomic.Int64
}

// Control phases.
const (
	phaseLoop  int8 = iota // spawning iterations
	phaseDrain             // loop condition exhausted; syncing children
)

// panicBox carries a captured panic value plus the stack of the
// panicking goroutine (populated on the recovery paths that have it).
type panicBox struct {
	v     any
	stack []byte
}

// recordPanic stores the first panic. CAS (rather than sync.Once) keeps
// the pipeline reusable through the frame pool.
func (pl *pipeline) recordPanic(v any) { pl.recordPanicStack(v, nil) }

// recordPanicStack is recordPanic with the panicking goroutine's stack.
func (pl *pipeline) recordPanicStack(v any, stack []byte) {
	pl.panicVal.CompareAndSwap(nil, &panicBox{v: v, stack: stack})
}

func (pl *pipeline) panicked() bool { return pl.panicVal.Load() != nil }

// abortRequested reports whether the submission this pipeline belongs to
// has been canceled. Costs a nil check for non-cancelable pipelines.
func (pl *pipeline) abortRequested() bool {
	a := pl.abort
	return a != nil && a.requested()
}

// Iter is the per-iteration handle passed to the pipeline body. Its
// methods must be called from the body's goroutine only.
type Iter struct {
	f *frame
}

// Index reports the iteration number, starting at 0.
func (it *Iter) Index() int64 { return it.f.index }

// Stage reports the stage number of the node currently executing.
func (it *Iter) Stage() int64 {
	f := it.f
	if p := f.plan; p != nil && f.planCur > 0 {
		// Fused transitions defer publication to the shared counter, so
		// the per-iteration view reads the plan cursor instead — the
		// compiled run is indistinguishable from interpreted execution
		// through the Iter handle.
		return p.nodes[f.planCur-1].stage
	}
	return f.stage.Load()
}

// Engine returns the engine executing this iteration, for spawning nested
// pipelines.
func (it *Iter) Engine() *Engine { return it.f.eng }

func (it *Iter) checkStageArg(j int64) {
	if cur := it.f.stage.Load(); j <= cur {
		panic(fmt.Sprintf("piper: stage arguments must strictly increase: at stage %d, requested %d", cur, j))
	}
	if j >= stageDone {
		panic("piper: stage number too large")
	}
}

// Wait implements pipe_wait(j): end the current node and begin node
// (i, j) once node (i-1, j) of the previous iteration has completed.
func (it *Iter) Wait(j int64) {
	f := it.f
	if p := f.plan; p != nil {
		if f.planStep(p, j, true) {
			return
		}
		// Diverged from the recorded shape: the plan is retracted and the
		// true stage materialized; revalidate and interpret from here.
	}
	it.checkStageArg(j)
	if f.serial {
		f.serialAdvance(j)
		return
	}
	if r := f.rec; r != nil {
		r.note(j, true)
	}
	f.abortCheck()
	f.instrEndNode(j)
	f.advance(j)
	if f.inline {
		if !f.crossSatisfied(j) {
			// The edge is (probably) unsatisfied — the one event the
			// inline fast path cannot ride out. Promote to a coroutine
			// frame and park under the standard protocol; its
			// publish-then-recheck re-validates the edge, so one that
			// resolved between the inline check and the promotion just
			// continues the body with the takeover goroutine as driver.
			f.promote()
			f.parkOnCross(j)
			// A park can outlast a cancel request (the wake arrives when
			// the aborting predecessor publishes stageDone); do not start
			// stage j's user code in that case.
			f.abortCheck()
		} else if f.inStage0 {
			f.leaveStage0Inline()
		}
		f.instrBeginNode(true, j)
		return
	}
	left0 := f.inStage0
	f.inStage0 = false
	if f.crossSatisfied(j) {
		if left0 {
			// Hand control back to the pipe_while loop so iteration i+1's
			// serial stage 0 can start; the driving worker re-adopts us as
			// its assigned frame (spawned-child-first discipline).
			f.park(yieldMsg{kind: yLeftStage0})
		}
		f.instrBeginNode(true, j)
		return
	}
	f.parkOnCross(j)
	// See the inline branch above for why this re-check must follow the
	// park.
	f.abortCheck()
	f.instrBeginNode(true, j)
}

// Continue implements pipe_continue(j): end the current node and begin
// node (i, j) immediately.
func (it *Iter) Continue(j int64) {
	f := it.f
	if p := f.plan; p != nil {
		if f.planStep(p, j, false) {
			return
		}
	}
	it.checkStageArg(j)
	if f.serial {
		f.serialAdvance(j)
		return
	}
	if r := f.rec; r != nil {
		r.note(j, false)
	}
	f.abortCheck()
	f.instrEndNode(j)
	f.advance(j)
	if f.inline {
		if f.inStage0 {
			f.leaveStage0Inline()
		}
		f.instrBeginNode(false, j)
		return
	}
	if f.inStage0 {
		f.inStage0 = false
		f.park(yieldMsg{kind: yLeftStage0})
	}
	f.instrBeginNode(false, j)
}

// WaitNext is Wait with the implicit stage argument j+1.
func (it *Iter) WaitNext() { it.Wait(it.Stage() + 1) } //piper:allow-dynamic-stage Stage()+1 is monotone by construction

// ContinueNext is Continue with the implicit stage argument j+1.
func (it *Iter) ContinueNext() { it.Continue(it.Stage() + 1) } //piper:allow-dynamic-stage Stage()+1 is monotone by construction

// parkOnCross publishes the waiting state and parks unless the edge
// resolved in the meantime (publish-then-recheck; see frame.go). Wakes
// can be spurious — a check-right that loaded the waitStage of an older
// park of this frame may claim a newer park whose edge is still
// unresolved (an ABA on the status word) — so the condition is
// re-validated after every wake and the frame re-parks if needed, the
// standard condition-variable discipline.
func (f *frame) parkOnCross(j int64) {
	for {
		f.waitStage.Store(j)
		f.status.Store(statusWaitCross)
		f.eng.hookAt(hookParkPublish)
		if f.crossSatisfiedSlow(j) {
			if f.status.CompareAndSwap(statusWaitCross, statusRunning) {
				return
			}
			// Lost the CAS to a waker: it will deliver us, so park to
			// pair with its resume.
		}
		f.eng.stats.crossSuspends.Add(1)
		f.park(yieldMsg{kind: ySuspend})
		if f.crossSatisfiedSlow(j) {
			return
		}
		// Spurious wake: publish and park again.
	}
}

// newIter acquires the frame for the next iteration and links it into the
// neighbour chain. The reference the pipeline's prevIter slot held on
// prev transfers to the new frame's prev pointer (see pool.go).
func (pl *pipeline) newIter(prev *frame) *frame {
	f := pl.eng.acquireIterFrame()
	f.pl = pl
	f.index = pl.nextIndex
	f.instrOn = pl.instrument
	f.prev = prev
	if pl.planEligible {
		if pl.nextIndex == 0 {
			if !pl.instrument {
				// Iteration 0 interprets with the trace recorder attached;
				// its clean retirement seals the pipeline's plan.
				pl.rec.reset()
				f.rec = &pl.rec
			}
		} else {
			f.plan = pl.plan.Load()
		}
	}
	pl.nextIndex++
	if prev != nil {
		prev.next.Store(f)
	}
	pl.eng.stats.iterations.Add(1)
	return f
}

// step executes the pipe_while control frame. Unlike iterations, the
// control loop is pure runtime code, so it runs as a state machine
// directly on the worker's goroutine (no coroutine, no handoffs): it
// evaluates the loop condition, drives each iteration's serial stage-0
// prefix in order, spawns the remainder of the iteration, enforces the
// throttling limit, and finally syncs on all outstanding iterations.
//
// step returns ySpawn{child} when a runnable iteration left stage 0 (the
// caller pushes the control frame and adopts the child), ySuspend when
// the control frame parked (throttled or syncing; a waker will redeliver
// it, possibly while this call is still unwinding — the caller must not
// touch the frame after a suspend), and yDone at pipeline completion.
// With the inline fast path, step may instead return yInlineDone{child}
// (an iteration completed inline after releasing the control frame; the
// caller retires the child and must not touch the control frame) or
// yPromoted (an inline iteration promoted mid-body; the calling goroutine
// already served as its runner, the worker role moved to a takeover
// goroutine, and the caller must unwind touching nothing).
func (pl *pipeline) step(cf *frame, w *worker) yieldMsg {
	cf.w = w
	pl.eng.stats.segments.Add(1)
	for {
		if pl.phase == phaseLoop {
			if pl.panicked() || pl.abortRequested() {
				// Abort or panic: stop spawning. The loop condition is not
				// evaluated again (it may consume input), and phaseDrain
				// syncs on the live iterations, which unwind at their next
				// stage boundary.
				pl.phase = phaseDrain
				continue
			}
			// Throttle before testing the loop condition: the condition
			// is part of the next iteration's serial stage 0, and its
			// evaluation may consume an input element, so it must run
			// exactly once per started iteration. A sealed serial-only
			// plan elides the gate while no iteration is live: K >= 1
			// always exceeds join == 0, and a serial pipeline only keeps
			// frames live across steps when a stage-0 body promoted
			// (fork-join on stolen children) — exactly the case join > 0
			// routes back through the full gate.
			if n := pl.join.Load(); pl.serialPlan == nil || n > 0 {
				if k := pl.K.Load(); n >= k {
					// Adaptive throttling: if the machine is starving (idle
					// workers) while this pipeline is window-bound, trade
					// space for parallelism, up to kMax. This is the
					// Section 11 trade-off made explicit: on the Figure 10
					// pathology a Θ(P) window caps speedup near 3, and any
					// scheduler that does better must hold more iterations
					// live.
					if k < pl.kMax && pl.eng.idle.Load() > 0 {
						pl.K.Store(minInt64(2*k, pl.kMax))
						pl.eng.stats.throttleGrows.Add(1)
						continue
					}
					cf.status.Store(statusThrottled)
					if pl.join.Load() < pl.K.Load() {
						if cf.status.CompareAndSwap(statusThrottled, statusRunning) {
							continue // unparked ourselves
						}
						// A waker claimed the frame and is delivering it; it
						// is no longer ours.
						return yieldMsg{kind: ySuspend}
					}
					pl.eng.stats.throttleParks.Add(1)
					return yieldMsg{kind: ySuspend}
				}
			}
			if !pl.safeCond() {
				pl.phase = phaseDrain
				continue
			}
			live := pl.join.Add(1)
			for {
				m := pl.maxLive.Load()
				if live <= m || pl.maxLive.CompareAndSwap(m, live) {
					break
				}
			}
			// Adaptive shrink: reclaim space when the window is mostly
			// unused (sampled; the control frame is the only writer).
			if k := pl.K.Load(); k > pl.kMin && pl.nextIndex%32 == 31 && live < k/4 {
				pl.K.Store(maxInt64(k/2, pl.kMin))
				pl.eng.stats.throttleShrinks.Add(1)
			}

			pl.eng.hookAt(hookIteration)
			it := pl.newIter(pl.prevIter)
			pl.prevIter = it
			// Drive the iteration from here; stage 0 runs serially in
			// iteration order, exactly as the pipe_while transformation in
			// the paper prescribes.
			if pl.eng.opts.InlineFastPath {
				// Tier-1 fast path: claim a batch of up to openBatch()
				// consecutive iterations and run their bodies as direct
				// calls on this goroutine, all through the one frame just
				// acquired. The batch's final slot releases this control
				// frame to the deque at its stage-0 exit (thieves pick it
				// up to run the next iteration's stage 0), and any slot
				// that must block promotes to a coroutine frame and
				// performs that release itself — after either event this
				// step invocation no longer owns the pipeline and must
				// unwind through the returned message without touching it.
				tracing := pl.eng.tracing.Load()
				var traceStart int64
				if tracing {
					traceStart = nowNs()
				}
				claim := pl.openBatch()
				var res inlineResult
				if sp := pl.serialPlan; sp != nil && it.plan == sp {
					// Serial-only compiled plan: the batched fast retire
					// loop elides per-slot stage/status publication (see
					// runInlineBatchSerial).
					res = it.runInlineBatchSerial(w, claim)
				} else {
					if pl.serialPlan != nil && pl.plan.Load() == nil {
						// The plan deopted; retract the serial fast loop.
						pl.serialPlan = nil
					}
					res = it.runInlineBatch(w, claim)
				}
				switch res {
				case inlineDoneOwned:
					// The batch ran to completion without releasing the
					// control frame (its final body never left stage 0, or
					// the loop exhausted/aborted mid-claim): retire the
					// frame inline. The chain slot (pl.prevIter) keeps its
					// reference until the next iteration links past it.
					w.traceSegment(tracing, kindIter, it.index, traceStart)
					pl.join.Add(-1)
					it.unref()
					continue
				case inlineDoneReleased:
					w.traceSegment(tracing, kindIter, it.index, traceStart)
					return yieldMsg{kind: yInlineDone, child: it}
				default: // inlinePromoted
					return yieldMsg{kind: yPromoted}
				}
			}
			msg := it.driveSegment(w)
			switch msg.kind {
			case yDone:
				// The whole body was stage 0 (or it panicked): retire
				// inline. The chain slot (pl.prevIter) keeps its
				// reference until the next iteration links past it.
				pl.join.Add(-1)
				it.unref()
			case ySuspend:
				// Parked straight out of stage 0 on a cross edge; a
				// future check-right will resume it. Keep looping.
			case yLeftStage0:
				// Runnable beyond stage 0: the worker pushes this control
				// frame (the continuation) and adopts the iteration —
				// thieves steal the continuation and run iteration i+1's
				// stage 0, unfolding the pipeline.
				return yieldMsg{kind: ySpawn, child: it}
			}
			continue
		}
		// phaseDrain — cilk_sync: wait for outstanding iterations.
		if pl.join.Load() > 0 {
			cf.status.Store(statusSyncing)
			if pl.join.Load() == 0 {
				if cf.status.CompareAndSwap(statusSyncing, statusRunning) {
					pl.releaseChain()
					return yieldMsg{kind: yDone}
				}
				return yieldMsg{kind: ySuspend}
			}
			return yieldMsg{kind: ySuspend}
		}
		pl.releaseChain()
		return yieldMsg{kind: yDone}
	}
}

// openBatch runs the per-batch grain adaptation step and returns the
// claim length for the next inline batch. Called by step with
// control-frame ownership, once per batch. The policy: grow geometrically
// (×2, up to grainMax) while batches complete without a split and no
// worker is both idle and able to profit from the released continuation
// (idleThieves), and shrink (÷2) as soon as such workers appear — idle
// thieves mean the pipeline should be releasing its stealable
// continuation more often, not less, so batching must never starve
// parallelism to buy amortization. A freshly sealed plan is folded in
// here (the control frame owns all grain state): a serial-only plan
// installs the batched fast retire loop, and the recorded iteration cost
// seeds the adaptive grain, replacing the cold G=1 ramp for bodies the
// recording proves short. Instrumented and traced runs pin the claim
// to 1: per-node work/span accounting chains critical paths through real
// predecessor frames, and trace consumers expect one segment per
// iteration.
func (pl *pipeline) openBatch() int64 {
	g := pl.grain
	if pl.instrument || pl.eng.tracing.Load() {
		return 1
	}
	if !pl.planSeeded {
		if p := pl.plan.Load(); p != nil {
			pl.planSeeded = true
			if p.serialOnly {
				pl.serialPlan = p
			}
			if !pl.grainFixed && p.seedGrain > g {
				g = minInt64(p.seedGrain, pl.grainMax)
				pl.grain = g
				pl.grainHold = true
			}
		}
	}
	if pl.grainFixed {
		return g
	}
	if pl.eng.idle.Load() > 0 && pl.idleThieves() {
		if g > 1 {
			g >>= 1
			pl.grain = g
		}
		pl.grainHold = false
		return g
	}
	if pl.grainHold {
		pl.grainHold = false
		return g
	}
	if g < pl.grainMax {
		g <<= 1
		if g > pl.grainMax {
			g = pl.grainMax
		}
		pl.grain = g
	}
	return g
}

// idleThieves decides whether the idle workers behind a prospective grain
// shrink could actually use a more-often-released continuation. A bare
// idle count cannot: with MinWorkers > 1 (or any fixed pool wider than
// the offered load) a permanently parked floor worker would otherwise pin
// every pipeline at G=1 forever — the spare steals nothing whether or not
// the continuation is released, so shrinking buys no parallelism and
// costs all of the batch amortization. The same holds for a worker the
// elastic pool spawned at launch that never found anything to raid. What
// qualifies the idleness is proven contention: steal activity or other
// pipelines launched since the last batch open mean workers genuinely
// compete for this engine right now, and once any such signal has been
// observed in this pipeline's lifetime (sawSteals), surplus workers
// still hanging around are treated as thieves-in-waiting — they were
// spawned for real load and retire when the grace expires, so deferring
// to them is transient by construction. A parked worker on an engine
// where this pipeline only ever ran alone shows neither signal, and the
// grain climbs as it would on a single-worker pool.
func (pl *pipeline) idleThieves() bool {
	e := pl.eng
	stamp := e.stats.steals.Load() + e.stats.thiefEnables.Load() +
		e.stats.pipelines.Load()
	if stamp != pl.lastStealStamp {
		pl.lastStealStamp = stamp
		pl.sawSteals = true
		return true
	}
	return pl.sawSteals && int(e.liveN.Load()) > e.opts.MinWorkers
}

// grainOnSplit backs the adaptive grain off after a promotion that ended
// a batch early (or blocked an unreleased stage-0 prefix): the pipeline
// is hitting real suspensions, so long claims would keep splitting while
// holding the continuation hostage. Called from promote with the control
// frame still owned by the promoting goroutine, which is what makes the
// unsynchronized grain write safe.
func (pl *pipeline) grainOnSplit() {
	if pl.grainFixed {
		return
	}
	if g := pl.grain; g > 1 {
		pl.grain = g >> 1
	}
	pl.grainHold = true
}

// releaseChain drops the pipeline's reference on the most recent
// iteration frame at the end of the drain phase, allowing it to recycle
// (all iterations have retired by now, so this is the last reference).
func (pl *pipeline) releaseChain() {
	if pl.prevIter != nil {
		pl.prevIter.unref()
		pl.prevIter = nil
	}
}

// safeCond evaluates the user's loop condition, converting a panic into
// pipeline panic state (the condition runs on a worker goroutine).
func (pl *pipeline) safeCond() (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			pl.recordPanicStack(r, debug.Stack())
			ok = false
		}
	}()
	return pl.cond()
}

// onIterReturn performs the bookkeeping when an iteration frame returns:
// decrement the join counter and, if that enables the parked control frame
// (throttle release or final sync), claim it. Returns the control frame if
// the caller is now responsible for delivering it.
func (pl *pipeline) onIterReturn() *frame {
	n := pl.join.Add(-1)
	cf := pl.control
	switch cf.status.Load() {
	case statusThrottled:
		if n < pl.K.Load() && cf.status.CompareAndSwap(statusThrottled, statusRunning) {
			return cf
		}
	case statusSyncing:
		if n == 0 && cf.status.CompareAndSwap(statusSyncing, statusRunning) {
			return cf
		}
	}
	return nil
}

// MaxLiveIterations reports the maximum number of simultaneously live
// iteration frames observed, the quantity bounded by the throttling
// analysis (Theorem 11 / Theorem 13).
func (pl *pipeline) MaxLiveIterations() int64 { return pl.maxLive.Load() }

// report snapshots the completed pipeline's space/shape numbers — the
// single source for both the blocking launch and the async harvest.
func (pl *pipeline) report() PipelineReport {
	return PipelineReport{
		Iterations:        pl.nextIndex,
		MaxLiveIterations: pl.maxLive.Load(),
		FinalThrottle:     pl.K.Load(),
		FinalGrain:        pl.grain,
		WorkNs:            pl.workNs.Load(),
		SpanNs:            pl.spanNs.Load(),
		PlanCompiled:      pl.planCompiled,
		PlanStages:        pl.planStages,
		PlanFusedStages:   pl.planFused,
		PlanDeopts:        pl.planDeopts.Load(),
	}
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
