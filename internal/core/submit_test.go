package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSubmitCompletes: the async path produces the same result as
// PipeWhile and reports a clean handle.
func TestSubmitCompletes(t *testing.T) {
	e := newTestEngine(t, 4)
	const n = 500
	var sum atomic.Int64
	i := 0
	h := e.Submit(context.Background(), func() bool { i++; return i <= n }, func(it *Iter) {
		v := int64(i)
		it.Continue(1)
		sum.Add(v)
	})
	if err := h.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got, want := sum.Load(), int64(n*(n+1)/2); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	rep, err := h.Report()
	if err != nil || rep.Iterations != n {
		t.Fatalf("Report = %+v, %v", rep, err)
	}
	if s := e.Stats(); s.Submits != 1 || s.AbortedPipelines != 0 {
		t.Fatalf("stats = %+v", s)
	}
	checkEngineDrained(t, e)
}

// TestSubmitManyConcurrent: an engine serves many simultaneous handles.
func TestSubmitManyConcurrent(t *testing.T) {
	e := newTestEngine(t, 4)
	const pipelines, iters = 64, 50
	sums := make([]atomic.Int64, pipelines)
	handles := make([]*Handle, pipelines)
	for p := range handles {
		p := p
		i := 0
		handles[p] = e.Submit(context.Background(),
			func() bool { i++; return i <= iters },
			func(it *Iter) {
				it.Continue(1)
				sums[p].Add(1)
				it.Wait(2)
			})
	}
	for p, h := range handles {
		if err := h.Wait(); err != nil {
			t.Fatalf("pipeline %d: %v", p, err)
		}
		if got := sums[p].Load(); got != iters {
			t.Fatalf("pipeline %d ran %d iterations, want %d", p, got, iters)
		}
	}
	checkEngineDrained(t, e)
}

// TestSubmitCancelPrompt: cancellation must complete within roughly one
// stage execution, not wait for the whole (here: unbounded) pipeline.
func TestSubmitCancelPrompt(t *testing.T) {
	e := newTestEngine(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once atomic.Bool
	var iters atomic.Int64
	h := e.Submit(ctx, func() bool { return true }, func(it *Iter) {
		if once.CompareAndSwap(false, true) {
			close(started)
		}
		iters.Add(1)
		it.Wait(1)
		it.Wait(2)
	})
	<-started
	cancel()
	select {
	case <-h.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("canceled pipeline did not complete")
	}
	if err := h.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	rep, _ := h.Report()
	if rep.Iterations == 0 {
		t.Fatal("expected at least the first iteration to have started")
	}
	s := e.Stats()
	if s.CancelRequests != 1 || s.AbortedPipelines != 1 {
		t.Fatalf("stats = %+v", s)
	}
	checkEngineDrained(t, e)
}

// TestSubmitCancelReleasesThrottle: a cancel with the control frame parked
// on a full throttling window must release the window (iterations unwind,
// join drops, control drains) rather than deadlock.
func TestSubmitCancelReleasesThrottle(t *testing.T) {
	e := newTestEngine(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	const k = 4
	// Iteration 0 holds stage 1 open, so iterations 1..k-1 park on their
	// stage-2 cross edges and the control frame parks on the full window.
	h := e.SubmitThrottled(ctx, k, func() bool { return true }, func(it *Iter) {
		it.Continue(1)
		if it.Index() == 0 {
			<-release
		}
		it.Wait(2)
	})
	if !settles(10*time.Second, func() bool { return e.Stats().ThrottleParks >= 1 }) {
		t.Fatal("control frame never parked on the throttling window")
	}
	cancel()
	close(release) // iteration 0 reaches its boundary; the abort cascades
	if err := h.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	checkEngineDrained(t, e)
}

// TestSubmitPrecanceled: a context canceled before Submit still yields a
// well-formed run — no condition evaluation, the context's error out.
func TestSubmitPrecanceled(t *testing.T) {
	e := newTestEngine(t, 2)
	cause := fmt.Errorf("tenant deadline")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	condRan := false
	h := e.Submit(ctx, func() bool { condRan = true; return true }, func(it *Iter) {})
	if err := h.Wait(); !errors.Is(err, cause) {
		t.Fatalf("Wait = %v, want %v", err, cause)
	}
	if condRan {
		t.Fatal("loop condition ran despite pre-canceled context")
	}
	rep, _ := h.Report()
	if rep.Iterations != 0 {
		t.Fatalf("Iterations = %d, want 0", rep.Iterations)
	}
	checkEngineDrained(t, e)
}

// TestHandleCancel: cancellation without a context.
func TestHandleCancel(t *testing.T) {
	e := newTestEngine(t, 2)
	started := make(chan struct{})
	var once atomic.Bool
	h := e.Submit(nil, func() bool { return true }, func(it *Iter) {
		if once.CompareAndSwap(false, true) {
			close(started)
		}
		it.Wait(1)
	})
	<-started
	h.Cancel()
	if err := h.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	checkEngineDrained(t, e)
}

// TestSubmitBodyPanic: a panic in the body surfaces as *PanicError on the
// handle — with the panicking stack — and the engine remains usable.
func TestSubmitBodyPanic(t *testing.T) {
	e := newTestEngine(t, 2)
	i := 0
	h := e.Submit(context.Background(), func() bool { i++; return i <= 10 }, func(it *Iter) {
		it.Continue(1)
		if it.Index() == 3 {
			panic("boom at 3")
		}
	})
	err := h.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Wait = %v, want *PanicError", err)
	}
	if pe.Value != "boom at 3" {
		t.Fatalf("Value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "submit_test") {
		t.Fatalf("Stack does not name the panic site:\n%s", pe.Stack)
	}
	if !strings.Contains(pe.Error(), "boom at 3") {
		t.Fatalf("Error() = %q", pe.Error())
	}
	// Engine still serves new work after a captured panic.
	j := 0
	if err := e.Submit(context.Background(), func() bool { j++; return j <= 5 }, func(it *Iter) {}).Wait(); err != nil {
		t.Fatalf("post-panic Submit: %v", err)
	}
	checkEngineDrained(t, e)
}

// TestSubmitCondPanic: panics in the loop condition are captured too.
func TestSubmitCondPanic(t *testing.T) {
	e := newTestEngine(t, 2)
	h := e.Submit(context.Background(), func() bool { panic("bad cond") }, func(it *Iter) {})
	var pe *PanicError
	if err := h.Wait(); !errors.As(err, &pe) || pe.Value != "bad cond" {
		t.Fatalf("Wait = %v", err)
	}
	checkEngineDrained(t, e)
}

// TestSubmitChildPanic: a panic in a stolen fork-join child is rethrown at
// the sync and reaches the handle as *PanicError.
func TestSubmitChildPanic(t *testing.T) {
	e := newTestEngine(t, 4)
	i := 0
	h := e.Submit(context.Background(), func() bool { i++; return i <= 20 }, func(it *Iter) {
		it.Continue(1)
		if it.Index() == 7 {
			it.Go(func() { panic("child boom") })
			it.Sync()
		}
	})
	var pe *PanicError
	if err := h.Wait(); !errors.As(err, &pe) || pe.Value != "child boom" {
		t.Fatalf("Wait = %v", err)
	}
	// The stack must be the panicking child's, not the owner's sync site.
	if !strings.Contains(string(pe.Stack), "submit_test") {
		t.Fatalf("Stack does not name the panicking closure:\n%s", pe.Stack)
	}
	checkEngineDrained(t, e)
}

// TestSubmitClosedEngine: submitting to a closed engine reports
// ErrEngineClosed instead of panicking.
func TestSubmitClosedEngine(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 2
	e := NewEngine(opts)
	e.Close()
	h := e.Submit(context.Background(), func() bool { return true }, func(it *Iter) {})
	if err := h.Wait(); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Wait = %v, want ErrEngineClosed", err)
	}
}

// TestSubmitCloseRace: a Submit racing Engine.Close must never strand a
// queued pipeline — every handle resolves, either with the pipeline's
// result (the exiting workers drain it) or with ErrEngineClosed. A
// stranded frame shows up here as a Wait that never returns.
func TestSubmitCloseRace(t *testing.T) {
	for round := 0; round < 100; round++ {
		opts := DefaultOptions()
		opts.Workers = 2
		e := NewEngine(opts)
		const submitters = 4
		var handles [submitters]*Handle
		var counts [submitters]atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for s := 0; s < submitters; s++ {
			s := s
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				j := 0
				handles[s] = e.Submit(nil, func() bool { j++; return j <= 3 }, func(it *Iter) {
					counts[s].Add(1)
				})
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			e.Close()
		}()
		close(start)
		wg.Wait()
		done := make(chan struct{})
		go func() {
			for _, h := range handles {
				h.Wait()
			}
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: a Submit racing Close left a handle hanging", round)
		}
		for s, h := range handles {
			switch err := h.Wait(); {
			case err == nil:
				if got := counts[s].Load(); got != 3 {
					t.Fatalf("round %d: successful pipeline %d ran %d iterations", round, s, got)
				}
			case errors.Is(err, ErrEngineClosed):
				if got := counts[s].Load(); got != 0 {
					t.Fatalf("round %d: rejected pipeline %d still ran %d iterations", round, s, got)
				}
			default:
				t.Fatalf("round %d: Wait = %v", round, err)
			}
		}
	}
}

// TestSubmitCancelNested: canceling a submission tears down pipelines
// nested inside its iterations, not just the root loop.
func TestSubmitCancelNested(t *testing.T) {
	e := newTestEngine(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once atomic.Bool
	var nestedIters atomic.Int64
	h := e.Submit(ctx, func() bool { return true }, func(it *Iter) {
		it.Continue(1)
		j := 0
		it.PipeWhile(func() bool { j++; return true }, func(nit *Iter) {
			if once.CompareAndSwap(false, true) {
				close(started)
			}
			nestedIters.Add(1)
			nit.Wait(1)
		})
	})
	<-started
	cancel()
	select {
	case <-h.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("cancel did not reach the nested pipeline")
	}
	if err := h.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v", err)
	}
	if nestedIters.Load() == 0 {
		t.Fatal("nested pipeline never ran")
	}
	checkEngineDrained(t, e)
}

// TestSubmitCancelJoinsChildren: an iteration canceled between Go and Sync
// must join its outstanding fork-join children before the handle reports
// completion — no user closure may run after Wait returns.
func TestSubmitCancelJoinsChildren(t *testing.T) {
	e := newTestEngine(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	var childrenDone atomic.Int64
	var spawned atomic.Int64
	ready := make(chan struct{})
	var once atomic.Bool
	h := e.Submit(ctx, func() bool { return true }, func(it *Iter) {
		it.Continue(1)
		for k := 0; k < 3; k++ {
			it.Go(func() {
				time.Sleep(200 * time.Microsecond)
				childrenDone.Add(1)
			})
		}
		spawned.Add(3)
		if once.CompareAndSwap(false, true) {
			close(ready)
		}
		it.Wait(2) // boundary between Go and the implicit sync
		it.Sync()
	})
	<-ready
	cancel()
	if err := h.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v", err)
	}
	if got, want := childrenDone.Load(), spawned.Load(); got != want {
		t.Fatalf("%d of %d children finished before Wait returned", got, want)
	}
	checkEngineDrained(t, e)
}

// TestSubmitCancelAfterCompletion: a cancel that races pipeline completion
// must yield either nil or the context error — never a hang or corruption.
func TestSubmitCancelAfterCompletion(t *testing.T) {
	e := newTestEngine(t, 2)
	for round := 0; round < 50; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		i := 0
		h := e.Submit(ctx, func() bool { i++; return i <= 3 }, func(it *Iter) { it.Continue(1) })
		cancel()
		if err := h.Wait(); err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: Wait = %v", round, err)
		}
	}
	checkEngineDrained(t, e)
}

// TestSubmitUnpooledAbort: the abort paths must retire frames correctly
// under the PoolFrames=false ablation as well.
func TestSubmitUnpooledAbort(t *testing.T) {
	e := newEngineOpts(t, func(o *Options) { o.Workers = 2; o.PoolFrames = false })
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once atomic.Bool
	h := e.Submit(ctx, func() bool { return true }, func(it *Iter) {
		if once.CompareAndSwap(false, true) {
			close(started)
		}
		it.Wait(1)
	})
	<-started
	cancel()
	if err := h.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v", err)
	}
	checkEngineDrained(t, e)
}
