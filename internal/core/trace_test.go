package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceCapturesSegments(t *testing.T) {
	e := newTestEngine(t, 2)
	e.StartTrace()
	i := 0
	e.PipeWhile(func() bool { return i < 20 }, func(it *Iter) {
		i++
		it.Continue(1)
		it.Wait(2)
	})
	var buf bytes.Buffer
	if err := e.StopTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("no trace events captured")
	}
	sawIter, sawControl := false, false
	for _, ev := range evs {
		name := ev["name"].(string)
		if strings.HasPrefix(name, "iter ") {
			sawIter = true
		}
		if name == "pipe_while control" {
			sawControl = true
		}
		if ev["ph"] != "X" {
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
		if ev["dur"].(float64) < 0 {
			t.Fatal("negative duration")
		}
	}
	if !sawIter || !sawControl {
		t.Fatalf("missing event kinds: iter=%v control=%v", sawIter, sawControl)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	e := newTestEngine(t, 2)
	i := 0
	e.PipeWhile(func() bool { return i < 5 }, func(it *Iter) { i++ })
	var buf bytes.Buffer
	if err := e.StopTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 {
		t.Fatalf("expected empty trace, got %d events", len(evs))
	}
}
