package core

import (
	"runtime"
	"runtime/debug"
	"sync/atomic"
)

// scope is a fork-join join point: a counter of outstanding child tasks
// plus the coroutine frame that will sync on them. Scopes are single-use;
// once the join counter returns to zero the scope is dead.
type scope struct {
	owner *frame
	join  atomic.Int64
	// panicVal holds the first panic raised by a child task; the owner's
	// sync rethrows it in the iteration, mirroring how a spawned Cilk
	// child's exception surfaces at the sync.
	panicVal atomic.Pointer[panicBox]
}

// recordPanic stores the first child panic with the panicking
// goroutine's stack, so the stack survives the rethrow at the sync.
func (sc *scope) recordPanic(v any, stack []byte) {
	sc.panicVal.CompareAndSwap(nil, &panicBox{v: v, stack: stack})
}

// runClosureTask executes a fork-join task, converting a panic into scope
// panic state so a stolen child cannot crash its worker.
func runClosureTask(t *frame, w *worker) {
	defer func() {
		if r := recover(); r != nil {
			t.scope.recordPanic(r, debug.Stack())
		}
	}()
	t.fn(w)
}

// Go spawns fn as a fork-join child of the current iteration, to be joined
// by the next Sync. fn runs exactly once, possibly on another worker; it
// must not call the Iter's pipeline-control methods.
func (it *Iter) Go(fn func()) {
	f := it.f
	if f.serial {
		fn() // serial elision: a spawn is just a call
		return
	}
	if f.curScope == nil {
		f.curScope = &scope{owner: f}
	}
	sc := f.curScope
	sc.join.Add(1)
	t := f.eng.acquireClosureFrame(sc, func(*worker) { fn() })
	f.w.pushWork(t)
}

// Sync joins all children spawned with Go since the previous Sync. Like
// cilk_sync, the caller first executes its own unstolen children from the
// bottom of its deque; only if children were stolen and are still running
// does the coroutine suspend, to be resumed by the last returning child.
func (it *Iter) Sync() {
	f := it.f
	sc := f.curScope
	if sc == nil {
		return
	}
	f.curScope = nil
	f.syncScope(sc)
}

// For executes body(i) for every i in [0, n) with fork-join parallelism,
// the cilk_for analogue. grain bounds the size of a leaf chunk; pass 0 for
// an automatic grain.
func (it *Iter) For(n, grain int, body func(int)) {
	f := it.f
	if n <= 0 {
		return
	}
	if f.serial {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	if grain <= 0 {
		grain = n/(8*f.eng.opts.Workers) + 1
	}
	sc := &scope{owner: f}
	var split func(w *worker, lo, hi int)
	split = func(w *worker, lo, hi int) {
		for hi-lo > grain {
			mid := lo + (hi-lo)/2
			lo2, hi2 := mid, hi
			sc.join.Add(1)
			t := f.eng.acquireClosureFrame(sc, func(w2 *worker) { split(w2, lo2, hi2) })
			w.pushWork(t)
			hi = mid
		}
		for i := lo; i < hi; i++ {
			body(i)
		}
	}
	split(f.w, 0, n)
	f.syncScope(sc)
}

// syncScope drains the scope: pop and run own children still on the deque
// (inline, child-first), then park until stolen children return. During
// the serial stage-0 prefix the coroutine may not suspend (the control
// frame is blocked on it), so it spin-helps instead.
func (f *frame) syncScope(sc *scope) {
	defer func() {
		// Rethrow the first child panic at the sync point. Record it into
		// the pipeline first, under the child's own stack: the recover up
		// in runOnce also records, but its CAS loses to this one, so the
		// *PanicError surfaced on a Handle names the panicking closure
		// rather than this sync site.
		if pb := sc.panicVal.Load(); pb != nil {
			if f.pl != nil {
				f.pl.recordPanicStack(pb.v, pb.stack)
			}
			panic(pb.v)
		}
	}()
	for {
		if sc.join.Load() == 0 {
			return
		}
		t := f.w.deque.PopIf(func(x *frame) bool {
			return x.kind == kindClosure && x.scope == sc
		})
		if t != nil {
			f.eng.stats.closureTasks.Add(1)
			runClosureTask(t, f.w)
			f.eng.releaseClosureFrame(t)
			if sc.join.Add(-1) == 0 {
				break
			}
			continue
		}
		if f.inStage0 {
			// Children were stolen; busy-wait rather than suspend so the
			// pipe_while control frame (which is driving us) never
			// observes a parked stage 0.
			runtime.Gosched()
			continue
		}
		if f.inline {
			// Stolen children (or a nested pipeline) force a suspension
			// the inline fast path cannot express: promote to a coroutine
			// frame so the scope-park protocol below has a driver.
			f.promote()
		}
		f.waitingScope.Store(sc)
		f.status.Store(statusWaitScope)
		if sc.join.Load() == 0 {
			if f.status.CompareAndSwap(statusWaitScope, statusRunning) {
				return
			}
			// A waker claimed us; park so its resume pairs up.
		} else {
			f.eng.stats.scopeSuspends.Add(1)
		}
		f.park(yieldMsg{kind: ySuspend})
	}
}

// scopeUnitDone retires one child of sc. If that was the last child and
// the owner coroutine is parked on sc, the caller claims it; the returned
// frame (if any) must be delivered to a worker.
func scopeUnitDone(sc *scope) *frame {
	if sc.join.Add(-1) != 0 {
		return nil
	}
	o := sc.owner
	if o.status.Load() == statusWaitScope && o.waitingScope.Load() == sc {
		if o.status.CompareAndSwap(statusWaitScope, statusRunning) {
			return o
		}
	}
	return nil
}
