// Package ferret reproduces the PARSEC ferret kernel: content-based
// similarity search over an image corpus. The pipeline is the SPS shape of
// Figure 1: a serial load stage, a heavy parallel stage that segments the
// image, extracts features and queries the index, and a serial ranking/
// output stage.
//
// PARSEC's 3500-image native corpus is replaced by a deterministic
// synthetic corpus (sums of random Gaussian blobs over an RGB raster),
// which exercises the same code path: real per-pixel feature extraction
// and a real approximate-nearest-neighbour index query per element.
package ferret

import "piper/internal/workload"

// Image is a small synthetic RGB raster.
type Image struct {
	ID   int
	W, H int
	Pix  []byte // RGB triples, row-major
}

// GenImage synthesizes image id deterministically: a handful of soft
// colour blobs on a noisy background. Images with nearby seeds share blob
// palettes, giving the index meaningful near-duplicate structure.
func GenImage(id int, w, h int) *Image {
	r := workload.NewRNG(workload.Hash64(uint64(id)))
	img := &Image{ID: id, W: w, H: h, Pix: make([]byte, 3*w*h)}
	// Noise floor.
	r.Bytes(img.Pix)
	for i := range img.Pix {
		img.Pix[i] /= 8
	}
	// Blobs: position, radius, colour.
	blobs := 3 + r.Intn(4)
	for b := 0; b < blobs; b++ {
		cx, cy := r.Intn(w), r.Intn(h)
		rad := 4 + r.Intn(w/3+1)
		cr, cg, cb := byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))
		rad2 := rad * rad
		for y := cy - rad; y <= cy+rad; y++ {
			if y < 0 || y >= h {
				continue
			}
			for x := cx - rad; x <= cx+rad; x++ {
				if x < 0 || x >= w {
					continue
				}
				d2 := (x-cx)*(x-cx) + (y-cy)*(y-cy)
				if d2 > rad2 {
					continue
				}
				// Soft falloff: weight 1 at centre, 0 at radius.
				wgt := 256 * (rad2 - d2) / rad2
				p := 3 * (y*w + x)
				img.Pix[p+0] = mix(img.Pix[p+0], cr, wgt)
				img.Pix[p+1] = mix(img.Pix[p+1], cg, wgt)
				img.Pix[p+2] = mix(img.Pix[p+2], cb, wgt)
			}
		}
	}
	return img
}

func mix(base, c byte, wgt int) byte {
	return byte((int(base)*(256-wgt) + int(c)*wgt) / 256)
}

// FeatureDim is the dimensionality of extracted feature vectors:
// 3 channels × 16 histogram bins + 8 gradient-orientation bins.
const FeatureDim = 3*16 + 8

// Extract computes the image's feature vector: per-channel 16-bin colour
// histograms plus an 8-bin edge-orientation histogram, L2-normalized.
// This is the compute-heavy kernel of the parallel middle stage.
func Extract(img *Image) []float64 {
	f := make([]float64, FeatureDim)
	w, h := img.W, img.H
	for y := 0; y < h; y++ {
		row := img.Pix[3*y*w : 3*(y+1)*w]
		for x := 0; x < w; x++ {
			rr, gg, bb := row[3*x], row[3*x+1], row[3*x+2]
			f[0+int(rr)>>4]++
			f[16+int(gg)>>4]++
			f[32+int(bb)>>4]++
		}
	}
	// Gradient orientations on the green channel.
	at := func(x, y int) int {
		return int(img.Pix[3*(y*w+x)+1])
	}
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			dx := at(x+1, y) - at(x-1, y)
			dy := at(x, y+1) - at(x, y-1)
			mag := dx*dx + dy*dy
			if mag < 64 {
				continue
			}
			f[48+orientBin(dx, dy)] += 1
		}
	}
	// L2 normalize.
	var norm float64
	for _, v := range f {
		norm += v * v
	}
	if norm > 0 {
		inv := 1 / sqrt(norm)
		for i := range f {
			f[i] *= inv
		}
	}
	return f
}

// orientBin buckets a gradient direction into one of 8 octants without
// trigonometry.
func orientBin(dx, dy int) int {
	bin := 0
	if dy < 0 {
		bin |= 4
		dx, dy = -dx, -dy
	}
	if dx < 0 {
		bin |= 2
		dx, dy = dy, -dx
	}
	if dy > dx {
		bin |= 1
	}
	return bin
}

// sqrt is Newton's method on float64; avoids importing math for one call
// site in a hot loop (and keeps the kernel self-contained).
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 24; i++ {
		z = (z + x/z) / 2
	}
	return z
}
