package ferret

import (
	"sort"
	"testing"
	"testing/quick"

	"piper"
	"piper/internal/workload"
)

func TestGenImageDeterministic(t *testing.T) {
	a := GenImage(42, 32, 32)
	b := GenImage(42, 32, 32)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("image generation not deterministic")
		}
	}
	c := GenImage(43, 32, 32)
	same := 0
	for i := range a.Pix {
		if a.Pix[i] == c.Pix[i] {
			same++
		}
	}
	if same == len(a.Pix) {
		t.Fatal("different ids produced identical images")
	}
}

func TestExtractProperties(t *testing.T) {
	img := GenImage(7, 48, 48)
	f := Extract(img)
	if len(f) != FeatureDim {
		t.Fatalf("dim = %d, want %d", len(f), FeatureDim)
	}
	var norm float64
	for _, v := range f {
		if v < 0 {
			t.Fatal("negative feature")
		}
		norm += v * v
	}
	if norm < 0.99 || norm > 1.01 {
		t.Fatalf("L2 norm = %v, want ~1", norm)
	}
}

func TestSqrtAgainstSquares(t *testing.T) {
	prop := func(raw uint32) bool {
		x := float64(raw%100000) + 0.5
		s := sqrt(x)
		return s*s > x*0.9999 && s*s < x*1.0001
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOrientBinCoversOctants(t *testing.T) {
	seen := map[int]bool{}
	for _, d := range [][2]int{{1, 0}, {2, 1}, {1, 2}, {0, 1}, {-1, 2}, {-2, 1}, {-1, 0}, {-2, -1}, {-1, -2}, {0, -1}, {1, -2}, {2, -1}} {
		b := orientBin(d[0], d[1])
		if b < 0 || b > 7 {
			t.Fatalf("bin %d out of range for %v", b, d)
		}
		seen[b] = true
	}
	if len(seen) < 8 {
		t.Fatalf("only %d octants covered", len(seen))
	}
}

func TestTopKMatchesSort(t *testing.T) {
	r := workload.NewRNG(3)
	n := 200
	ids := make([]int, n)
	vecs := make([][]float64, n)
	for i := range ids {
		ids[i] = i
		vecs[i] = workload.Vector(r.Uint64(), FeatureDim)
	}
	idx := NewIndex(DefaultIndexParams(), ids, vecs)
	q := workload.Vector(999, FeatureDim)
	got := idx.QueryExact(q, 10)
	// Reference: full sort.
	type pair struct {
		id int
		d  float64
	}
	all := make([]pair, n)
	for i := range vecs {
		all[i] = pair{ids[i], l2(q, vecs[i])}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d < all[j].d
		}
		return all[i].id < all[j].id
	})
	for i := 0; i < 10; i++ {
		if got[i].ID != all[i].id {
			t.Fatalf("rank %d: got id %d, want %d", i, got[i].ID, all[i].id)
		}
	}
}

// TestLSHRecall: the approximate query must find a healthy fraction of
// the true top-k on clustered (realistic) data.
func TestLSHRecall(t *testing.T) {
	const n, k = 400, 10
	ids := make([]int, n)
	vecs := make([][]float64, n)
	for i := range ids {
		ids[i] = i
		vecs[i] = Extract(GenImage(i, 32, 32))
	}
	idx := NewIndex(DefaultIndexParams(), ids, vecs)
	hits, want := 0, 0
	for q := 0; q < 20; q++ {
		v := Extract(GenImage(10000+q, 32, 32))
		approx := idx.Query(v, k)
		exact := idx.QueryExact(v, k)
		inApprox := map[int]bool{}
		for _, r := range approx {
			inApprox[r.ID] = true
		}
		for _, r := range exact {
			want++
			if inApprox[r.ID] {
				hits++
			}
		}
	}
	if recall := float64(hits) / float64(want); recall < 0.3 {
		t.Fatalf("LSH recall %.2f too low", recall)
	}
}

// TestQueryRankedAscending: results come back sorted by distance.
func TestQueryRankedAscending(t *testing.T) {
	c := BuildCorpus(300, 24, 24)
	v := Extract(GenImage(5000, 24, 24))
	res := c.Index.Query(v, 15)
	for i := 1; i < len(res); i++ {
		if less(res[i], res[i-1]) {
			t.Fatalf("results not sorted at %d: %v then %v", i, res[i-1], res[i])
		}
	}
}

// TestAllExecutorsAgree: piper, bind-to-stage, TBB outputs match serial.
func TestAllExecutorsAgree(t *testing.T) {
	c := BuildCorpus(250, 24, 24)
	qs := QuerySet{Offset: 100000, N: 60, TopK: 8}
	want := c.RunSerial(qs)

	eng := piper.NewEngine(piper.Workers(4))
	defer eng.Close()
	if got := c.RunPiper(eng, 16, qs); true {
		if ok, why := EqualOutputs(want, got); !ok {
			t.Errorf("piper output differs: %s", why)
		}
	}
	if got := c.RunBindStage(4, 16, qs); true {
		if ok, why := EqualOutputs(want, got); !ok {
			t.Errorf("bind-to-stage output differs: %s", why)
		}
	}
	if got := c.RunTBB(4, 16, qs); true {
		if ok, why := EqualOutputs(want, got); !ok {
			t.Errorf("TBB output differs: %s", why)
		}
	}
}

func TestPiperWorkerSweep(t *testing.T) {
	c := BuildCorpus(150, 24, 24)
	qs := QuerySet{Offset: 7777, N: 40, TopK: 5}
	want := c.RunSerial(qs)
	for _, p := range []int{1, 2, 8} {
		eng := piper.NewEngine(piper.Workers(p))
		got := c.RunPiper(eng, 10*p, qs)
		eng.Close()
		if ok, why := EqualOutputs(want, got); !ok {
			t.Fatalf("P=%d differs: %s", p, why)
		}
	}
}
