package ferret

import (
	"testing"
	"testing/quick"

	"piper/internal/workload"
)

// Additional index-level tests beyond ferret_test.go.

func buildVecs(n int, seed uint64) ([]int, [][]float64) {
	r := workload.NewRNG(seed)
	ids := make([]int, n)
	vecs := make([][]float64, n)
	for i := range ids {
		ids[i] = i
		vecs[i] = workload.Vector(r.Uint64(), FeatureDim)
	}
	return ids, vecs
}

func TestIndexSize(t *testing.T) {
	ids, vecs := buildVecs(77, 1)
	idx := NewIndex(DefaultIndexParams(), ids, vecs)
	if idx.Size() != 77 {
		t.Fatalf("size = %d", idx.Size())
	}
}

func TestIndexMismatchedInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched ids/vecs")
		}
	}()
	NewIndex(DefaultIndexParams(), []int{1, 2}, make([][]float64, 3))
}

func TestQuerySelfFindsSelf(t *testing.T) {
	ids, vecs := buildVecs(120, 2)
	idx := NewIndex(DefaultIndexParams(), ids, vecs)
	// A query identical to an indexed vector must rank it first (distance
	// 0 beats everything, and LSH always probes the vector's own bucket).
	for probe := 0; probe < 10; probe++ {
		res := idx.Query(vecs[probe*7], 3)
		if len(res) == 0 || res[0].ID != ids[probe*7] {
			t.Fatalf("self query %d returned %v", probe*7, res)
		}
		if res[0].Dist != 0 {
			t.Fatalf("self distance = %v", res[0].Dist)
		}
	}
}

func TestQueryKLargerThanCorpus(t *testing.T) {
	ids, vecs := buildVecs(5, 3)
	idx := NewIndex(DefaultIndexParams(), ids, vecs)
	res := idx.QueryExact(vecs[0], 50)
	if len(res) != 5 {
		t.Fatalf("got %d results, want 5", len(res))
	}
	approx := idx.Query(vecs[0], 50)
	if len(approx) > 5 {
		t.Fatalf("approximate query returned %d > corpus size", len(approx))
	}
}

func TestQueryDeterministic(t *testing.T) {
	ids, vecs := buildVecs(200, 4)
	idx := NewIndex(DefaultIndexParams(), ids, vecs)
	q := workload.Vector(777, FeatureDim)
	a := idx.Query(q, 10)
	b := idx.Query(q, 10)
	if len(a) != len(b) {
		t.Fatal("nondeterministic result count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic ranking at %d", i)
		}
	}
}

func TestHashStability(t *testing.T) {
	ids, vecs := buildVecs(10, 5)
	idx := NewIndex(DefaultIndexParams(), ids, vecs)
	for tbl := 0; tbl < len(idx.tables); tbl++ {
		h1 := idx.hash(tbl, vecs[0])
		h2 := idx.hash(tbl, vecs[0])
		if h1 != h2 {
			t.Fatal("hash not stable")
		}
	}
}

func TestL2Symmetric(t *testing.T) {
	prop := func(seedA, seedB uint64) bool {
		a := workload.Vector(seedA, FeatureDim)
		b := workload.Vector(seedB, FeatureDim)
		d1, d2 := l2(a, b), l2(b, a)
		return d1 == d2 && d1 >= 0 && l2(a, a) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResultOrderingTieBreak(t *testing.T) {
	// Equal-distance results must order by ID.
	a := Result{ID: 3, Dist: 1.5}
	b := Result{ID: 7, Dist: 1.5}
	if !less(a, b) || less(b, a) {
		t.Fatal("tie-break by ID broken")
	}
}

func TestQueriesPregeneration(t *testing.T) {
	c := BuildCorpus(20, 24, 24)
	qs := QuerySet{Offset: 500, N: 7, TopK: 3}
	imgs := c.Queries(qs)
	if len(imgs) != 7 {
		t.Fatalf("got %d query images", len(imgs))
	}
	for i, img := range imgs {
		if img.ID != 500+i {
			t.Fatalf("query %d has id %d", i, img.ID)
		}
		if img.W != 24 || img.H != 24 {
			t.Fatalf("query dims %dx%d", img.W, img.H)
		}
	}
}

func TestIndexParamsInfluenceRecall(t *testing.T) {
	ids := make([]int, 300)
	vecs := make([][]float64, 300)
	for i := range ids {
		ids[i] = i
		vecs[i] = Extract(GenImage(i, 24, 24))
	}
	few := NewIndex(IndexParams{Tables: 1, Bits: 16, Seed: 9}, ids, vecs)
	many := NewIndex(IndexParams{Tables: 16, Bits: 8, Seed: 9}, ids, vecs)
	recall := func(idx *Index) int {
		hits := 0
		for q := 0; q < 15; q++ {
			v := Extract(GenImage(5000+q, 24, 24))
			approx := idx.Query(v, 5)
			exact := idx.QueryExact(v, 5)
			in := map[int]bool{}
			for _, r := range approx {
				in[r.ID] = true
			}
			for _, r := range exact {
				if in[r.ID] {
					hits++
				}
			}
		}
		return hits
	}
	if recall(many) < recall(few) {
		t.Fatalf("more tables with shorter hashes should not reduce recall: %d vs %d",
			recall(many), recall(few))
	}
}
