package ferret

import (
	"fmt"

	"piper"
	"piper/internal/bindstage"
	"piper/internal/tbbpipe"
)

// Corpus bundles an index with generation parameters so queries can be
// produced on demand.
type Corpus struct {
	Index *Index
	W, H  int
}

// BuildCorpus generates and indexes n base images of w×h pixels.
func BuildCorpus(n, w, h int) *Corpus {
	ids := make([]int, n)
	vecs := make([][]float64, n)
	for i := 0; i < n; i++ {
		ids[i] = i
		vecs[i] = Extract(GenImage(i, w, h))
	}
	return &Corpus{Index: NewIndex(DefaultIndexParams(), ids, vecs), W: w, H: h}
}

// QuerySet identifies the query stream: images with ids offset past the
// corpus. TopK is the rank depth (ferret's default is 50 over a much
// larger corpus; we scale it down with the synthetic corpus).
type QuerySet struct {
	Offset, N, TopK int
}

// Queries materializes the query images up front, playing the role of the
// image files on disk in PARSEC's driver: the pipeline's serial stage 0
// *loads* a query (cheap), while segmentation, feature extraction and the
// index probe (expensive) happen in the parallel stage.
func (c *Corpus) Queries(qs QuerySet) []*Image {
	imgs := make([]*Image, qs.N)
	for i := range imgs {
		imgs[i] = GenImage(qs.Offset+i, c.W, c.H)
	}
	return imgs
}

// Output is the ranked result list for one query, emitted by the final
// serial stage in query order.
type Output struct {
	QueryID int
	Ranked  []Result
}

// queryJob carries one query through the stages.
type queryJob struct {
	seq int
	img *Image
	out Output
}

// RunSerial executes the whole query stream serially (TS).
func (c *Corpus) RunSerial(qs QuerySet) []Output {
	imgs := c.Queries(qs)
	outs := make([]Output, 0, qs.N)
	for _, img := range imgs {
		v := Extract(img)
		outs = append(outs, Output{QueryID: img.ID, Ranked: c.Index.Query(v, qs.TopK)})
	}
	return outs
}

// RunPiper executes the SPS pipe_while of Figure 1: serial load, parallel
// extract+query, serial ranked output.
func (c *Corpus) RunPiper(eng *piper.Engine, k int, qs QuerySet) []Output {
	imgs := c.Queries(qs)
	outs := make([]Output, 0, qs.N)
	i := 0
	piper.PipeThrottled(eng, k, func() (*Image, bool) {
		if i >= qs.N {
			return nil, false
		}
		img := imgs[i] // stage 0: serial load
		i++
		return img, true
	}, func(it *piper.Iter, img *Image) {
		it.Continue(1) // parallel stage: segment, extract, query
		v := Extract(img)
		ranked := c.Index.Query(v, qs.TopK)
		it.Wait(2) // serial stage: ordered output
		outs = append(outs, Output{QueryID: img.ID, Ranked: ranked})
	})
	return outs
}

// RunBindStage is the Pthreads-style baseline with q threads on the
// middle stage.
func (c *Corpus) RunBindStage(q, queueCap int, qs QuerySet) []Output {
	imgs := c.Queries(qs)
	outs := make([]Output, 0, qs.N)
	i := 0
	p := bindstage.New(queueCap).
		AddParallel(q, func(v any) any {
			j := v.(*queryJob)
			feat := Extract(j.img)
			j.out = Output{QueryID: j.img.ID, Ranked: c.Index.Query(feat, qs.TopK)}
			return j
		}).
		AddSerial(func(v any) any { return v })
	p.Run(func() (any, bool) {
		if i >= qs.N {
			return nil, false
		}
		j := &queryJob{seq: i, img: imgs[i]}
		i++
		return j, true
	}, func(v any) {
		outs = append(outs, v.(*queryJob).out)
	})
	return outs
}

// RunTBB is the construct-and-run token-pipeline baseline.
func (c *Corpus) RunTBB(workers, tokens int, qs QuerySet) []Output {
	imgs := c.Queries(qs)
	outs := make([]Output, 0, qs.N)
	i := 0
	p := tbbpipe.New().
		Add(tbbpipe.ParallelMode, func(v any) any {
			j := v.(*queryJob)
			feat := Extract(j.img)
			j.out = Output{QueryID: j.img.ID, Ranked: c.Index.Query(feat, qs.TopK)}
			return j
		})
	p.Run(workers, tokens, func() (any, bool) {
		if i >= qs.N {
			return nil, false
		}
		j := &queryJob{seq: i, img: imgs[i]}
		i++
		return j, true
	}, func(v any) {
		outs = append(outs, v.(*queryJob).out)
	})
	return outs
}

// EqualOutputs reports whether two output streams are identical, with a
// description of the first difference.
func EqualOutputs(a, b []Output) (bool, string) {
	if len(a) != len(b) {
		return false, fmt.Sprintf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].QueryID != b[i].QueryID {
			return false, fmt.Sprintf("query %d: id %d vs %d", i, a[i].QueryID, b[i].QueryID)
		}
		if len(a[i].Ranked) != len(b[i].Ranked) {
			return false, fmt.Sprintf("query %d: %d vs %d results", i, len(a[i].Ranked), len(b[i].Ranked))
		}
		for r := range a[i].Ranked {
			if a[i].Ranked[r] != b[i].Ranked[r] {
				return false, fmt.Sprintf("query %d rank %d: %+v vs %+v", i, r, a[i].Ranked[r], b[i].Ranked[r])
			}
		}
	}
	return true, ""
}
