package ferret

import (
	"container/heap"
	"sort"

	"piper/internal/workload"
)

// Index is a random-hyperplane LSH index over feature vectors with exact
// re-ranking of candidates, the ferret "vec" query substrate.
type Index struct {
	tables []lshTable
	planes [][][]float64 // [table][bit][dim]
	vecs   [][]float64
	ids    []int
}

type lshTable map[uint32][]int32 // bucket -> vector indices

// IndexParams configures the LSH structure.
type IndexParams struct {
	Tables int // number of hash tables L
	Bits   int // hyperplanes per table
	Seed   uint64
}

// DefaultIndexParams matches a small but effective configuration.
func DefaultIndexParams() IndexParams {
	return IndexParams{Tables: 8, Bits: 12, Seed: 0xfe44e7}
}

// NewIndex builds an index over the given corpus vectors. ids[i] labels
// vecs[i]; ties in query distance are broken by id so results are
// deterministic.
func NewIndex(p IndexParams, ids []int, vecs [][]float64) *Index {
	if len(ids) != len(vecs) {
		panic("ferret: ids and vecs length mismatch")
	}
	idx := &Index{
		tables: make([]lshTable, p.Tables),
		planes: make([][][]float64, p.Tables),
		vecs:   vecs,
		ids:    ids,
	}
	r := workload.NewRNG(p.Seed)
	for t := 0; t < p.Tables; t++ {
		idx.tables[t] = make(lshTable)
		idx.planes[t] = make([][]float64, p.Bits)
		for b := 0; b < p.Bits; b++ {
			plane := make([]float64, FeatureDim)
			for d := range plane {
				plane[d] = r.NormFloat64()
			}
			idx.planes[t][b] = plane
		}
	}
	for vi, v := range vecs {
		for t := range idx.tables {
			h := idx.hash(t, v)
			idx.tables[t][h] = append(idx.tables[t][h], int32(vi))
		}
	}
	return idx
}

func (idx *Index) hash(t int, v []float64) uint32 {
	var h uint32
	for b, plane := range idx.planes[t] {
		var dot float64
		for d, p := range plane {
			dot += p * v[d]
		}
		if dot >= 0 {
			h |= 1 << uint(b)
		}
	}
	return h
}

// Result is one ranked match.
type Result struct {
	ID   int
	Dist float64
}

// resultHeap is a max-heap by distance (worst candidate on top) for
// top-k selection.
type resultHeap []Result

func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	if h[i].Dist != h[j].Dist {
		return h[i].Dist > h[j].Dist
	}
	return h[i].ID > h[j].ID
}
func (h resultHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x any)   { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Query returns the top-k approximate nearest neighbours of v, ranked by
// exact L2 distance over the LSH candidate set.
func (idx *Index) Query(v []float64, k int) []Result {
	seen := make(map[int32]bool)
	var h resultHeap
	for t := range idx.tables {
		bucket := idx.tables[t][idx.hash(t, v)]
		for _, vi := range bucket {
			if seen[vi] {
				continue
			}
			seen[vi] = true
			d := l2(v, idx.vecs[vi])
			r := Result{ID: idx.ids[vi], Dist: d}
			if len(h) < k {
				heap.Push(&h, r)
			} else if less(r, h[0]) {
				h[0] = r
				heap.Fix(&h, 0)
			}
		}
	}
	out := make([]Result, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Result)
	}
	return out
}

// QueryExact is the brute-force oracle used by tests and recall studies.
func (idx *Index) QueryExact(v []float64, k int) []Result {
	all := make([]Result, len(idx.vecs))
	for i, u := range idx.vecs {
		all[i] = Result{ID: idx.ids[i], Dist: l2(v, u)}
	}
	sort.Slice(all, func(i, j int) bool { return less(all[i], all[j]) })
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// less orders results by distance then id, the deterministic ranking.
func less(a, b Result) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

func l2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Size reports the number of indexed vectors.
func (idx *Index) Size() int { return len(idx.vecs) }
