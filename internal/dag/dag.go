// Package dag models pipeline dags as defined in Sections 1 and 4 of
// "On-the-Fly Pipeline Parallelism": grids of nodes (i, j) for iteration i
// and stage j, with stage edges down each iteration, optional cross edges
// between adjacent iterations, and optional throttling edges from the last
// node of iteration i to the first node of iteration i+K.
//
// The package computes work T1, span T∞ (with null-node collapsing for
// skipped stages), and parallelism T1/T∞, playing the role of the modified
// Cilkview analyzer the authors used to measure dedup's parallelism of 7.4.
// It also constructs the adversarial dags of Theorems 12 and 13.
package dag

import (
	"errors"
	"fmt"
	"io"
	"sort"
)

// Node is one pipeline node (i, j): the execution of stage j in
// iteration i.
type Node struct {
	// Stage is the node's stage number j; stages must strictly increase
	// within an iteration and stage 0 must come first.
	Stage int64
	// Weight is the node's execution time w(i,j) in abstract units.
	Weight int64
	// Cross records an incoming cross edge from node (i-1, Stage); if the
	// previous iteration skipped this stage the edge collapses to its last
	// real node before Stage, as the paper specifies for null nodes.
	Cross bool
}

// Pipeline is a pipeline dag: Iters[i] lists the real nodes of
// iteration i in stage order.
type Pipeline struct {
	Iters [][]Node
}

// Validate checks the structural rules of Cilk-P pipelines.
func (p *Pipeline) Validate() error {
	for i, it := range p.Iters {
		if len(it) == 0 {
			return fmt.Errorf("iteration %d has no nodes", i)
		}
		if it[0].Stage != 0 {
			return fmt.Errorf("iteration %d does not begin with stage 0", i)
		}
		if it[0].Cross && i == 0 {
			return errors.New("iteration 0 cannot have cross edges")
		}
		for k := 1; k < len(it); k++ {
			if it[k].Stage <= it[k-1].Stage {
				return fmt.Errorf("iteration %d: stages not strictly increasing at node %d", i, k)
			}
			if it[k].Weight < 0 || it[k-1].Weight < 0 {
				return fmt.Errorf("iteration %d: negative weight", i)
			}
		}
	}
	return nil
}

// ValidateIter checks one iteration's node list against the structural
// rules of Cilk-P pipelines, independent of its position in a dag: it must
// begin with stage 0 (which, being first, can carry no cross edge), stages
// must strictly increase, and weights must be non-negative. This is the
// shape check the runtime's plan compiler applies to a recorded iteration,
// where cross edges are legal on every later node (the recorded shape
// stands in for iterations i >= 1, unlike Validate's literal iteration 0).
func ValidateIter(nodes []Node) error {
	if len(nodes) == 0 {
		return errors.New("iteration has no nodes")
	}
	if nodes[0].Stage != 0 {
		return errors.New("iteration does not begin with stage 0")
	}
	if nodes[0].Cross {
		return errors.New("stage 0 cannot have a cross edge")
	}
	for k := range nodes {
		if k > 0 && nodes[k].Stage <= nodes[k-1].Stage {
			return fmt.Errorf("stages not strictly increasing at node %d", k)
		}
		if nodes[k].Weight < 0 {
			return fmt.Errorf("negative weight at node %d", k)
		}
	}
	return nil
}

// MaxCross returns the highest stage of any node with an incoming cross
// edge, or -1 when the iteration waits on nothing. A predecessor whose
// stage counter has passed this value can never again block a successor
// with this shape — the fact behind the runtime's wait-table lookup.
func MaxCross(nodes []Node) int64 {
	m := int64(-1)
	for _, n := range nodes {
		if n.Cross && n.Stage > m {
			m = n.Stage
		}
	}
	return m
}

// FuseShort marks stage transitions that a plan compiler may fuse away:
// fusable[k] is true when node k's incoming stage edge can collapse into
// its predecessor's body — the node has no cross edge (a pipe_continue
// boundary), it is an interior node (k >= 2: the transition out of stage 0
// ends the serial prologue and is never elidable), and both the node and
// its predecessor are short (Weight < threshold), so the boundary
// bookkeeping dominates the work it separates. Null nodes between fused
// neighbours collapse exactly as the paper specifies for skipped stages.
func FuseShort(nodes []Node, threshold int64) []bool {
	fusable := make([]bool, len(nodes))
	for k := 2; k < len(nodes); k++ {
		if !nodes[k].Cross && nodes[k].Weight < threshold && nodes[k-1].Weight < threshold {
			fusable[k] = true
		}
	}
	return fusable
}

// Work returns T1, the sum of all node weights.
func (p *Pipeline) Work() int64 {
	var t1 int64
	for _, it := range p.Iters {
		for _, n := range it {
			t1 += n.Weight
		}
	}
	return t1
}

// Span returns T∞ of the unthrottled dag: the weight of the longest path
// through stage and cross edges.
func (p *Pipeline) Span() int64 { return p.span(0) }

// SpanThrottled returns T∞ with throttling edges for window K included,
// i.e. the span PIPER's guarantee is stated against.
func (p *Pipeline) SpanThrottled(k int) int64 {
	if k <= 0 {
		panic("dag: throttling window must be positive")
	}
	return p.span(k)
}

// span computes the longest weighted path; k == 0 means no throttling
// edges. finish[i][x] is the completion time of node x of iteration i.
func (p *Pipeline) span(k int) int64 {
	n := len(p.Iters)
	finish := make([][]int64, n)
	var best int64
	for i := 0; i < n; i++ {
		it := p.Iters[i]
		finish[i] = make([]int64, len(it))
		for x, node := range it {
			var start int64
			if x > 0 {
				start = finish[i][x-1] // stage edge
			}
			if node.Cross && i > 0 {
				// Cross edge from the completion of node (i-1, Stage),
				// collapsing onto the last real node at or before Stage.
				if pi := lastAtOrBefore(p.Iters[i-1], node.Stage); pi >= 0 {
					if f := finish[i-1][pi]; f > start {
						start = f
					}
				}
			}
			if x == 0 && k > 0 && i >= k {
				// Throttling edge from the end of iteration i-K.
				if f := finish[i-k][len(p.Iters[i-k])-1]; f > start {
					start = f
				}
			}
			finish[i][x] = start + node.Weight
			if finish[i][x] > best {
				best = finish[i][x]
			}
		}
	}
	return best
}

// lastAtOrBefore returns the index of the last node with Stage <= s, or -1.
func lastAtOrBefore(iter []Node, s int64) int {
	lo := sort.Search(len(iter), func(k int) bool { return iter[k].Stage > s })
	return lo - 1
}

// Parallelism returns T1/T∞ for the unthrottled dag.
func (p *Pipeline) Parallelism() float64 {
	sp := p.Span()
	if sp == 0 {
		return 0
	}
	return float64(p.Work()) / float64(sp)
}

// ParallelismThrottled returns T1/T∞ with throttling edges for window K.
func (p *Pipeline) ParallelismThrottled(k int) float64 {
	sp := p.SpanThrottled(k)
	if sp == 0 {
		return 0
	}
	return float64(p.Work()) / float64(sp)
}

// PredictTime returns the greedy-scheduler bound max(T1/P, T∞(K)) used to
// extrapolate speedup tables beyond the host's core count.
func (p *Pipeline) PredictTime(workers, k int) float64 {
	t1 := float64(p.Work())
	sp := float64(p.SpanThrottled(k))
	tp := t1 / float64(workers)
	if sp > tp {
		tp = sp
	}
	return tp
}

// PredictSpeedup returns T1 / PredictTime.
func (p *Pipeline) PredictSpeedup(workers, k int) float64 {
	return float64(p.Work()) / p.PredictTime(workers, k)
}

// DOT writes the dag in Graphviz format, one row per stage as in the
// paper's Figure 1 / Figure 3 drawings. Throttling edges for window k are
// drawn dashed when k > 0.
func (p *Pipeline) DOT(w io.Writer, k int) error {
	if _, err := fmt.Fprintln(w, "digraph pipeline {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=TB; node [shape=circle, fontsize=8];")
	name := func(i, x int) string {
		return fmt.Sprintf("n%d_%d", i, p.Iters[i][x].Stage)
	}
	for i, it := range p.Iters {
		for x, nd := range it {
			fmt.Fprintf(w, "  %s [label=\"(%d,%d)\\nw=%d\"];\n", name(i, x), i, nd.Stage, nd.Weight)
			if x > 0 {
				fmt.Fprintf(w, "  %s -> %s;\n", name(i, x-1), name(i, x))
			}
			if nd.Cross && i > 0 {
				if pi := lastAtOrBefore(p.Iters[i-1], nd.Stage); pi >= 0 {
					fmt.Fprintf(w, "  %s -> %s [color=blue];\n", name(i-1, pi), name(i, x))
				}
			}
			if x == 0 && k > 0 && i >= k {
				fmt.Fprintf(w, "  %s -> %s [style=dashed, color=red];\n",
					name(i-k, len(p.Iters[i-k])-1), name(i, 0))
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
