package dag

import (
	"bytes"
	"testing"
)

// Builder-level tests beyond dag_test.go.

func TestSSPSStructure(t *testing.T) {
	p := SSPS(10, 1, 2, 8, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, iter := range p.Iters {
		if len(iter) != 4 {
			t.Fatalf("iteration %d has %d stages", i, len(iter))
		}
		// Stage 2 (compress) is parallel, others serial.
		if iter[2].Cross {
			t.Fatal("compress stage should have no cross edge")
		}
		if i > 0 && (!iter[0].Cross || !iter[1].Cross || !iter[3].Cross) {
			t.Fatal("serial stages must carry cross edges")
		}
	}
	if got, want := p.Work(), int64(10*(1+2+8+1)); got != want {
		t.Fatalf("work = %d, want %d", got, want)
	}
}

func TestSSPSParallelismGrowsWithCompress(t *testing.T) {
	light := SSPS(100, 1, 2, 4, 1)
	heavy := SSPS(100, 1, 2, 64, 1)
	if heavy.Parallelism() <= light.Parallelism() {
		t.Fatalf("heavier parallel stage should raise parallelism: %.2f vs %.2f",
			heavy.Parallelism(), light.Parallelism())
	}
}

func TestUniformAllSerial(t *testing.T) {
	p := Uniform(5, 3, 2)
	for i, iter := range p.Iters {
		for j, nd := range iter {
			if i > 0 && !nd.Cross {
				t.Fatalf("node (%d,%d) missing cross edge", i, j)
			}
			if nd.Weight != 2 {
				t.Fatalf("node (%d,%d) weight %d", i, j, nd.Weight)
			}
		}
	}
}

func TestX264NullNodeOffsets(t *testing.T) {
	types := []FrameType{FrameI, FrameP, FrameP}
	p := X264(types, 3, 2, 1, 5, 0, 1)
	// With w=2, iteration i's rows start at stage 1 + 2i.
	for i := range types {
		if got, want := p.Iters[i][1].Stage, int64(1+2*i); got != want {
			t.Fatalf("iteration %d rows start at %d, want %d", i, got, want)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestX264WorkAccounting(t *testing.T) {
	types := []FrameType{FrameI, FrameP}
	p := X264(types, 4, 1, 2, 3, 7, 1)
	// Each iteration: read(2) + 4 rows × 3 + bstage(7) + write(1) = 22.
	if got, want := p.Work(), int64(2*22); got != want {
		t.Fatalf("work = %d, want %d", got, want)
	}
}

func TestPipeFibSpanLinear(t *testing.T) {
	small := PipeFib(40)
	big := PipeFib(80)
	// Span should grow roughly linearly (Θ(n)), work quadratically.
	if big.Span() > small.Span()*4 {
		t.Fatalf("span grew superlinearly: %d -> %d", small.Span(), big.Span())
	}
	if big.Work() < small.Work()*3 {
		t.Fatalf("work should grow ~quadratically: %d -> %d", small.Work(), big.Work())
	}
}

func TestPathologicalClusters(t *testing.T) {
	p := PathologicalThm13(1 << 15)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every iteration is S-P-S shaped with unit serial stages.
	var heavies, lights int
	var heavyW int64
	for _, iter := range p.Iters {
		if len(iter) != 3 {
			t.Fatalf("iteration has %d nodes", len(iter))
		}
		if iter[0].Weight != 1 || iter[2].Weight != 1 {
			t.Fatal("serial stages must be unit weight")
		}
		if iter[1].Cross {
			t.Fatal("middle stage must be parallel")
		}
		if iter[1].Weight > heavyW {
			heavyW = iter[1].Weight
			heavies = 1
		} else if iter[1].Weight == heavyW {
			heavies++
		} else {
			lights++
		}
	}
	if heavies == 0 || lights == 0 {
		t.Fatalf("expected both heavy and light iterations (h=%d l=%d)", heavies, lights)
	}
}

func TestSpanThrottledPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for K <= 0")
		}
	}()
	SPS(4, 1).SpanThrottled(0)
}

func TestDOTNoThrottleEdgesWhenZero(t *testing.T) {
	p := SPS(5, 2)
	var buf bytes.Buffer
	if err := p.DOT(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("dashed")) {
		t.Fatal("throttle edges drawn with k=0")
	}
}

func TestPredictTimeMonotoneInWorkers(t *testing.T) {
	p := SSPS(500, 1, 2, 30, 1)
	prev := p.PredictTime(1, 64)
	for _, workers := range []int{2, 4, 8, 16} {
		cur := p.PredictTime(workers, 64)
		if cur > prev {
			t.Fatalf("predicted time increased at P=%d", workers)
		}
		prev = cur
	}
}
