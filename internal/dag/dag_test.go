package dag

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"piper/internal/workload"
)

// TestSPSFormulas checks the closed forms of Section 1: T1 = n(r+2), and
// the staircase span max_x { (x+1) + r + (n-x) } = n + r + 1 (the paper
// quotes it as n + r, dropping the additive 1).
func TestSPSFormulas(t *testing.T) {
	for _, tc := range []struct{ n, r int64 }{
		{10, 1}, {100, 50}, {8, 64}, {1000, 10},
	} {
		p := SPS(int(tc.n), tc.r)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if got, want := p.Work(), tc.n*(tc.r+2); got != want {
			t.Errorf("SPS(%d,%d) work = %d, want %d", tc.n, tc.r, got, want)
		}
		if got, want := p.Span(), tc.n+tc.r+1; got != want {
			t.Errorf("SPS(%d,%d) span = %d, want %d", tc.n, tc.r, got, want)
		}
	}
}

// TestSPSParallelism: parallelism at least r/2+1 for 1 << r <= n.
func TestSPSParallelism(t *testing.T) {
	p := SPS(1000, 100)
	if par := p.Parallelism(); par < 51 {
		t.Fatalf("parallelism = %v, want >= 51", par)
	}
}

// TestUniformSpan: n+s-1 for unit weights.
func TestUniformSpan(t *testing.T) {
	p := Uniform(20, 5, 1)
	if got := p.Span(); got != 24 {
		t.Fatalf("span = %d, want 24", got)
	}
	if got := p.Work(); got != 100 {
		t.Fatalf("work = %d, want 100", got)
	}
}

// TestThrottledSpanMonotone: smaller K means larger (or equal) span, and
// a huge K reproduces the unthrottled span.
func TestThrottledSpanMonotone(t *testing.T) {
	p := SPS(200, 16)
	base := p.Span()
	last := int64(1) << 62
	for _, k := range []int{1, 2, 4, 8, 16, 64, 1024} {
		s := p.SpanThrottled(k)
		if s < base {
			t.Fatalf("K=%d: throttled span %d below unthrottled %d", k, s, base)
		}
		if s > last {
			t.Fatalf("K=%d: span %d increased from smaller throttle %d", k, s, last)
		}
		last = s
	}
	if s := p.SpanThrottled(100000); s != base {
		t.Fatalf("huge K span = %d, want %d", s, base)
	}
}

// TestUniformThrottlingHarmless reflects Theorem 12: for uniform pipelines
// and K = aP with a > 1, the throttled dag still has parallelism ≥ ~P, so
// PIPER's bound gives linear speedup. We check that for K >= 2s the
// throttled span is within a constant factor of the unthrottled span plus
// T1/K.
func TestUniformThrottlingHarmless(t *testing.T) {
	const n, s = 400, 8
	p := Uniform(n, s, 1)
	t1 := p.Work()
	for _, k := range []int{2 * s, 4 * s, 8 * s} {
		sp := p.SpanThrottled(k)
		bound := 3*(t1/int64(k)) + 3*p.Span()
		if sp > bound {
			t.Fatalf("K=%d: throttled span %d exceeds %d", k, sp, bound)
		}
	}
}

// TestStageSkippingCollapse: cross edges into skipped stages collapse to
// the last real node before them.
func TestStageSkippingCollapse(t *testing.T) {
	// Iteration 0 runs stages 0 and 5 only; iteration 1 waits on stage 3,
	// whose null node in iteration 0 completes when node (0,0) completes.
	p := &Pipeline{Iters: [][]Node{
		{{Stage: 0, Weight: 10}, {Stage: 5, Weight: 100}},
		{{Stage: 0, Weight: 1, Cross: true}, {Stage: 3, Weight: 1, Cross: true}},
	}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Longest path: (0,0)=10 -> (1,0)=11 -> (1,3)=12 vs (0,0)+(0,5)=110.
	if got := p.Span(); got != 110 {
		t.Fatalf("span = %d, want 110", got)
	}
	// If the cross edge had come from (0,5), span would be 112 through
	// iteration 1; confirm it is not.
	p2 := &Pipeline{Iters: [][]Node{
		{{Stage: 0, Weight: 10}, {Stage: 3, Weight: 100}},
		{{Stage: 0, Weight: 1, Cross: true}, {Stage: 3, Weight: 1, Cross: true}},
	}}
	// Here stage 3 exists in iteration 0, so the edge is real:
	// (0,0)->(0,3) finishes at 110, then (1,3) at 111.
	if got := p2.Span(); got != 111 {
		t.Fatalf("span = %d, want 111", got)
	}
}

// TestX264DagShape: structure checks mirroring Figure 3.
func TestX264DagShape(t *testing.T) {
	types := []FrameType{FrameI, FrameP, FrameP, FrameI, FrameP}
	p := X264(types, 4, 1, 1, 10, 20, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Iteration i's first row node sits at stage 1 + w*i.
	for i := range types {
		first := p.Iters[i][1]
		if want := int64(1 + i); first.Stage != want {
			t.Errorf("iteration %d first row at stage %d, want %d", i, first.Stage, want)
		}
		wantCross := types[i] == FrameP
		if first.Cross != wantCross {
			t.Errorf("iteration %d row cross = %v, want %v", i, first.Cross, wantCross)
		}
	}
	// An all-I stream has strictly higher parallelism than all-P.
	allI := X264([]FrameType{FrameI, FrameI, FrameI, FrameI, FrameI, FrameI}, 8, 1, 1, 10, 0, 1)
	allP := X264([]FrameType{FrameP, FrameP, FrameP, FrameP, FrameP, FrameP}, 8, 1, 1, 10, 0, 1)
	if allI.Parallelism() <= allP.Parallelism() {
		t.Fatalf("all-I parallelism %.2f should exceed all-P %.2f",
			allI.Parallelism(), allP.Parallelism())
	}
}

// TestPipeFibTriangular: stage count grows with iteration index.
func TestPipeFibTriangular(t *testing.T) {
	p := PipeFib(50)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Iters[49]) <= len(p.Iters[0]) {
		t.Fatal("pipe-fib dag is not triangular")
	}
	// Θ(n²) work, Θ(n) span.
	par := p.Parallelism()
	if par < 3 {
		t.Fatalf("parallelism = %v, want noticeably parallel", par)
	}
}

// TestPathologicalThm13 verifies the work/span identities of Figure 10 and
// the throttling dilemma: with a small window the throttled parallelism
// collapses toward ~3, with a window of T1^(1/3) it is much larger.
func TestPathologicalThm13(t *testing.T) {
	const t1Target = int64(1) << 18
	p := PathologicalThm13(t1Target)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	t1 := p.Work()
	span := p.Span()
	if t1 < t1Target/4 || t1 > 4*t1Target {
		t.Fatalf("work %d not near target %d", t1, t1Target)
	}
	// Span ≤ 2*T1^(2/3) per the theorem statement.
	cbrt := int64(1)
	for cbrt*cbrt*cbrt < t1 {
		cbrt++
	}
	if span > 2*cbrt*cbrt+4 {
		t.Fatalf("span %d exceeds 2*T1^(2/3) = %d", span, 2*cbrt*cbrt)
	}
	smallK := p.ParallelismThrottled(4)
	bigK := p.ParallelismThrottled(int(cbrt) + 2)
	if smallK >= 4 {
		t.Fatalf("small-window parallelism %.2f should be < 4", smallK)
	}
	if bigK < 2*smallK {
		t.Fatalf("large-window parallelism %.2f should dwarf small-window %.2f", bigK, smallK)
	}
}

// TestQuickSpanProperties: randomized shape invariants.
func TestQuickSpanProperties(t *testing.T) {
	gen := func(seed uint64) *Pipeline {
		r := workload.NewRNG(seed)
		n := 1 + r.Intn(20)
		p := &Pipeline{Iters: make([][]Node, n)}
		for i := 0; i < n; i++ {
			stage := int64(0)
			m := 1 + r.Intn(6)
			iter := make([]Node, 0, m)
			for k := 0; k < m; k++ {
				iter = append(iter, Node{
					Stage:  stage,
					Weight: int64(r.Intn(20)),
					Cross:  i > 0 && r.Intn(2) == 0,
				})
				stage += int64(1 + r.Intn(3))
			}
			p.Iters[i] = iter
		}
		return p
	}
	prop := func(seed uint64, kRaw uint8) bool {
		p := gen(seed)
		if err := p.Validate(); err != nil {
			return false
		}
		k := int(kRaw%8) + 1
		t1, sp, spk := p.Work(), p.Span(), p.SpanThrottled(k)
		if sp > t1 || spk > t1 {
			return false // span cannot exceed work
		}
		if spk < sp {
			return false // throttling only adds edges
		}
		return p.SpanThrottled(1<<20) == sp
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDOT emits parsable-looking output with cross and throttle edges.
func TestDOT(t *testing.T) {
	p := SPS(6, 3)
	var buf bytes.Buffer
	if err := p.DOT(&buf, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph pipeline", "color=blue", "style=dashed", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

// TestValidateRejectsBadShapes.
func TestValidateRejectsBadShapes(t *testing.T) {
	bad := []*Pipeline{
		{Iters: [][]Node{{}}},                                    // empty iteration
		{Iters: [][]Node{{{Stage: 1, Weight: 1}}}},               // missing stage 0
		{Iters: [][]Node{{{Stage: 0}, {Stage: 0}}}},              // non-increasing
		{Iters: [][]Node{{{Stage: 0, Cross: true}, {Stage: 1}}}}, // cross in iter 0
		{Iters: [][]Node{{{Stage: 0, Weight: -1}, {Stage: 1}}}},  // negative weight
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad pipeline %d validated", i)
		}
	}
}

// TestPredictSpeedupSaturates at the dag's parallelism.
func TestPredictSpeedup(t *testing.T) {
	p := SPS(10000, 30)
	s1 := p.PredictSpeedup(1, 40)
	if s1 != 1 {
		t.Fatalf("P=1 speedup = %v", s1)
	}
	s4 := p.PredictSpeedup(4, 40)
	if s4 < 3.5 || s4 > 4 {
		t.Fatalf("P=4 speedup = %v", s4)
	}
	s1000 := p.PredictSpeedup(1000, 4000)
	if s1000 > p.Parallelism()+1e-9 {
		t.Fatalf("speedup %v exceeds parallelism %v", s1000, p.Parallelism())
	}
}

// TestValidateIterShapes exercises the single-iteration shape check the
// runtime's plan compiler applies to recorded transitions: unlike
// Validate, a cross edge is legal on any node but the first (the recorded
// shape stands in for iterations i >= 1).
func TestValidateIterShapes(t *testing.T) {
	good := [][]Node{
		{{Stage: 0}},
		{{Stage: 0}, {Stage: 1, Cross: true}},
		{{Stage: 0, Weight: 5}, {Stage: 2}, {Stage: 7, Cross: true, Weight: 3}},
	}
	for i, nodes := range good {
		if err := ValidateIter(nodes); err != nil {
			t.Errorf("good iteration %d rejected: %v", i, err)
		}
	}
	bad := [][]Node{
		{},                                   // empty
		{{Stage: 1}},                         // missing stage 0
		{{Stage: 0, Cross: true}},            // cross edge on stage 0
		{{Stage: 0}, {Stage: 0}},             // non-increasing
		{{Stage: 0}, {Stage: 2}, {Stage: 1}}, // decreasing
		{{Stage: 0}, {Stage: 1, Weight: -1}}, // negative weight
		{{Stage: 0, Weight: -1}},             // negative weight on stage 0
	}
	for i, nodes := range bad {
		if err := ValidateIter(nodes); err == nil {
			t.Errorf("bad iteration %d validated", i)
		}
	}
}

// TestMaxCross pins the wait-table derivation: the highest waited-on
// stage, or -1 for a wait-free shape.
func TestMaxCross(t *testing.T) {
	cases := []struct {
		nodes []Node
		want  int64
	}{
		{[]Node{{Stage: 0}}, -1},
		{[]Node{{Stage: 0}, {Stage: 1}, {Stage: 4}}, -1},
		{[]Node{{Stage: 0}, {Stage: 1, Cross: true}}, 1},
		{[]Node{{Stage: 0}, {Stage: 1, Cross: true}, {Stage: 3}, {Stage: 6, Cross: true}}, 6},
		{[]Node{{Stage: 0}, {Stage: 2, Cross: true}, {Stage: 5}}, 2},
	}
	for i, c := range cases {
		if got := MaxCross(c.nodes); got != c.want {
			t.Errorf("case %d: MaxCross = %d, want %d", i, got, c.want)
		}
	}
}

// TestFuseShort pins the fusable-transition rules: interior continues
// between short stages fuse; the stage-0 exit, cross edges, and any
// transition touching a long stage never do.
func TestFuseShort(t *testing.T) {
	const thr = 100
	nodes := []Node{
		{Stage: 0, Weight: 10},              // prologue
		{Stage: 1, Weight: 10},              // k=1: stage-0 exit, never fusable
		{Stage: 2, Weight: 10},              // k=2: short-short continue -> fusable
		{Stage: 3, Weight: 10, Cross: true}, // k=3: cross edge, never fusable
		{Stage: 4, Weight: 500},             // k=4: target long
		{Stage: 5, Weight: 10},              // k=5: predecessor long
		{Stage: 6, Weight: 10},              // k=6: short-short again
	}
	want := []bool{false, false, true, false, false, false, true}
	got := FuseShort(nodes, thr)
	for k := range want {
		if got[k] != want[k] {
			t.Errorf("fusable[%d] = %v, want %v", k, got[k], want[k])
		}
	}
	// A two-node iteration has no interior transitions at all.
	if got := FuseShort([]Node{{Stage: 0}, {Stage: 1}}, thr); got[1] {
		t.Errorf("stage-0 exit fused in a two-node iteration")
	}
}
