package dag

// SPS builds the ferret-shaped 3-stage pipeline of Section 1: serial unit
// stages 0 and 2 and a parallel stage 1 of weight r, for n iterations.
// Its work is n(r+2) and its span n+r, so parallelism ≈ r/2+1 for r ≤ n.
func SPS(n int, r int64) *Pipeline {
	p := &Pipeline{Iters: make([][]Node, n)}
	for i := 0; i < n; i++ {
		p.Iters[i] = []Node{
			{Stage: 0, Weight: 1, Cross: i > 0},
			{Stage: 1, Weight: r, Cross: false},
			{Stage: 2, Weight: 1, Cross: i > 0},
		}
	}
	return p
}

// SSPS builds the dedup-shaped 4-stage pipeline of Figure 4: serial read,
// serial deduplicate, parallel compress, serial write, with per-stage
// weights.
func SSPS(n int, w0, w1, w2, w3 int64) *Pipeline {
	p := &Pipeline{Iters: make([][]Node, n)}
	for i := 0; i < n; i++ {
		cross := i > 0
		p.Iters[i] = []Node{
			{Stage: 0, Weight: w0, Cross: cross},
			{Stage: 1, Weight: w1, Cross: cross},
			{Stage: 2, Weight: w2, Cross: false},
			{Stage: 3, Weight: w3, Cross: cross},
		}
	}
	return p
}

// Uniform builds an n-iteration, s-stage pipeline in which every node has
// weight w and every stage is serial — the uniform pipelines of
// Theorem 12.
func Uniform(n, s int, w int64) *Pipeline {
	p := &Pipeline{Iters: make([][]Node, n)}
	for i := 0; i < n; i++ {
		iter := make([]Node, s)
		for j := 0; j < s; j++ {
			iter[j] = Node{Stage: int64(j), Weight: w, Cross: i > 0}
		}
		p.Iters[i] = iter
	}
	return p
}

// FrameType labels iterations of the x264 dag.
type FrameType int8

const (
	FrameI FrameType = iota
	FrameP
)

// X264 builds the pipeline dag of Figure 3. Each iteration processes one
// I- or P-frame of rows row-stages (each of weight rowWeight), preceded by
// a serial stage 0 of weight readWeight and followed by a parallel
// B-frame stage of weight bWeight and a serial write stage of weight
// writeWeight. Iteration i skips w·i extra leading stages (the offset
// dependency of line 17 in Figure 2), and row nodes of P-frames carry
// cross edges while I-frame rows do not.
func X264(types []FrameType, rows, w int, readWeight, rowWeight, bWeight, writeWeight int64) *Pipeline {
	const (
		processBFrames = int64(1) << 40
		endStage       = processBFrames + 1
	)
	p := &Pipeline{Iters: make([][]Node, len(types))}
	for i, ft := range types {
		skip := int64(w * i)
		iter := []Node{{Stage: 0, Weight: readWeight, Cross: i > 0}}
		for rI := 0; rI < rows; rI++ {
			iter = append(iter, Node{
				Stage:  1 + skip + int64(rI),
				Weight: rowWeight,
				Cross:  ft == FrameP, // conditional pipe_wait vs pipe_continue
			})
		}
		iter = append(iter,
			Node{Stage: processBFrames, Weight: bWeight, Cross: false},
			Node{Stage: endStage, Weight: writeWeight, Cross: true},
		)
		p.Iters[i] = iter
	}
	return p
}

// PipeFib builds the triangular dag of the pipe-fib benchmark: iteration i
// computes F(i+3) and has a number of bit stages that grows with the
// length of the result, every stage serial with unit weight. bits(i) is
// approximated by i+2 bits of F(i+3) growth (the golden-ratio bit rate is
// ~0.694 bits/index; we use it to size the triangle).
func PipeFib(n int) *Pipeline {
	p := &Pipeline{Iters: make([][]Node, n)}
	for i := 0; i < n; i++ {
		bits := int(float64(i+3)*0.6942419) + 2
		iter := make([]Node, 0, bits+1)
		iter = append(iter, Node{Stage: 0, Weight: 1, Cross: i > 0})
		for j := 1; j <= bits; j++ {
			iter = append(iter, Node{Stage: int64(j), Weight: 1, Cross: i > 0})
		}
		p.Iters[i] = iter
	}
	return p
}

// PathologicalThm13 builds the nonuniform unthrottled linear pipeline of
// Figure 10 for a target work T1 ≈ t1: clusters of cbrt(t1)+1 iterations,
// each cluster one heavy iteration of weight t1^(2/3)-2 and cbrt(t1) light
// iterations of weight t1^(1/3)-2 each, with unit-weight serial first and
// last stages. Any scheduler with throttling limit o(t1^(1/3)) cannot
// achieve speedup better than ~3 on it (Theorem 13).
func PathologicalThm13(t1 int64) *Pipeline {
	cbrt := int64(1)
	for (cbrt+1)*(cbrt+1)*(cbrt+1) <= t1 {
		cbrt++
	}
	heavy := cbrt*cbrt - 2
	light := cbrt - 2
	if light < 1 {
		light = 1
	}
	if heavy < 1 {
		heavy = 1
	}
	perCluster := int(cbrt + 1)
	clusters := int((cbrt + 1) / 2) // (T1^{2/3}+T1^{1/3})/2 iterations total
	if clusters < 1 {
		clusters = 1
	}
	var iters [][]Node
	for c := 0; c < clusters; c++ {
		for k := 0; k < perCluster; k++ {
			w := light
			if k == 0 {
				w = heavy
			}
			first := len(iters) == 0
			iters = append(iters, []Node{
				{Stage: 0, Weight: 1, Cross: !first},
				{Stage: 1, Weight: w, Cross: false},
				{Stage: 2, Weight: 1, Cross: !first},
			})
		}
	}
	return &Pipeline{Iters: iters}
}
