package piper

import "piper/internal/core"

// RunSerial executes a pipeline body with full pipe_while semantics on
// the calling goroutine, with no scheduler: the TS baseline of the
// paper's speedup tables, and a debugging mode (stage-discipline
// violations panic exactly as in parallel runs). Fork-join constructs and
// nested pipelines inside the body are serially elided.
func RunSerial(cond func() bool, body func(*Iter)) PipelineReport {
	return core.RunSerial(cond, body)
}

// SerialPipe is RunSerial over a generic element source, like Pipe.
func SerialPipe[T any](next func() (T, bool), body func(it *Iter, v T)) PipelineReport {
	var (
		cur T
		ok  bool
	)
	cond := func() bool {
		cur, ok = next()
		return ok
	}
	return core.RunSerial(cond, func(it *Iter) {
		v := cur
		body(it, v)
	})
}

// RunAdaptive executes a pipeline whose throttling window adapts within
// [kMin, kMax]: it widens (doubling) whenever the pipeline is
// window-bound while workers sit idle and shrinks when the window goes
// unused. This explores the throughput/space trade-off of the paper's
// Section 11: uniform pipelines behave as with K = kMin, while the
// Figure 10 pathology gains the speedup a fixed Θ(P) window provably
// cannot, at a space cost reported in MaxLiveIterations.
func RunAdaptive(eng *Engine, kMin, kMax int, cond func() bool, body func(*Iter)) PipelineReport {
	return eng.RunPipelineAdaptive(kMin, kMax, cond, body)
}
