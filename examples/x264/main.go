// Example x264: the on-the-fly hybrid pipeline of Figure 2 — the
// workload that construct-and-run systems like TBB cannot express. The
// number of stages varies per iteration (stage skipping implements the
// motion-range offset), and each row stage decides Wait vs Continue from
// the frame type read in stage 0.
package main

import (
	"fmt"

	"piper"
	"piper/internal/vidsim"
)

func main() {
	video := vidsim.Generate(7, 192, 96, 60, 20)
	cfg := vidsim.DefaultConfig()

	eng := piper.NewEngine(piper.Workers(4))
	defer eng.Close()

	serial := vidsim.EncodeSerial(video, cfg)
	parallel := vidsim.EncodePiper(eng, 16, video, cfg)

	fmt.Printf("serial  : bits=%d checksum=%016x\n", serial.TotalBits, serial.Checksum)
	fmt.Printf("parallel: bits=%d checksum=%016x violations=%d\n",
		parallel.TotalBits, parallel.Checksum, parallel.Violations)
	if serial.Checksum != parallel.Checksum {
		panic("bitstreams differ — dependency violation!")
	}
	var i, p, b int
	for _, st := range parallel.Stats {
		switch st.Type {
		case vidsim.TypeI:
			i++
		case vidsim.TypeP:
			p++
		default:
			b++
		}
	}
	fmt.Printf("frame types: %d I, %d P, %d B — bit-exact across schedules\n", i, p, b)
}
