// Example nested: pipelines inside pipeline stages plus fork-join inside
// stages — the arbitrary composition Section 2 promises. The outer
// pipeline streams "documents"; stage 1 runs a nested pipeline over the
// document's "pages" and a parallel-for over tokens; stage 2 reduces in
// order.
package main

import (
	"fmt"
	"sync/atomic"

	"piper"
	"piper/internal/workload"
)

func main() {
	eng := piper.NewEngine(piper.Workers(4))
	defer eng.Close()

	const docs, pages, tokens = 10, 8, 1000
	var grandTotal int64
	doc := 0
	eng.PipeWhile(func() bool { return doc < docs }, func(it *piper.Iter) {
		d := doc // stage 0: serial intake
		doc++

		it.Continue(1) // stage 1: nested pipeline over pages
		var docSum atomic.Int64
		page := 0
		it.PipeWhile(func() bool { return page < pages }, func(in *piper.Iter) {
			p := page
			page++
			in.Continue(1)
			// Fork-join over the page's tokens.
			var pageSum atomic.Int64
			in.For(tokens, 64, func(t int) {
				pageSum.Add(int64(workload.Hash64(uint64(d*1000000+p*1000+t)) % 100))
			})
			docSum.Add(pageSum.Load())
		})

		it.Wait(2) // stage 2: serial, ordered reduction
		grandTotal += docSum.Load()
		fmt.Printf("doc %2d  sum=%d\n", d, docSum.Load())
	})
	fmt.Printf("grand total: %d\n", grandTotal)
	s := eng.Stats()
	fmt.Printf("pipelines=%d (1 outer + %d nested), fork-join tasks=%d\n",
		s.Pipelines, s.Pipelines-1, s.ClosureTasks)
}
