// Quickstart: a three-stage SPS pipeline (the ferret shape from the
// paper's introduction). Stage 0 reads lines serially, stage 1 hashes
// them in parallel, stage 2 prints results in input order.
package main

import (
	"fmt"
	"hash/fnv"

	"piper"
)

func main() {
	lines := []string{
		"pipeline parallelism organizes a program",
		"as a linear sequence of stages",
		"each stage processes elements of a data stream",
		"iterations overlap in time",
		"cross edges order adjacent iterations",
		"the scheduler throttles runaway pipelines",
	}

	eng := piper.NewEngine(piper.Workers(4))
	defer eng.Close()

	i := 0
	eng.PipeWhile(func() bool { return i < len(lines) }, func(it *piper.Iter) {
		// Stage 0 (serial): take the next element.
		line := lines[i]
		i++

		it.Continue(1) // stage 1 (parallel): heavy per-element work
		h := fnv.New64a()
		for rep := 0; rep < 1000; rep++ {
			h.Write([]byte(line))
		}
		digest := h.Sum64()

		it.Wait(2) // stage 2 (serial): ordered output
		fmt.Printf("%d  %016x  %s\n", it.Index(), digest, line)
	})

	s := eng.Stats()
	fmt.Printf("\niterations=%d steals=%d suspends=%d\n",
		s.Iterations, s.Steals, s.CrossSuspends)
}
