// Example ferret: the SPS image-similarity pipeline of Figure 1. Builds
// a synthetic corpus, streams queries through a serial-parallel-serial
// pipe_while, and prints each query's nearest neighbours in order.
package main

import (
	"fmt"

	"piper"
	"piper/internal/ferret"
)

func main() {
	corpus := ferret.BuildCorpus(400, 32, 32)
	eng := piper.NewEngine(piper.Workers(4), piper.Throttle(40))
	defer eng.Close()

	outs := corpus.RunPiper(eng, 40, ferret.QuerySet{Offset: 1 << 20, N: 12, TopK: 3})
	for _, o := range outs {
		fmt.Printf("query %d ->", o.QueryID)
		for _, r := range o.Ranked {
			fmt.Printf("  img%d (d=%.4f)", r.ID, r.Dist)
		}
		fmt.Println()
	}
}
