// Example dedup: the SSPS pipeline of Figure 4 — compress a synthetic
// stream, restore it, and verify the round trip. Demonstrates mixing
// Wait (serial stages) and Continue (parallel stage) in one body.
package main

import (
	"bytes"
	"fmt"
	"log"

	"piper"
	"piper/internal/dedup"
	"piper/internal/workload"
)

func main() {
	data := workload.TextStream(42, 4<<20, 4096, 0.45)

	eng := piper.NewEngine(piper.Workers(4))
	defer eng.Close()

	var archive bytes.Buffer
	if err := dedup.CompressPiper(eng, 16, data, &archive); err != nil {
		log.Fatal(err)
	}
	restored, err := dedup.Restore(archive.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(restored, data) {
		log.Fatal("round trip mismatch")
	}
	fmt.Printf("input %d bytes -> archive %d bytes (%.1fx), round trip OK\n",
		len(data), archive.Len(), float64(len(data))/float64(archive.Len()))
	s := eng.Stats()
	fmt.Printf("iterations=%d cross-suspends=%d fold-hits=%d\n",
		s.Iterations, s.CrossSuspends, s.FoldHits)
}
