package piper_test

import (
	"fmt"

	"piper"
)

// The canonical SPS (serial-parallel-serial) pipeline: stage 0 claims an
// element serially, stage 1 processes elements in parallel, stage 2 emits
// results in input order.
func Example() {
	eng := piper.NewEngine(piper.Workers(4))
	defer eng.Close()

	inputs := []int{3, 1, 4, 1, 5, 9, 2, 6}
	i := 0
	eng.PipeWhile(func() bool { return i < len(inputs) }, func(it *piper.Iter) {
		v := inputs[i] // stage 0: serial input
		i++

		it.Continue(1) // stage 1: parallel
		sq := v * v

		it.Wait(2) // stage 2: serial, in order
		fmt.Print(sq, " ")
	})
	fmt.Println()
	// Output: 9 1 16 1 25 81 4 36
}

// Pipe removes the shared-variable boilerplate from hand-written
// pipe_while conditions: next produces each element, and the body gets an
// iteration-local copy.
func ExamplePipe() {
	eng := piper.NewEngine(piper.Workers(4))
	defer eng.Close()

	words := []string{"on", "the", "fly", "pipeline"}
	i := 0
	piper.Pipe(eng, func() (string, bool) {
		if i >= len(words) {
			return "", false
		}
		w := words[i]
		i++
		return w, true
	}, func(it *piper.Iter, w string) {
		it.Continue(1)
		n := len(w)
		it.Wait(2)
		fmt.Print(n, " ")
	})
	fmt.Println()
	// Output: 2 3 3 8
}

// Data-dependent stage structure — the x264 pattern that construct-and-run
// pipelines cannot express: each iteration decides at run time whether a
// stage depends on its predecessor (Wait) or not (Continue).
func ExampleIter_Wait() {
	eng := piper.NewEngine(piper.Workers(4))
	defer eng.Close()

	kinds := []string{"I", "P", "P", "I", "P"}
	i := 0
	eng.PipeWhile(func() bool { return i < len(kinds) }, func(it *piper.Iter) {
		kind := kinds[i]
		i++
		if kind == "I" {
			it.Continue(1) // independent: no cross edge
		} else {
			it.Wait(1) // depends on the previous iteration's stage 1
		}
		it.Wait(2)
		fmt.Print(kind, " ")
	})
	fmt.Println()
	// Output: I P P I P
}

// RunSerial executes the same body with pipe_while semantics but no
// parallelism — the TS baseline of the paper's speedup tables.
func ExampleRunSerial() {
	i := 0
	rep := piper.RunSerial(func() bool { return i < 3 }, func(it *piper.Iter) {
		i++
		it.Continue(1)
		it.Wait(2)
	})
	fmt.Println(rep.Iterations)
	// Output: 3
}
