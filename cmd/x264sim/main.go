// Command x264sim encodes a synthetic video with the on-the-fly hybrid
// pipeline of Figure 2 and prints per-frame statistics.
//
// Usage:
//
//	x264sim -w 320 -h 176 -frames 120 -p 4 -pipeline piper
package main

import (
	"flag"
	"fmt"
	"os"

	"piper"
	"piper/internal/vidsim"
)

func main() {
	var (
		w        = flag.Int("w", 320, "width (multiple of 16)")
		h        = flag.Int("h", 176, "height (multiple of 16)")
		frames   = flag.Int("frames", 120, "frame count")
		p        = flag.Int("p", 4, "workers")
		pipeline = flag.String("pipeline", "piper", "piper|pthreads|serial")
		verbose  = flag.Bool("v", false, "print per-frame stats")
		traceOut = flag.String("trace", "", "write a Chrome trace of the schedule to this file")
	)
	flag.Parse()

	video := vidsim.Generate(777, *w, *h, *frames, *frames/3)
	cfg := vidsim.DefaultConfig()
	var res *vidsim.Result
	switch *pipeline {
	case "serial":
		res = vidsim.EncodeSerial(video, cfg)
	case "piper":
		eng := piper.NewEngine(piper.Workers(*p))
		defer eng.Close()
		if *traceOut != "" {
			eng.StartTrace()
		}
		res = vidsim.EncodePiper(eng, 4**p, video, cfg)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "x264sim:", err)
				os.Exit(1)
			}
			if err := eng.StopTrace(f); err != nil {
				fmt.Fprintln(os.Stderr, "x264sim:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "trace written to %s\n", *traceOut)
		}
	case "pthreads":
		res = vidsim.EncodeThreads(video, cfg, *p)
	default:
		fmt.Fprintf(os.Stderr, "x264sim: unknown pipeline %q\n", *pipeline)
		os.Exit(2)
	}
	if *verbose {
		for _, st := range res.Stats {
			fmt.Printf("frame %3d  type %s  bits %8d\n", st.Frame, st.Type, st.Bits)
		}
	}
	fmt.Printf("frames=%d refs=%d total-bits=%d checksum=%016x violations=%d\n",
		len(res.Stats), len(res.Order), res.TotalBits, res.Checksum, res.Violations)
	if res.Violations != 0 {
		os.Exit(1)
	}
}
