// Command dagviz emits pipeline dags in Graphviz DOT format, reproducing
// the structural figures of the paper (Figure 1's ferret SPS grid,
// Figure 3's x264 staircase, Figure 10's pathological pipeline).
//
// Usage:
//
//	dagviz -dag ferret -n 8 -k 4 | dot -Tpng > ferret.png
package main

import (
	"flag"
	"fmt"
	"os"

	"piper/internal/dag"
)

func main() {
	var (
		kind = flag.String("dag", "ferret", "ferret|dedup|x264|pipefib|pathological|uniform")
		n    = flag.Int("n", 8, "iterations")
		k    = flag.Int("k", 0, "throttling window to draw (0 = none)")
		r    = flag.Int64("r", 4, "parallel-stage weight for ferret")
	)
	flag.Parse()

	var p *dag.Pipeline
	switch *kind {
	case "ferret":
		p = dag.SPS(*n, *r)
	case "dedup":
		p = dag.SSPS(*n, 1, 2, 8, 1)
	case "x264":
		types := make([]dag.FrameType, *n)
		for i := range types {
			if i%3 == 0 {
				types[i] = dag.FrameI
			} else {
				types[i] = dag.FrameP
			}
		}
		p = dag.X264(types, 4, 1, 1, 4, 6, 1)
	case "pipefib":
		p = dag.PipeFib(*n)
	case "pathological":
		p = dag.PathologicalThm13(1 << 12)
	case "uniform":
		p = dag.Uniform(*n, 4, 1)
	default:
		fmt.Fprintf(os.Stderr, "dagviz: unknown dag %q\n", *kind)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "work=%d span=%d parallelism=%.2f\n",
		p.Work(), p.Span(), p.Parallelism())
	if err := p.DOT(os.Stdout, *k); err != nil {
		fmt.Fprintln(os.Stderr, "dagviz:", err)
		os.Exit(1)
	}
}
