// Command pipeserve demonstrates the async serving scenario end to end:
// a multi-tenant driver sustains thousands of concurrent short pipelines
// on one engine — Submit instead of PipeWhile — with randomized
// cancellation, and verifies that the engine drains completely when the
// traffic stops.
//
// Each "request" is a short SPS (serial-parallel-serial) pipeline:
// stage 0 parses the request serially, stage 1 processes chunks in
// parallel (with fork-join inside), and a final pipe_wait stage assembles
// the response in order. A configurable fraction of requests is canceled
// at a random point in flight; the driver checks that canceled requests
// report the context error, everything else completes, and the
// scheduler's live-frame gauges return to zero.
//
// Usage:
//
//	pipeserve -p 8 -tenants 16 -requests 5000 -cancel 0.2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"piper"
	"piper/internal/workload"
)

func main() {
	var (
		p        = flag.Int("p", runtime.GOMAXPROCS(0), "scheduler workers")
		tenants  = flag.Int("tenants", 16, "concurrent tenants (request issuers)")
		requests = flag.Int("requests", 5000, "total requests across all tenants")
		inflight = flag.Int("inflight", 64, "max in-flight requests per tenant")
		cancelF  = flag.Float64("cancel", 0.2, "fraction of requests canceled mid-flight")
		work     = flag.Int64("work", 2000, "spin units per pipeline stage")
		seed     = flag.Uint64("seed", 1, "workload shape seed")
	)
	flag.Parse()
	if *tenants < 1 {
		*tenants = 1
	}
	if *requests < 0 {
		*requests = 0
	}
	if *inflight < 1 {
		*inflight = 1
	}
	if *work < 2 {
		*work = 2 // the per-request jitter draws from [work/2, work)
	}

	eng := piper.NewEngine(piper.Workers(*p))

	var (
		completed atomic.Int64
		canceled  atomic.Int64
		failures  atomic.Int64
		latMu     sync.Mutex
		latencies []time.Duration
	)
	record := func(d time.Duration) {
		latMu.Lock()
		latencies = append(latencies, d)
		latMu.Unlock()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for tn := 0; tn < *tenants; tn++ {
		tn := tn
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := workload.NewRNG(*seed*0x9e3779b9 + uint64(tn))
			sem := make(chan struct{}, *inflight)
			var tw sync.WaitGroup
			quota := *requests / *tenants
			if tn < *requests%*tenants {
				quota++
			}
			for q := 0; q < quota; q++ {
				sem <- struct{}{}
				iters := 4 + int(rng.Intn(12))
				spin := *work/2 + int64(rng.Intn(int(*work)))
				doCancel := rng.Float64() < *cancelF
				cancelAfter := time.Duration(rng.Intn(500)) * time.Microsecond

				ctx, cancel := context.WithCancel(context.Background())
				var sink atomic.Uint64
				i := 0
				t0 := time.Now()
				h := eng.Submit(ctx, func() bool { i++; return i <= iters }, func(it *piper.Iter) {
					sink.Add(workload.Spin(spin)) // stage 0: parse serially
					it.Continue(1)
					it.Go(func() { sink.Add(workload.Spin(spin)) })
					sink.Add(workload.Spin(spin)) // stage 1: parallel body
					it.Sync()
					it.Wait(2)
					sink.Add(workload.Spin(spin / 4)) // stage 2: respond in order
				})
				tw.Add(1)
				go func() {
					defer tw.Done()
					defer cancel()
					defer func() { <-sem }()
					if doCancel {
						time.Sleep(cancelAfter)
						cancel()
					}
					err := h.Wait()
					record(time.Since(t0))
					switch {
					case err == nil:
						completed.Add(1)
					case context.Cause(ctx) != nil:
						canceled.Add(1)
					default:
						failures.Add(1)
						fmt.Fprintf(os.Stderr, "pipeserve: unexpected error: %v\n", err)
					}
				}()
			}
			tw.Wait()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	s := eng.Stats()
	drained := s.LiveIterFrames == 0 && s.LiveClosureFrames == 0 && s.LivePipelines == 0
	// Gauges may trail the last completion signal by one worker step.
	for d := time.Millisecond; !drained && d < time.Second; d *= 2 {
		time.Sleep(d)
		s = eng.Stats()
		drained = s.LiveIterFrames == 0 && s.LiveClosureFrames == 0 && s.LivePipelines == 0
	}
	eng.Close()

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	pct := func(q float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(q * float64(len(latencies)-1))
		return latencies[idx]
	}

	fmt.Printf("pipeserve: %d requests over %d tenants on P=%d in %v (%.0f req/s)\n",
		*requests, *tenants, *p, elapsed.Round(time.Millisecond),
		float64(*requests)/elapsed.Seconds())
	fmt.Printf("  completed=%d canceled=%d failures=%d\n",
		completed.Load(), canceled.Load(), failures.Load())
	fmt.Printf("  latency p50=%v p95=%v p99=%v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))
	fmt.Printf("  submits=%d cancelRequests=%d abortedPipelines=%d abortedIterations=%d\n",
		s.Submits, s.CancelRequests, s.AbortedPipelines, s.AbortedIterations)
	fmt.Printf("  iterations=%d steals=%d poolHits=%d poolMisses=%d overflows=%d\n",
		s.Iterations, s.Steals, s.FramePoolHits, s.FramePoolMisses, s.InjectOverflows)
	fmt.Printf("  drained=%v\n", drained)

	if failures.Load() > 0 || !drained ||
		completed.Load()+canceled.Load() != int64(*requests) {
		os.Exit(1)
	}
}
