// Command pipeserve demonstrates the async serving scenario end to end:
// a multi-tenant driver sustains thousands of concurrent short pipelines
// on one engine — Submit instead of PipeWhile — with randomized
// cancellation, and verifies that the engine drains completely when the
// traffic stops.
//
// Each "request" is a short SPS (serial-parallel-serial) pipeline:
// stage 0 parses the request serially, stage 1 processes chunks in
// parallel (with fork-join inside), and a final pipe_wait stage assembles
// the response in order. A configurable fraction of requests is canceled
// at a random point in flight; the driver checks that canceled requests
// report the context error, everything else completes, and the
// scheduler's live-frame gauges return to zero.
//
// Elastic/backpressure mode: with -min/-max the engine scales its worker
// pool with the load, and -burst makes each tenant issue its requests in
// waves separated by -idle quiet gaps — traffic the driver does not
// control smoothly, which is exactly what the elastic pool is for. The
// engine must scale up during a wave and retire back down during the
// gaps; in that mode the driver fails (exit 1) unless both were observed.
// -maxpending bounds admitted-but-unfinished pipelines: -waitadmit queues
// submissions under backpressure (SubmitWait), while without it requests
// that find the budget full are rejected with ErrSaturated and counted.
//
// Usage:
//
//	pipeserve -p 8 -tenants 16 -requests 5000 -cancel 0.2
//	pipeserve -p 1 -min 1 -max 4 -burst 3 -idle 30ms -retire 2ms \
//	          -maxpending 8 -waitadmit -tenants 4 -requests 400
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"piper"
	"piper/internal/workload"
)

func main() {
	var (
		p        = flag.Int("p", runtime.GOMAXPROCS(0), "initial scheduler workers")
		minW     = flag.Int("min", 0, "elastic pool floor (0: fixed at -p)")
		maxW     = flag.Int("max", 0, "elastic pool ceiling (0: fixed at -p)")
		retire   = flag.Duration("retire", 5*time.Millisecond, "idle grace before a surplus worker retires")
		maxPend  = flag.Int("maxpending", 0, "admission budget: max pending pipelines (0: unlimited)")
		waitAdm  = flag.Bool("waitadmit", false, "block for admission (SubmitWait) instead of rejecting with ErrSaturated")
		bursts   = flag.Int("burst", 0, "issue each tenant's requests in this many waves separated by -idle gaps (0: steady)")
		idleGap  = flag.Duration("idle", 30*time.Millisecond, "quiet gap between bursts")
		tenants  = flag.Int("tenants", 16, "concurrent tenants (request issuers)")
		requests = flag.Int("requests", 5000, "total requests across all tenants")
		inflight = flag.Int("inflight", 64, "max in-flight requests per tenant")
		cancelF  = flag.Float64("cancel", 0.2, "fraction of requests canceled mid-flight")
		work     = flag.Int64("work", 2000, "spin units per pipeline stage")
		seed     = flag.Uint64("seed", 1, "workload shape seed")
	)
	flag.Parse()
	if *tenants < 1 {
		*tenants = 1
	}
	if *requests < 0 {
		*requests = 0
	}
	if *inflight < 1 {
		*inflight = 1
	}
	if *work < 2 {
		*work = 2 // the per-request jitter draws from [work/2, work)
	}
	if *bursts < 0 {
		*bursts = 0
	}

	opts := []piper.Option{piper.Workers(*p)}
	if *minW > 0 {
		opts = append(opts, piper.MinWorkers(*minW))
	}
	if *maxW > 0 {
		opts = append(opts, piper.MaxWorkers(*maxW))
	}
	if *minW > 0 || *maxW > 0 {
		opts = append(opts, piper.RetireAfter(*retire))
	}
	if *maxPend > 0 {
		opts = append(opts, piper.MaxPending(*maxPend))
	}
	eng := piper.NewEngine(opts...)
	// Judge elasticity from the engine's normalized bounds, not the raw
	// flags: option reconciliation can collapse the requested range into a
	// fixed pool (e.g. -max at or below the floor), and a fixed pool must
	// not be held to the scaled-up/scaled-down exit criteria below.
	norm := eng.Options()
	elastic := norm.MinWorkers < norm.MaxWorkers

	var (
		completed atomic.Int64
		canceled  atomic.Int64
		rejected  atomic.Int64
		failures  atomic.Int64
		latMu     sync.Mutex
		latencies []time.Duration
	)
	record := func(d time.Duration) {
		latMu.Lock()
		latencies = append(latencies, d)
		latMu.Unlock()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for tn := 0; tn < *tenants; tn++ {
		tn := tn
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := workload.NewRNG(*seed*0x9e3779b9 + uint64(tn))
			sem := make(chan struct{}, *inflight)
			var tw sync.WaitGroup
			quota := *requests / *tenants
			if tn < *requests%*tenants {
				quota++
			}
			// Burst mode slices the quota into waves; wave boundaries wait
			// for the tenant's in-flight work and then go quiet, giving
			// surplus workers their idle grace to retire before the next
			// flood forces the pool back up.
			waves := 1
			if *bursts > 0 {
				waves = *bursts
			}
			for wave := 0; wave < waves; wave++ {
				n := quota / waves
				if wave < quota%waves {
					n++
				}
				for q := 0; q < n; q++ {
					sem <- struct{}{}
					iters := 4 + int(rng.Intn(12))
					spin := *work/2 + int64(rng.Intn(int(*work)))
					doCancel := rng.Float64() < *cancelF
					cancelAfter := time.Duration(rng.Intn(500)) * time.Microsecond

					ctx, cancel := context.WithCancel(context.Background())
					var sink atomic.Uint64
					i := 0
					t0 := time.Now()
					cond := func() bool { i++; return i <= iters }
					body := func(it *piper.Iter) {
						sink.Add(workload.Spin(spin)) // stage 0: parse serially
						it.Continue(1)
						it.Go(func() { sink.Add(workload.Spin(spin)) })
						sink.Add(workload.Spin(spin)) // stage 1: parallel body
						it.Sync()
						it.Wait(2)
						sink.Add(workload.Spin(spin / 4)) // stage 2: respond in order
					}
					var h *piper.Handle
					if *waitAdm {
						h = eng.SubmitWait(ctx, cond, body)
					} else {
						h = eng.Submit(ctx, cond, body)
					}
					tw.Add(1)
					go func() {
						defer tw.Done()
						defer cancel()
						defer func() { <-sem }()
						if doCancel {
							time.Sleep(cancelAfter)
							cancel()
						}
						err := h.Wait()
						switch {
						case err == nil:
							completed.Add(1)
							record(time.Since(t0))
						case errors.Is(err, piper.ErrSaturated):
							// Rejects resolve in microseconds on the admission
							// fast path; keeping them out of the histogram
							// stops them dragging the served-request
							// percentiles toward zero.
							rejected.Add(1)
						case context.Cause(ctx) != nil:
							canceled.Add(1)
							record(time.Since(t0))
						default:
							failures.Add(1)
							fmt.Fprintf(os.Stderr, "pipeserve: unexpected error: %v\n", err)
						}
					}()
				}
				if wave < waves-1 {
					tw.Wait()
					time.Sleep(*idleGap)
				}
			}
			tw.Wait()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	s := eng.Stats()
	drained := s.LiveIterFrames == 0 && s.LiveClosureFrames == 0 && s.LivePipelines == 0
	// Gauges may trail the last completion signal by one worker step.
	for d := time.Millisecond; !drained && d < time.Second; d *= 2 {
		time.Sleep(d)
		s = eng.Stats()
		drained = s.LiveIterFrames == 0 && s.LiveClosureFrames == 0 && s.LivePipelines == 0
	}
	// An elastic pool must also come back down once the traffic stops.
	scaledDown := true
	if elastic {
		scaledDown = false
		deadline := time.Now().Add(2*time.Second + 10**retire)
		for !scaledDown && time.Now().Before(deadline) {
			s = eng.Stats()
			scaledDown = s.LiveWorkers <= int64(norm.MinWorkers)
			if !scaledDown {
				time.Sleep(*retire)
			}
		}
	}
	eng.Close()

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	pct := func(q float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		idx := int(q * float64(len(latencies)-1))
		return latencies[idx]
	}

	fmt.Printf("pipeserve: %d requests over %d tenants on P=%d in %v (%.0f req/s)\n",
		*requests, *tenants, *p, elapsed.Round(time.Millisecond),
		float64(*requests)/elapsed.Seconds())
	fmt.Printf("  completed=%d canceled=%d rejected=%d failures=%d\n",
		completed.Load(), canceled.Load(), rejected.Load(), failures.Load())
	fmt.Printf("  latency p50=%v p95=%v p99=%v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))
	fmt.Printf("  submits=%d cancelRequests=%d abortedPipelines=%d abortedIterations=%d\n",
		s.Submits, s.CancelRequests, s.AbortedPipelines, s.AbortedIterations)
	fmt.Printf("  iterations=%d steals=%d poolHits=%d poolMisses=%d overflows=%d\n",
		s.Iterations, s.Steals, s.FramePoolHits, s.FramePoolMisses, s.InjectOverflows)
	fmt.Printf("  workers live=%d spawns=%d retires=%d\n",
		s.LiveWorkers, s.WorkerSpawns, s.WorkerRetires)
	fmt.Printf("  admission saturations=%d waitMs=%.2f pending=%d\n",
		s.Saturations, float64(s.AdmissionWaitNs)/1e6, s.PendingAdmitted)
	fmt.Printf("  drained=%v\n", drained)

	ok := failures.Load() == 0 && drained &&
		completed.Load()+canceled.Load()+rejected.Load() == int64(*requests)
	// Elastic burst mode must actually exercise the pool: at least one
	// scale-up, at least one retire, and a return to the floor.
	if elastic && *bursts > 0 {
		scaled := s.WorkerSpawns >= 1 && s.WorkerRetires >= 1 && scaledDown
		fmt.Printf("  scaled=%v\n", scaled)
		ok = ok && scaled
	}
	if !ok {
		os.Exit(1)
	}
}
