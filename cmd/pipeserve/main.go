// Command pipeserve demonstrates the async serving scenario end to end:
// a multi-tenant driver sustains thousands of concurrent short pipelines
// on one engine — Submit instead of PipeWhile — with randomized
// cancellation, and verifies that the engine drains completely when the
// traffic stops.
//
// Each "request" is a short SPS (serial-parallel-serial) pipeline:
// stage 0 parses the request serially, stage 1 processes chunks in
// parallel (with fork-join inside), and a final pipe_wait stage assembles
// the response in order. A configurable fraction of requests is canceled
// at a random point in flight; the driver checks that canceled requests
// report the context error, everything else completes, and the
// scheduler's live-frame gauges return to zero.
//
// Elastic/backpressure mode: with -min/-max the engine scales its worker
// pool with the load, and -burst makes each tenant issue its requests in
// waves separated by -idle quiet gaps — traffic the driver does not
// control smoothly, which is exactly what the elastic pool is for. The
// engine must scale up during a wave and retire back down during the
// gaps; in that mode the driver fails (exit 1) unless both were observed.
// -maxpending bounds admitted-but-unfinished pipelines: -waitadmit queues
// submissions under backpressure (SubmitWait), while without it requests
// that find the budget full are rejected with ErrSaturated and counted.
//
// Arrival control: -rate paces each tenant's submissions (requests per
// second per tenant; 0 issues as fast as the in-flight window allows),
// and -openloop switches from the default closed loop (at most -inflight
// outstanding requests per tenant) to open-loop arrivals, where requests
// are issued on the arrival clock whether or not earlier ones finished —
// the arrival process a latency benchmark needs to avoid coordinated
// omission.
//
// QoS mode: -qos runs the noisy-neighbour scenario against the engine's
// weighted-fair admission queue. Phase one measures a steady quiet tenant
// alone (its solo p99 is the baseline); phase two replays the same quiet
// tenant against a bursty noisy tenant flooding the same engine through
// a low-weight, quota-capped tenant class. The run fails (exit 1) unless
// the quiet tenant's mixed p99 stays within solo_p99 * -qosfactor +
// -qosslack, every engine drains, and each tenant class's admission
// counters reconcile exactly (submitted == admitted+rejected+canceled
// with zero pending/waiting at quiescence).
//
// Usage:
//
//	pipeserve -p 8 -tenants 16 -requests 5000 -cancel 0.2
//	pipeserve -p 1 -min 1 -max 4 -burst 3 -idle 30ms -retire 2ms \
//	          -maxpending 8 -waitadmit -tenants 4 -requests 400
//	pipeserve -qos -p 2 -maxpending 4 -requests 2000 -work 800 -seed 7
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"piper"
	"piper/internal/workload"
)

var (
	p        = flag.Int("p", runtime.GOMAXPROCS(0), "initial scheduler workers")
	minW     = flag.Int("min", 0, "elastic pool floor (0: fixed at -p)")
	maxW     = flag.Int("max", 0, "elastic pool ceiling (0: fixed at -p)")
	retire   = flag.Duration("retire", 5*time.Millisecond, "idle grace before a surplus worker retires")
	maxPend  = flag.Int("maxpending", 0, "admission budget: max pending pipelines (0: unlimited)")
	waitAdm  = flag.Bool("waitadmit", false, "block for admission (SubmitWait) instead of rejecting with ErrSaturated")
	bursts   = flag.Int("burst", 0, "issue each tenant's requests in this many waves separated by -idle gaps (0: steady)")
	idleGap  = flag.Duration("idle", 30*time.Millisecond, "quiet gap between bursts")
	tenants  = flag.Int("tenants", 16, "concurrent tenants (request issuers)")
	requests = flag.Int("requests", 5000, "total requests across all tenants")
	inflight = flag.Int("inflight", 64, "max in-flight requests per tenant (closed loop)")
	rate     = flag.Float64("rate", 0, "per-tenant arrival rate in req/s (0: unpaced)")
	openLoop = flag.Bool("openloop", false, "open-loop arrivals: issue on the clock, ignore the in-flight window")
	cancelF  = flag.Float64("cancel", 0.2, "fraction of requests canceled mid-flight")
	work     = flag.Int64("work", 2000, "spin units per pipeline stage")
	seed     = flag.Uint64("seed", 1, "workload shape seed")
	qos      = flag.Bool("qos", false, "run the noisy-neighbour QoS scenario (two tenant classes)")
	qosFact  = flag.Float64("qosfactor", 25, "QoS bound: mixed p99 may be at most this multiple of solo p99 (plus -qosslack)")
	qosSlack = flag.Duration("qosslack", 20*time.Millisecond, "QoS bound: absolute slack added to the scaled solo p99")
)

// tenantSpec is one request issuer's load shape.
type tenantSpec struct {
	class    string // tenant class name ("" = default)
	requests int
	inflight int     // closed-loop in-flight window
	rate     float64 // arrivals per second; 0 = unpaced
	openLoop bool
	waitAdm  bool
	bursts   int
	idleGap  time.Duration
	cancelF  float64
	work     int64
	seed     uint64
}

// classHists is the per-tenant-class latency record, split by outcome so
// canceled requests (whose latency includes the canceler's sleep, not
// service time) never contaminate the served percentiles.
type classHists struct {
	served  hist
	aborted hist
}

// runner aggregates one load phase against one engine.
type runner struct {
	eng *piper.Engine

	completed atomic.Int64
	canceled  atomic.Int64
	rejected  atomic.Int64
	failures  atomic.Int64

	mu      sync.Mutex
	byClass map[string]*classHists
}

func newRunner(eng *piper.Engine) *runner {
	return &runner{eng: eng, byClass: make(map[string]*classHists)}
}

func (r *runner) class(name string) *classHists {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch := r.byClass[name]
	if ch == nil {
		ch = &classHists{}
		r.byClass[name] = ch
	}
	return ch
}

// runTenant issues spec.requests short SPS pipelines and blocks until
// every one of them resolved. Closed loop bounds outstanding requests by
// spec.inflight; open loop issues purely on the arrival clock.
func (r *runner) runTenant(spec tenantSpec) {
	rng := workload.NewRNG(spec.seed)
	ch := r.class(spec.class)
	sem := make(chan struct{}, spec.inflight)
	var interval time.Duration
	if spec.rate > 0 {
		interval = time.Duration(float64(time.Second) / spec.rate)
	}
	next := time.Now()
	var tw sync.WaitGroup
	// Burst mode slices the quota into waves; wave boundaries wait for
	// the tenant's in-flight work and then go quiet, giving surplus
	// workers their idle grace to retire before the next flood forces the
	// pool back up.
	waves := 1
	if spec.bursts > 0 {
		waves = spec.bursts
	}
	for wave := 0; wave < waves; wave++ {
		n := spec.requests / waves
		if wave < spec.requests%waves {
			n++
		}
		for q := 0; q < n; q++ {
			if interval > 0 {
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				next = next.Add(interval)
			}
			if !spec.openLoop {
				sem <- struct{}{}
			}
			iters := 4 + int(rng.Intn(12))
			spin := spec.work/2 + int64(rng.Intn(int(spec.work)))
			doCancel := rng.Float64() < spec.cancelF
			cancelAfter := time.Duration(rng.Intn(500)) * time.Microsecond
			tw.Add(1)
			go func() {
				defer tw.Done()
				if !spec.openLoop {
					defer func() { <-sem }()
				}
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				var sink atomic.Uint64
				i := 0
				t0 := time.Now()
				cond := func() bool { i++; return i <= iters }
				body := func(it *piper.Iter) {
					sink.Add(workload.Spin(spin)) // stage 0: parse serially
					it.Continue(1)
					it.Go(func() { sink.Add(workload.Spin(spin)) })
					sink.Add(workload.Spin(spin)) // stage 1: parallel body
					it.Sync()
					it.Wait(2)
					sink.Add(workload.Spin(spin / 4)) // stage 2: respond in order
				}
				var h *piper.Handle
				if spec.waitAdm {
					h = r.eng.SubmitWaitTenant(ctx, spec.class, cond, body)
				} else {
					h = r.eng.SubmitTenant(ctx, spec.class, cond, body)
				}
				if doCancel {
					time.Sleep(cancelAfter)
					cancel()
				}
				err := h.Wait()
				switch {
				case err == nil:
					r.completed.Add(1)
					ch.served.record(time.Since(t0))
				case errors.Is(err, piper.ErrSaturated), errors.Is(err, piper.ErrAdmissionExpired):
					// Rejects resolve in microseconds on the admission fast
					// path; keeping them out of the histograms stops them
					// dragging the served-request percentiles toward zero.
					r.rejected.Add(1)
				case context.Cause(ctx) != nil:
					r.canceled.Add(1)
					ch.aborted.record(time.Since(t0))
				default:
					r.failures.Add(1)
					fmt.Fprintf(os.Stderr, "pipeserve: unexpected error: %v\n", err)
				}
			}()
		}
		if wave < waves-1 {
			tw.Wait()
			time.Sleep(spec.idleGap)
		}
	}
	tw.Wait()
}

// engineOpts assembles the engine configuration from the shared flags.
func engineOpts(extra ...piper.Option) []piper.Option {
	opts := []piper.Option{piper.Workers(*p)}
	if *minW > 0 {
		opts = append(opts, piper.MinWorkers(*minW))
	}
	if *maxW > 0 {
		opts = append(opts, piper.MaxWorkers(*maxW))
	}
	if *minW > 0 || *maxW > 0 {
		opts = append(opts, piper.RetireAfter(*retire))
	}
	if *maxPend > 0 {
		opts = append(opts, piper.MaxPending(*maxPend))
	}
	return append(opts, extra...)
}

// awaitDrain polls the live-frame gauges until the engine reports fully
// drained or the backoff budget runs out.
func awaitDrain(eng *piper.Engine) (piper.Stats, bool) {
	s := eng.Stats()
	drained := s.LiveIterFrames == 0 && s.LiveClosureFrames == 0 && s.LivePipelines == 0
	// Gauges may trail the last completion signal by one worker step.
	for d := time.Millisecond; !drained && d < time.Second; d *= 2 {
		time.Sleep(d)
		s = eng.Stats()
		drained = s.LiveIterFrames == 0 && s.LiveClosureFrames == 0 && s.LivePipelines == 0
	}
	return s, drained
}

// checkTenantAccounting verifies the admitter's per-class invariant at
// quiescence: every submit is accounted exactly once (admitted, rejected,
// or canceled) and no slot or waiter is still outstanding.
func checkTenantAccounting(ts []piper.TenantStats) bool {
	ok := true
	for _, c := range ts {
		if c.Submitted != c.Admitted+c.Rejected+c.Canceled || c.Pending != 0 || c.Waiting != 0 {
			ok = false
		}
	}
	return ok
}

// printTenantStats prints the per-class admission counters and served
// latency percentiles; it returns false if the accounting invariant is
// violated. A nil snapshot (engine without admission control) passes.
func printTenantStats(r *runner) bool {
	ts := r.eng.TenantStats()
	if ts == nil {
		return true
	}
	for _, c := range ts {
		name := c.Name
		if name == "" {
			name = "default"
		}
		fmt.Printf("  tenant %s w=%d quota=%d: submitted=%d admitted=%d rejected=%d canceled=%d waitMs=%.2f pending=%d waiting=%d\n",
			name, c.Weight, c.MaxPending, c.Submitted, c.Admitted, c.Rejected, c.Canceled,
			float64(c.AdmissionWaitNs)/1e6, c.Pending, c.Waiting)
		if ch := r.byClass[c.Name]; ch != nil && ch.served.count() > 0 {
			s := ch.served.sorted()
			fmt.Printf("    served n=%d p50=%v p95=%v p99=%v p999=%v (canceled n=%d excluded)\n",
				len(s),
				percentile(s, 0.50).Round(time.Microsecond),
				percentile(s, 0.95).Round(time.Microsecond),
				percentile(s, 0.99).Round(time.Microsecond),
				percentile(s, 0.999).Round(time.Microsecond),
				ch.aborted.count())
		}
	}
	acct := checkTenantAccounting(ts)
	fmt.Printf("  accounting=%v\n", acct)
	return acct
}

// summarize prints the standard run summary and returns whether the
// phase passed: no unexpected failures, exact outcome accounting, a
// drained engine, and (when admission control is on) reconciled
// per-class counters.
func summarize(r *runner, total, nTenants int, elapsed time.Duration, s piper.Stats, drained bool) bool {
	allServed := r.allServedSorted()
	fmt.Printf("pipeserve: %d requests over %d tenants on P=%d in %v (%.0f req/s)\n",
		total, nTenants, *p, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	fmt.Printf("  completed=%d canceled=%d rejected=%d failures=%d\n",
		r.completed.Load(), r.canceled.Load(), r.rejected.Load(), r.failures.Load())
	fmt.Printf("  latency p50=%v p95=%v p99=%v p999=%v (served only)\n",
		percentile(allServed, 0.50).Round(time.Microsecond),
		percentile(allServed, 0.95).Round(time.Microsecond),
		percentile(allServed, 0.99).Round(time.Microsecond),
		percentile(allServed, 0.999).Round(time.Microsecond))
	fmt.Printf("  submits=%d cancelRequests=%d abortedPipelines=%d abortedIterations=%d\n",
		s.Submits, s.CancelRequests, s.AbortedPipelines, s.AbortedIterations)
	fmt.Printf("  iterations=%d steals=%d poolHits=%d poolMisses=%d overflows=%d\n",
		s.Iterations, s.Steals, s.FramePoolHits, s.FramePoolMisses, s.InjectOverflows)
	fmt.Printf("  workers live=%d spawns=%d retires=%d\n",
		s.LiveWorkers, s.WorkerSpawns, s.WorkerRetires)
	fmt.Printf("  admission saturations=%d waitMs=%.2f pending=%d\n",
		s.Saturations, float64(s.AdmissionWaitNs)/1e6, s.PendingAdmitted)
	acct := printTenantStats(r)
	fmt.Printf("  drained=%v\n", drained)
	return r.failures.Load() == 0 && drained && acct &&
		r.completed.Load()+r.canceled.Load()+r.rejected.Load() == int64(total)
}

func (r *runner) allServedSorted() []time.Duration {
	merged := &hist{}
	r.mu.Lock()
	for _, ch := range r.byClass {
		merged.samples = append(merged.samples, ch.served.sorted()...)
	}
	r.mu.Unlock()
	return merged.sorted()
}

// runLoad is the classic multi-tenant load phase: -tenants identical
// issuers sharing the default class.
func runLoad() int {
	eng := piper.NewEngine(engineOpts()...)
	// Judge elasticity from the engine's normalized bounds, not the raw
	// flags: option reconciliation can collapse the requested range into a
	// fixed pool (e.g. -max at or below the floor), and a fixed pool must
	// not be held to the scaled-up/scaled-down exit criteria below.
	norm := eng.Options()
	elastic := norm.MinWorkers < norm.MaxWorkers

	r := newRunner(eng)
	start := time.Now()
	var wg sync.WaitGroup
	for tn := 0; tn < *tenants; tn++ {
		quota := *requests / *tenants
		if tn < *requests%*tenants {
			quota++
		}
		spec := tenantSpec{
			requests: quota,
			inflight: *inflight,
			rate:     *rate,
			openLoop: *openLoop,
			waitAdm:  *waitAdm,
			bursts:   *bursts,
			idleGap:  *idleGap,
			cancelF:  *cancelF,
			work:     *work,
			seed:     *seed*0x9e3779b9 + uint64(tn),
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.runTenant(spec)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	s, drained := awaitDrain(eng)
	// An elastic pool must also come back down once the traffic stops.
	scaledDown := true
	if elastic {
		scaledDown = false
		deadline := time.Now().Add(2*time.Second + 10**retire)
		for !scaledDown && time.Now().Before(deadline) {
			s = eng.Stats()
			scaledDown = s.LiveWorkers <= int64(norm.MinWorkers)
			if !scaledDown {
				time.Sleep(*retire)
			}
		}
	}
	eng.Close()

	ok := summarize(r, *requests, *tenants, elapsed, s, drained)
	// Elastic burst mode must actually exercise the pool: at least one
	// scale-up, at least one retire, and a return to the floor.
	if elastic && *bursts > 0 {
		scaled := s.WorkerSpawns >= 1 && s.WorkerRetires >= 1 && scaledDown
		fmt.Printf("  scaled=%v\n", scaled)
		ok = ok && scaled
	}
	if !ok {
		return 1
	}
	return 0
}

// runQoS is the noisy-neighbour scenario: a steady quiet tenant measured
// solo, then again while a bursty noisy tenant floods a low-weight,
// quota-capped class on the same engine. Passes only when the quiet
// tenant's p99 inflation stays inside the configured bound.
func runQoS() int {
	noisyQuota := *maxPend / 2
	if noisyQuota < 1 {
		noisyQuota = 1
	}
	classes := piper.Tenants(
		piper.TenantClass{Name: "quiet", Weight: 8},
		piper.TenantClass{Name: "noisy", Weight: 1, MaxPending: noisyQuota},
	)
	quietReq := *requests / 8
	if quietReq < 50 {
		quietReq = 50
	}
	quiet := tenantSpec{
		class:    "quiet",
		requests: quietReq,
		inflight: 1, // steady: one request at a time, back to back
		rate:     *rate,
		waitAdm:  true,
		work:     *work,
		seed:     *seed * 0x9e3779b9,
	}
	noisy := tenantSpec{
		class:    "noisy",
		requests: *requests,
		inflight: *inflight,
		waitAdm:  true,
		bursts:   5,
		idleGap:  5 * time.Millisecond,
		cancelF:  *cancelF,
		work:     *work,
		seed:     *seed*0x9e3779b9 + 1,
	}

	fmt.Printf("pipeserve: qos scenario on P=%d maxpending=%d (quiet w=8 vs noisy w=1 quota=%d)\n",
		*p, *maxPend, noisyQuota)

	// Phase 1: the quiet tenant alone. Its p99 here is the baseline the
	// mixed run is held to.
	soloEng := piper.NewEngine(engineOpts(classes)...)
	soloR := newRunner(soloEng)
	soloR.runTenant(quiet)
	_, soloDrained := awaitDrain(soloEng)
	soloAcct := checkTenantAccounting(soloEng.TenantStats())
	soloEng.Close()
	soloServed := soloR.class("quiet").served.sorted()
	soloP99 := percentile(soloServed, 0.99)
	fmt.Printf("  solo: served=%d p50=%v p99=%v drained=%v\n",
		len(soloServed),
		percentile(soloServed, 0.50).Round(time.Microsecond),
		soloP99.Round(time.Microsecond), soloDrained)

	// Phase 2: same quiet tenant, now sharing the engine with the flood.
	eng := piper.NewEngine(engineOpts(classes)...)
	r := newRunner(eng)
	start := time.Now()
	var wg sync.WaitGroup
	for _, spec := range []tenantSpec{quiet, noisy} {
		spec := spec
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.runTenant(spec)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	s, drained := awaitDrain(eng)
	eng.Close()

	total := quiet.requests + noisy.requests
	ok := summarize(r, total, 2, elapsed, s, drained)

	mixedServed := r.class("quiet").served.sorted()
	mixedP99 := percentile(mixedServed, 0.99)
	bound := time.Duration(float64(soloP99)**qosFact) + *qosSlack
	qosOK := len(soloServed) > 0 && len(mixedServed) > 0 && mixedP99 <= bound
	fmt.Printf("  qos: solo_p99=%v mixed_p99=%v bound=%v (factor=%.0f slack=%v) qos=%v\n",
		soloP99.Round(time.Microsecond), mixedP99.Round(time.Microsecond),
		bound.Round(time.Microsecond), *qosFact, *qosSlack, qosOK)

	if !ok || !qosOK || !soloDrained || !soloAcct {
		return 1
	}
	return 0
}

func main() {
	flag.Parse()
	if *tenants < 1 {
		*tenants = 1
	}
	if *requests < 0 {
		*requests = 0
	}
	if *inflight < 1 {
		*inflight = 1
	}
	if *work < 2 {
		*work = 2 // the per-request jitter draws from [work/2, work)
	}
	if *bursts < 0 {
		*bursts = 0
	}
	if *qos {
		if *maxPend <= 0 {
			*maxPend = 4 * *p // QoS needs a budget for admission to contend on
		}
		os.Exit(runQoS())
	}
	os.Exit(runLoad())
}
