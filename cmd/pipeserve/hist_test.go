package main

import (
	"testing"
	"time"
)

// ladder returns [1ms, 2ms, ..., n ms], already sorted.
func ladder(n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i+1) * time.Millisecond
	}
	return out
}

func TestPercentileNearestRank(t *testing.T) {
	cases := []struct {
		name string
		n    int
		q    float64
		want time.Duration
	}{
		{"empty", 0, 0.99, 0},
		{"single-p50", 1, 0.50, 1 * time.Millisecond},
		{"single-p999", 1, 0.999, 1 * time.Millisecond},
		{"q0-clamps-to-min", 10, 0, 1 * time.Millisecond},
		{"q1-is-max", 10, 1, 10 * time.Millisecond},
		// Nearest rank: ceil(q*n). The old int(q*(n-1)) truncation
		// reported 9ms for both of these — one full rank low.
		{"p95-of-10", 10, 0.95, 10 * time.Millisecond},
		{"p99-of-10", 10, 0.99, 10 * time.Millisecond},
		{"p50-of-10", 10, 0.50, 5 * time.Millisecond},
		{"p50-of-11", 11, 0.50, 6 * time.Millisecond},
		{"p95-of-100", 100, 0.95, 95 * time.Millisecond},
		{"p99-of-100", 100, 0.99, 99 * time.Millisecond},
		// The old formula could never return the maximum for p999 at any
		// n < 1000: int(0.999*99) == 98 picked the 99th sample of 100.
		{"p999-of-100", 100, 0.999, 100 * time.Millisecond},
		{"p999-of-1000", 1000, 0.999, 999 * time.Millisecond},
		{"p999-of-2000", 2000, 0.999, 1998 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := percentile(ladder(tc.n), tc.q); got != tc.want {
				t.Fatalf("percentile(ladder(%d), %v) = %v, want %v", tc.n, tc.q, got, tc.want)
			}
		})
	}
}

func TestHistSeparatesOutcomes(t *testing.T) {
	var ch classHists
	ch.served.record(2 * time.Millisecond)
	ch.served.record(4 * time.Millisecond)
	ch.aborted.record(90 * time.Millisecond) // pre-cancel sleep, not service time
	if got := ch.served.count(); got != 2 {
		t.Fatalf("served count = %d, want 2", got)
	}
	if got := ch.aborted.count(); got != 1 {
		t.Fatalf("aborted count = %d, want 1", got)
	}
	// The canceled sample must not leak into the served tail.
	if got := percentile(ch.served.sorted(), 0.999); got != 4*time.Millisecond {
		t.Fatalf("served p999 = %v, want 4ms", got)
	}
}
