package main

import (
	"math"
	"sort"
	"sync"
	"time"
)

// hist is a concurrency-safe latency sample collector. pipeserve keeps
// one per (tenant class, outcome) pair: canceled requests abandon work
// partway through — including however long the canceler slept before
// firing — so folding them into the served histogram drags the reported
// service percentiles toward the cancel schedule rather than the
// engine's behaviour. Served and canceled samples are recorded into
// separate histograms and only served ones feed the percentile lines.
type hist struct {
	mu      sync.Mutex
	samples []time.Duration
}

func (h *hist) record(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.mu.Unlock()
}

func (h *hist) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// sorted returns the samples in ascending order, copied so percentile
// reads never race later records.
func (h *hist) sorted() []time.Duration {
	h.mu.Lock()
	out := append([]time.Duration(nil), h.samples...)
	h.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// percentile returns the nearest-rank q-quantile of an ascending-sorted
// sample set: the smallest value with at least ceil(q*N) samples at or
// below it. The previous implementation indexed with int(q*(N-1)), which
// truncates instead of rounding up — for N=10 it reported p95 and p99
// both as the 9th sample, understating every tail percentile by up to a
// whole rank (and p999 never reached the maximum at any N < 1000).
func percentile(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}
