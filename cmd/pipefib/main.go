// Command pipefib computes Fibonacci numbers with the pipe-fib pipeline.
//
// Usage:
//
//	pipefib -n 10000 -p 4 [-coarse] [-nofold] [-print]
package main

import (
	"flag"
	"fmt"
	"time"

	"piper"
	"piper/internal/pipefib"
)

func main() {
	var (
		n      = flag.Int("n", 10000, "Fibonacci index")
		p      = flag.Int("p", 4, "workers")
		coarse = flag.Bool("coarse", false, "use 256-bit stages (pipe-fib-256)")
		nofold = flag.Bool("nofold", false, "disable dependency folding")
		print  = flag.Bool("print", false, "print the number")
	)
	flag.Parse()

	eng := piper.NewEngine(piper.Workers(*p), piper.DependencyFolding(!*nofold))
	defer eng.Close()
	start := time.Now()
	var v fmt.Stringer
	if *coarse {
		v = pipefib.Coarse(eng, 4**p, *n)
	} else {
		v = pipefib.Fine(eng, 4**p, *n)
	}
	elapsed := time.Since(start)
	if *print {
		fmt.Println(v)
	}
	st := eng.Stats()
	fmt.Printf("F(%d) computed in %v  (steals=%d cross-checks=%d fold-hits=%d)\n",
		*n, elapsed, st.Steals, st.CrossChecks, st.FoldHits)
}
