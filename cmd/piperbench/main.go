// Command piperbench regenerates the paper's evaluation tables and the
// throttling experiments on this host.
//
// Usage:
//
//	piperbench -experiment all -size small -plist 1,2,4
//	piperbench -experiment fig8 -size native
//
// Experiments: fig6 (ferret), fig7 (dedup), fig8 (x264), fig9 (pipe-fib
// dependency folding), thm12 (uniform throttling), fig10 (pathological
// pipeline), ablate (Section 9 optimizations), arena (data-plane buffer
// recycling on/off), plan (plan compiler on/off), all.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"piper/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig6|fig7|fig8|fig9|thm12|fig10|ablate|adaptive|elastic|grain|arena|plan|all")
		size       = flag.String("size", "small", "small|native")
		plist      = flag.String("plist", "", "comma-separated worker counts (default 1,2,...,NumCPU)")
		pmax       = flag.Int("pmax", runtime.NumCPU(), "worker count for single-P experiments")
		jsonOut    = flag.String("json", "", "write the machine-readable benchmark suite to this file (e.g. BENCH_piper.json) and exit; a -only filter matching no rows exits nonzero and lists the available names")
		only       = flag.String("only", "", "with -json: run only benchmarks whose name contains one of these comma-separated substrings (duplicates rejected)")
		baseline   = flag.String("baseline", "", "with -json: compare the guarded benchmark(s) against this checked-in report and exit nonzero on regression")
		guard      = flag.String("guard", "SerialOverheadPerIter/P1", "with -baseline: comma-separated benchmark name(s) to guard (duplicates rejected)")
		maxregress = flag.Float64("maxregress", 15, "with -baseline: fail if a guarded benchmark is more than this percent slower")
		metricg    = flag.String("metricguard", "", "with -baseline: comma-separated name:metric:slack entries guarding allocs_per_op/bytes_per_op/ns_per_op with the -maxregress bound plus an absolute slack (e.g. \"Dedup1MiB/P2:allocs_per_op:16\")")
		procs      = flag.String("procs", "", "with -json: record speedup curves over these comma-separated GOMAXPROCS values, or \"auto\" for 1,2,4,...,NumCPU; values above NumCPU require -virtual")
		virtual    = flag.Bool("virtual", false, "with -procs: simulate worker counts above NumCPU through the deterministic virtual-schedule mode (auto adds P=8..64)")
		speedupg   = flag.String("speedupguard", "LZStream", "with -baseline and -procs: comma-separated workload curve(s) whose speedup at the highest real P must not regress (duplicates rejected)")
	)
	flag.Parse()

	if *jsonOut != "" {
		filters, err := bench.SplitNames("-only", *only)
		if err != nil {
			fmt.Fprintf(os.Stderr, "piperbench: %v\n", err)
			os.Exit(2)
		}
		realPs, virtPs, err := bench.ParseProcs(*procs, runtime.NumCPU(), *virtual)
		if err != nil {
			fmt.Fprintf(os.Stderr, "piperbench: %v\n", err)
			os.Exit(2)
		}
		guards, err := bench.SplitNames("-guard", *guard)
		if err != nil {
			fmt.Fprintf(os.Stderr, "piperbench: %v\n", err)
			os.Exit(2)
		}
		speedupGuards, err := bench.SplitNames("-speedupguard", *speedupg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "piperbench: %v\n", err)
			os.Exit(2)
		}
		cfg := bench.SuiteConfig{Filters: filters, RealProcs: realPs, VirtProcs: virtPs}
		if err := bench.WriteJSONFile(*jsonOut, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "piperbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
		if *baseline != "" {
			failed := false
			checked := 0
			for _, name := range guards {
				checked++
				if err := bench.CheckRegression(*jsonOut, *baseline, name, *maxregress); err != nil {
					fmt.Fprintf(os.Stderr, "piperbench: benchmark regression: %v\n", err)
					failed = true
				}
			}
			if len(realPs) > 0 || len(virtPs) > 0 {
				for _, name := range speedupGuards {
					checked++
					if err := bench.CheckSpeedupRegression(*jsonOut, *baseline, name, *maxregress); err != nil {
						fmt.Fprintf(os.Stderr, "piperbench: speedup regression: %v\n", err)
						failed = true
					}
				}
			}
			for _, entry := range strings.Split(*metricg, ",") {
				entry = strings.TrimSpace(entry)
				if entry == "" {
					continue
				}
				parts := strings.Split(entry, ":")
				if len(parts) != 3 {
					fmt.Fprintf(os.Stderr, "piperbench: bad -metricguard entry %q (want name:metric:slack)\n", entry)
					failed = true
					continue
				}
				slack, err := strconv.ParseFloat(parts[2], 64)
				if err != nil {
					fmt.Fprintf(os.Stderr, "piperbench: bad -metricguard slack in %q: %v\n", entry, err)
					failed = true
					continue
				}
				checked++
				if err := bench.CheckMetricRegression(*jsonOut, *baseline, parts[0], parts[1], *maxregress, slack); err != nil {
					fmt.Fprintf(os.Stderr, "piperbench: benchmark regression: %v\n", err)
					failed = true
				}
			}
			if checked == 0 {
				// Empty guards must not pass as a vacuous success: a CI
				// step that guards nothing is a misconfiguration.
				fmt.Fprintf(os.Stderr, "piperbench: -baseline given but -guard %q and -metricguard %q name no benchmarks\n", *guard, *metricg)
				failed = true
			}
			if failed {
				os.Exit(1)
			}
		}
		return
	}

	sz := bench.Small()
	if *size == "native" {
		sz = bench.Native()
	}
	ps := defaultPs()
	if *plist != "" {
		ps = nil
		for _, s := range strings.Split(*plist, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || p < 1 {
				fmt.Fprintf(os.Stderr, "piperbench: bad -plist entry %q\n", s)
				os.Exit(2)
			}
			ps = append(ps, p)
		}
	}

	fmt.Printf("host: %d CPUs, GOMAXPROCS=%d\n\n", runtime.NumCPU(), runtime.GOMAXPROCS(0))
	run := map[string]func(){
		"fig6":     func() { bench.Fig6Ferret(os.Stdout, ps, sz) },
		"fig7":     func() { bench.Fig7Dedup(os.Stdout, ps, sz) },
		"fig8":     func() { bench.Fig8X264(os.Stdout, ps, sz) },
		"fig9":     func() { bench.Fig9PipeFib(os.Stdout, *pmax, sz) },
		"thm12":    func() { bench.Thm12Uniform(os.Stdout, *pmax, sz) },
		"fig10":    func() { bench.Fig10Pathological(os.Stdout, *pmax, sz) },
		"ablate":   func() { bench.Ablations(os.Stdout, *pmax, sz) },
		"adaptive": func() { bench.AdaptiveThrottle(os.Stdout, *pmax, sz) },
		"elastic":  func() { bench.Elasticity(os.Stdout, *pmax, sz) },
		"grain":    func() { bench.GrainAblation(os.Stdout, *pmax, sz) },
		"arena":    func() { bench.ArenaAblation(os.Stdout, *pmax, sz) },
		"plan":     func() { bench.PlanAblation(os.Stdout, *pmax, sz) },
	}
	if *experiment == "all" {
		for _, name := range []string{"fig6", "fig7", "fig8", "fig9", "thm12", "fig10", "ablate", "adaptive", "elastic", "grain", "arena", "plan"} {
			run[name]()
		}
		return
	}
	f, ok := run[*experiment]
	if !ok {
		fmt.Fprintf(os.Stderr, "piperbench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	f()
}

func defaultPs() []int {
	n := runtime.NumCPU()
	ps := []int{1}
	for p := 2; p <= n; p *= 2 {
		ps = append(ps, p)
	}
	if last := ps[len(ps)-1]; last != n {
		ps = append(ps, n)
	}
	return ps
}
