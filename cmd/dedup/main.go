// Command dedup compresses and restores files with the dedup pipeline.
//
// Usage:
//
//	dedup -mode compress -in file -out file.pdar [-pipeline piper|pthreads|tbb|serial] [-p 4]
//	dedup -mode restore  -in file.pdar -out file
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"piper"
	"piper/internal/dedup"
)

func main() {
	var (
		mode     = flag.String("mode", "compress", "compress|restore")
		in       = flag.String("in", "", "input file")
		out      = flag.String("out", "", "output file")
		pipeline = flag.String("pipeline", "piper", "piper|pthreads|tbb|serial")
		p        = flag.Int("p", 4, "workers")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "dedup: -in and -out are required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	check(err)
	f, err := os.Create(*out)
	check(err)
	defer f.Close()
	w := bufio.NewWriter(f)

	switch *mode {
	case "compress":
		switch *pipeline {
		case "serial":
			err = dedup.CompressSerial(data, w)
		case "piper":
			eng := piper.NewEngine(piper.Workers(*p))
			defer eng.Close()
			err = dedup.CompressPiper(eng, 4**p, data, w)
		case "pthreads":
			err = dedup.CompressBindStage(data, *p, 4**p, w)
		case "tbb":
			err = dedup.CompressTBB(data, *p, 4**p, w)
		default:
			fmt.Fprintf(os.Stderr, "dedup: unknown pipeline %q\n", *pipeline)
			os.Exit(2)
		}
		check(err)
	case "restore":
		var raw []byte
		var rerr error
		if *pipeline == "piper" {
			eng := piper.NewEngine(piper.Workers(*p))
			defer eng.Close()
			raw, rerr = dedup.RestorePiper(eng, 4**p, data)
		} else {
			raw, rerr = dedup.Restore(data)
		}
		check(rerr)
		_, err = w.Write(raw)
		check(err)
	default:
		fmt.Fprintf(os.Stderr, "dedup: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	check(w.Flush())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dedup:", err)
		os.Exit(1)
	}
}
