// Package cmd_test builds every command binary and exercises it end to
// end — the CLI contract tests.
package cmd_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// build compiles ./cmd/<name> into dir and returns the binary path.
func build(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./"+name)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) (string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstdout:\n%s\nstderr:\n%s",
			filepath.Base(bin), args, err, stdout.String(), stderr.String())
	}
	return stdout.String(), stderr.String()
}

func TestDedupCmdRoundTrip(t *testing.T) {
	dir := t.TempDir()
	bin := build(t, dir, "dedup")

	input := filepath.Join(dir, "in.txt")
	data := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog\n"), 4000)
	if err := os.WriteFile(input, data, 0o644); err != nil {
		t.Fatal(err)
	}
	arch := filepath.Join(dir, "in.pdar")
	restored := filepath.Join(dir, "out.txt")

	run(t, bin, "-mode", "compress", "-in", input, "-out", arch, "-pipeline", "piper", "-p", "2")
	run(t, bin, "-mode", "restore", "-in", arch, "-out", restored, "-p", "2")

	got, err := os.ReadFile(restored)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cmd round trip mismatch")
	}
	ai, err := os.Stat(arch)
	if err != nil {
		t.Fatal(err)
	}
	if ai.Size() >= int64(len(data))/10 {
		t.Fatalf("highly repetitive input compressed to only %d of %d bytes", ai.Size(), len(data))
	}
}

func TestX264SimCmdPipelinesAgree(t *testing.T) {
	dir := t.TempDir()
	bin := build(t, dir, "x264sim")
	args := []string{"-w", "128", "-h", "64", "-frames", "16"}
	outSerial, _ := run(t, bin, append(args, "-pipeline", "serial")...)
	outPiper, _ := run(t, bin, append(args, "-pipeline", "piper", "-p", "2")...)
	outThreads, _ := run(t, bin, append(args, "-pipeline", "pthreads", "-p", "2")...)
	sum := func(out string) string {
		for _, f := range strings.Fields(out) {
			if strings.HasPrefix(f, "checksum=") {
				return f
			}
		}
		t.Fatalf("no checksum in output: %s", out)
		return ""
	}
	if sum(outSerial) != sum(outPiper) || sum(outSerial) != sum(outThreads) {
		t.Fatalf("checksums disagree:\nserial: %s\npiper: %s\npthreads: %s",
			outSerial, outPiper, outThreads)
	}
	if !strings.Contains(outPiper, "violations=0") {
		t.Fatalf("piper run reported violations: %s", outPiper)
	}
}

func TestDagvizCmdEmitsDOT(t *testing.T) {
	dir := t.TempDir()
	bin := build(t, dir, "dagviz")
	for _, kind := range []string{"ferret", "dedup", "x264", "pipefib", "pathological", "uniform"} {
		stdout, stderr := run(t, bin, "-dag", kind, "-n", "4", "-k", "2")
		if !strings.Contains(stdout, "digraph pipeline") {
			t.Fatalf("%s: no DOT output", kind)
		}
		if !strings.Contains(stderr, "parallelism=") {
			t.Fatalf("%s: no stats on stderr", kind)
		}
	}
}

func TestPipefibCmd(t *testing.T) {
	dir := t.TempDir()
	bin := build(t, dir, "pipefib")
	stdout, _ := run(t, bin, "-n", "30", "-p", "2", "-print")
	if !strings.Contains(stdout, "832040") { // F(30)
		t.Fatalf("F(30) missing from output: %s", stdout)
	}
}

func TestFerretCmd(t *testing.T) {
	dir := t.TempDir()
	bin := build(t, dir, "ferret")
	stdout, _ := run(t, bin, "-corpus", "60", "-queries", "4", "-topk", "2", "-p", "2", "-imgsize", "32")
	lines := strings.Count(strings.TrimSpace(stdout), "\n") + 1
	if lines != 4 {
		t.Fatalf("expected 4 query lines, got %d:\n%s", lines, stdout)
	}
	if !strings.Contains(stdout, "query ") {
		t.Fatalf("unexpected output: %s", stdout)
	}
}

func TestPiperbenchCmdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("piperbench takes seconds even at small size")
	}
	dir := t.TempDir()
	bin := build(t, dir, "piperbench")
	stdout, _ := run(t, bin, "-experiment", "thm12", "-size", "small", "-pmax", "2")
	if !strings.Contains(stdout, "Theorem 12") {
		t.Fatalf("missing table title:\n%s", stdout)
	}
}

func TestPipeserveCmd(t *testing.T) {
	dir := t.TempDir()
	bin := build(t, dir, "pipeserve")
	stdout, _ := run(t, bin,
		"-p", "2", "-tenants", "4", "-requests", "300", "-cancel", "0.3", "-work", "200")
	// run fails the test on a non-zero exit, which pipeserve returns for
	// unexpected errors, accounting mismatches, or an undrained engine;
	// assert the summary markers explicitly as well.
	for _, want := range []string{"failures=0", "drained=true", "300 requests"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("missing %q in pipeserve output:\n%s", want, stdout)
		}
	}
}

func TestPipeserveQoS(t *testing.T) {
	dir := t.TempDir()
	bin := build(t, dir, "pipeserve")
	// Noisy-neighbour scenario at a small size: the quiet tenant is
	// measured solo, then against a bursty flood through a low-weight
	// quota-capped class. pipeserve exits nonzero (failing run) unless
	// the quiet p99 stays inside the bound, both engines drain, and every
	// class's admission counters reconcile; assert the markers too.
	stdout, _ := run(t, bin,
		"-qos", "-p", "2", "-maxpending", "4", "-requests", "600", "-work", "400", "-seed", "7")
	for _, want := range []string{"failures=0", "drained=true", "accounting=true", "qos=true"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("missing %q in pipeserve qos output:\n%s", want, stdout)
		}
	}
}

func TestPipeserveBurstElastic(t *testing.T) {
	dir := t.TempDir()
	bin := build(t, dir, "pipeserve")
	// Bursty multi-tenant traffic against an elastic 1..4 pool with a
	// small admission budget under the blocking policy. The driver exits
	// nonzero unless the pool scaled up AND retired back to the floor
	// (scaled=true), every request was admitted (SubmitWait loses none),
	// and the engine drained.
	stdout, _ := run(t, bin,
		"-p", "1", "-min", "1", "-max", "4", "-burst", "3", "-idle", "30ms",
		"-retire", "2ms", "-maxpending", "8", "-waitadmit",
		"-tenants", "4", "-requests", "400", "-cancel", "0.1", "-work", "300")
	for _, want := range []string{"failures=0", "rejected=0", "drained=true", "scaled=true"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("missing %q in pipeserve burst output:\n%s", want, stdout)
		}
	}
}
