// Piperlint is the multichecker for piper's usage-contract analyzers
// (internal/lint): batchsafety, arenaref, stagediscipline, atomicalign,
// nakedgo.
//
// Standalone, it loads package patterns like the go tool and exits
// nonzero if any analyzer reports a finding:
//
//	go run ./cmd/piperlint ./...
//	piperlint -only batchsafety,nakedgo ./internal/lz
//
// It also speaks enough of the vet tool protocol (-V=full handshake plus
// unitchecker-style .cfg units) to run as `go vet -vettool=$(which
// piperlint) ./...`, type-checking each unit from the compiler's export
// data instead of source.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"

	"piper/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("piperlint", flag.ExitOnError)
	versionFlag := fs.String("V", "", "vet tool protocol handshake (-V=full)")
	printFlags := fs.Bool("flags", false, "print the tool's flags as JSON (vet tool protocol)")
	only := fs.String("only", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: piperlint [-only a,b] [packages]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *versionFlag != "" {
		// The go command probes vet tools with -V=full and requires the
		// exact shape "<prog> version devel ... buildID=<id>" to identify
		// the tool binary for its action cache; the content hash of the
		// executable is the id.
		prog, err := os.Executable()
		if err != nil {
			prog = os.Args[0]
		}
		h := sha256.New()
		if f, err := os.Open(prog); err == nil {
			io.Copy(h, f)
			f.Close()
		}
		fmt.Printf("%s version devel buildID=%x\n", prog, h.Sum(nil))
		return 0
	}
	if *printFlags {
		// The go command's other probe: `tool -flags` must print the
		// tool's flags as a JSON array so vet can validate user flags.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var flags []jsonFlag
		fs.VisitAll(func(f *flag.Flag) {
			b, ok := f.Value.(interface{ IsBoolFlag() bool })
			flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
		})
		data, err := json.MarshalIndent(flags, "", "\t")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		os.Stdout.Write(data)
		fmt.Println()
		return 0
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	// A single *.cfg argument is the go command handing us one vet unit.
	if fs.NArg() == 1 && strings.HasSuffix(fs.Arg(0), ".cfg") {
		return runVetUnit(fs.Arg(0), analyzers)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	pkgs, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "piperlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if only == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a := byName[strings.TrimSpace(name)]
		if a == nil {
			return nil, fmt.Errorf("piperlint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// vetConfig is the unit description the go command writes for vet tools
// (the unitchecker wire format).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one unit under `go vet -vettool`. Dependencies are
// imported from the export data the go command already built, so no
// source re-type-checking happens.
func runVetUnit(cfgFile string, analyzers []*lint.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "piperlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The go command requires an output file (its facts cache) even though
	// these analyzers export none.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: nothing to analyze, nothing to export.
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		exportFile, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exportFile)
	})
	pkg, err := lint.CheckFiles(fset, imp, cfg.ImportPath, cfg.Dir, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	diags := lint.Run([]*lint.Package{pkg}, analyzers)
	for _, d := range diags {
		// The go command relays anything on stderr as the vet failure.
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	writeVetx()
	return 0
}
