package main

import "testing"

func TestVersionHandshake(t *testing.T) {
	if code := run([]string{"-V=full"}); code != 0 {
		t.Fatalf("-V=full exited %d, want 0", code)
	}
}

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) < 5 {
		t.Fatalf("default selection: %d analyzers, err %v; want >=5, nil", len(all), err)
	}
	subset, err := selectAnalyzers("batchsafety, nakedgo")
	if err != nil || len(subset) != 2 {
		t.Fatalf("subset selection: %d analyzers, err %v; want 2, nil", len(subset), err)
	}
	if _, err := selectAnalyzers("nosuch"); err == nil {
		t.Fatal("unknown analyzer name accepted")
	}
}

// The repo must stay clean under its own analyzers — the same gate CI
// applies via `go run ./cmd/piperlint ./...`.
func TestSelfApplication(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	if code := run([]string{"piper/..."}); code != 0 {
		t.Fatalf("piperlint over the repo exited %d, want 0 (findings above)", code)
	}
}
