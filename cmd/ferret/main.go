// Command ferret runs the image-similarity pipeline over a synthetic
// corpus and prints the top matches per query.
//
// Usage:
//
//	ferret -corpus 500 -queries 20 -topk 5 -p 4 -pipeline piper
package main

import (
	"flag"
	"fmt"
	"os"

	"piper"
	"piper/internal/ferret"
)

func main() {
	var (
		corpusN  = flag.Int("corpus", 500, "corpus size")
		queries  = flag.Int("queries", 20, "number of queries")
		topk     = flag.Int("topk", 5, "results per query")
		p        = flag.Int("p", 4, "workers")
		pipeline = flag.String("pipeline", "piper", "piper|pthreads|tbb|serial")
		imgSize  = flag.Int("imgsize", 48, "image edge length (pixels)")
	)
	flag.Parse()

	c := ferret.BuildCorpus(*corpusN, *imgSize, *imgSize)
	qs := ferret.QuerySet{Offset: 1 << 20, N: *queries, TopK: *topk}
	var outs []ferret.Output
	switch *pipeline {
	case "serial":
		outs = c.RunSerial(qs)
	case "piper":
		eng := piper.NewEngine(piper.Workers(*p))
		defer eng.Close()
		outs = c.RunPiper(eng, 10**p, qs)
	case "pthreads":
		outs = c.RunBindStage(*p, 10**p, qs)
	case "tbb":
		outs = c.RunTBB(*p, 10**p, qs)
	default:
		fmt.Fprintf(os.Stderr, "ferret: unknown pipeline %q\n", *pipeline)
		os.Exit(2)
	}
	for _, o := range outs {
		fmt.Printf("query %d:", o.QueryID)
		for _, r := range o.Ranked {
			fmt.Printf(" %d(%.4f)", r.ID, r.Dist)
		}
		fmt.Println()
	}
}
