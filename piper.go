// Package piper provides on-the-fly pipeline parallelism for Go: a
// faithful reproduction of the Cilk-P linguistics and the PIPER
// work-stealing scheduler from I-T. A. Lee, C. E. Leiserson, T. B.
// Schardl, J. Sukha and Z. Zhang, "On-the-Fly Pipeline Parallelism",
// SPAA 2013.
//
// A linear pipeline is written as a pipe_while loop: the condition and the
// body's prefix up to the first Wait or Continue form the serial stage 0,
// executed in iteration order; Wait(j) ("pipe_wait") begins stage j after
// the same stage of the previous iteration has completed, creating a cross
// edge; Continue(j) ("pipe_continue") begins stage j immediately. Stage
// numbers must strictly increase within an iteration, and skipped stages
// become null nodes exactly as in the paper. Stages may contain fork-join
// parallelism (Go/Sync/For) and nested pipelines.
//
// The scheduler automatically throttles each pipeline to at most K live
// iterations (default 4·P), precluding runaway pipelines, and implements
// the paper's lazy enabling, dependency folding, and tail-swap
// optimizations — plus frame/coroutine pooling for an allocation-free
// steady state — each individually switchable for ablation studies.
//
// Beyond the blocking PipeWhile, Engine.Submit launches pipelines
// asynchronously for serving workloads: many concurrent pipelines per
// engine, context cancellation that aborts a run at stage boundaries and
// drains its frames back to the pools, and panics surfaced as errors
// (*PanicError) through the returned Handle.
//
// A minimal SPS (serial-parallel-serial) pipeline:
//
//	eng := piper.NewEngine(piper.Workers(8))
//	defer eng.Close()
//	i := 0
//	eng.PipeWhile(func() bool { return i < len(inputs) }, func(it *piper.Iter) {
//		in := inputs[i] // stage 0: serial input
//		i++
//		it.Continue(1) // stage 1: parallel
//		out := process(in)
//		it.Wait(2) // stage 2: serial, in order
//		emit(out)
//	})
package piper

import (
	"time"

	"piper/internal/core"
)

// Engine is a PIPER scheduler instance: P workers with work-stealing
// deques executing pipeline programs.
type Engine = core.Engine

// Iter is the per-iteration handle passed to pipeline bodies.
type Iter = core.Iter

// Stats aggregates scheduler event counters (steals, suspensions,
// lazy-enabling and dependency-folding activity, tail swaps, ...).
type Stats = core.Stats

// Handle tracks a pipeline started asynchronously with Engine.Submit.
// Wait blocks for completion and returns nil, the submission context's
// error, or a *PanicError; Report adds the PipelineReport; Done exposes a
// completion channel for select loops; Cancel aborts without a context.
type Handle = core.Handle

// PanicError is the error a Handle reports when the pipeline's condition
// or body panicked: the panic value plus the panicking goroutine's stack.
type PanicError = core.PanicError

// ErrEngineClosed is reported through a Handle when Submit is called on a
// closed engine.
var ErrEngineClosed = core.ErrEngineClosed

// ErrSaturated is reported through a Handle when Submit finds the
// engine's pending-pipeline budget (MaxPending) or the tenant class's
// quota exhausted — the reject admission policy. SubmitWait queues for a
// slot instead.
var ErrSaturated = core.ErrSaturated

// ErrUnknownTenant is reported through a Handle when SubmitTenant or
// SubmitWaitTenant names a class the engine was not configured with.
var ErrUnknownTenant = core.ErrUnknownTenant

// ErrAdmissionExpired is reported through a Handle when a SubmitWait
// submission was still queued for admission when its tenant class's
// Deadline elapsed. Matches errors.Is(err, context.DeadlineExceeded).
var ErrAdmissionExpired = core.ErrAdmissionExpired

// DefaultTenant is the name of the implicit admission class every engine
// has; Submit and SubmitWait admit through it.
const DefaultTenant = core.DefaultTenant

// TenantClass configures one admission class of a multi-tenant engine:
// a deficit-round-robin weight (contended admission capacity is split
// across backlogged classes in proportion to their weights), an optional
// per-class pending quota independent of the global MaxPending budget,
// and an optional admission deadline bounding how long the class's
// SubmitWait callers may queue (expired waiters fail with
// ErrAdmissionExpired, and earlier deadlines are admitted first among
// classes eligible in a round).
type TenantClass = core.TenantClass

// TenantStats is the per-class admission snapshot (Engine.TenantStats):
// Submitted/Admitted/Rejected/Canceled counters, the class's share of
// the admission-wait time, and the Pending/Waiting gauges. Once a class
// has no queued waiter, Submitted == Admitted + Rejected + Canceled.
type TenantStats = core.TenantStats

// PipelineReport summarizes a completed pipeline run.
type PipelineReport = core.PipelineReport

// Option configures NewEngine.
type Option func(*core.Options)

// Workers sets the number of scheduling workers P the engine starts with
// (default runtime.GOMAXPROCS(0)).
func Workers(p int) Option {
	return func(o *core.Options) { o.Workers = p }
}

// MinWorkers sets the floor of the elastic worker pool (default Workers).
// A surplus worker — live count above the floor — retires after sitting
// parked for the RetireAfter grace period, returning its core to the
// host; its residual queued frames transfer to the shared overflow list.
func MinWorkers(n int) Option {
	return func(o *core.Options) { o.MinWorkers = n }
}

// MaxWorkers sets the ceiling of the elastic worker pool (default
// Workers). The engine spawns workers up to the ceiling when work is
// published while every live worker is busy, or when the injection rings
// overflow. MinWorkers == MaxWorkers (the default) disables elasticity
// entirely: the scheduler is then the paper's fixed-P runtime, with no
// timers or scale checks on any hot path.
func MaxWorkers(n int) Option {
	return func(o *core.Options) { o.MaxWorkers = n }
}

// RetireAfter sets the idle grace period before a surplus worker retires
// (default 10ms). Only meaningful when MaxWorkers > MinWorkers.
func RetireAfter(d time.Duration) Option {
	return func(o *core.Options) { o.RetireAfter = d }
}

// MaxPending bounds the number of submitted pipelines admitted and not
// yet completed — the serving layer's backpressure budget (default 0,
// unlimited). When the budget is exhausted, Submit rejects immediately
// (Handle reports ErrSaturated) and SubmitWait queues until a slot
// frees, its context is done, its class admission deadline expires, or
// the engine closes. Queued submissions are admitted FIFO within a
// tenant class and weighted-fairly across classes (see Tenants).
func MaxPending(n int) Option {
	return func(o *core.Options) { o.MaxPending = n }
}

// Tenants configures the engine's admission classes for multi-tenant
// QoS. Each class has a DRR weight, an optional per-class pending quota,
// and an optional admission deadline (see TenantClass); submissions are
// routed to a class with Engine.SubmitTenant/SubmitWaitTenant, while
// plain Submit/SubmitWait use the always-present default class "".
// Under a contended MaxPending budget the admission queue guarantees
// that a backlogged class receives its weight's share of freed slots
// every round — one hot tenant can no longer starve the rest.
func Tenants(classes ...core.TenantClass) Option {
	return func(o *core.Options) { o.Tenants = append(o.Tenants, classes...) }
}

// Throttle sets the default throttling limit K for pipelines run on the
// engine (default 4·P). The paper uses 10P for ferret and 4P elsewhere.
func Throttle(k int) Option {
	return func(o *core.Options) { o.Throttle = k }
}

// DependencyFolding toggles the cached-predecessor-stage optimization
// (default on). Disable only for ablation measurements.
func DependencyFolding(enabled bool) Option {
	return func(o *core.Options) { o.DependencyFolding = enabled }
}

// LazyEnabling toggles lazy enabling (default on). When disabled, every
// stage advance eagerly checks and wakes the right neighbour.
func LazyEnabling(enabled bool) Option {
	return func(o *core.Options) { o.EagerEnabling = !enabled }
}

// TailSwap toggles the tail-swap rule at iteration completion
// (default on).
func TailSwap(enabled bool) Option {
	return func(o *core.Options) { o.TailSwap = enabled }
}

// PoolFrames toggles frame, coroutine, and pipeline recycling (default
// on): iteration frames return to a sync.Pool together with their resume/
// yield channel pair and their runner goroutine, so the steady state of a
// throttled pipeline allocates nothing per iteration. Disable only for
// ablation measurements — every frame is then allocated (and its
// goroutine spawned) fresh, as in the unoptimized runtime.
func PoolFrames(enabled bool) Option {
	return func(o *core.Options) { o.PoolFrames = enabled }
}

// Grain fixes the batched inline execution run length G (default 0,
// adaptive). The inline fast path claims up to G consecutive iterations
// into one control frame and runs their bodies back-to-back through one
// recycled iteration frame, paying one frame acquisition and one deque
// release per batch instead of per iteration; the batch splits at the
// first iteration that must actually block, so promotion, cancellation,
// and serial-stage ordering semantics are unchanged. Grain(1) reproduces
// the unbatched per-iteration protocol exactly. A batch serializes its
// claimed run on one worker between releases of the stealable pipe_while
// continuation, so large fixed grains trade parallelism for lower
// scheduling overhead — exactly TBB-style grain control; the adaptive
// default makes that trade per pipeline, backing off whenever workers go
// idle or batches split. Instrumented (Profile*) and traced runs always
// execute with grain 1 so work/span accounting stays exact. Only
// meaningful while InlineFastPath is enabled.
func Grain(g int) Option {
	return func(o *core.Options) { o.Grain = g }
}

// GrainMax caps adaptive grain growth (default 64): each pipeline's run
// length starts at 1 and doubles up to this ceiling while its batches
// complete cleanly with every worker busy. Ignored when Grain fixes the
// run length.
func GrainMax(g int) Option {
	return func(o *core.Options) { o.GrainMax = g }
}

// CompilePlans toggles pipeline plan compilation (default on): each
// pipeline's first iteration runs under the interpreter with a trace
// recorder attached, and when it retires cleanly the recorded stage shape
// is compiled into a specialized execution plan — per-transition argument
// validation, instrumentation branches, and the fold-cache compare chain
// are hoisted out of the dispatch; adjacent short serial stages are
// fused so their boundary bookkeeping disappears entirely; a recorded
// pure-serial body enables whole-batch retirement with one published
// completion; and the recorded iteration cost seeds the adaptive grain
// ramp. An iteration whose transitions diverge from the recorded shape
// deopts the pipeline back to the interpreter mid-flight, so shape-
// unstable programs pay one retraction and nothing after. Semantics are
// identical in both modes — compiled dispatch preserves cross-edge
// ordering, throttling, cancellation, and the Grain(1) per-iteration
// protocol exactly — so disabling is only for ablation measurements.
// Plans require DependencyFolding and LazyEnabling (the ablations that
// disable those measure the interpreter) and are never compiled for
// instrumented (Profile*) runs.
func CompilePlans(enabled bool) Option {
	return func(o *core.Options) { o.CompilePlans = enabled }
}

// ArenaBuffers toggles the engine's recycled payload-buffer arena
// (default on). Engine.Arena hands pipeline stages recycled, cache-line-
// aligned, ref-counted byte regions that flow through stages by ownership
// hand-off (Retain on publish, Release at the consuming stage) instead of
// per-item allocation — the data-plane counterpart of frame pooling. When
// disabled, the arena keeps its full Ref API and leak gauges but never
// recycles: every Get allocates and every final Release goes to the GC,
// which is the ablation configuration for measuring what recycling buys.
func ArenaBuffers(enabled bool) Option {
	return func(o *core.Options) { o.ArenaBuffers = enabled }
}

// InlineFastPath toggles tier-1 inline execution (default on): a worker
// first drives each iteration as direct function calls on its own stack —
// no runner goroutine, no channel handshake — and promotes it to a full
// coroutine frame only when it must actually block (an unsatisfied cross
// edge, a fork-join sync on stolen children, a nested pipeline). Disable
// only for ablation measurements — every iteration then runs on a pooled
// coroutine runner with a resume/yield handshake per segment, as in the
// previous runtime.
func InlineFastPath(enabled bool) Option {
	return func(o *core.Options) { o.InlineFastPath = enabled }
}

// NewEngine starts a scheduler with the given options.
func NewEngine(opts ...Option) *Engine {
	o := core.DefaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return core.NewEngine(o)
}

// Run executes one pipeline on a transient engine, for programs that do
// not need to amortize engine start-up.
func Run(cond func() bool, body func(*Iter), opts ...Option) {
	eng := NewEngine(opts...)
	defer eng.Close()
	eng.PipeWhile(cond, body)
}
