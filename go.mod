module piper

go 1.24
