module piper

go 1.24

// No requirements, deliberately. The piperlint analyzers (internal/lint)
// mirror the golang.org/x/tools/go/analysis API shape but are built
// entirely on the standard library (go/ast, go/types, `go list`, the
// source importer), so the module builds and self-checks with nothing
// beyond the Go toolchain. If x/tools is ever vendored, internal/lint's
// Analyzer/Pass types are drop-in translatable to analysis.Analyzer.
